"""Deterministic concurrency stress: 8+ threads sharing one server.

The invariants hold under *any* interleaving, so the test is
deterministic in outcome even though scheduling is not:

* no lost updates — every writer's ingest lands exactly once;
* no torn catalog reads — DDL pairs created in one script are visible
  atomically (both or neither), checked through ``Catalog.scratch_copy``
  taken under the serving layer's read lock (the ``graql check --jobs``
  path);
* plan-cache invalidation — readers never observe row counts moving
  backwards while writers only append.
"""

from __future__ import annotations

import threading

from repro import Database
from tests.conftest import FOLLOW_ROWS, PEOPLE_ROWS, SOCIAL_DDL

READERS = 6
WRITERS = 2
READER_ITERS = 15
WRITER_ITERS = 8

PEOPLE_Q = "select name from table People where age > 30"


def _build_db() -> Database:
    db = Database()
    db.execute(SOCIAL_DDL)
    db.execute("create table Counters(v integer)")
    db.db.ingest_rows("People", PEOPLE_ROWS)
    db.db.ingest_rows("Follows", FOLLOW_ROWS)
    db.catalog.refresh(db.db)
    return db


def test_mixed_select_ddl_ingest_stress():
    db = _build_db()
    errors: list[BaseException] = []
    start = threading.Barrier(READERS + WRITERS)

    def writer(w: int) -> None:
        try:
            start.wait(timeout=30)
            for i in range(WRITER_ITERS):
                # paired DDL in one script: must become visible atomically
                db.execute(
                    f"create table A{w}_{i}(x integer)\n"
                    f"create table B{w}_{i}(x integer)"
                )
                db.ingest_rows("Counters", [(w * 1000 + i,)])
        except BaseException as e:  # noqa: BLE001 - collected for the assert
            errors.append(e)

    def reader(r: int) -> None:
        try:
            start.wait(timeout=30)
            last_count = 0
            for _ in range(READER_ITERS):
                # static data: always the same answer, cache hit or miss
                t = db.query(PEOPLE_Q)
                assert sorted(row[0] for row in t.iter_rows()) == [
                    "Alice", "Carol", "Eve",
                ]
                # growing data: row counts never move backwards
                # (a stale plan-cache entry would violate this)
                n = db.query("select v from table Counters").num_rows
                assert n >= last_count, f"count went backwards: {n} < {last_count}"
                last_count = n
                # torn-read check through the scratch-copy path
                with db.server.serving.lock.read_locked():
                    cat = db.catalog.scratch_copy()
                for w in range(WRITERS):
                    for i in range(WRITER_ITERS):
                        a = f"A{w}_{i}" in cat.tables
                        b = f"B{w}_{i}" in cat.tables
                        assert a == b, f"torn catalog read at A/B{w}_{i}"
        except BaseException as e:  # noqa: BLE001
            errors.append(e)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)
    ] + [threading.Thread(target=reader, args=(r,)) for r in range(READERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors[0]

    # no lost updates: every ingest landed exactly once
    final = db.query("select v from table Counters")
    values = sorted(row[0] for row in final.iter_rows())
    assert values == sorted(
        w * 1000 + i for w in range(WRITERS) for i in range(WRITER_ITERS)
    )
    # every DDL pair exists
    for w in range(WRITERS):
        for i in range(WRITER_ITERS):
            assert f"A{w}_{i}" in db.catalog.tables
            assert f"B{w}_{i}" in db.catalog.tables
    # the final read is answerable from a fresh cache entry
    r = db.execute(PEOPLE_Q)[0]
    r2 = db.execute(PEOPLE_Q)[0]
    assert r2.profile.cache_hit is True
    assert r.table is not None


def test_concurrent_async_submissions_through_pool():
    """The worker-pool path: many async submits against one server."""
    db = _build_db()
    futures = [db.server.submit_async("admin", PEOPLE_Q) for _ in range(16)]
    results = [f.result(timeout=60) for f in futures]
    assert [r[0].table.num_rows for r in results] == [3] * 16
    db.server.serving.close()


def test_submit_work_runs_callback_under_read_lock():
    """``submit_work`` callbacks run *inside* the catalog lock, so they
    must not re-enter the engine (the RWLock rejects the nested
    acquisition rather than risking a self-deadlock under writer
    preference).  A callback that reads shared state directly works."""
    db = _build_db()
    serving = db.server.serving
    futures = [
        serving.submit_work(
            "admin", False, lambda: "People" in db.catalog.tables
        )
        for _ in range(8)
    ]
    assert [f.result(timeout=60) for f in futures] == [True] * 8
    # a callback that re-enters the engine is rejected loudly instead
    # of deadlocking
    bad = serving.submit_work("admin", False, lambda: db.query(PEOPLE_Q))
    try:
        bad.result(timeout=60)
    except RuntimeError as e:
        assert "reentrant" in str(e)
    else:  # pragma: no cover
        raise AssertionError("nested engine re-entry was not rejected")
    serving.close()


def test_scratch_copy_while_writer_is_waiting():
    """Regression: ``scratch_copy`` under the read lock must snapshot a
    consistent catalog even while a writer thread is blocked waiting for
    the write lock (the ``graql check --jobs`` scenario)."""
    db = _build_db()
    lock = db.server.serving.lock
    writer_done = threading.Event()

    with lock.read_locked():
        t = threading.Thread(
            target=lambda: (
                db.execute("create table WhileChecking(i integer)"),
                writer_done.set(),
            )
        )
        t.start()
        # the writer is (or will be) parked behind our read hold; the
        # snapshot below must neither block on it nor tear
        cat = db.catalog.scratch_copy()
        assert "People" in cat.tables
        assert "WhileChecking" not in cat.tables  # not visible yet
        assert cat.epoch == db.catalog.epoch
    assert writer_done.wait(timeout=30)
    t.join(timeout=30)
    assert "WhileChecking" in db.catalog.tables
    # snapshots taken after the write see the new table
    with lock.read_locked():
        assert "WhileChecking" in db.catalog.scratch_copy().tables
