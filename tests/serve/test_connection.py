"""Connection / Cursor / PreparedStatement over the serving layer."""

from __future__ import annotations

import pytest

from repro import Server, connect
from repro.errors import (
    AccessError,
    ExecutionError,
    ServerBusy,
    TypeCheckError,
)
from repro.query.executor import StatementKind
from tests.conftest import (
    FOLLOW_ROWS,
    PEOPLE_ROWS,
    SOCIAL_DDL,
    build_social_db,
)

PEOPLE_Q = "select name from table People where age > 30"
GRAPH_Q = (
    "select y.id from graph Person (country = 'US') --follows--> "
    "def y: Person ( ) into table GT1"
)
PARAM_Q = "select name from table People where age > %MinAge%"


def _social_server() -> Server:
    s = Server()
    s.submit("admin", SOCIAL_DDL)
    s.backend.ingest_rows("People", PEOPLE_ROWS)
    s.backend.ingest_rows("Follows", FOLLOW_ROWS)
    s.catalog.refresh(s.backend)
    return s


class TestConnection:
    def test_connect_validates_user_upfront(self):
        s = Server()
        with pytest.raises(AccessError, match="unknown user"):
            connect(s, user="nobody")

    def test_connect_validates_transport(self):
        s = Server()
        with pytest.raises(ValueError, match="unknown transport"):
            connect(s, user="admin", transport="carrier-pigeon")

    def test_execute_over_both_transports(self):
        s = _social_server()
        for transport in ("ir", "local"):
            conn = connect(s, user="admin", transport=transport)
            results = conn.execute(PEOPLE_Q)
            assert results[-1].kind == StatementKind.TABLE
            names = sorted(r[0] for r in results[-1].table.iter_rows())
            assert names == ["Alice", "Carol", "Eve"]

    def test_closed_connection_refuses_work(self):
        s = _social_server()
        conn = connect(s, user="admin")
        conn.close()
        with pytest.raises(ExecutionError, match="closed"):
            conn.execute(PEOPLE_Q)

    def test_context_manager_closes(self):
        s = _social_server()
        with connect(s, user="admin") as conn:
            conn.execute(PEOPLE_Q)
        with pytest.raises(ExecutionError, match="closed"):
            conn.execute(PEOPLE_Q)


class TestCursor:
    def test_fetchone_exhausts_then_none(self):
        db = build_social_db()
        with db.cursor() as cur:
            cur.execute(PEOPLE_Q)
            seen = []
            while True:
                row = cur.fetchone()
                if row is None:
                    break
                seen.append(row["name"])
            assert sorted(seen) == ["Alice", "Carol", "Eve"]
            assert cur.fetchone() is None

    def test_fetchmany_respects_size_and_arraysize(self):
        db = build_social_db()
        cur = db.cursor(batch_size=2)
        cur.execute("select name from table People")
        first = cur.fetchmany()
        assert len(first) == 2  # arraysize default
        rest = cur.fetchmany(100)
        assert len(rest) == 4
        assert cur.fetchmany() == []

    def test_fetchall_and_iteration(self):
        db = build_social_db()
        cur = db.cursor(batch_size=2)
        rows = cur.execute("select name, age from table People").fetchall()
        assert len(rows) == 6
        cur.execute("select name, age from table People")
        assert [r.name for r in cur] == [r.name for r in rows]

    def test_rows_are_name_addressable(self):
        db = build_social_db()
        cur = db.cursor()
        cur.execute("select name, age from table People where name = 'Alice'")
        row = cur.fetchone()
        assert row[0] == row["name"] == row.name == "Alice"
        assert row[1] == row["age"] == row.age == 34
        with pytest.raises(KeyError):
            row["salary"]
        with pytest.raises(AttributeError):
            row.salary

    def test_description_and_rowcount(self):
        db = build_social_db()
        cur = db.cursor()
        cur.execute("select name, age from table People")
        assert [d[0] for d in cur.description] == ["name", "age"]
        assert "integer" in cur.description[1][1]
        assert cur.rowcount == 6

    def test_cursor_without_table_result(self):
        db = build_social_db()
        cur = db.cursor()
        cur.execute("create table Extra(i integer)")
        assert cur.description is None
        assert cur.rowcount == -1
        assert cur.fetchall() == []

    def test_unexecuted_cursor_raises(self):
        db = build_social_db()
        cur = db.cursor()
        with pytest.raises(ExecutionError, match="no query has been executed"):
            cur.fetchone()

    def test_batched_production_matches_bulk(self):
        db = build_social_db()
        bulk = db.query("select name from table People")
        cur = db.cursor(batch_size=1)
        cur.execute("select name from table People")
        assert [r[0] for r in cur] == [r[0] for r in bulk.iter_rows()]


class TestPreparedStatement:
    def test_prepare_once_execute_many(self):
        db = build_social_db()
        ps = db.prepare(PARAM_Q)
        assert ps.param_names == ("MinAge",)
        assert ps.ir_size > 0
        over30 = ps.execute({"MinAge": 30})[-1].table
        over40 = ps.execute({"MinAge": 40})[-1].table
        assert sorted(r[0] for r in over30.iter_rows()) == [
            "Alice", "Carol", "Eve",
        ]
        assert sorted(r[0] for r in over40.iter_rows()) == ["Carol", "Eve"]

    def test_prepared_equals_one_shot(self):
        db = build_social_db()
        ps = db.prepare(PARAM_Q)
        for age in (0, 25, 34, 99):
            prepared = ps.execute({"MinAge": age})[-1].table
            oneshot = db.query(PARAM_Q, params={"MinAge": age})
            assert [tuple(r) for r in prepared.iter_rows()] == [
                tuple(r) for r in oneshot.iter_rows()
            ]

    def test_missing_params_rejected_before_execution(self):
        db = build_social_db()
        ps = db.prepare(PARAM_Q)
        with pytest.raises(TypeCheckError, match="missing parameters: MinAge"):
            ps.execute({})

    def test_prepare_typechecks_statically(self):
        db = build_social_db()
        # unknown column fails at prepare time, not execute time
        with pytest.raises(TypeCheckError):
            db.prepare("select salary from table People where age > %A%")

    def test_prepare_records_catalog_epoch(self):
        db = build_social_db()
        before = db.catalog.epoch
        ps = db.prepare(PEOPLE_Q)
        assert ps.epoch == before
        db.execute("create table Later(i integer)")
        assert db.catalog.epoch > ps.epoch
        # still executable: values are typechecked per execution
        assert ps.execute()[-1].table.num_rows == 3

    def test_prepared_cursor(self):
        db = build_social_db()
        ps = db.prepare(PARAM_Q)
        with ps.cursor({"MinAge": 30}, batch_size=2) as cur:
            assert sorted(r.name for r in cur) == ["Alice", "Carol", "Eve"]

    def test_prepare_over_ir_transport(self):
        s = _social_server()
        conn = s.connect()
        ps = conn.prepare(PARAM_Q)
        t = ps.execute({"MinAge": 30})[-1].table
        assert t.num_rows == 3

    def test_prepared_write_requires_writer_role(self):
        s = _social_server()
        s.create_user("admin", "ro", "reader")
        conn = connect(s, user="ro")
        with pytest.raises(AccessError, match="lacks 'writer' rights"):
            conn.prepare("create table Nope(i integer)")
        # pure reads are fine for a reader
        conn.prepare(PEOPLE_Q).execute()


class TestPlanCache:
    def test_cache_hit_marks_profile(self):
        db = build_social_db()
        cold = db.execute(PEOPLE_Q)[0]
        warm = db.execute(PEOPLE_Q)[0]
        assert cold.profile.cache_hit is False
        assert warm.profile.cache_hit is True
        assert "cache: hit" in warm.profile.render()
        stage_names = [s for s, _ in warm.profile.stages]
        assert stage_names[0] == "cache"

    def test_cache_hit_same_rows(self):
        db = build_social_db()
        a = db.query(PEOPLE_Q)
        b = db.query(PEOPLE_Q)
        assert [tuple(r) for r in a.iter_rows()] == [
            tuple(r) for r in b.iter_rows()
        ]

    def test_metrics_count_hits_and_misses(self):
        db = build_social_db()
        m0 = db.metrics.snapshot().get("graql_plan_cache_hits_total", 0)
        db.execute(PEOPLE_Q)
        db.execute(PEOPLE_Q)
        db.execute(PEOPLE_Q)
        snap = db.metrics.snapshot()
        assert snap["graql_plan_cache_hits_total"] == m0 + 2
        assert snap["graql_statements_cached_total"] >= 2

    def test_whitespace_insensitive_key(self):
        db = build_social_db()
        db.execute(PEOPLE_Q)
        r = db.execute(
            "select   name\n from table People\t where age > 30"
        )[0]
        assert r.profile.cache_hit is True

    def test_params_differentiate_entries(self):
        db = build_social_db()
        db.execute(PARAM_Q, params={"MinAge": 30})
        r = db.execute(PARAM_Q, params={"MinAge": 40})[0]
        assert r.profile.cache_hit is False
        r2 = db.execute(PARAM_Q, params={"MinAge": 40})[0]
        assert r2.profile.cache_hit is True

    def test_ddl_invalidates(self):
        db = build_social_db()
        db.execute(PEOPLE_Q)
        assert len(db.server.serving.cache) == 1
        db.execute("create table Bump(i integer)")
        assert len(db.server.serving.cache) == 0
        r = db.execute(PEOPLE_Q)[0]
        assert r.profile.cache_hit is False

    def test_ingest_invalidates_and_results_are_fresh(self):
        db = build_social_db()
        before = db.query("select name from table People where age > 50")
        assert before.num_rows == 1
        db.ingest_rows("People", [("p7", "Grace", "US", 70, 1.0, 735600)])
        after = db.query("select name from table People where age > 50")
        assert after.num_rows == 2

    def test_writes_are_never_cached(self):
        db = build_social_db()
        db.execute(GRAPH_Q)
        assert len(db.server.serving.cache) == 0

    def test_explain_analyze_shows_cache_hit(self):
        db = build_social_db()
        db.execute(PEOPLE_Q)
        text = db.explain(PEOPLE_Q, mode="analyze")
        assert "cache: hit" in text

    def test_ir_transport_cache_hit_skips_compile(self):
        s = _social_server()
        s.submit("admin", PEOPLE_Q)
        warm = s.submit("admin", PEOPLE_Q)[0]
        assert warm.profile.cache_hit is True
        stage_names = [n for n, _ in warm.profile.stages]
        assert "compile_ir" not in stage_names


class TestServerConcurrencyControls:
    def test_server_busy_on_saturated_admission(self):
        s = _social_server()
        # one slot total: a held ticket makes the next submit bounce
        s.serving.admission.max_in_flight = 1
        ticket = s.serving.admission.admit("x")
        with pytest.raises(ServerBusy):
            s.submit("admin", PEOPLE_Q)
        s.serving.admission.release(ticket)
        assert s.submit("admin", PEOPLE_Q)[0].table.num_rows == 3

    def test_submit_async_returns_future(self):
        s = _social_server()
        fut = s.submit_async("admin", PEOPLE_Q)
        results = fut.result(timeout=30)
        assert results[0].table.num_rows == 3
        s.serving.close()

    def test_cache_hit_cannot_bypass_access_control(self):
        s = _social_server()
        s.submit("admin", PEOPLE_Q)  # now cached
        with pytest.raises(AccessError, match="unknown user"):
            s.submit("ghost", PEOPLE_Q)

    def test_serving_opts_are_plumbed(self):
        s = Server(serving_opts={"max_workers": 2, "max_queue": 3,
                                 "per_user_limit": 2, "cache_capacity": 7})
        assert s.serving.max_workers == 2
        assert s.serving.admission.max_in_flight == 5
        assert s.serving.admission.per_user_limit == 2
        assert s.serving.cache.capacity == 7


class TestStatementKind:
    def test_kinds_are_stable_enum_members(self):
        assert StatementKind.TABLE.value == "table"
        assert StatementKind.SUBGRAPH.value == "subgraph"
        assert StatementKind.DDL.value == "ddl"
        assert StatementKind.INGEST.value == "ingest"

    def test_string_comparison_still_works(self):
        db = build_social_db()
        r = db.execute(PEOPLE_Q)[0]
        assert r.kind == "table"
        assert r.kind == StatementKind.TABLE
        assert f"{r.kind}" == "table"

    def test_is_write_property(self):
        assert StatementKind.DDL.is_write
        assert StatementKind.INGEST.is_write
        assert not StatementKind.TABLE.is_write
        assert not StatementKind.SUBGRAPH.is_write

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StatementKind("spreadsheet")
