"""Admission control: bounded in-flight work, per-user limits, metrics."""

from __future__ import annotations

import pytest

from repro.errors import ServerBusy
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController


class TestAdmission:
    def test_admit_release_roundtrip(self):
        ac = AdmissionController(max_in_flight=2)
        t1 = ac.admit("u")
        t2 = ac.admit("u")
        assert ac.in_flight == 2
        ac.release(t1)
        ac.release(t2)
        assert ac.in_flight == 0

    def test_queue_full_rejection(self):
        ac = AdmissionController(max_in_flight=1)
        ticket = ac.admit("u")
        with pytest.raises(ServerBusy) as exc:
            ac.admit("v")
        assert exc.value.reason == "queue_full"
        ac.release(ticket)
        ac.release(ac.admit("v"))  # capacity freed

    def test_per_user_limit(self):
        ac = AdmissionController(max_in_flight=10, per_user_limit=2)
        t1, t2 = ac.admit("u"), ac.admit("u")
        with pytest.raises(ServerBusy) as exc:
            ac.admit("u")
        assert exc.value.reason == "user_limit"
        # a different user is unaffected
        t3 = ac.admit("v")
        ac.release(t1)
        ac.release(ac.admit("u"))  # back under the limit
        for t in (t2, t3):
            ac.release(t)

    def test_release_is_idempotent(self):
        ac = AdmissionController(max_in_flight=2)
        t = ac.admit("u")
        ac.release(t)
        ac.release(t)
        assert ac.in_flight == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)

    def test_metrics_gauge_and_rejection_counters(self):
        m = MetricsRegistry()
        ac = AdmissionController(max_in_flight=1, per_user_limit=1, metrics=m)
        t = ac.admit("u")
        assert m.value("graql_inflight_submissions") == 1
        with pytest.raises(ServerBusy):
            ac.admit("u")  # in_flight at cap -> queue_full fires first
        assert m.value("graql_admission_rejections_queue_full_total") == 1
        ac.release(t)
        assert m.value("graql_inflight_submissions") == 0
        t = ac.admit("u")
        ac2_blocked = AdmissionController(
            max_in_flight=5, per_user_limit=1, metrics=m
        )
        t2 = ac2_blocked.admit("u")
        with pytest.raises(ServerBusy):
            ac2_blocked.admit("u")
        assert m.value("graql_admission_rejections_user_limit_total") == 1
        ac.release(t)
        ac2_blocked.release(t2)
