"""PlanCache: canonical keys, LRU behavior, epoch invalidation."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import PlanCache, canonical_script, params_signature


class TestCanonicalScript:
    def test_whitespace_collapses(self):
        a = "select  name\n  from table People\twhere age > 30"
        b = "select name from table People where age > 30"
        assert canonical_script(a) == canonical_script(b)

    def test_leading_trailing_stripped(self):
        assert canonical_script("  select 1  ") == canonical_script("select 1")

    def test_quoted_strings_kept_verbatim(self):
        a = "select * from graph P (name = 'two  spaces')"
        b = "select * from graph P (name = 'two spaces')"
        assert canonical_script(a) != canonical_script(b)
        # whitespace outside the literal still collapses
        c = "select  *  from graph P (name = 'two  spaces')"
        assert canonical_script(a) == canonical_script(c)

    def test_different_scripts_stay_different(self):
        assert canonical_script("select a from table T") != canonical_script(
            "select b from table T"
        )


class TestParamsSignature:
    def test_order_insensitive(self):
        assert params_signature({"a": 1, "b": 2}) == params_signature(
            {"b": 2, "a": 1}
        )

    def test_values_matter(self):
        assert params_signature({"a": 1}) != params_signature({"a": 2})

    def test_empty_and_none_equal(self):
        assert params_signature(None) == params_signature({}) == ()


class TestPlanCache:
    def test_store_lookup_roundtrip(self):
        cache = PlanCache(capacity=4)
        key = cache.key("select 1", None, 0)
        assert cache.lookup(key) is None
        cache.store(key, ["resolution"])
        entry = cache.lookup(key)
        assert entry is not None
        assert entry.checked == ["resolution"]
        assert entry.epoch == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_epoch_is_part_of_the_key(self):
        cache = PlanCache(capacity=4)
        cache.store(cache.key("select 1", None, 0), ["old"])
        assert cache.lookup(cache.key("select 1", None, 1)) is None

    def test_params_are_part_of_the_key(self):
        cache = PlanCache(capacity=4)
        cache.store(cache.key("q", {"a": 1}, 0), ["one"])
        assert cache.lookup(cache.key("q", {"a": 2}, 0)) is None

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        k1, k2, k3 = (cache.key(f"q{i}", None, 0) for i in range(3))
        cache.store(k1, ["1"])
        cache.store(k2, ["2"])
        cache.lookup(k1)  # refresh k1; k2 becomes LRU
        cache.store(k3, ["3"])
        assert cache.lookup(k2) is None
        assert cache.lookup(k1) is not None
        assert cache.lookup(k3) is not None
        assert len(cache) == 2

    def test_invalidate_clears_everything(self):
        cache = PlanCache(capacity=4)
        for i in range(3):
            cache.store(cache.key(f"q{i}", None, 0), [i])
        cache.invalidate()
        assert len(cache) == 0

    def test_drop_stale_by_epoch(self):
        cache = PlanCache(capacity=8)
        cache.store(cache.key("a", None, 0), ["a"])
        cache.store(cache.key("b", None, 1), ["b"])
        assert cache.drop_stale(current_epoch=1) == 1
        assert cache.lookup(cache.key("b", None, 1)) is not None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_hit_miss_metrics(self):
        m = MetricsRegistry()
        cache = PlanCache(capacity=4, metrics=m)
        key = cache.key("q", None, 0)
        cache.lookup(key)
        cache.store(key, ["r"])
        cache.lookup(key)
        assert m.value("graql_plan_cache_misses_total") == 1
        assert m.value("graql_plan_cache_hits_total") == 1


class TestIndexDdlInvalidation:
    """Index DDL is a catalog write: cached plans chosen before an index
    existed (or before it was dropped) must not survive it."""

    # no ``into`` clause: pure reads are the cacheable statements
    Q = (
        "select y.id from graph Person (country = 'US') --follows--> "
        "def y: Person ( )"
    )

    def test_create_index_invalidates_and_replans(self):
        from repro.obs import Hints, QueryOptions
        from tests.conftest import build_social_db

        db = build_social_db()
        db.execute(self.Q)
        assert len(db.server.serving.cache) == 1
        db.execute("create index by_country on Person(country)")
        assert len(db.server.serving.cache) == 0
        r = db.execute(self.Q)[0]
        assert r.profile.cache_hit is False
        # the new index is visible to the post-invalidation plan
        r2 = db.execute(
            self.Q,
            options=QueryOptions(hints=Hints(use_index=("by_country",))),
        )[0]
        assert r2.profile.atoms[0].access == "index-seek(by_country)"

    def test_drop_index_invalidates(self):
        from tests.conftest import build_social_db

        db = build_social_db()
        db.execute("create index by_country on Person(country)")
        db.execute(self.Q)
        assert len(db.server.serving.cache) == 1
        db.execute("drop index by_country")
        assert len(db.server.serving.cache) == 0
        r = db.execute(self.Q)[0]
        assert r.profile.cache_hit is False
        assert r.profile.atoms[0].access == "scan"

    def test_index_ddl_bumps_epoch(self):
        from tests.conftest import build_social_db

        db = build_social_db()
        e0 = db.catalog.epoch
        db.execute("create index by_age on Person(age)")
        assert db.catalog.epoch > e0
        db.execute("drop index by_age")
        assert db.catalog.epoch > e0 + 1
