"""RWLock: shared readers, exclusive writers, writer preference,
reentrancy rejection, and exception-safety of the guard blocks."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.locks import RWLock


def probe_read(lock: RWLock, timeout: float = 0.05) -> bool:
    """Try a read acquire from a *separate* thread (the lock rejects
    same-thread reentrant probes by design)."""
    out: dict[str, bool] = {}

    def attempt() -> None:
        got = lock.acquire_read(timeout=timeout)
        out["got"] = got
        if got:
            lock.release_read()

    t = threading.Thread(target=attempt)
    t.start()
    t.join(timeout=5)
    return out["got"]


def probe_write(lock: RWLock, timeout: float = 0.05) -> bool:
    out: dict[str, bool] = {}

    def attempt() -> None:
        got = lock.acquire_write(timeout=timeout)
        out["got"] = got
        if got:
            lock.release_write()

    t = threading.Thread(target=attempt)
    t.start()
    t.join(timeout=5)
    return out["got"]


class TestReadSide:
    def test_many_concurrent_readers(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(4)

        def reader():
            with lock.read_locked():
                barrier.wait(timeout=5)  # all 4 hold the read side at once
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 4

    def test_acquire_read_timeout_against_writer(self):
        lock = RWLock()
        assert lock.acquire_write()
        assert probe_read(lock) is False
        lock.release_write()
        assert probe_read(lock) is True

    def test_timed_out_read_leaves_no_hold(self):
        # a failed acquire must not register the thread as a holder:
        # the same thread retries successfully after the writer leaves
        lock = RWLock()
        assert lock.acquire_write()
        results: list[bool] = []

        def reader():
            results.append(lock.acquire_read(timeout=0.05))  # times out
            release.wait(timeout=5)
            results.append(lock.acquire_read(timeout=5))  # must not raise
            lock.release_read()

        release = threading.Event()
        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.1)
        lock.release_write()
        release.set()
        t.join(timeout=5)
        assert results == [False, True]


class TestWriteSide:
    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        assert lock.acquire_write()
        assert probe_write(lock) is False
        assert probe_read(lock) is False
        lock.release_write()
        assert probe_write(lock) is True

    def test_writer_waits_for_readers_to_drain(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not got_write.is_set()
        lock.release_read()
        assert got_write.wait(timeout=5)
        t.join(timeout=5)

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            with lock.write_locked():
                pass
            writer_done.set()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=5)
        time.sleep(0.05)  # let the writer reach wait_for and register
        # a new reader must park behind the waiting writer
        assert probe_read(lock) is False
        lock.release_read()
        assert writer_done.wait(timeout=5)
        t.join(timeout=5)
        # after the writer finishes, readers get in again
        assert probe_read(lock, timeout=1) is True

    def test_interleaved_writers_count_correctly(self):
        lock = RWLock()
        counter = {"n": 0}

        def bump():
            for _ in range(200):
                with lock.write_locked():
                    n = counter["n"]
                    counter["n"] = n + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert counter["n"] == 800

    def test_writer_starvation_bound(self):
        """Writer preference: a writer waiting behind a steady stream of
        short readers gets the lock promptly — new readers queue behind
        it instead of extending the read phase forever."""
        lock = RWLock()
        stop = threading.Event()
        writer_acquired = threading.Event()

        def churn_reader():
            while not stop.is_set():
                got = lock.acquire_read(timeout=0.2)
                if got:
                    time.sleep(0.001)
                    lock.release_read()

        readers = [threading.Thread(target=churn_reader) for _ in range(4)]
        for t in readers:
            t.start()
        time.sleep(0.05)  # readers are churning

        t0 = time.monotonic()
        assert lock.acquire_write(timeout=5), "writer starved by readers"
        waited = time.monotonic() - t0
        writer_acquired.set()
        lock.release_write()
        stop.set()
        for t in readers:
            t.join(timeout=5)
        # preference means the wait is bounded by the in-flight readers
        # draining, not by the arrival rate; 1s is orders of magnitude
        # above the ~1ms read holds
        assert waited < 1.0, f"writer waited {waited:.3f}s under churn"


class TestReentrancyRejection:
    def test_read_then_read_same_thread_raises(self):
        lock = RWLock()
        assert lock.acquire_read()
        with pytest.raises(RuntimeError, match="reentrant"):
            lock.acquire_read(timeout=0.05)
        lock.release_read()
        # after releasing, the same thread may acquire again
        assert lock.acquire_read()
        lock.release_read()

    def test_write_then_write_same_thread_raises(self):
        lock = RWLock()
        assert lock.acquire_write()
        with pytest.raises(RuntimeError, match="write side"):
            lock.acquire_write(timeout=0.05)
        lock.release_write()
        assert lock.acquire_write()
        lock.release_write()

    def test_read_to_write_upgrade_raises(self):
        lock = RWLock()
        assert lock.acquire_read()
        with pytest.raises(RuntimeError, match="read hold"):
            lock.acquire_write(timeout=0.05)
        lock.release_read()

    def test_write_then_read_same_thread_raises(self):
        lock = RWLock()
        assert lock.acquire_write()
        with pytest.raises(RuntimeError, match="write side"):
            lock.acquire_read(timeout=0.05)
        lock.release_write()

    def test_context_manager_nesting_raises(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="reentrant"):
                with lock.write_locked():
                    pass  # pragma: no cover
        # the rejected attempt must not have broken the lock
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_rejection_does_not_affect_other_threads(self):
        lock = RWLock()
        assert lock.acquire_read()
        with pytest.raises(RuntimeError):
            lock.acquire_read()
        # another thread still shares the read side normally
        assert probe_read(lock) is True
        lock.release_read()


class TestExceptionSafety:
    def test_read_lock_released_on_exception(self):
        lock = RWLock()
        with pytest.raises(ValueError):
            with lock.read_locked():
                raise ValueError("boom")
        # the hold is gone: a writer gets in immediately
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_write_lock_released_on_exception(self):
        lock = RWLock()
        with pytest.raises(ValueError):
            with lock.write_locked():
                raise ValueError("boom")
        assert lock.acquire_write(timeout=1)
        lock.release_write()
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_same_thread_can_reacquire_after_exception(self):
        # the holder bookkeeping must be rolled back with the hold,
        # otherwise the thread would be spuriously rejected forever
        lock = RWLock()
        for _ in range(3):
            with pytest.raises(ValueError):
                with lock.write_locked():
                    raise ValueError("boom")
            with lock.read_locked():
                pass
