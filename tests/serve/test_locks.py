"""RWLock: shared readers, exclusive writers, writer preference."""

from __future__ import annotations

import threading
import time

from repro.serve.locks import RWLock


class TestReadSide:
    def test_many_concurrent_readers(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(4)

        def reader():
            with lock.read_locked():
                barrier.wait(timeout=5)  # all 4 hold the read side at once
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 4

    def test_acquire_read_timeout_against_writer(self):
        lock = RWLock()
        assert lock.acquire_write()
        assert lock.acquire_read(timeout=0.05) is False
        lock.release_write()
        assert lock.acquire_read(timeout=0.05) is True
        lock.release_read()


class TestWriteSide:
    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        assert lock.acquire_write()
        assert lock.acquire_write(timeout=0.05) is False
        assert lock.acquire_read(timeout=0.05) is False
        lock.release_write()
        assert lock.acquire_write(timeout=0.05) is True
        lock.release_write()

    def test_writer_waits_for_readers_to_drain(self):
        lock = RWLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not got_write.is_set()
        lock.release_read()
        assert got_write.wait(timeout=5)
        t.join(timeout=5)

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()

        def writer():
            writer_started.set()
            with lock.write_locked():
                pass
            writer_done.set()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=5)
        time.sleep(0.05)  # let the writer reach wait_for and register
        # a new reader must park behind the waiting writer
        assert lock.acquire_read(timeout=0.05) is False
        lock.release_read()
        assert writer_done.wait(timeout=5)
        t.join(timeout=5)
        # after the writer finishes, readers get in again
        assert lock.acquire_read(timeout=1) is True
        lock.release_read()

    def test_interleaved_writers_count_correctly(self):
        lock = RWLock()
        counter = {"n": 0}

        def bump():
            for _ in range(200):
                with lock.write_locked():
                    n = counter["n"]
                    counter["n"] = n + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert counter["n"] == 800
