"""Regression tests for the ServingEngine close path.

Both behaviors here were found by ``graql devcheck`` against the
engine's own source:

* GDL034 — the ``pool`` property lacked a ``_check_open`` guard, so an
  asynchronous submission racing ``close()`` could lazily recreate the
  executor *after* close drained it, leaving a zombie pool of
  non-daemon workers that outlives the engine.
* GDL010 — ``close()`` called ``pool.shutdown(wait=True)`` while
  holding ``_pool_lock``, blocking every concurrent ``pool`` access for
  the full drain.  It now swaps the pool out under the lock and drains
  outside it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ClosedError
from repro.obs.metrics import MetricsRegistry
from repro.serve.engine import ServingEngine


def make_engine(**kw) -> ServingEngine:
    return ServingEngine(None, None, MetricsRegistry(), **kw)


class TestPoolGuard:
    def test_pool_raises_closed_error_after_close(self):
        eng = make_engine()
        eng.pool  # lazily created while open
        eng.close()
        with pytest.raises(ClosedError):
            eng.pool

    def test_close_before_first_use_still_guards(self):
        eng = make_engine()
        eng.close()
        with pytest.raises(ClosedError):
            eng.pool
        assert eng._pool is None  # never created, never leaked

    def test_submit_work_after_close_rejected(self):
        eng = make_engine()
        eng.close()
        with pytest.raises(ClosedError):
            eng.submit_work("admin", False, lambda: 1)

    def test_close_is_idempotent(self):
        eng = make_engine()
        eng.pool
        eng.close()
        eng.close()  # second drain must be a no-op, not an error


class TestCloseDoesNotHoldPoolLock:
    def test_pool_lock_free_while_draining(self):
        """While close() waits for a slow job, _pool_lock must be
        acquirable — the drain happens outside the lock."""
        eng = make_engine(max_workers=1)
        release = threading.Event()
        started = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=5)

        fut = eng.pool.submit(slow)
        assert started.wait(timeout=5)

        closer = threading.Thread(target=eng.close, daemon=True)
        closer.start()
        # give close() time to reach shutdown(wait=True)
        deadline = time.monotonic() + 2
        while eng._pool is not None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert eng._pool is None, "close() never swapped the pool out"

        acquired = eng._pool_lock.acquire(timeout=1)
        assert acquired, "_pool_lock held across the drain"
        eng._pool_lock.release()

        release.set()
        closer.join(timeout=5)
        assert not closer.is_alive()
        assert fut.done()

    def test_close_waits_for_inflight_work(self):
        eng = make_engine(max_workers=1)
        done = []
        fut = eng.pool.submit(lambda: done.append(time.sleep(0.05)))
        eng.close()
        assert fut.done() and done, "close() returned before the drain"
