"""Message codecs: the wire-error taxonomy, options, and results.

The acceptance bar for errors: every server-side exception crosses the
wire as a stable code and re-raises client-side as the *same*
:mod:`repro.errors` class with its attributes intact — never a bare
``RuntimeError``.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ExecutionError,
    GraQLError,
    IRError,
    ParseError,
    ProtocolError,
    QueryTimeout,
    ServerBusy,
    TypeCheckError,
)
from repro.net.protocol import (
    ERROR_CLASSES,
    decode_error,
    decode_options,
    encode_error,
    encode_options,
    error_code,
)
from repro.obs.options import QueryOptions


class TestErrorCodec:
    @pytest.mark.parametrize("code,cls", sorted(ERROR_CLASSES.items()))
    def test_every_registered_class_round_trips(self, code, cls):
        exc = cls.__new__(cls)
        Exception.__init__(exc, f"boom from {code}")
        payload = encode_error(exc)
        assert payload["code"] == code
        back = decode_error(payload)
        assert type(back) is cls
        assert str(back) == f"boom from {code}"

    def test_codes_are_stable(self):
        # the wire contract (docs/NETWORK.md): renaming one of these is
        # a protocol break, so pin the full mapping
        assert {code: cls.__name__ for code, cls in ERROR_CLASSES.items()} == {
            "graql": "GraQLError",
            "lex": "LexError",
            "parse": "ParseError",
            "typecheck": "TypeCheckError",
            "catalog": "CatalogError",
            "ingest": "IngestError",
            "execution": "ExecutionError",
            "closed": "ClosedError",
            "plan": "PlanError",
            "ir": "IRError",
            "access": "AccessError",
            "wal": "WalError",
            "busy": "ServerBusy",
            "backend": "BackendError",
            "worker_failed": "WorkerFailed",
            "comm": "CommFailure",
            "timeout": "QueryTimeout",
            "degraded": "DegradedMode",
            "protocol": "ProtocolError",
            "not_primary": "NotPrimary",
            "replica_stale": "ReplicaStale",
            "promotion": "PromotionError",
        }

    def test_parse_error_keeps_position_without_doubling_suffix(self):
        exc = ParseError("expected (, got IDENT", line=3, column=17)
        original = str(exc)  # already carries "(line 3, column 17)"
        back = decode_error(encode_error(exc))
        assert type(back) is ParseError
        assert str(back) == original
        assert str(back).count("line 3, column 17") == 1
        assert back.line == 3 and back.column == 17

    def test_server_busy_keeps_reason(self):
        back = decode_error(encode_error(ServerBusy("server is at capacity",
                                                    reason="queue")))
        assert type(back) is ServerBusy
        assert back.reason == "queue"

    def test_ir_error_keeps_offset_and_instruction(self):
        exc = IRError("bad opcode", offset=42, instruction="SCAN")
        back = decode_error(encode_error(exc))
        assert back.offset == 42
        assert back.instruction == "SCAN"

    def test_timeout_crosses_as_query_timeout(self):
        back = decode_error(encode_error(QueryTimeout("query exceeded 2.0s")))
        assert type(back) is QueryTimeout

    def test_non_graql_exception_becomes_typed_execution_error(self):
        back = decode_error(encode_error(ZeroDivisionError("division by zero")))
        assert type(back) is ExecutionError
        assert "internal server error" in str(back)
        assert "ZeroDivisionError" in str(back)

    def test_unknown_code_degrades_to_base_class_not_a_crash(self):
        back = decode_error({"code": "from_the_future", "message": "hi"})
        assert type(back) is GraQLError
        assert str(back) == "hi"

    def test_span_context_is_attached(self):
        payload = encode_error(ExecutionError("x"), span={"conn": 3, "req": 9})
        back = decode_error(payload)
        assert back.remote_span == {"conn": 3, "req": 9}

    def test_error_code_uses_most_specific_class(self):
        class Custom(ServerBusy):
            pass

        assert error_code(Custom("x")) == "busy"


class TestOptionsCodec:
    def test_all_defaults_encode_to_none(self):
        assert encode_options(None) is None
        assert encode_options(QueryOptions()) is None

    def test_round_trip_non_defaults(self):
        opts = QueryOptions(direction="backward", trace=True, profile=False)
        back = decode_options(encode_options(opts))
        assert back == opts

    def test_unknown_option_rejected(self):
        with pytest.raises(ProtocolError, match="unknown query option"):
            decode_options({"hyperdrive": True})

    def test_invalid_value_rejected_as_protocol_error(self):
        with pytest.raises(ProtocolError, match="invalid query options"):
            decode_options({"direction": "sideways"})
