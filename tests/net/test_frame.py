"""Wire framing: round-trip fidelity and corruption rejection.

The protocol's promise mirrors the WAL's: a frame either decodes to
exactly what was sent, or raises :class:`~repro.errors.ProtocolError` —
truncated or bit-flipped bytes are *rejected*, never misparsed into a
different message.
"""

from __future__ import annotations

import json
import struct
import zlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import ProtocolError
from repro.net.frame import (
    FRAME_TYPES,
    FT_BATCH,
    FT_EXECUTE,
    FT_HELLO,
    HEADER_LEN,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
)

# JSON-native payloads as they appear on the wire (no NaN: canonical
# JSON via json.dumps round-trips it, but equality comparison doesn't)
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)
payloads = st.dictionaries(st.text(max_size=16), json_values, max_size=6)
frame_types = st.sampled_from(sorted(FRAME_TYPES))


@given(ftype=frame_types, payload=payloads)
@settings(max_examples=80, deadline=None)
def test_round_trip(ftype, payload):
    blob = encode_frame(ftype, payload)
    got_type, got_payload, consumed = decode_frame(blob)
    assert got_type == ftype
    assert got_payload == json.loads(json.dumps(payload))
    assert consumed == len(blob)


@given(
    ftype=frame_types,
    payload=payloads,
    cut=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=80, deadline=None)
def test_any_truncation_is_rejected(ftype, payload, cut):
    blob = encode_frame(ftype, payload)
    cut = min(cut, len(blob) - 1)
    with pytest.raises(ProtocolError):
        decode_frame(blob[:cut])


@given(
    ftype=frame_types,
    payload=payloads,
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_any_single_bit_flip_is_rejected(ftype, payload, data):
    """CRC32 over type byte + payload catches a flip *anywhere*: in the
    type, the length (misaligned checksum window), the checksum itself,
    or the body."""
    blob = bytearray(encode_frame(ftype, payload))
    bit = data.draw(st.integers(min_value=0, max_value=len(blob) * 8 - 1))
    blob[bit // 8] ^= 1 << (bit % 8)
    with pytest.raises(ProtocolError):
        decode_frame(bytes(blob))


def test_every_bit_flip_of_a_small_frame_exhaustively():
    blob = encode_frame(FT_HELLO, {"proto": 1, "user": "admin"})
    for bit in range(len(blob) * 8):
        mutated = bytearray(blob)
        mutated[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(mutated))


@given(frames=st.lists(st.tuples(frame_types, payloads), min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_concatenated_frames_decode_in_sequence(frames):
    blob = b"".join(encode_frame(t, p) for t, p in frames)
    offset = 0
    decoded = []
    while offset < len(blob):
        t, p, offset = decode_frame(blob, offset)
        decoded.append((t, p))
    assert decoded == [
        (t, json.loads(json.dumps(p))) for t, p in frames
    ]


def test_unknown_frame_type_rejected_on_both_sides():
    with pytest.raises(ProtocolError, match="unknown frame type"):
        encode_frame(99, {})
    body = b"{}"
    crc = zlib.crc32(bytes((99,)) + body)
    blob = struct.pack("<BII", 99, len(body), crc) + body
    with pytest.raises(ProtocolError, match="unknown frame type"):
        decode_frame(blob)


def test_oversized_length_rejected_without_allocation():
    blob = struct.pack("<BII", FT_BATCH, MAX_FRAME_BYTES + 1, 0)
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_frame(blob)


def test_non_object_payload_rejected():
    body = b"[1,2,3]"
    crc = zlib.crc32(bytes((FT_EXECUTE,)) + body)
    blob = struct.pack("<BII", FT_EXECUTE, len(body), crc) + body
    with pytest.raises(ProtocolError, match="must be an object"):
        decode_frame(blob)


def test_undecodable_payload_rejected():
    body = b"\xff\xfe not json"
    crc = zlib.crc32(bytes((FT_EXECUTE,)) + body)
    blob = struct.pack("<BII", FT_EXECUTE, len(body), crc) + body
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_frame(blob)


def test_trailing_garbage_after_valid_frame_is_rejected_not_misparsed():
    blob = encode_frame(FT_HELLO, {"proto": 1}) + b"\x00\x01\x02"
    _, _, offset = decode_frame(blob)  # first frame is fine
    with pytest.raises(ProtocolError):
        decode_frame(blob, offset)


def test_header_len_is_type_length_crc():
    assert HEADER_LEN == 1 + 4 + 4
