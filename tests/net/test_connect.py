"""The transport-agnostic ``connect()`` entrypoint (docs/API.md).

One function, three targets, one ``Connection`` ABC back:

* ``connect("graql://host:port")`` dials a TCP server,
* ``connect("/path/to.db")`` opens (recovering) a durable store,
* ``connect(db_or_server)`` wraps the in-process engine.
"""

from __future__ import annotations

import pytest

from repro import Connection, Database, LocalConnection, connect
from repro.errors import ProtocolError
from repro.net import GraqlServer, RemoteConnection
from repro.net.client import parse_url
from tests.conftest import build_social_db

PEOPLE_Q = "select name from table People where age > 30"


def test_connect_database_returns_local_connection():
    conn = connect(build_social_db())
    assert isinstance(conn, LocalConnection)
    assert isinstance(conn, Connection)
    assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3


def test_connect_server_returns_local_connection():
    db = build_social_db()
    conn = connect(db.server, transport="ir")
    assert isinstance(conn, LocalConnection)
    assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3


def test_connect_path_opens_durable_store(tmp_path):
    path = str(tmp_path / "shop.db")
    with connect(path) as conn:
        assert isinstance(conn, LocalConnection)
        conn.execute("create table T(id varchar(4))")
    # closing the connection closed the owned store; reopening recovers
    with connect(path) as conn:
        t = conn.execute("select count(*) as n from table T")[-1].table
        assert [tuple(r) for r in t.iter_rows()] == [(0,)]


def test_connect_url_returns_remote_connection():
    srv = GraqlServer(build_social_db())
    srv.start()
    try:
        with connect(srv.url) as conn:
            assert isinstance(conn, RemoteConnection)
            assert isinstance(conn, Connection)
            assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
    finally:
        srv.shutdown()


def test_all_three_forms_share_the_connection_abc():
    db = build_social_db()
    srv = GraqlServer(db)
    srv.start()
    try:
        conns = [connect(db), connect(db.server), connect(srv.url)]
        for conn in conns:
            assert isinstance(conn, Connection)
            cur = conn.cursor(batch_size=2)
            cur.execute(PEOPLE_Q)
            assert sorted(r.name for r in cur) == ["Alice", "Carol", "Eve"]
            conn.close()
            conn.close()  # idempotent everywhere
    finally:
        srv.shutdown()


def test_connect_none_is_a_type_error():
    with pytest.raises(TypeError):
        connect(None)


def test_connect_rejects_malformed_urls():
    with pytest.raises(ProtocolError, match="host and port"):
        connect("graql://nohost")


def test_connect_refused_port_raises_protocol_error():
    with pytest.raises(ProtocolError, match="cannot connect"):
        # port 1 on loopback: nothing listens there
        connect("graql://127.0.0.1:1", connect_timeout=2.0)


def test_connect_unknown_transport_still_rejected():
    with pytest.raises(ValueError, match="unknown transport"):
        connect(Database(), transport="carrier-pigeon")


def test_connect_kwargs_rejected_for_in_process_targets():
    with pytest.raises(TypeError):
        connect(Database(), connect_timeout=1.0)


def test_parse_url():
    assert parse_url("graql://db.example:7687") == ("db.example", 7687)
    with pytest.raises(ProtocolError, match="not a graql"):
        parse_url("http://db.example:7687")
