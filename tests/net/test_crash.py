"""Crash durability over the network: SIGKILL loses nothing acknowledged.

The acceptance bar from docs/NETWORK.md: a client's statement is
*acknowledged* when its response frame arrives, and by then the
mutation is in the served store's WAL — so SIGKILL-ing ``graql serve``
mid-workload must lose no acknowledged statement.  Verified the hard
way: a real ``graql serve`` subprocess, real sockets, ``kill -9``,
``graql recover --verify``, restart, reconnect.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys

import pytest

from repro import connect
from repro.errors import ClosedError, ProtocolError

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn_server(db_path: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", ":0", "--db", db_path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    m = re.search(r"graql://[\d.]+:\d+", line)
    assert m, f"server did not announce an address: {line!r}"
    return proc, m.group(0)


def _recover_verify(db_path: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "recover", db_path, "--verify"],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


@pytest.mark.slow
def test_sigkill_mid_workload_loses_no_acknowledged_statement(tmp_path):
    db_path = str(tmp_path / "crash.db")
    proc, url = _spawn_server(db_path)
    acked: list[str] = []
    try:
        conn = connect(url)
        for i in range(5):
            conn.execute(f"create table Committed{i}(x integer)")
            acked.append(f"Committed{i}")  # response frame seen = acknowledged
    finally:
        proc.kill()  # SIGKILL: no drain, no atexit, no WAL flush courtesy
        proc.wait(timeout=30)
        proc.stdout.close()

    # the client observes the death as a transport error, never a hang
    with pytest.raises((ProtocolError, ClosedError)):
        conn.execute("select count(*) as n from table Committed0")
    conn.close()  # idempotent even on a poisoned connection

    # recovery verifies clean: exit 0 is the contract
    result = _recover_verify(db_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "verified ok" in result.stdout

    # restart on the same store: every acknowledged statement survived,
    # and remote clients can reconnect and keep working
    proc2, url2 = _spawn_server(db_path)
    try:
        conn2 = connect(url2)
        for name in acked:
            t = conn2.execute(f"select count(*) as n from table {name}")
            assert [tuple(r) for r in t[-1].table.iter_rows()] == [(0,)]
        conn2.execute("create table AfterRestart(x integer)")
        conn2.close()
    finally:
        proc2.send_signal(signal.SIGTERM)
        out, _ = proc2.communicate(timeout=30)
    assert "stopped" in out
    assert _recover_verify(db_path).returncode == 0


@pytest.mark.slow
def test_sigterm_drains_and_exits_zero(tmp_path):
    db_path = str(tmp_path / "drain.db")
    proc, url = _spawn_server(db_path)
    conn = connect(url)
    conn.execute("create table T(x integer)")
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    conn.close()
    assert proc.returncode == 0
    assert "draining" in out and "stopped" in out
    assert _recover_verify(db_path).returncode == 0
