"""End-to-end socket tests: GraqlServer + RemoteConnection.

Everything here runs over a real TCP socket on loopback.  The headline
property is *transport parity*: a ``RemoteConnection`` is
indistinguishable from the in-process connection — same rows, same
``Row`` behavior, same cursor/prepared surface, same exception classes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import DEFAULT_BATCH_ROWS, connect
from repro.errors import (
    AccessError,
    CatalogError,
    ClosedError,
    ExecutionError,
    GraQLError,
    ParseError,
    ProtocolError,
    ServerBusy,
    TypeCheckError,
)
from repro.net import GraqlServer, RemoteConnection
from repro.query.executor import StatementKind
from tests.conftest import build_social_db

PEOPLE_Q = "select name from table People where age > 30"
ALL_Q = "select id, name, country, age, score, joined from table People"
PARAM_Q = "select name from table People where age > %MinAge%"
GRAPH_Q = (
    "select y.id from graph Person (country = 'US') --follows--> "
    "def y: Person ( ) into table GT1"
)


@pytest.fixture
def net():
    """Start servers for a test; every one is shut down afterwards."""
    started = []

    def start(db=None, **kwargs):
        db = db if db is not None else build_social_db()
        srv = GraqlServer(db, **kwargs)
        srv.start()
        started.append(srv)
        return srv

    yield start
    for srv in started:
        srv.shutdown(drain=False, timeout=10.0)


def _rows(table):
    return [tuple(r) for r in table.iter_rows()]


def _settle(srv, deadline=5.0):
    """Wait for every session thread to finish its teardown.

    Session metrics and spans are recorded on the server's session
    thread; after a client closes there is a small window before that
    thread flushes and unregisters.
    """
    t0 = time.monotonic()
    while srv.active_connections and time.monotonic() - t0 < deadline:
        time.sleep(0.005)
    assert srv.active_connections == 0


class TestTransportParity:
    def test_one_shot_rows_identical_across_transports(self, net):
        srv = net()
        remote = connect(srv.url)
        local = connect(srv.database)
        ir = connect(srv.app, transport="ir")
        expected = _rows(srv.database.query(ALL_Q))
        for conn in (remote, local, ir):
            results = conn.execute(ALL_Q)
            assert results[-1].kind == StatementKind.TABLE
            assert _rows(results[-1].table) == expected
        remote.close()

    def test_row_values_round_trip_exactly(self, net):
        """Floats, dates (stored ordinals) and strings cross the wire
        bit-for-bit; Rows are name- and index-addressable either way."""
        srv = net()
        conn = connect(srv.url)
        remote = conn.execute(ALL_Q)[-1].table
        local = srv.database.query(ALL_Q)
        assert _rows(remote) == _rows(local)
        assert remote.schema.names() == local.schema.names()
        row = next(iter(conn.cursor().execute(
            "select name, age from table People where name = 'Alice'"
        )))
        assert row[0] == row["name"] == row.name == "Alice"
        assert row[1] == row["age"] == row.age == 34
        with pytest.raises(KeyError):
            row["salary"]
        conn.close()

    def test_graph_query_parity(self, net):
        srv = net()
        remote_db = srv.database
        local_db = build_social_db()
        conn = connect(srv.url)
        got = conn.execute(GRAPH_Q)[-1].table
        want = local_db.execute(GRAPH_Q)[-1].table
        assert sorted(_rows(got)) == sorted(_rows(want))
        # the write landed in the served database, not a copy
        assert "GT1" in remote_db.catalog.tables
        conn.close()

    def test_ddl_results_and_messages_cross_the_wire(self, net):
        srv = net()
        conn = connect(srv.url)
        results = conn.execute(
            "create table Wired(i integer)\n"
            "select count(*) as n from table Wired"
        )
        assert [r.kind for r in results] == [
            StatementKind.DDL, StatementKind.TABLE,
        ]
        assert "created table Wired" in results[0].message
        assert _rows(results[1].table) == [(0,)]
        # visible to an in-process connection: one shared engine
        assert "Wired" in srv.database.catalog.tables
        conn.close()

    def test_remote_repr_and_session_metadata(self, net):
        srv = net()
        conn = connect(srv.url)
        assert isinstance(conn, RemoteConnection)
        assert srv.url in repr(conn) and "open" in repr(conn)
        assert conn.server_batch_rows == DEFAULT_BATCH_ROWS
        conn.close()
        assert "closed" in repr(conn)


class TestRemoteCursor:
    def test_fetch_surface_matches_local(self, net):
        srv = net()
        conn = connect(srv.url)
        cur = conn.cursor(batch_size=2)
        cur.execute("select name from table People order by name")
        assert cur.rowcount == 6
        assert [d[0] for d in cur.description] == ["name"]
        assert cur.fetchone()["name"] == "Alice"
        assert [r[0] for r in cur.fetchmany(2)] == ["Bob", "Carol"]
        assert [r[0] for r in cur.fetchall()] == ["Dan", "Eve", "Frank"]
        assert cur.fetchone() is None
        conn.close()

    def test_batch_size_one_streams_every_row(self, net):
        srv = net()
        conn = connect(srv.url)
        with conn.cursor(batch_size=1) as cur:
            cur.execute("select name, age from table People")
            assert len(cur.fetchall()) == 6
        conn.close()

    def test_cursor_batch_default_is_the_shared_constant(self, net):
        srv = net()
        conn = connect(srv.url)
        cur = conn.cursor()
        assert cur.arraysize == DEFAULT_BATCH_ROWS
        assert srv.batch_rows == DEFAULT_BATCH_ROWS
        conn.close()

    def test_ddl_cursor_has_no_table(self, net):
        srv = net()
        conn = connect(srv.url)
        cur = conn.cursor()
        cur.execute("create table NoRows(i integer)")
        assert cur.description is None
        assert cur.rowcount == -1
        assert cur.fetchall() == []
        conn.close()

    def test_unexecuted_cursor_raises(self, net):
        srv = net()
        conn = connect(srv.url)
        with pytest.raises(ExecutionError, match="no query has been executed"):
            conn.cursor().fetchone()
        conn.close()

    def test_new_request_buffers_an_unfinished_stream(self, net):
        """An in-flight cursor does not wedge the connection: issuing a
        new request first buffers the pending batches, and the old
        cursor still yields every remaining row."""
        srv = net()
        conn = connect(srv.url)
        cur = conn.cursor(batch_size=1)
        cur.execute("select name from table People order by name")
        first = cur.fetchone()
        n = conn.execute("select count(*) as n from table People")[-1].table
        rest = cur.fetchall()
        assert first["name"] == "Alice"
        assert _rows(n) == [(6,)]
        assert [r[0] for r in rest] == ["Bob", "Carol", "Dan", "Eve", "Frank"]
        conn.close()


class TestRemotePrepared:
    def test_prepared_equals_one_shot_over_the_socket(self, net):
        srv = net()
        conn = connect(srv.url)
        ps = conn.prepare(PARAM_Q)
        assert ps.param_names == ("MinAge",)
        assert ps.ir_size > 0
        for age in (0, 25, 34, 99):
            prepared = ps.execute({"MinAge": age})[-1].table
            oneshot = conn.execute(PARAM_Q, params={"MinAge": age})[-1].table
            inproc = srv.database.query(PARAM_Q, params={"MinAge": age})
            assert _rows(prepared) == _rows(oneshot) == _rows(inproc)
        conn.close()

    def test_prepared_cursor_streams(self, net):
        srv = net()
        conn = connect(srv.url)
        ps = conn.prepare(PARAM_Q)
        with ps.cursor({"MinAge": 30}, batch_size=1) as cur:
            assert sorted(r.name for r in cur) == ["Alice", "Carol", "Eve"]
        conn.close()

    def test_missing_params_rejected_before_any_bytes_move(self, net):
        srv = net()
        conn = connect(srv.url)
        ps = conn.prepare(PARAM_Q)
        sent = conn._fs.bytes_sent
        with pytest.raises(TypeCheckError, match="missing parameters: MinAge"):
            ps.execute({})
        assert conn._fs.bytes_sent == sent
        conn.close()

    def test_prepare_typecheck_error_crosses_typed(self, net):
        srv = net()
        conn = connect(srv.url)
        with pytest.raises(TypeCheckError):
            conn.prepare("select salary from table People where age > %A%")
        conn.close()


class TestWireErrors:
    def test_parse_error_keeps_position_once(self, net):
        srv = net()
        conn = connect(srv.url)
        with pytest.raises(ParseError) as exc_info:
            conn.execute("selekt nope")
        e = exc_info.value
        assert e.line == 1 and e.column == 1
        assert str(e).count("line 1, column 1") == 1
        assert e.remote_span is not None and "req" in e.remote_span
        conn.close()

    def test_catalog_error_crosses_typed(self, net):
        srv = net()
        conn = connect(srv.url)
        with pytest.raises(CatalogError, match="unknown table"):
            conn.execute("select x from table Missing")
        conn.close()

    def test_unknown_user_rejected_at_handshake(self, net):
        srv = net()
        with pytest.raises(AccessError, match="unknown user"):
            connect(srv.url, user="nobody")

    def test_reader_cannot_run_ddl_remotely(self, net):
        srv = net()
        srv.app.create_user("admin", "ro", "reader")
        conn = connect(srv.url, user="ro")
        with pytest.raises(AccessError, match="lacks 'writer' rights"):
            conn.execute("create table Nope(i integer)")
        # the connection survives a rejected statement
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        conn.close()

    def test_closed_connection_raises_closed_error(self, net):
        srv = net()
        conn = connect(srv.url)
        conn.close()
        conn.close()  # idempotent on the remote transport too
        with pytest.raises(ClosedError, match="closed"):
            conn.execute(PEOPLE_Q)
        with pytest.raises(ExecutionError):  # ClosedError is one
            conn.prepare(PEOPLE_Q)

    def test_errors_do_not_poison_the_connection(self, net):
        srv = net()
        conn = connect(srv.url)
        for bad in ("selekt", "select x from table Missing", "select 1 ="):
            with pytest.raises(GraQLError):
                conn.execute(bad)
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        conn.close()


class TestServerRobustness:
    def test_concurrent_clients_mixed_select_and_ddl(self, net):
        """N clients over real sockets: readers hammer a static query,
        writers run DDL; every acknowledged write lands, every read is
        correct, nobody sees a transport error."""
        srv = net()
        errors: list[BaseException] = []
        start = threading.Barrier(6)

        def reader(i):
            try:
                conn = connect(srv.url)
                start.wait(timeout=30)
                for _ in range(10):
                    t = conn.execute(PEOPLE_Q)[-1].table
                    assert sorted(r[0] for r in t.iter_rows()) == [
                        "Alice", "Carol", "Eve",
                    ]
                conn.close()
            except BaseException as e:  # noqa: BLE001 - surfaced below
                errors.append(e)

        def writer(w):
            try:
                conn = connect(srv.url)
                start.wait(timeout=30)
                for i in range(5):
                    conn.execute(f"create table W{w}_{i}(x integer)")
                conn.close()
            except BaseException as e:  # noqa: BLE001
                errors.append(e)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=writer, args=(w,)) for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors[0]
        for w in range(2):
            for i in range(5):
                assert f"W{w}_{i}" in srv.database.catalog.tables

    def test_mid_stream_client_disconnect_leaves_server_healthy(self, net):
        srv = net()
        victim = connect(srv.url)
        cur = victim.cursor(batch_size=1)
        cur.execute("select name from table People")
        assert cur.fetchone() is not None
        victim._abort()  # socket torn down, no goodbye, stream unread
        # the server shrugs it off: a fresh client gets full service
        conn = connect(srv.url)
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        conn.close()
        deadline = time.monotonic() + 5
        while srv.active_connections and time.monotonic() < deadline:
            time.sleep(0.02)
        assert srv.active_connections == 0

    def test_connection_cap_refuses_with_typed_server_busy(self, net):
        srv = net(max_connections=1)
        keeper = connect(srv.url)
        with pytest.raises(ServerBusy) as exc_info:
            connect(srv.url)
        assert exc_info.value.reason == "connections"
        keeper.close()
        deadline = time.monotonic() + 5
        while srv.active_connections and time.monotonic() < deadline:
            time.sleep(0.02)
        # slot freed: the next client is admitted
        conn = connect(srv.url)
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        conn.close()

    def test_admission_overload_crosses_as_server_busy(self, net):
        srv = net()
        admission = srv.app.serving.admission
        admission.max_in_flight = 1
        ticket = admission.admit("hog")
        try:
            conn = connect(srv.url)
            with pytest.raises(ServerBusy):
                conn.execute(PEOPLE_Q)
        finally:
            admission.release(ticket)
        # pressure released: same connection works again
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        conn.close()

    def test_idle_connections_are_reaped(self, net):
        srv = net(idle_timeout=0.3)
        conn = connect(srv.url)
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        deadline = time.monotonic() + 10
        while srv.active_connections and time.monotonic() < deadline:
            time.sleep(0.05)
        assert srv.active_connections == 0
        # the reaped transport heals transparently: the idempotent SELECT
        # reconnects and succeeds instead of poisoning the connection
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        conn.close()
        # reaping is per-connection, not a server shutdown
        fresh = connect(srv.url)
        assert fresh.execute(PEOPLE_Q)[-1].table.num_rows == 3
        fresh.close()

    def test_graceful_drain_then_refuse(self, net):
        srv = net()
        conn = connect(srv.url)
        assert conn.execute(PEOPLE_Q)[-1].table.num_rows == 3
        srv.shutdown(drain=True)
        with pytest.raises((ProtocolError, ClosedError)):
            conn.execute(PEOPLE_Q)
        with pytest.raises(ProtocolError):
            connect(srv.url)
        srv.shutdown()  # idempotent

    def test_requests_are_metered(self, net):
        srv = net()
        conn = connect(srv.url)
        conn.execute(PEOPLE_Q)
        conn.execute(PEOPLE_Q)
        conn.close()
        _settle(srv)
        snap = srv.database.metrics.snapshot()
        assert snap['graql_net_requests_total{kind="execute"}'] == 2
        assert snap["graql_net_connections_total"] == 1
        assert snap["graql_net_rows_streamed_total"] >= 6
        assert snap["graql_net_bytes_sent_total"] > 0
        assert snap["graql_net_bytes_received_total"] > 0

    def test_spans_record_requests(self, net):
        srv = net()
        conn = connect(srv.url)
        conn.execute(PEOPLE_Q)
        with pytest.raises(ParseError):
            conn.execute("selekt")
        conn.close()
        _settle(srv)
        names = [s.name for s in srv.recent_spans]
        assert "net.execute" in names
        failed = [s for s in srv.recent_spans if s.attrs.get("error")]
        assert failed, "the failed request must leave an error span"
