"""Span/Tracer unit tests."""

from repro.obs.trace import Span, Tracer


class TestSpan:
    def test_finish_idempotent(self):
        s = Span("x")
        s.finish()
        end = s.end_s
        s.finish()
        assert s.end_s == end

    def test_duration_positive(self):
        s = Span("x")
        s.finish()
        assert s.duration_ms >= 0.0

    def test_set_attrs(self):
        s = Span("x", {"a": 1})
        s.set(b=2)
        assert s.attrs == {"a": 1, "b": 2}

    def test_to_dict(self):
        s = Span("x", {"a": 1})
        s.finish()
        d = s.to_dict()
        assert d["name"] == "x"
        assert d["attrs"] == {"a": 1}
        assert d["children"] == []
        assert d["duration_ms"] >= 0


class TestTracer:
    def test_nesting(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner", atom=0):
                assert tr.current().name == "inner"
            with tr.span("inner2"):
                pass
        assert tr.current() is None
        assert len(tr.roots) == 1
        outer = tr.roots[0]
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.children[0].attrs == {"atom": 0}

    def test_sibling_roots(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert [r.name for r in tr.roots] == ["a", "b"]

    def test_span_finished_on_exception(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tr.roots[0].end_s is not None
        assert tr.current() is None

    def test_render_indents_children(self):
        tr = Tracer()
        with tr.span("plan"):
            with tr.span("atom 0", direction="forward"):
                pass
        text = tr.render()
        lines = text.splitlines()
        assert lines[0].startswith("plan: ")
        assert lines[1].startswith("  atom 0: ")
        assert "direction=forward" in lines[1]

    def test_to_dicts_tree(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        (d,) = tr.to_dicts()
        assert d["name"] == "a"
        assert d["children"][0]["name"] == "b"
