"""MetricsRegistry unit tests: bucketing, reset semantics, rendering."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_monotonic(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter()
        c.inc(7)
        c.reset()
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 10.0, 99.0, 1000.0):
            h.observe(v)
        # non-cumulative internal counts: <=1, <=10, <=100, +Inf
        assert h.bucket_counts == [2, 2, 1]
        assert h.inf_count == 1
        assert h.count == 6
        assert h.sum == pytest.approx(1115.5)

    def test_cumulative_counts(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 1000.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 2, 3]

    def test_boundary_is_inclusive(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_reset(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.5)
        h.observe(5.0)
        h.reset()
        assert h.bucket_counts == [0]
        assert h.inf_count == 0
        assert h.count == 0
        assert h.sum == 0.0

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "things")
        b = reg.counter("x_total")
        assert a is b

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("q_total", labels={"kind": "a"}).inc()
        reg.counter("q_total", labels={"kind": "b"}).inc(2)
        assert reg.value("q_total", labels={"kind": "a"}) == 1
        assert reg.value("q_total", labels={"kind": "b"}) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"a": "1", "b": "2"}).inc()
        assert reg.value("m", labels={"b": "2", "a": "1"}) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("dual")
        with pytest.raises(ValueError):
            reg.gauge("dual")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", labels={"bad-label": "x"})

    def test_reset_keeps_registrations(self):
        """reset() zeroes values but keeps every series registered —
        the contract per-query deltas rely on."""
        reg = MetricsRegistry()
        reg.counter("a_total", "help a").inc(5)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        reg.reset()
        assert reg.value("a_total") == 0
        h = reg.get_histogram("h_seconds")
        assert h.count == 0 and h.sum == 0.0
        assert reg.names() == ["a_total", "h_seconds"]
        # rendering still shows the zeroed series
        assert "a_total 0" in reg.render_prometheus()

    def test_clear_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.clear()
        assert reg.names() == []
        assert reg.render_prometheus() == ""

    def test_reset_between_queries(self):
        """Database.metrics.reset() between statements yields per-query
        deltas."""
        from tests.conftest import build_social_db

        db = build_social_db()
        db.metrics.reset()
        db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph MR1"
        )
        first = db.metrics.value("graql_statements_total", {"kind": "subgraph"})
        assert first == 1
        db.metrics.reset()
        assert (
            db.metrics.value("graql_statements_total", {"kind": "subgraph"}) == 0
        )
        db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph MR2"
        )
        assert (
            db.metrics.value("graql_statements_total", {"kind": "subgraph"}) == 1
        )

    def test_value_on_histogram_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(ValueError):
            reg.value("h")


class TestPrometheusRendering:
    def test_deterministic_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z_total", "last").inc()
        reg.counter("a_total", "first").inc(3)
        text = reg.render_prometheus()
        assert text.index("a_total") < text.index("z_total")
        assert text == reg.render_prometheus()

    def test_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labels={"kind": "q"}).inc(2)
        text = reg.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="q"} 2' in text
        assert text.endswith("\n")

    def test_histogram_exposition_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 105.5" in text
        assert "lat_count 3" in text
