"""QueryProfile unit tests: superstep cap, rendering, metric recording."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    MAX_SUPERSTEP_ENTRIES,
    AtomProfile,
    QueryProfile,
    StepProfile,
    record_profile_metrics,
)


def _sample_profile() -> QueryProfile:
    p = QueryProfile(kind="subgraph")
    p.strategy = "set"
    p.add_stage("plan", 1.5)
    p.add_stage("execute", 4.5)
    ap = AtomProfile(0, "forward", cost_forward=10.0, cost_backward=40.0)
    ap.steps.append(
        StepProfile(0, "vertex", "Person", est_forward=6.0, est_backward=3.0,
                    actual=5)
    )
    p.atoms.append(ap)
    p.index_hits = 2
    p.edges_scanned = 17
    p.rows_out = 5
    return p


class TestStages:
    def test_time_stage_appends(self):
        p = QueryProfile()
        with p.time_stage("x"):
            pass
        assert p.stage_ms("x") is not None
        assert p.stage_ms("missing") is None
        assert p.total_ms == p.stage_ms("x")


class TestSuperstepCap:
    def test_totals_keep_counting_past_cap(self):
        p = QueryProfile()
        for i in range(MAX_SUPERSTEP_ENTRIES + 10):
            p.record_superstep("expand", frontier=i, messages=2, nbytes=100,
                               retries=1)
        d = p.dist
        assert len(d["steps"]) == MAX_SUPERSTEP_ENTRIES
        assert d["supersteps"] == MAX_SUPERSTEP_ENTRIES + 10
        assert d["messages"] == 2 * (MAX_SUPERSTEP_ENTRIES + 10)
        assert d["bytes"] == 100 * (MAX_SUPERSTEP_ENTRIES + 10)
        assert d["retries"] == MAX_SUPERSTEP_ENTRIES + 10

    def test_ensure_dist_idempotent(self):
        p = QueryProfile()
        d = p.ensure_dist()
        d["failovers"] = 3
        assert p.ensure_dist() is d


class TestRender:
    def test_render_sections(self):
        p = _sample_profile()
        p.record_superstep("expand", frontier=9, messages=4, nbytes=256,
                           retries=1)
        p.dist["faults"] = {"drops": 2}
        text = p.render()
        assert "PROFILE (kind=subgraph, strategy=set, rows=5)" in text
        assert "stages: plan=1.500ms execute=4.500ms total=6.000ms" in text
        assert "atom 0: direction=forward (cost fwd=10.0, bwd=40.0)" in text
        assert "est=       6.0 actual=       5" in text
        assert "index: 2 lookups, 17 edges scanned" in text
        assert "superstep 0 [expand]: frontier=9 messages=4 bytes=256" in text
        assert "retries=1" in text
        assert "faults: drops=2" in text

    def test_render_forced_marker(self):
        p = QueryProfile(kind="subgraph")
        p.atoms.append(
            AtomProfile(0, "backward", 10.0, 40.0, forced="options")
        )
        assert "forced by options" in p.render()

    def test_to_dict_roundtrip_shape(self):
        d = _sample_profile().to_dict()
        assert d["kind"] == "subgraph"
        assert d["stages"][0] == {"name": "plan", "ms": 1.5}
        assert d["atoms"][0]["steps"][0]["actual"] == 5
        assert d["dist"] is None
        assert d["trace"] is None


class TestRecordMetrics:
    def test_basic_counters(self):
        reg = MetricsRegistry()
        record_profile_metrics(reg, _sample_profile())
        assert reg.value("graql_statements_total", {"kind": "subgraph"}) == 1
        assert reg.value("graql_index_hits_total") == 2
        assert reg.value("graql_edges_scanned_total") == 17
        assert reg.value("graql_plans_total", {"strategy": "set"}) == 1
        assert reg.get_histogram("graql_rows_out").count == 1
        assert (
            reg.get_histogram("graql_stage_seconds", {"stage": "plan"}).count
            == 1
        )

    def test_dist_counters(self):
        reg = MetricsRegistry()
        p = _sample_profile()
        p.record_superstep("expand", frontier=9, messages=4, nbytes=256,
                           retries=1)
        p.record_superstep("cull", frontier=3, messages=2, nbytes=128)
        p.dist["failovers"] = 1
        p.dist["faults"] = {"drops": 2, "corrupt": 0}
        record_profile_metrics(reg, p)
        assert reg.value("graql_dist_supersteps_total") == 2
        assert reg.value("graql_dist_messages_total") == 6
        assert reg.value("graql_dist_bytes_total") == 384
        assert reg.value("graql_dist_retries_total") == 1
        assert reg.value("graql_dist_failovers_total") == 1
        assert reg.value("graql_dist_faults_total", {"fault": "drops"}) == 2
        # zero-count faults are not registered as series
        assert reg.get_histogram("graql_dist_frontier_size").count == 2

    def test_accumulates_across_statements(self):
        reg = MetricsRegistry()
        record_profile_metrics(reg, _sample_profile())
        record_profile_metrics(reg, _sample_profile())
        assert reg.value("graql_statements_total", {"kind": "subgraph"}) == 2
        assert reg.value("graql_edges_scanned_total") == 34
