"""QueryOptions validation + the legacy force_* deprecation shim."""

import dataclasses

import pytest

from repro.obs.options import (
    DEFAULT_OPTIONS,
    DEPRECATION_MSG,
    QueryOptions,
    resolve_options,
)


class TestQueryOptions:
    def test_defaults(self):
        o = QueryOptions()
        assert o.direction is None
        assert o.strategy is None
        assert o.timeout is None
        assert o.trace is False
        assert o.explain is False
        assert o.profile is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"direction": "sideways"},
            {"strategy": "frontier"},
            {"explain": "verbose"},
            {"timeout": 0},
            {"timeout": -1.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QueryOptions(**kwargs)

    def test_frozen(self):
        o = QueryOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            o.direction = "forward"

    def test_with_timeout_fills_only_unset(self):
        assert QueryOptions().with_timeout(2.0).timeout == 2.0
        assert QueryOptions(timeout=1.0).with_timeout(2.0).timeout == 1.0
        o = QueryOptions()
        assert o.with_timeout(None) is o

    def test_wants_analyze(self):
        assert QueryOptions(explain="analyze").wants_analyze
        assert not QueryOptions(explain="plan").wants_analyze
        assert not QueryOptions(explain=True).wants_analyze


class TestResolveOptions:
    def test_bare_call_returns_shared_default(self):
        assert resolve_options() is DEFAULT_OPTIONS

    def test_explicit_options_pass_through(self):
        o = QueryOptions(direction="forward")
        assert resolve_options(o) is o

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="force_direction"):
            o = resolve_options(force_direction="backward")
        assert o.direction == "backward"
        with pytest.warns(DeprecationWarning, match=DEPRECATION_MSG[:30]):
            o = resolve_options(force_strategy="bindings")
        assert o.strategy == "bindings"

    def test_explicit_options_win_over_legacy(self):
        with pytest.warns(DeprecationWarning):
            o = resolve_options(
                QueryOptions(direction="forward"), force_direction="backward"
            )
        assert o.direction == "forward"

    def test_legacy_fills_unset_fields(self):
        with pytest.warns(DeprecationWarning):
            o = resolve_options(
                QueryOptions(trace=True), force_strategy="set"
            )
        assert o.strategy == "set"
        assert o.trace is True


class TestDatabaseShim:
    """The public entry points accept the legacy kwargs for one release."""

    def test_execute_force_direction_warns_same_answer(self, social_db):
        q = (
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph SH1"
        )
        with pytest.warns(DeprecationWarning, match="force_direction"):
            legacy = social_db.execute(q, force_direction="backward")[0]
        modern = social_db.execute(
            q.replace("SH1", "SH2"), options=QueryOptions(direction="backward")
        )[0]
        assert legacy.profile.atoms[0].direction == "backward"
        assert legacy.profile.atoms[0].forced == "options"
        assert {k: v.tolist() for k, v in legacy.subgraph.vertices.items()} == {
            k: v.tolist() for k, v in modern.subgraph.vertices.items()
        }

    def test_query_force_strategy_warns(self, social_db):
        with pytest.warns(DeprecationWarning, match="force_strategy"):
            t = social_db.query(
                "select y.id from graph Person ( ) --follows--> "
                "def y: Person ( ) into table SHT1",
                force_strategy="bindings",
            )
        assert t.num_rows == 8

    def test_executor_level_shim(self, social_db):
        from repro.graql.parser import parse_script
        from repro.query.executor import execute_statement

        stmt = parse_script(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph SHX"
        ).statements[0]
        with pytest.warns(DeprecationWarning):
            r = execute_statement(
                social_db.db, social_db.catalog, stmt,
                force_direction="forward",
            )
        assert r.profile.atoms[0].direction == "forward"

    def test_server_submit_shim(self):
        from repro.engine.server import Server

        srv = Server()
        srv.submit("admin", "create table T(i integer)")
        srv.submit("admin", "create vertex VV(i) from table T")
        srv.submit(
            "admin",
            "create table E(src integer, dst integer) "
            "create edge ee with vertices (VV as A, VV as B) from table E "
            "where E.src = A.i and E.dst = B.i",
        )
        srv.backend.ingest_rows("T", [(1,), (2,)])
        srv.backend.ingest_rows("E", [(1, 2)])
        srv.catalog.refresh(srv.backend)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            results = srv.submit(
                "admin",
                "select * from graph VV ( ) --ee--> VV ( ) into subgraph SS1",
                force_strategy="set",
            )
        assert results[0].kind == "subgraph"

    def test_modern_path_is_warning_free(self, social_db, recwarn):
        social_db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph NW1",
            options=QueryOptions(direction="forward", strategy="set"),
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
