"""QueryOptions validation + removal of the legacy force_* kwargs."""

import dataclasses

import pytest

from repro.obs.options import (
    DEFAULT_OPTIONS,
    REMOVED_MSG,
    QueryOptions,
    reject_legacy_kwargs,
    resolve_options,
)


class TestQueryOptions:
    def test_defaults(self):
        o = QueryOptions()
        assert o.direction is None
        assert o.strategy is None
        assert o.timeout is None
        assert o.trace is False
        assert o.explain is False
        assert o.profile is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"direction": "sideways"},
            {"strategy": "frontier"},
            {"explain": "verbose"},
            {"timeout": 0},
            {"timeout": -1.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QueryOptions(**kwargs)

    def test_frozen(self):
        o = QueryOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            o.direction = "forward"

    def test_with_timeout_fills_only_unset(self):
        assert QueryOptions().with_timeout(2.0).timeout == 2.0
        assert QueryOptions(timeout=1.0).with_timeout(2.0).timeout == 1.0
        o = QueryOptions()
        assert o.with_timeout(None) is o

    def test_wants_analyze(self):
        assert QueryOptions(explain="analyze").wants_analyze
        assert not QueryOptions(explain="plan").wants_analyze
        assert not QueryOptions(explain=True).wants_analyze


class TestResolveOptions:
    def test_bare_call_returns_shared_default(self):
        assert resolve_options() is DEFAULT_OPTIONS

    def test_explicit_options_pass_through(self):
        o = QueryOptions(direction="forward")
        assert resolve_options(o) is o

    def test_legacy_kwargs_are_gone(self):
        with pytest.raises(TypeError):
            resolve_options(force_direction="backward")

    def test_reject_legacy_kwargs_message(self):
        with pytest.raises(TypeError, match="force_direction/force_strategy"):
            reject_legacy_kwargs({"force_direction": "backward"}, "query")
        with pytest.raises(TypeError, match="QueryOptions"):
            reject_legacy_kwargs({"force_strategy": "set"}, "query")

    def test_reject_unknown_kwarg_plain_typeerror(self):
        with pytest.raises(TypeError, match="unexpected keyword argument 'bogus'"):
            reject_legacy_kwargs({"bogus": 1}, "query")

    def test_reject_empty_is_noop(self):
        reject_legacy_kwargs({}, "query")


class TestRemovedKwargs:
    """PR 2's deprecation shim is gone: every execution entry point now
    raises ``TypeError`` pointing at ``QueryOptions`` (docs/API.md)."""

    def test_execute_force_direction_raises(self, social_db):
        q = (
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph SH1"
        )
        with pytest.raises(TypeError, match=REMOVED_MSG[:30]):
            social_db.execute(q, force_direction="backward")
        # and nothing executed: the subgraph does not exist
        assert "SH1" not in social_db.catalog.subgraphs

    def test_query_force_strategy_raises(self, social_db):
        with pytest.raises(TypeError, match="force_direction/force_strategy"):
            social_db.query(
                "select y.id from graph Person ( ) --follows--> "
                "def y: Person ( ) into table SHT1",
                force_strategy="bindings",
            )

    def test_query_subgraph_raises(self, social_db):
        with pytest.raises(TypeError, match="QueryOptions"):
            social_db.query_subgraph(
                "select * from graph Person ( ) --follows--> Person ( ) "
                "into subgraph SHS1",
                force_direction="forward",
            )

    def test_executor_level_raises(self, social_db):
        from repro.graql.parser import parse_script
        from repro.query.executor import execute_statement

        stmt = parse_script(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph SHX"
        ).statements[0]
        with pytest.raises(TypeError, match="docs/API.md"):
            execute_statement(
                social_db.db, social_db.catalog, stmt,
                force_direction="forward",
            )

    def test_server_submit_raises(self):
        from repro.engine.server import Server

        srv = Server()
        srv.submit("admin", "create table T(i integer)")
        with pytest.raises(TypeError, match="force_direction/force_strategy"):
            srv.submit(
                "admin", "select * from table T", force_strategy="set"
            )

    def test_options_equivalent_still_works(self, social_db):
        r = social_db.execute(
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph SH2",
            options=QueryOptions(direction="backward"),
        )[0]
        assert r.profile.atoms[0].direction == "backward"
        assert r.profile.atoms[0].forced == "options"

    def test_modern_path_is_warning_free(self, social_db, recwarn):
        social_db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph NW1",
            options=QueryOptions(direction="forward", strategy="set"),
        )
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_analyze_still_accepts_kwargs_as_lint_surface(self, social_db):
        res = social_db.analyze(
            "select name from table People", force_direction="backward"
        )
        assert any(d.code == "GQW140" for d in res.diagnostics)
