"""The failover acceptance matrix: SIGKILL the primary, promote, go on.

Real processes (``graql serve`` / ``graql serve --replica-of``), real
sockets, ``kill -9``.  The bar (docs/REPLICATION.md): after killing the
primary and promoting the replica,

* zero acknowledged-and-replicated writes are lost,
* a self-healing client completes its SELECT across the failover
  window without ever seeing :class:`~repro.errors.ClosedError`,
* the deposed primary's stale timeline is fenced off when it rejoins.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time

import pytest

from repro.net import RemoteConnection, ping

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.cli", *args]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn(*args: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        _cli(*args),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    line = proc.stdout.readline()
    m = re.search(r"graql://[\d.]+:\d+", line)
    assert m, f"server did not announce an address: {line!r}"
    return proc, m.group(0)


def _wait_replica_acked(primary_url: str, seq: int, timeout: float = 20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        replicas = ping(primary_url).get("replicas", [])
        if replicas and all(p["ack_seq"] >= seq for p in replicas):
            return
        time.sleep(0.05)
    raise AssertionError(f"replica never acknowledged seq {seq}")


def _kill(proc: subprocess.Popen) -> None:
    proc.kill()
    proc.wait(timeout=30)
    proc.stdout.close()


def _promote_inline(url: str) -> dict:
    """Send the PROMOTE frame directly (the `graql promote` wire path
    without a fresh interpreter — the 2s gate measures failover, not
    Python startup)."""
    import socket

    from repro.net.client import parse_endpoints
    from repro.net.frame import (
        FT_ERROR,
        FT_HELLO,
        FT_HELLO_OK,
        FT_PROMOTE,
        FT_PROMOTED,
        FrameSocket,
        PROTOCOL_VERSION,
    )
    from repro.net.protocol import decode_error

    host, port = parse_endpoints(url)[0]
    fs = FrameSocket(socket.create_connection((host, port), timeout=10.0))
    try:
        fs.send_magic()
        fs.send_frame(FT_HELLO, {"proto": PROTOCOL_VERSION, "user": "admin"})
        ftype, payload = fs.recv_frame()
        assert ftype == FT_HELLO_OK, payload
        fs.send_frame(FT_PROMOTE, {})
        ftype, payload = fs.recv_frame()
        if ftype == FT_ERROR:
            raise decode_error(payload)
        assert ftype == FT_PROMOTED, payload
        return payload
    finally:
        fs.close()


@pytest.mark.slow
def test_sigkill_primary_promote_replica_no_acknowledged_write_lost(tmp_path):
    pdir, rdir = str(tmp_path / "p.db"), str(tmp_path / "r.db")
    primary, purl = _spawn("serve", ":0", "--db", pdir)
    replica_proc, rurl = _spawn(
        "serve", ":0", "--db", rdir, "--replica-of", purl
    )
    conn = RemoteConnection(f"{purl},{rurl[len('graql://'):]}", "admin")
    acked: list[str] = []
    try:
        for i in range(5):
            conn.execute(f"create table Committed{i}( x integer )")
            acked.append(f"Committed{i}")  # response frame = acknowledged
        seq = ping(purl)["seq"]
        _wait_replica_acked(purl, seq)

        _kill(primary)  # SIGKILL: no drain, no goodbye to the replica

        # promotion over the wire: graql promote <replica-url>
        out = subprocess.run(
            _cli("promote", rurl),
            capture_output=True, text=True, env=_env(), timeout=60,
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "now primary" in out.stdout

        # the same client completes a SELECT across the failover window:
        # its retry loop walks the endpoint list onto the promoted node,
        # never raising ClosedError
        for name in acked:
            t = conn.execute(f"select count(*) as n from table {name}")
            assert [tuple(r) for r in t[-1].table.iter_rows()] == [(0,)]

        # and the promoted node accepts writes under the new epoch
        conn.execute("create table AfterFailover( x integer )")
        pong = ping(rurl)
        assert pong["role"] == "primary"
        assert pong["repl_epoch"] == 1
    finally:
        conn.close()
        if primary.poll() is None:
            _kill(primary)
        _kill(replica_proc)

    # the survivor's store recovers clean with every acknowledged write
    verify = subprocess.run(
        _cli("recover", rdir, "--verify"),
        capture_output=True, text=True, env=_env(), timeout=60,
    )
    assert verify.returncode == 0, verify.stdout + verify.stderr


@pytest.mark.slow
def test_deposed_primary_rejoins_on_the_survivors_timeline(tmp_path):
    """Full circle: kill the primary, promote, restart the old primary
    as a replica of the new one — it converges on the surviving
    timeline, including writes made after the failover."""
    pdir, rdir = str(tmp_path / "p.db"), str(tmp_path / "r.db")
    primary, purl = _spawn("serve", ":0", "--db", pdir)
    replica_proc, rurl = _spawn(
        "serve", ":0", "--db", rdir, "--replica-of", purl
    )
    conn = RemoteConnection(purl, "admin")
    conn.execute("create table Before( x integer )")
    _wait_replica_acked(purl, ping(purl)["seq"])
    conn.close()
    _kill(primary)

    out = subprocess.run(
        _cli("promote", rurl),
        capture_output=True, text=True, env=_env(), timeout=60,
    )
    assert out.returncode == 0, out.stdout + out.stderr

    conn2 = RemoteConnection(rurl, "admin")
    conn2.execute("create table After( x integer )")

    # the deposed primary rejoins as a replica of the survivor
    rejoined, joined_url = _spawn(
        "serve", ":0", "--db", pdir, "--replica-of", rurl
    )
    try:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            pong = ping(joined_url)
            if pong["seq"] >= ping(rurl)["seq"] and pong["repl_epoch"] == 1:
                break
            time.sleep(0.05)
        pong = ping(joined_url)
        assert pong["role"] == "replica"
        assert pong["repl_epoch"] == 1

        # reads on the rejoined node see both timeline halves
        conn3 = RemoteConnection(joined_url, "admin", max_redirects=0)
        for name in ("Before", "After"):
            t = conn3.execute(f"select count(*) as n from table {name}")
            assert [tuple(r) for r in t[-1].table.iter_rows()] == [(0,)]
        conn3.close()
    finally:
        conn2.close()
        _kill(rejoined)
        _kill(replica_proc)


@pytest.mark.slow
def test_failover_to_first_query_under_two_seconds(tmp_path):
    """The EXPERIMENTS.md ROBUST-2 gate, as a test: promote + first
    successful query on the survivor inside the 2s budget."""
    pdir, rdir = str(tmp_path / "p.db"), str(tmp_path / "r.db")
    primary, purl = _spawn("serve", ":0", "--db", pdir)
    replica_proc, rurl = _spawn(
        "serve", ":0", "--db", rdir, "--replica-of", purl
    )
    conn = RemoteConnection(f"{purl},{rurl[len('graql://'):]}", "admin")
    try:
        conn.execute("create table T( x integer )")
        _wait_replica_acked(purl, ping(purl)["seq"])
        _kill(primary)

        t0 = time.monotonic()
        _promote_inline(rurl)  # what `graql promote` does, sans interpreter
        conn.execute("select count(*) as n from table T")
        elapsed = time.monotonic() - t0
        assert elapsed < 2.0, f"failover-to-first-query took {elapsed:.2f}s"
    finally:
        conn.close()
        _kill(replica_proc)
