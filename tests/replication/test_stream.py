"""WalTailer unit tests: torn tails, rotation, gaps, repair-and-resume.

The tailer is the primary's eye on its own WAL; its contract
(docs/REPLICATION.md) is *exactly once past last_seq, never past a
record it cannot validate*.  These tests author WAL files byte-by-byte
to hit every stop condition.
"""

from __future__ import annotations

import os

from repro.durability.wal import (
    END_CLEAN,
    END_CRC_MISMATCH,
    END_TORN_HEADER,
    END_TORN_PAYLOAD,
    MAGIC,
    WalWriter,
    encode_record,
)
from repro.replication import WalTailer


def _write(path: str, seqs: list[int]) -> WalWriter:
    w = WalWriter(path, fsync="off")
    for seq in seqs:
        w.append({"seq": seq, "kind": "test", "n": seq * 10})
    w.sync()
    return w


def test_poll_delivers_records_in_order_exactly_once(tmp_path):
    path = str(tmp_path / "wal.log")
    w = _write(path, [1, 2])
    t = WalTailer(path, last_seq=0)
    poll = t.poll()
    assert [r["seq"] for r in poll.records] == [1, 2]
    assert poll.reason == END_CLEAN and not poll.halted and not poll.gap

    # nothing new: an empty, clean poll
    assert t.poll().records == []

    w.append({"seq": 3, "kind": "test", "n": 30})
    w.sync()
    assert [r["seq"] for r in t.poll().records] == [3]
    w.close()


def test_from_seq_skips_already_delivered_records(tmp_path):
    path = str(tmp_path / "wal.log")
    _write(path, [1, 2, 3]).close()
    t = WalTailer(path, last_seq=2)
    assert [r["seq"] for r in t.poll().records] == [3]


def test_torn_tail_parks_without_advancing(tmp_path):
    """A half-written record halts the poll at the last valid record;
    when the tail is completed (the append finishes) the next poll
    delivers it whole."""
    path = str(tmp_path / "wal.log")
    _write(path, [1]).close()
    whole = encode_record({"seq": 2, "kind": "test", "n": 20})
    with open(path, "ab") as fh:
        fh.write(whole[: len(whole) // 2])  # append racing the tailer

    t = WalTailer(path, last_seq=0)
    poll = t.poll()
    assert [r["seq"] for r in poll.records] == [1]
    assert poll.halted and poll.reason in (END_TORN_HEADER, END_TORN_PAYLOAD)
    parked = t.offset

    # repeated polls stay parked, do not advance, do not duplicate
    again = t.poll()
    assert again.records == [] and again.halted and t.offset == parked

    with open(path, "ab") as fh:
        fh.write(whole[len(whole) // 2 :])  # the append completes
    done = t.poll()
    assert [r["seq"] for r in done.records] == [2]
    assert done.reason == END_CLEAN


def test_torn_tail_resumes_after_repair(tmp_path):
    """After a crash the primary's recovery truncates the torn tail in
    place; the parked tailer resumes from its held offset and streams
    the records appended after the repair."""
    path = str(tmp_path / "wal.log")
    _write(path, [1, 2]).close()
    clean_size = os.path.getsize(path)
    garbage = encode_record({"seq": 3, "kind": "test", "n": 30})[:-4]
    with open(path, "ab") as fh:
        fh.write(garbage)  # a genuinely torn record: crashed mid-append

    t = WalTailer(path, last_seq=0)
    poll = t.poll()
    assert [r["seq"] for r in poll.records] == [1, 2]
    assert poll.halted

    # repair: recovery truncates the tail back to the last valid record
    with open(path, "r+b") as fh:
        fh.truncate(clean_size)
    w = WalWriter(path, fsync="off")  # reopens in append mode
    w.append({"seq": 3, "kind": "test", "n": 30})
    w.sync()
    w.close()

    resumed = t.poll()
    assert [r["seq"] for r in resumed.records] == [3]
    assert resumed.reason == END_CLEAN and not resumed.gap


def test_corrupt_record_halts_scan(tmp_path):
    path = str(tmp_path / "wal.log")
    _write(path, [1, 2]).close()
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:  # flip a byte in record 2's payload
        fh.seek(size - 3)
        b = fh.read(1)
        fh.seek(size - 3)
        fh.write(bytes([b[0] ^ 0xFF]))

    t = WalTailer(path, last_seq=0)
    poll = t.poll()
    assert [r["seq"] for r in poll.records] == [1]
    assert poll.reason == END_CRC_MISMATCH and poll.halted


def test_rotation_rescans_and_skips_delivered(tmp_path):
    """A checkpoint swap replaces the file; the tailer restarts at byte
    0 and drops records with seq <= last_seq."""
    path = str(tmp_path / "wal.log")
    _write(path, [1, 2]).close()
    t = WalTailer(path, last_seq=0)
    assert [r["seq"] for r in t.poll().records] == [1, 2]

    # rotate: a fresh file whose history overlaps what we delivered
    rotated = str(tmp_path / "wal.rotated")
    _write(rotated, [2, 3, 4]).close()
    os.replace(rotated, path)

    poll = t.poll()
    assert [r["seq"] for r in poll.records] == [3, 4]
    assert not poll.gap


def test_rotation_past_subscriber_reports_gap(tmp_path):
    """A checkpoint that truncated records the subscriber never saw is
    unrecoverable by reading — the poll must say so."""
    path = str(tmp_path / "wal.log")
    _write(path, [1, 2]).close()
    t = WalTailer(path, last_seq=0)
    t.poll()

    rotated = str(tmp_path / "wal.rotated")
    _write(rotated, [5, 6]).close()  # 3 and 4 are gone
    os.replace(rotated, path)

    poll = t.poll()
    assert poll.gap
    assert poll.records == []


def test_missing_file_is_an_empty_poll(tmp_path):
    t = WalTailer(str(tmp_path / "nope.log"), last_seq=0)
    poll = t.poll()
    assert poll.records == [] and not poll.halted and not poll.gap


def test_truncated_in_place_rescans(tmp_path):
    """An in-place shrink below our offset (recovery repair that cut
    deeper than our position) forces a rescan from the top."""
    path = str(tmp_path / "wal.log")
    _write(path, [1, 2, 3]).close()
    t = WalTailer(path, last_seq=0)
    assert [r["seq"] for r in t.poll().records] == [1, 2, 3]

    _write(str(tmp_path / "w2"), [1, 2]).close()
    data = (tmp_path / "w2").read_bytes()
    with open(path, "wb") as fh:  # same inode, shorter content
        fh.write(data)

    poll = t.poll()
    assert poll.records == [] and not poll.gap  # nothing new, no dupes
    assert t.offset == os.path.getsize(path)
