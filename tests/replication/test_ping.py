"""PING/PONG health checks: answered without auth or admission.

A health probe must answer even when the engine is saturated — it
bypasses the admission queue entirely and is served before (and
without) authentication, so monitoring never needs credentials and
never queues behind a stuck workload.
"""

from __future__ import annotations

import pytest

from repro.net import GraqlServer, ping
from repro.errors import ProtocolError

from tests.conftest import build_social_db
from tests.replication.conftest import wait_until


@pytest.fixture
def srv():
    server = GraqlServer(build_social_db(), port=0)
    server.start()
    yield server
    server.shutdown(drain=False, timeout=10.0)


def test_ping_memory_server(srv):
    pong = ping(srv.url)
    assert pong["role"] == "memory"
    assert pong["endpoint"] == srv.url
    assert pong["rtt_s"] >= 0


def test_ping_reports_primary_position(pair):
    pair.primary_db.execute("create table T( id integer )")
    pong = ping(pair.url)
    assert pong["role"] == "primary"
    assert pong["seq"] == pair.primary_db.store.seq
    assert pong["repl_epoch"] == 0
    assert pong["replicas"] == []


def test_ping_reports_replica_lag_accounting(pair):
    replica = pair.start_replica()
    pair.primary_db.execute("create table T( id integer )")
    wait_until(
        lambda: replica.database.store.seq >= pair.primary_db.store.seq
    )
    seq = pair.primary_db.store.seq
    wait_until(lambda: ping(pair.url)["replicas"][0]["ack_seq"] == seq)
    (peer,) = ping(pair.url)["replicas"]
    assert peer["lag_records"] == 0

    rsrv = pair.serve_replica()
    pong = ping(rsrv.url)
    assert pong["role"] == "replica"
    assert pong["primary"] == pair.url
    assert pong["connected"] is True
    assert pong["seq"] == seq


def test_ping_answers_while_the_engine_is_saturated(srv):
    """The whole point of a health frame: it bypasses admission."""
    admission = srv.app.serving.admission
    admission.max_in_flight = 1
    ticket = admission.admit("hog")  # every statement now queues
    try:
        pong = ping(srv.url, timeout=5.0)
        assert pong["role"] == "memory"
    finally:
        admission.release(ticket)


def test_ping_walks_endpoints_to_a_live_node(srv):
    pong = ping(f"graql://127.0.0.1:1,{srv.host}:{srv.port}", timeout=2.0)
    assert pong["endpoint"] == srv.url


def test_ping_raises_when_nothing_answers():
    with pytest.raises(ProtocolError):
        ping("graql://127.0.0.1:1", timeout=2.0)


def test_cli_ping_prints_the_pong(srv, capsys):
    from repro.cli import main

    assert main(["ping", srv.url]) == 0
    out = capsys.readouterr().out
    assert "pong from" in out
    assert "role: memory" in out


def test_cli_ping_reports_failure(capsys):
    from repro.cli import main

    assert main(["ping", "graql://127.0.0.1:1", "--timeout", "2"]) == 1
    assert "error" in capsys.readouterr().err
