"""Self-healing client: retries, redirects, poisoning, re-prepare.

The retry contract (docs/REPLICATION.md): a transport fault during an
**idempotent** request reconnects and retries with capped backoff; a
fault during a write poisons the connection (the write is ambiguous); a
NotPrimary rejection is followed as a redirect for any statement
because the server refused before executing anything.
"""

from __future__ import annotations

import socket

import pytest

from repro.errors import ClosedError, NotPrimary, ProtocolError
from repro.net import GraqlServer, RemoteConnection

from tests.conftest import build_social_db
from tests.replication.conftest import wait_until

PEOPLE_Q = "select name from table People where age > 30"
DDL = "create table Audit( id integer )"


@pytest.fixture
def srv():
    server = GraqlServer(build_social_db(), port=0)
    server.start()
    yield server
    server.shutdown(drain=False, timeout=10.0)


def _rows(conn, q=PEOPLE_Q):
    return [tuple(r) for r in conn.execute(q)[-1].table.iter_rows()]


def test_multi_endpoint_connect_skips_dead_nodes(srv):
    # port 1 refuses instantly; the client walks on to the live node
    conn = RemoteConnection(
        f"graql://127.0.0.1:1,{srv.host}:{srv.port}", "admin",
        connect_timeout=2.0,
    )
    assert len(_rows(conn)) == 3
    assert conn.url == srv.url  # it reports the endpoint that answered
    conn.close()


def test_connect_raises_when_no_endpoint_answers():
    with pytest.raises(ProtocolError):
        RemoteConnection(
            "graql://127.0.0.1:1,127.0.0.1:2", connect_timeout=2.0
        )


def test_idempotent_select_heals_a_broken_transport(srv):
    conn = RemoteConnection(srv.url, "admin")
    assert len(_rows(conn)) == 3
    # the transport dies under us (peer reset, reaped, NAT timeout...)
    conn._fs.sock.shutdown(socket.SHUT_RDWR)
    conn._fs.sock.close()
    # the SELECT is retried on a fresh session, not surfaced as a fault
    assert len(_rows(conn)) == 3
    assert not conn._closed
    conn.close()


def test_known_broken_transport_heals_even_for_writes(srv):
    """Only *mid-flight* faults are ambiguous.  A connection already
    known broken reconnects before sending, so a write is safe."""
    conn = RemoteConnection(srv.url, "admin")
    conn.execute(DDL)
    conn._drop_transport()
    conn.execute("create table Audit2( id integer )")  # reconnect, then send
    assert "Audit2" in srv.database.catalog.tables
    conn.close()


def test_write_fault_mid_flight_poisons_the_connection(srv):
    conn = RemoteConnection(srv.url, "admin")
    conn.execute(DDL)

    def explode(*a, **k):
        raise ProtocolError("injected transport fault")

    conn._fs.recv_frame = explode  # the response never arrives
    with pytest.raises(ProtocolError, match="injected"):
        conn.execute("create table Poisoned( id integer )")
    # ambiguous write: the connection is now unusable, loudly
    with pytest.raises(ClosedError):
        conn.execute(PEOPLE_Q)
    conn.close()  # close stays idempotent on a poisoned connection


def test_exhausted_retries_poison_even_idempotent_requests(srv):
    conn = RemoteConnection(srv.url, "admin", retry_attempts=1)
    assert len(_rows(conn)) == 3
    srv.shutdown(drain=False, timeout=10.0)  # the whole deployment is gone
    with pytest.raises(ProtocolError):
        conn.execute(PEOPLE_Q)
    with pytest.raises(ClosedError):
        conn.execute(PEOPLE_Q)


def test_prepared_statement_reprepares_after_reconnect(srv):
    conn = RemoteConnection(srv.url, "admin")
    stmt = conn.prepare(PEOPLE_Q)
    first_gen = stmt._generation
    assert stmt.execute()[-1].table.num_rows == 3
    conn._drop_transport()
    rows = [tuple(r) for r in stmt.execute()[-1].table.iter_rows()]
    assert len(rows) == 3  # same statement, new session, no caller effort
    assert stmt._generation != first_gen
    conn.close()


def test_select_survives_failover_to_promoted_replica(pair):
    """The acceptance scenario in client miniature: the primary dies,
    the replica is promoted, and an in-flight client's SELECT completes
    against the survivor without ever raising ClosedError."""
    replica = pair.start_replica()
    pair.primary_db.execute("create table People( id integer, age integer )")
    pair.primary_db.ingest_rows("People", [(1, 40), (2, 20)])
    wait_until(
        lambda: replica.database.store.seq >= pair.primary_db.store.seq
    )
    rsrv = pair.serve_replica()

    conn = RemoteConnection(f"graql://{pair.server.host}:{pair.server.port},"
                            f"{rsrv.host}:{rsrv.port}", "admin")
    q = "select count(*) as n from table People where age > 30"
    assert _rows(conn, q) == [(1,)]

    pair.server.shutdown(drain=False, timeout=10.0)  # the primary dies
    replica.promote()

    # the retried SELECT walks the endpoint list onto the survivor
    assert _rows(conn, q) == [(1,)]
    # and the survivor is writable now: no redirect, no error
    conn.execute(DDL)
    assert "Audit" in replica.database.catalog.tables
    conn.close()


def test_redirect_cap_bounds_a_replica_only_deployment(pair):
    """With no writable node reachable, redirects stop at the cap and
    the NotPrimary surfaces rather than looping forever."""
    pair.start_replica()
    rsrv = pair.serve_replica()
    pair.server.shutdown(drain=False, timeout=10.0)  # primary unreachable
    conn = RemoteConnection(
        rsrv.url, "admin", max_redirects=2, retry_attempts=0,
        connect_timeout=2.0,
    )
    with pytest.raises((NotPrimary, ProtocolError)):
        conn.execute(DDL)
    conn.close()
