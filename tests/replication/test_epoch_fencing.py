"""Epoch fencing: a deposed primary's writes never land anywhere.

Promotion bumps a persisted, monotonic *replication epoch*; every WAL
record carries the epoch it was written under.  The fence has two
enforcement points (docs/REPLICATION.md): ``apply_replicated`` rejects
records below the local fence, and ``serve_subscription`` refuses
subscribers whose epoch is *ahead* of the serving node — each side
rejects the other's stale timeline.
"""

from __future__ import annotations

import os

import pytest

from repro.durability.wal import read_wal
from repro.engine.session import Database
from repro.errors import ReplicaStale, WalError
from repro.replication import Replica

from tests.replication.conftest import wait_caught_up, wait_until

DDL = "create table People( id integer, name varchar(16) )"


def test_promotion_bumps_and_persists_epoch(pair, tmp_path):
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    wait_caught_up(replica, pair.primary_db.store.seq)
    assert replica.database.store.replication_epoch == 0

    out = replica.promote()
    assert out["repl_epoch"] == 1
    assert replica.database.store.replication_epoch == 1
    assert replica.status()["role"] == "primary"

    # the fence survives a close/reopen cycle: it is on disk
    replica.close()
    reopened = Database.open(pair.replica_path, fsync="off")
    try:
        assert reopened.store.replication_epoch == 1
    finally:
        reopened.close()


def test_stale_epoch_record_rejected_after_promotion(pair):
    """The deposed primary's epoch-0 records bounce off the fence."""
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    wait_caught_up(replica, pair.primary_db.store.seq)
    replica.promote()

    store = replica.database.store
    seq = store.seq
    with pytest.raises(ReplicaStale) as exc:
        store.apply_replicated({"seq": seq + 1, "repl": 0, "kind": "ddl"})
    assert exc.value.repl_epoch == 0
    # the rejection is clean: nothing appended, store not poisoned
    assert store.seq == seq
    assert store.poisoned is None


def test_record_from_newer_epoch_advances_the_fence(pair, tmp_path):
    """A replica that follows a *newly promoted* primary adopts the
    higher epoch from the records themselves."""
    pair.primary_db.execute(DDL)
    real = read_wal(os.path.join(pair.primary_path, "wal.log")).records[0]

    target = Database.open(str(tmp_path / "adopter.db"), fsync="off")
    try:
        record = dict(real, repl=3)
        target.store.apply_replicated(record)
        assert target.store.replication_epoch == 3
        # and it persisted
    finally:
        target.close()
    reopened = Database.open(str(tmp_path / "adopter.db"), fsync="off")
    try:
        assert reopened.store.replication_epoch == 3
    finally:
        reopened.close()


def test_out_of_order_stream_rejected(pair):
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    wait_caught_up(replica, pair.primary_db.store.seq)
    store = replica.database.store
    with pytest.raises(WalError, match="out of order"):
        store.apply_replicated({"seq": store.seq + 7, "repl": 0})


def test_divergent_deposed_primary_is_reseeded_not_merged(pair, tmp_path):
    """Split brain, then reconciliation: the deposed primary kept
    accepting writes after the fork.  When it rejoins as a replica its
    position is past the fork boundary, so the new primary refuses to
    resume and ships a snapshot — the divergent tail is discarded, the
    rejoined node converges on the surviving timeline."""
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    pair.primary_db.ingest_rows("People", [(1, "Alice")])
    wait_caught_up(replica, pair.primary_db.store.seq)
    fork_seq = pair.primary_db.store.seq

    replica.promote()  # epoch 1 begins after fork_seq
    rsrv = pair.serve_replica()

    # split brain: the deposed primary keeps writing under epoch 0...
    pair.primary_db.ingest_rows("People", [(99, "Divergent")])
    assert pair.primary_db.store.seq == fork_seq + 1
    # ...and the new primary advances its own timeline independently
    replica.database.execute("create table Orders( id integer )")
    pair.server.shutdown(drain=False, timeout=10.0)
    pair.primary_db.close()

    # the deposed node rejoins, pointing at the new primary
    rejoined = Replica(
        pair.primary_path, rsrv.url, durability={"fsync": "off"}
    )
    try:
        rejoined.start()
        wait_until(
            lambda: rejoined.database.store.replication_epoch == 1
            and rejoined.database.store.seq >= replica.database.store.seq
        )
        # the divergent write is gone; the survivor's timeline won
        rows = [
            tuple(r)
            for r in rejoined.database.query(
                "select id from table People"
            ).iter_rows()
        ]
        assert rows == [(1,)]
        assert "Orders" in rejoined.database.catalog.tables
        snap = rejoined.database.metrics.snapshot()
        assert snap.get("graql_repl_snapshots_installed_total", 0) == 1
    finally:
        rejoined.close()


def test_deposed_primary_refuses_subscriber_from_newer_epoch(pair, tmp_path):
    """After a failover, a replica of the *new* primary must never
    resubscribe to the old one — its subscription carries the higher
    epoch and the deposed node refuses to stream its stale history."""
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    wait_caught_up(replica, pair.primary_db.store.seq)
    replica.promote()
    rsrv = pair.serve_replica()  # the new primary, at epoch 1

    chained_path = str(tmp_path / "chained.db")
    chained = Replica(chained_path, rsrv.url, durability={"fsync": "off"})
    try:
        chained.start()
        wait_until(lambda: chained.database.store.replication_epoch == 1)
        wait_caught_up(chained, replica.database.store.seq)
    finally:
        chained.close()

    # now point the epoch-1 node at the deposed epoch-0 primary
    stale = Replica(chained_path, pair.url, durability={"fsync": "off"})
    try:
        stale.start()
        wait_until(lambda: stale.last_error is not None)
        assert "deposed" in stale.last_error or "stale" in stale.last_error
        assert not stale.connected
        # the refusal is fatal by design: the applier thread exited and
        # no data from the stale timeline landed
        assert stale.database.store.replication_epoch == 1
    finally:
        stale.close()
