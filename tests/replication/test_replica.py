"""Streaming replication end-to-end, in process: real sockets, real WALs.

The contract under test (docs/REPLICATION.md): everything the primary
acknowledges becomes visible on the replica; the replica serves reads
and refuses writes with a redirect; catch-up works through both the
resume path and the snapshot path; the subscription heals itself.
"""

from __future__ import annotations

import pytest

from repro import connect
from repro.errors import NotPrimary
from repro.net import GraqlServer, RemoteConnection

from tests.replication.conftest import wait_caught_up, wait_until

DDL = "create table People( id integer, name varchar(16) )"
ROWS = [(1, "Alice"), (2, "Bob"), (3, "Carol")]
COUNT_Q = "select count(*) as n from table People"


def _count(conn) -> int:
    table = conn.execute(COUNT_Q)[-1].table
    return [tuple(r) for r in table.iter_rows()][0][0]


def test_streamed_writes_become_visible_on_replica(pair):
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    pair.primary_db.ingest_rows("People", ROWS)
    wait_caught_up(replica, pair.primary_db.store.seq)

    # local read on the replica's database sees the streamed rows
    assert _count(replica.database.connect()) == len(ROWS)

    # and so does a remote client of the served replica
    rsrv = pair.serve_replica()
    conn = connect(rsrv.url)
    assert _count(conn) == len(ROWS)
    conn.close()

    # replication is continuous, not a one-shot sync
    pair.primary_db.ingest_rows("People", [(4, "Dan")])
    wait_caught_up(replica, pair.primary_db.store.seq)
    assert _count(replica.database.connect()) == len(ROWS) + 1


def test_replica_rejects_writes_with_primary_address(pair):
    replica = pair.start_replica()
    rsrv = pair.serve_replica()
    conn = RemoteConnection(rsrv.url, "admin", max_redirects=0)
    with pytest.raises(NotPrimary) as exc:
        conn.execute(DDL)
    assert exc.value.primary == pair.url  # the redirect target crosses
    conn.close()
    # reads still work on the same connection after the rejection
    assert replica.database.store.seq == 0


def test_not_primary_redirect_executes_write_on_primary(pair):
    """A client pointed at the replica transparently lands its write on
    the primary — and the write then streams back to the replica."""
    replica = pair.start_replica()
    rsrv = pair.serve_replica()
    conn = connect(rsrv.url)
    conn.execute(DDL)  # redirected before anything executed: safe
    wait_until(lambda: "People" in pair.primary_db.catalog.tables)
    wait_caught_up(replica, pair.primary_db.store.seq)
    assert "People" in replica.database.catalog.tables
    conn.close()


def test_fresh_replica_catches_up_via_snapshot_after_checkpoint(pair):
    """A checkpoint truncates history a late subscriber never saw; the
    tailer reports the gap and the primary ships a snapshot instead."""
    pair.primary_db.execute(DDL)
    pair.primary_db.ingest_rows("People", ROWS)
    pair.primary_db.checkpoint()  # WAL truncated: records 1..N are gone
    pair.primary_db.ingest_rows("People", [(4, "Dan")])

    replica = pair.start_replica()
    wait_caught_up(replica, pair.primary_db.store.seq)
    assert _count(replica.database.connect()) == 4
    snap = replica.database.metrics.snapshot()
    assert snap.get("graql_repl_snapshots_installed_total", 0) == 1
    psnap = pair.primary_db.metrics.snapshot()
    assert psnap.get("graql_repl_snapshots_sent_total", 0) == 1


def test_resubscribe_after_checkpoint_gap_reseeds(pair):
    """A replica partitioned across a checkpoint re-subscribes past the
    truncated history via a fresh snapshot."""
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    wait_caught_up(replica, pair.primary_db.store.seq)

    replica.stop()  # partition: the applier is gone, the store remains
    pair.primary_db.ingest_rows("People", ROWS)
    pair.primary_db.checkpoint()
    pair.primary_db.ingest_rows("People", [(4, "Dan")])

    replica.start()
    wait_caught_up(replica, pair.primary_db.store.seq)
    assert _count(replica.database.connect()) == 4


def test_user_accounts_replicate(pair):
    replica = pair.start_replica()
    pair.primary_db.server.create_user("admin", "ana", "writer")
    wait_caught_up(replica, pair.primary_db.store.seq)
    wait_until(lambda: "ana" in replica.database.server.users)
    assert replica.database.server.users["ana"].role == "writer"

    pair.primary_db.server.drop_user("admin", "ana")
    wait_caught_up(replica, pair.primary_db.store.seq)
    wait_until(lambda: "ana" not in replica.database.server.users)
    # the bootstrap admin is never dropped by sync
    assert "admin" in replica.database.server.users


def test_ack_and_lag_accounting(pair):
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    pair.primary_db.ingest_rows("People", ROWS)
    seq = pair.primary_db.store.seq
    wait_caught_up(replica, seq)

    peers = pair.server.replication.peers
    wait_until(lambda: peers() and peers()[0]["ack_seq"] == seq)
    (peer,) = peers()
    assert peer["lag_records"] == 0
    assert peer["streamed_seq"] == seq

    snap = replica.database.metrics.snapshot()
    assert snap["graql_repl_records_applied_total"] == seq
    assert snap["graql_repl_connected"] == 1.0


def test_replica_reconnects_after_primary_restart(pair):
    """Losing the primary is backoff-and-redial, not a dead replica."""
    replica = pair.start_replica()
    pair.primary_db.execute(DDL)
    wait_caught_up(replica, pair.primary_db.store.seq)

    port = pair.server.port
    pair.server.shutdown(drain=False, timeout=10.0)
    wait_until(lambda: not replica.connected)

    # the primary comes back on the same address; the replica redials
    pair.server = GraqlServer(pair.primary_db, port=port)
    pair.server.start()
    wait_until(lambda: replica.connected, timeout=15.0)
    pair.primary_db.ingest_rows("People", ROWS)
    wait_caught_up(replica, pair.primary_db.store.seq)
    assert _count(replica.database.connect()) == len(ROWS)


def test_replica_status_surface(pair):
    replica = pair.start_replica()
    wait_until(lambda: replica.connected)
    status = replica.status()
    assert status["role"] == "replica"
    assert status["primary"] == pair.url
    assert status["connected"] is True
    assert status["last_error"] is None
