"""Shared fixtures for replication tests: a live primary + replica pair.

Everything here runs real sockets on loopback and real WAL files under
``tmp_path`` — the replication stack has no test doubles.  ``fsync`` is
off for speed: durability *ordering* (ack-after-append) is what these
tests prove, and that is independent of the fsync policy.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

import pytest

from repro.engine.session import Database
from repro.net import GraqlServer
from repro.replication import Replica


def wait_until(
    pred: Callable[[], bool], timeout: float = 10.0, interval: float = 0.01
) -> None:
    """Poll *pred* until true; fail the test loudly on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s: {pred}")


def wait_caught_up(replica: Replica, seq: int, timeout: float = 10.0) -> None:
    wait_until(lambda: replica.database.store.seq >= seq, timeout)


class Pair:
    """A durable primary served over TCP plus one streaming replica."""

    def __init__(self, tmp_path, **replica_kwargs: Any) -> None:
        self.primary_path = str(tmp_path / "primary.db")
        self.replica_path = str(tmp_path / "replica.db")
        self.primary_db = Database.open(self.primary_path, fsync="off")
        self.server = GraqlServer(self.primary_db, port=0)
        self.server.start()
        self.replica: Optional[Replica] = None
        self.replica_server: Optional[GraqlServer] = None
        self._replica_kwargs = replica_kwargs

    @property
    def url(self) -> str:
        return self.server.url

    def start_replica(self) -> Replica:
        self.replica = Replica(
            self.replica_path,
            self.server.url,
            durability={"fsync": "off"},
            **self._replica_kwargs,
        )
        self.replica.start()
        return self.replica

    def serve_replica(self) -> GraqlServer:
        """Also serve the replica over TCP (reads + PROMOTE frames)."""
        assert self.replica is not None
        self.replica_server = GraqlServer(None, port=0, replica=self.replica)
        self.replica_server.start()
        return self.replica_server

    def close(self) -> None:
        if self.replica_server is not None:
            self.replica_server.shutdown(drain=False, timeout=10.0)
        if self.replica is not None:
            self.replica.close()
        self.server.shutdown(drain=False, timeout=10.0)
        self.primary_db.close()


@pytest.fixture
def pair(tmp_path):
    p = Pair(tmp_path)
    yield p
    p.close()
