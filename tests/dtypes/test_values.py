"""Unit tests for value conventions (NULL sentinels, date encoding)."""

import datetime

import pytest

from repro.dtypes import (
    DATE_NULL,
    INT_NULL,
    date_to_ordinal,
    format_date,
    is_null,
    ordinal_to_date,
    parse_date,
)


class TestDates:
    def test_parse_iso(self):
        assert parse_date("2016-05-17") == datetime.date(2016, 5, 17).toordinal()

    def test_parse_strips_whitespace(self):
        assert parse_date(" 2016-05-17 ") == parse_date("2016-05-17")

    def test_roundtrip_through_date(self):
        d = datetime.date(1999, 12, 31)
        assert ordinal_to_date(date_to_ordinal(d)) == d

    def test_format(self):
        assert format_date(parse_date("2000-02-29")) == "2000-02-29"

    def test_format_null(self):
        assert format_date(DATE_NULL) == "NULL"

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_date("17-05-2016x")


class TestIsNull:
    def test_none(self):
        assert is_null(None)

    def test_nan(self):
        assert is_null(float("nan"))

    def test_int_sentinel(self):
        assert is_null(INT_NULL)

    def test_regular_values(self):
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(0.0)
        assert not is_null("x")
