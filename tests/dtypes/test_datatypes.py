"""Unit tests for the strongly-typed attribute system."""

import numpy as np
import pytest

from repro.dtypes import (
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    Boolean,
    Date,
    Float,
    Integer,
    VarChar,
    comparable,
    common_type,
    parse_type_name,
)
from repro.dtypes.values import DATE_NULL, INT_NULL


class TestParseTypeName:
    def test_integer(self):
        assert parse_type_name("integer") is INTEGER
        assert parse_type_name("INT") is INTEGER

    def test_float(self):
        assert parse_type_name("float") is FLOAT
        assert parse_type_name("double") is FLOAT

    def test_date(self):
        assert parse_type_name("date") is DATE

    def test_boolean(self):
        assert parse_type_name("boolean") is BOOLEAN

    def test_varchar(self):
        t = parse_type_name("varchar(10)")
        assert isinstance(t, VarChar)
        assert t.length == 10

    def test_varchar_spaces(self):
        assert parse_type_name("varchar( 255 )") == VarChar(255)

    def test_case_insensitive(self):
        assert parse_type_name("VARCHAR(5)") == VarChar(5)
        assert parse_type_name("Integer") is INTEGER

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            parse_type_name("blob")

    def test_bad_varchar_length(self):
        with pytest.raises(ValueError):
            VarChar(0)


class TestVarChar:
    def test_parse_and_format(self):
        t = VarChar(8)
        assert t.parse("hello") == "hello"
        assert t.format("hello") == "hello"

    def test_empty_is_null(self):
        assert VarChar(4).parse("") is None
        assert VarChar(4).format(None) == ""

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            VarChar(3).parse("toolong")

    def test_validate(self):
        t = VarChar(3)
        assert t.validate("abc")
        assert t.validate(None)
        assert not t.validate("abcd")
        assert not t.validate(42)

    def test_equality_includes_length(self):
        assert VarChar(10) == VarChar(10)
        assert VarChar(10) != VarChar(255)
        assert hash(VarChar(10)) == hash(VarChar(10))

    def test_ddl(self):
        assert VarChar(10).ddl() == "varchar(10)"


class TestInteger:
    def test_parse(self):
        assert INTEGER.parse("42") == 42
        assert INTEGER.parse("-7") == -7

    def test_null(self):
        assert INTEGER.parse("") == INT_NULL
        assert INTEGER.format(INT_NULL) == ""

    def test_roundtrip(self):
        assert INTEGER.parse(INTEGER.format(123)) == 123

    def test_bad_input(self):
        with pytest.raises(ValueError):
            INTEGER.parse("3.5")

    def test_validate_rejects_bool(self):
        assert not INTEGER.validate(True)
        assert INTEGER.validate(np.int64(3))


class TestFloat:
    def test_parse(self):
        assert FLOAT.parse("3.25") == 3.25
        assert FLOAT.parse("1e3") == 1000.0

    def test_null_is_nan(self):
        v = FLOAT.parse("")
        assert v != v
        assert FLOAT.format(float("nan")) == ""

    def test_format_roundtrip(self):
        assert FLOAT.parse(FLOAT.format(2.5)) == 2.5


class TestDate:
    def test_parse_iso(self):
        import datetime

        assert DATE.parse("2016-03-01") == datetime.date(2016, 3, 1).toordinal()

    def test_parse_alternate_formats(self):
        assert DATE.parse("2016/03/01") == DATE.parse("2016-03-01")
        assert DATE.parse("03/01/2016") == DATE.parse("2016-03-01")

    def test_null(self):
        assert DATE.parse("") == DATE_NULL
        assert DATE.format(DATE_NULL) == ""

    def test_format_roundtrip(self):
        ordinal = DATE.parse("2010-12-31")
        assert DATE.format(ordinal) == "2010-12-31"

    def test_bad_date(self):
        with pytest.raises(ValueError):
            DATE.parse("not-a-date")
        with pytest.raises(ValueError):
            DATE.parse("2016-13-45")

    def test_ordering_by_ordinal(self):
        assert DATE.parse("2016-01-02") > DATE.parse("2016-01-01")


class TestBoolean:
    @pytest.mark.parametrize("text,expected", [
        ("true", 1), ("True", 1), ("t", 1), ("1", 1), ("yes", 1),
        ("false", 0), ("F", 0), ("0", 0), ("no", 0),
    ])
    def test_parse(self, text, expected):
        assert BOOLEAN.parse(text) == expected

    def test_bad(self):
        with pytest.raises(ValueError):
            BOOLEAN.parse("maybe")

    def test_format(self):
        assert BOOLEAN.format(1) == "true"
        assert BOOLEAN.format(0) == "false"
        assert BOOLEAN.format(-1) == ""


class TestComparability:
    def test_numeric_kinds_compare(self):
        assert comparable(INTEGER, FLOAT)
        assert comparable(FLOAT, INTEGER)

    def test_strings_compare_across_lengths(self):
        assert comparable(VarChar(10), VarChar(255))

    def test_date_float_incomparable(self):
        # the paper's Section III-A example: comparing a date to a float
        assert not comparable(DATE, FLOAT)

    def test_string_int_incomparable(self):
        assert not comparable(VarChar(10), INTEGER)

    def test_common_type_widens(self):
        assert common_type(INTEGER, FLOAT) is FLOAT
        assert common_type(INTEGER, INTEGER) is INTEGER
        assert common_type(VarChar(5), VarChar(9)) == VarChar(9)

    def test_common_type_incomparable_raises(self):
        with pytest.raises(ValueError):
            common_type(DATE, INTEGER)


class TestSingletonsAndRepr:
    def test_singleton_types_are_equal(self):
        assert Integer() == INTEGER
        assert Float() == FLOAT
        assert Date() == DATE
        assert Boolean() == BOOLEAN

    def test_repr_contains_ddl(self):
        assert "varchar(7)" in repr(VarChar(7))
