"""EXPLAIN ANALYZE: golden-file stability, both-direction estimates on
regex/variant steps, and actual-cardinality properties.

The golden file normalizes wall-clock timings (``N.NNNms`` -> ``<T>ms``)
but keeps every cost, estimate and actual count — the social fixture is
hand-built and fully deterministic.  To regenerate after an intentional
output change::

    PYTHONPATH=src:. python -c "
    import re; from tests.conftest import build_social_db
    db = build_social_db()
    t = str(db.explain(\"select * from graph Person (country = 'US') \"
                       \"--follows--> def y: Person ( ) into subgraph GA1\",
                       mode='analyze'))
    open('tests/golden/explain_analyze_social.txt', 'w').write(
        re.sub(r'\\d+\\.\\d+ms', '<T>ms', t) + '\\n')"
"""

import pathlib
import re

import numpy as np
import pytest

from repro.obs import QueryOptions

GOLDEN = pathlib.Path(__file__).parent.parent / "golden"

_GOLDEN_QUERY = (
    "select * from graph Person (country = 'US') --follows--> "
    "def y: Person ( ) into subgraph GA1"
)


def _normalize(text) -> str:
    return re.sub(r"\d+\.\d+ms", "<T>ms", str(text))


class TestGoldenFile:
    def test_explain_analyze_social(self, social_db):
        got = _normalize(social_db.explain(_GOLDEN_QUERY, mode="analyze"))
        want = (GOLDEN / "explain_analyze_social.txt").read_text()
        assert got.rstrip("\n") == want.rstrip("\n")

    def test_mode_analyze_equals_options_analyze(self, social_db):
        a = _normalize(social_db.explain(_GOLDEN_QUERY, mode="analyze"))
        b = _normalize(
            social_db.explain(
                _GOLDEN_QUERY, options=QueryOptions(explain="analyze")
            )
        )
        assert a == b


class TestBothDirectionEstimates:
    """Regex and variant steps show estimates for *both* sweep
    directions, not just the chosen one."""

    def test_regex_step(self, social_db):
        text = social_db.explain(
            "select * from graph Person ( ) ( --follows--> [ ] )+ "
            "Person ( ) into subgraph G"
        )
        (line,) = [l for l in str(text).splitlines() if "regex group" in l]
        assert re.search(r"\(est fwd=[\d.]+, bwd=[\d.]+\)", line)

    def test_variant_step(self, social_db):
        text = social_db.explain(
            "select * from graph Person ( ) <--[]-- [ ] into subgraph G"
        )
        (line,) = [l for l in str(text).splitlines() if "any of" in l]
        assert re.search(r"\(est fwd=[\d.]+, bwd=[\d.]+\)", line)


class TestProfileContents:
    def test_stages_and_steps(self, social_db):
        r = social_db.execute(_GOLDEN_QUERY)[0]
        p = r.profile
        stage_names = [n for n, _ in p.stages]
        assert stage_names[0] == "parse"
        for required in ("typecheck", "plan", "execute", "materialize"):
            assert required in stage_names
        assert all(ms >= 0 for _, ms in p.stages)
        ap = p.atoms[0]
        assert ap.direction in ("forward", "backward")
        assert ap.cost_forward > 0 and ap.cost_backward > 0
        assert [s.kind for s in ap.steps] == ["vertex", "edge", "vertex"]
        assert all(s.actual is not None for s in ap.steps)
        assert p.index_hits >= 1

    def test_trace_attached_on_request(self, social_db):
        r = social_db.execute(
            _GOLDEN_QUERY.replace("GA1", "GT1"),
            options=QueryOptions(trace=True),
        )[0]
        assert r.profile.trace is not None
        rendered = r.profile.trace.render()
        assert "plan" in rendered and "execute" in rendered

    def test_profile_off(self, social_db):
        r = social_db.execute(
            _GOLDEN_QUERY.replace("GA1", "GP0"),
            options=QueryOptions(profile=False),
        )[0]
        assert r.profile is None


class TestActualCardinalityProperties:
    """The profile's per-step actuals equal independently-counted result
    cardinalities, on both execution strategies."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_set_actuals_match_enumerated_paths(self, seed):
        from tests.conftest import random_graph_db

        db = random_graph_db(seed)
        r = db.execute(
            "select * from graph V0 (weight < 5) --e0--> V0 ( ) "
            "into subgraph PS",
            options=QueryOptions(strategy="set"),
        )[0]
        steps = {s.index: s for s in r.profile.atoms[0].steps}
        # ground truth: enumerate every matching path through the
        # bindings path (a completely separate executor)
        t = db.query(
            "select a.id as s, b.id as d from graph "
            "def a: V0 (weight < 5) --e0--> def b: V0 ( ) into table PT"
        )
        rows = t.to_rows()
        srcs = {row[0] for row in rows}
        dsts = {row[1] for row in rows}
        assert steps[0].actual == len(srcs)
        assert steps[1].actual == len(rows)  # one row per distinct edge
        assert steps[2].actual == len(dsts)
        assert r.profile.rows_out == r.subgraph.num_vertices

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_bindings_actuals_match_set_actuals(self, seed):
        from tests.conftest import random_graph_db

        db = random_graph_db(seed)
        q = (
            "select * from graph V0 (weight < 5) --e0--> V0 ( ) "
            "into subgraph {}"
        )
        a = db.execute(q.format("BA"), options=QueryOptions(strategy="set"))[0]
        b = db.execute(
            q.format("BB"), options=QueryOptions(strategy="bindings")
        )[0]
        assert b.profile.strategy == "bindings"
        for sa, sb in zip(a.profile.atoms[0].steps, b.profile.atoms[0].steps):
            assert sa.actual == sb.actual, f"step {sa.index} differs"
        assert a.profile.rows_out == b.profile.rows_out

    @pytest.mark.parametrize("seed", [5, 17])
    def test_table_rows_out_matches_table(self, seed):
        from tests.conftest import random_graph_db

        db = random_graph_db(seed)
        r = db.execute(
            "select a.id as s, b.id as d from graph "
            "def a: V0 ( ) --e0--> def b: V0 (color = 'red') into table TT"
        )[0]
        assert r.profile.rows_out == r.table.num_rows
        assert r.profile.strategy == "bindings"

    def test_est_and_actual_both_present(self, social_db):
        r = social_db.execute(_GOLDEN_QUERY.replace("GA1", "EP1"))[0]
        for s in r.profile.atoms[0].steps:
            d = r.profile.atoms[0].direction
            assert s.estimated(d) is not None
            assert s.actual is not None and s.actual >= 0


class TestDistProfile:
    """Cluster runs attach per-superstep dist counters to the profile."""

    def test_superstep_counters(self):
        from repro.engine.server import Server
        from tests.conftest import (
            CITY_ROWS,
            FOLLOW_ROWS,
            PEOPLE_ROWS,
            SOCIAL_DDL,
        )

        srv = Server(workers=3)
        srv.submit("admin", SOCIAL_DDL)
        srv.backend.ingest_rows("People", PEOPLE_ROWS)
        srv.backend.ingest_rows("Cities", CITY_ROWS)
        srv.backend.ingest_rows("Follows", FOLLOW_ROWS)
        srv.cluster.rebuild()
        r = srv.submit(
            "admin",
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph DG",
        )[0]
        d = r.profile.dist
        assert d is not None
        assert d["supersteps"] >= 2  # at least one expand + one cull
        assert d["messages"] > 0 and d["bytes"] > 0
        phases = {s["phase"] for s in d["steps"]}
        assert phases <= {"expand", "cull"}
        assert any(s["frontier"] > 0 for s in d["steps"])
        assert "graql_dist_supersteps_total" in srv.metrics.render_prometheus()
