"""Tests for Eq. 12 structural queries and edge-attribute selection."""

import pytest

from repro.errors import TypeCheckError


class TestEq12StructuralQueries:
    """def X: [ ] --[]--> X — purely structural, type-independent."""

    def test_type_bound_label_on_variant_step(self, social_db):
        # any vertex with an edge back to a vertex of the SAME type:
        # follows (Person->Person) qualifies; livesIn (Person->City) not
        sg = social_db.query_subgraph(
            "select * from graph def X: [ ] --[]--> X into subgraph G"
        )
        # the matched edges must be endo-edges only
        assert set(sg.edges) == {"follows"}
        assert "City" not in sg.vertices or len(sg.vertex_ids("City")) == 0

    def test_same_type_constraint_binds_per_type(self, social_db):
        # compare with the unconstrained variant query
        free = social_db.query_subgraph(
            "select * from graph [ ] --[]--> [ ] into subgraph F"
        )
        assert "livesIn" in free.edges  # cross-type edges match when free

    def test_structural_two_hop_cycle(self, social_db):
        sg = social_db.query_subgraph(
            "select * from graph def X: [ ] --[]--> [ ] --[]--> X "
            "into subgraph H"
        )
        # the triangle p1->p2->p3->p1 gives 2-hop paths ending at the
        # *set* of start vertices (set-label semantics, same type)
        assert sg.num_vertices > 0
        assert set(sg.edges) <= {"follows"}


class TestEdgeAttributeSelection:
    def test_select_edge_attribute(self, social_db):
        t = social_db.query(
            "select a.id as src, f.weight, b.id as dst from graph "
            "def a: Person ( ) --def f: follows--> def b: Person ( ) "
            "into table EW"
        )
        assert t.schema.names() == ["src", "weight", "dst"]
        assert t.num_rows == 8
        # weights match the Follows table rows
        et = social_db.db.edge_type("follows")
        w, _ = et.attribute_array("weight")
        assert sorted(r[1] for r in t.to_rows()) == sorted(w.tolist())

    def test_edge_attr_alias(self, social_db):
        t = social_db.query(
            "select f.weight as strength from graph Person ( ) "
            "--def f: follows--> Person ( ) into table EA"
        )
        assert t.schema.names() == ["strength"]

    def test_unknown_edge_attr_rejected(self, social_db):
        with pytest.raises(TypeCheckError, match="no attribute"):
            social_db.query(
                "select f.nonexistent from graph Person ( ) "
                "--def f: follows--> Person ( ) into table X"
            )

    def test_edge_without_assoc_table_rejected(self, social_db):
        # livesIn has no from-table: no attributes available
        with pytest.raises(TypeCheckError, match="no attribute"):
            social_db.query(
                "select f.weight from graph Person ( ) "
                "--def f: livesIn--> City ( ) into table X"
            )

    def test_edge_attr_in_aggregation_pipeline(self, social_db):
        t = social_db.query(
            "select b.id as who, f.weight as w from graph Person ( ) "
            "--def f: follows--> def b: Person ( ) into table EWagg\n"
            "select who, sum(w) as total from table EWagg group by who "
            "order by total desc"
        )
        top = t.row(0)
        # p3 receives 3 + 9 = 12, p2 receives 5 + 8 + 7 = 20
        assert top == ("p2", 20)
