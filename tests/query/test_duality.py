"""Tests for the subgraph -> tables duality bridge."""

import pytest

from repro.query.duality import edge_table, subgraph_tables, vertex_table


@pytest.fixture
def captured(social_db):
    social_db.execute(
        "select * from graph Person (country = 'US') --follows--> "
        "Person ( ) into subgraph Dual"
    )
    return social_db


class TestVertexTables:
    def test_attributes_of_selected_vertices(self, captured):
        sg = captured.subgraph("Dual")
        t = vertex_table(captured.db, sg, "Person")
        assert t.schema.names() == [
            "id", "name", "country", "age", "score", "joined",
        ]
        assert t.num_rows == len(sg.vertex_ids("Person"))
        # every US source appears
        ids = {r[0] for r in t.to_rows()}
        assert {"p1", "p5"} <= ids


class TestEdgeTables:
    def test_endpoint_keys_and_attributes(self, captured):
        sg = captured.subgraph("Dual")
        t = edge_table(captured.db, sg, "follows")
        assert t.schema.names() == ["source_id", "target_id", "src", "dst", "weight"]
        assert t.num_rows == len(sg.edge_ids("follows"))
        for src, tgt, _s, _d, w in t.to_rows():
            assert isinstance(w, int)

    def test_edge_without_assoc_table(self, captured):
        captured.execute(
            "select * from graph Person ( ) --livesIn--> City ( ) "
            "into subgraph DualLI"
        )
        sg = captured.subgraph("DualLI")
        t = edge_table(captured.db, sg, "livesIn")
        assert t.schema.names() == ["source_id", "target_id"]


class TestSessionAPI:
    def test_subgraph_tables_dict(self, captured):
        tables = captured.subgraph_tables("Dual")
        assert set(tables) == {"Person", "follows"}

    def test_registration_enables_relational_followup(self, captured):
        captured.subgraph_tables("Dual", register=True)
        t = captured.query(
            "select country, count(*) as n from table Dual_Person "
            "group by country order by n desc"
        )
        assert t.num_rows >= 1
        t2 = captured.query(
            "select sum(weight) as total from table Dual_follows"
        )
        assert t2.row(0)[0] > 0

    def test_roundtrip_counts_consistent(self, captured):
        sg = captured.subgraph("Dual")
        tables = captured.subgraph_tables("Dual")
        assert tables["Person"].num_rows == len(sg.vertex_ids("Person"))
        assert tables["follows"].num_rows == len(sg.edge_ids("follows"))
