"""Unit tests for binding-join path enumeration."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.bindings import BindingExecutor
from repro.query.frontier import FrontierExecutor


def run_atom(db, text, direction="forward"):
    checked = check_statement(parse_statement(text), db.catalog)
    atom = checked.pattern.atoms()[0]
    bex = BindingExecutor(db.db, db.catalog)
    return atom, bex.run_atom(atom, direction)


def keys(db, result, pos, type_name="Person"):
    vt = db.db.vertex_type(type_name)
    return sorted(vt.key_of(int(v))[0] for v in result.vertex_column(pos))


class TestEnumeration:
    def test_row_per_path(self, social_db):
        # Fig. 6 semantics: one row per matched path, duplicates kept
        _, res = run_atom(
            social_db,
            "select B.id from graph Person (name = 'Alice') --follows--> "
            "def B: Person ( ) into table T",
        )
        # Alice follows Bob twice (parallel edges) -> two rows
        assert res.nrows == 2
        assert keys(social_db, res, 2) == ["p2", "p2"]

    def test_multi_hop_multiplicities(self, social_db):
        _, res = run_atom(
            social_db,
            "select C.id from graph Person (name = 'Alice') --follows--> "
            "Person ( ) --follows--> def C: Person ( ) into table T",
        )
        # two parallel p1->p2 edges times one p2->p3 edge = 2 paths
        assert res.nrows == 2
        assert keys(social_db, res, 4) == ["p3", "p3"]

    def test_matches_oracle_counts(self, social_db):
        from repro.baselines import NxOracle

        q = ("select B.id from graph Person (age > 20) --follows--> "
             "Person ( ) --follows--> def B: Person ( ) into table T")
        atom, res = run_atom(social_db, q)
        oracle = NxOracle(social_db.db)
        assert res.nrows == oracle.count_paths(atom)

    def test_backward_direction_same_rows(self, social_db):
        q = ("select B.id from graph Person (country = 'US') --follows--> "
             "def B: Person (country = 'DE') into table T")
        _, fwd = run_atom(social_db, q, "forward")
        _, bwd = run_atom(social_db, q, "backward")
        assert fwd.nrows == bwd.nrows
        assert keys(social_db, fwd, 2) == keys(social_db, bwd, 2)

    def test_edge_columns_present(self, social_db):
        _, res = run_atom(
            social_db,
            "select B.id from graph Person ( ) --follows--> def B: Person ( ) "
            "into table T",
        )
        assert res.has("e", 1)
        assert len(res.columns[("e", 1)]) == res.nrows

    def test_empty_result_keeps_schema(self, social_db):
        _, res = run_atom(
            social_db,
            "select B.id from graph Person (country = 'XX') --follows--> "
            "def B: Person ( ) into table T",
        )
        assert res.nrows == 0
        assert res.has("v", 0) and res.has("v", 2) and res.has("e", 1)


class TestForeach:
    def test_foreach_cycle_only(self, social_db):
        # foreach x ... --follows--> ... --follows--> ... back to x:
        # p1->p2->p3->p1 triangle means 3-step cycles exist
        q = ("select * from graph foreach x: Person ( ) --follows--> "
             "Person ( ) --follows--> Person ( ) --follows--> x "
             "into subgraph G")
        atom, res = run_atom(social_db, q)
        vt = social_db.db.vertex_type("Person")
        starts = {vt.key_of(int(v))[0] for v in res.vertex_column(0)}
        # the triangle p1->p2->p3->p1 (and rotations)
        assert starts == {"p1", "p2", "p3"}
        # every row starts and ends at the same instance
        assert np.array_equal(res.vertex_column(0), res.vertex_column(6))

    def test_set_label_weaker_than_foreach(self, social_db):
        q_set = ("select * from graph def x: Person ( ) --follows--> "
                 "Person ( ) --follows--> Person ( ) --follows--> x "
                 "into subgraph G")
        q_each = ("select * from graph foreach x: Person ( ) --follows--> "
                  "Person ( ) --follows--> Person ( ) --follows--> x "
                  "into subgraph G")
        # evaluate both with bindings (set label via prerun membership)
        checked = check_statement(parse_statement(q_set), social_db.catalog)
        atom = checked.pattern.atoms()[0]
        bex = BindingExecutor(social_db.db, social_db.catalog)
        res_set = bex.run_atom(atom)
        _, res_each = run_atom(social_db, q_each)
        # Eq. 8: foreach matches are a subset of set-label matches
        assert res_each.nrows <= res_set.nrows


class TestCrossStepConditions:
    def test_attribute_comparison_across_steps(self, social_db):
        # followers older than the person they follow
        q = ("select * from graph def a: Person ( ) --follows--> "
             "Person (age < a.age) into subgraph G")
        atom, res = run_atom(social_db, q)
        vt = social_db.db.vertex_type("Person")
        for i in range(res.nrows):
            a = vt.attributes_of(int(res.vertex_column(0)[i]))
            b = vt.attributes_of(int(res.vertex_column(2)[i]))
            assert b["age"] < a["age"]
        assert res.nrows > 0

    def test_cross_ref_with_arithmetic(self, social_db):
        q = ("select * from graph def a: Person ( ) --follows--> "
             "Person (score > a.score + 1) into subgraph G")
        atom, res = run_atom(social_db, q)
        vt = social_db.db.vertex_type("Person")
        for i in range(res.nrows):
            a = vt.attributes_of(int(res.vertex_column(0)[i]))
            b = vt.attributes_of(int(res.vertex_column(2)[i]))
            assert b["score"] > a["score"] + 1


class TestVariantBindings:
    def test_type_column_tracks_types(self, social_db):
        q = ("select * from graph Person (name = 'Alice') --[]--> [ ] "
             "into subgraph G")
        checked = check_statement(parse_statement(q), social_db.catalog)
        atom = checked.pattern.atoms()[0]
        bex = BindingExecutor(social_db.db, social_db.catalog)
        res = bex.run_atom(atom)
        assert res.has("t", 2)  # variant step records per-row types
        assert res.nrows == 3  # two follows edges + one livesIn


class TestGuards:
    def test_row_cap_enforced(self, social_db):
        bex = BindingExecutor(social_db.db, social_db.catalog, max_rows=1)
        checked = check_statement(
            parse_statement(
                "select B.id from graph Person ( ) --follows--> def B: "
                "Person ( ) into table T"
            ),
            social_db.catalog,
        )
        with pytest.raises(ExecutionError, match="exceeded"):
            bex.run_atom(checked.pattern.atoms()[0])

    def test_counted_regex_unrolls(self, social_db):
        q = ("select B.id from graph Person (name = 'Dan') "
             "( --follows--> [ ] ){2} def B: Person ( ) into table T")
        atom, res = run_atom(social_db, q)
        # Dan->p1->p2 (two parallel edges p1->p2) -> 2 rows
        assert res.nrows == 2
        assert keys(social_db, res, 2) == ["p2", "p2"]
