"""Unit tests for set-frontier execution (Eq. 5 semantics)."""

import numpy as np
import pytest

from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.frontier import FrontierExecutor


def checked_atom(db, text):
    out = check_statement(parse_statement(text), db.catalog)
    return out.pattern.atoms()[0]


def run(db, text, direction="forward"):
    atom = checked_atom(db, text)
    fx = FrontierExecutor(db.db)
    return atom, fx.run_atom(atom, direction)


def names_at(db, sets, type_name, key_attr="id"):
    vt = db.db.vertex_type(type_name)
    return sorted(vt.key_of(int(v))[0] for v in sets.get(type_name, []))


class TestSingleHop:
    Q = ("select * from graph Person (country = 'US') --follows--> "
         "Person (country = 'DE') into subgraph G")

    def test_forward(self, social_db):
        atom, res = run(social_db, self.Q)
        # US followers of DE people: p1->p2 (x2), p5->p6
        assert names_at(social_db, res.vertex_sets[0], "Person") == ["p1", "p5"]
        assert names_at(social_db, res.vertex_sets[2], "Person") == ["p2", "p6"]

    def test_backward_gives_same_sets(self, social_db):
        _, fwd = run(social_db, self.Q, "forward")
        _, bwd = run(social_db, self.Q, "backward")
        for i in (0, 2):
            assert names_at(social_db, fwd.vertex_sets[i], "Person") == names_at(
                social_db, bwd.vertex_sets[i], "Person"
            )
        assert sorted(fwd.edge_sets[1].get("follows", []).tolist()) == sorted(
            bwd.edge_sets[1].get("follows", []).tolist()
        )

    def test_edge_sets_only_on_full_paths(self, social_db):
        _, res = run(social_db, self.Q)
        et = social_db.db.edge_type("follows")
        for eid in res.edge_sets[1]["follows"]:
            s, t = et.endpoints_of(int(eid))
            svid = social_db.db.vertex_type("Person")
            assert svid.attributes_of(s)["country"] == "US"
            assert svid.attributes_of(t)["country"] == "DE"

    def test_parallel_edges_both_matched(self, social_db):
        _, res = run(social_db, self.Q)
        # p1 follows p2 twice — both eids must appear
        assert len(res.edge_sets[1]["follows"]) == 3


class TestBackwardCull:
    def test_cull_removes_dead_ends(self, social_db):
        # three hops: X --follows--> Y --follows--> Z(country FR): no FR
        # targets exist, so everything culls to empty
        q = ("select * from graph Person ( ) --follows--> Person ( ) "
             "--follows--> Person (country = 'FR') into subgraph G")
        _, res = run(social_db, q)
        assert res.is_empty()

    def test_partial_cull(self, social_db):
        # paths ending at Eve (p5) — nobody follows p5, empty;
        # paths ending at p3: p2->p3, p5->p3 survive, their sources cull
        q = ("select * from graph Person ( ) --follows--> "
             "Person (name = 'Carol') into subgraph G")
        _, res = run(social_db, q)
        assert names_at(social_db, res.vertex_sets[0], "Person") == ["p2", "p5"]

    def test_eq5_invariant_every_vertex_on_full_path(self, social_db):
        q = ("select * from graph Person (age > 20) --follows--> Person ( ) "
             "--follows--> Person (score > 1) into subgraph G")
        atom, res = run(social_db, q)
        # brute-force check against the oracle
        from repro.baselines import NxOracle

        oracle = NxOracle(social_db.db)
        vsets, esets = oracle.step_sets(atom)
        for i in (0, 2, 4):
            got = {
                (t, int(v))
                for t, vs in res.vertex_sets[i].items()
                for v in vs
            }
            want = {
                (t, v) for t, vs in vsets.get(i, {}).items() for v in vs
            }
            assert got == want, f"step {i}"


class TestInEdges:
    def test_in_edge_direction(self, social_db):
        q = ("select * from graph Person (name = 'Carol') <--follows-- "
             "Person ( ) into subgraph G")
        _, res = run(social_db, q)
        assert names_at(social_db, res.vertex_sets[2], "Person") == ["p2", "p5"]


class TestVariantSteps:
    def test_variant_edge(self, social_db):
        q = "select * from graph Person (name = 'Alice') --[]--> [ ] into subgraph G"
        _, res = run(social_db, q)
        # Alice follows Bob (x2) and lives in NYC
        assert names_at(social_db, res.vertex_sets[2], "Person") == ["p2"]
        assert names_at(social_db, res.vertex_sets[2], "City") == ["nyc"]
        assert set(res.edge_sets[1].keys()) == {"follows", "livesIn"}

    def test_fig9_shape(self, berlin_db):
        # all things pointing at a product: offers and reviews
        q = ("select * from graph ProductVtx (id = 'product1') <--[]-- [ ] "
             "into subgraph G")
        atom = checked_atom(berlin_db, q)
        fx = FrontierExecutor(berlin_db.db)
        res = fx.run_atom(atom)
        edge_types = set(res.edge_sets[1].keys())
        assert edge_types <= {"product", "reviewFor", "type", "feature", "producer"}
        # only edges *into* ProductVtx qualify
        assert "type" not in edge_types and "feature" not in edge_types


class TestLabels:
    def test_set_label_cycle(self, social_db):
        # def x: ... --follows--> ... --follows--> x (cycles and co-cycles)
        q = ("select * from graph def x: Person ( ) --follows--> Person ( ) "
             "--follows--> x into subgraph G")
        _, res = run(social_db, q)
        # set label: last step must be in the set matched at step 0 (which
        # is everyone), culled — p1->p2->p3 ends at p3 which defined too
        assert not res.is_empty()

    def test_label_env_records_final_sets(self, social_db):
        atom = checked_atom(
            social_db,
            "select * from graph def us: Person (country = 'US') "
            "--follows--> Person ( ) into subgraph G",
        )
        fx = FrontierExecutor(social_db.db)
        fx.run_atom(atom)
        assert "us" in fx.label_env
        labelled = names_at(social_db, fx.label_env["us"], "Person")
        assert labelled == ["p1", "p3", "p5"]

    def test_pin_labels_restrict(self, social_db):
        atom = checked_atom(
            social_db,
            "select * from graph def us: Person (country = 'US') "
            "--follows--> Person ( ) into subgraph G",
        )
        fx = FrontierExecutor(social_db.db)
        vt = social_db.db.vertex_type("Person")
        p1 = vt.vid_of(("p1",))
        fx.pin_labels["us"] = {"Person": np.asarray([p1], dtype=np.int64)}
        res = fx.run_atom(atom)
        assert names_at(social_db, res.vertex_sets[0], "Person") == ["p1"]


class TestSeeds:
    def test_seeded_first_step(self, social_db):
        from repro.graph import Subgraph

        vt = social_db.db.vertex_type("Person")
        seed = Subgraph(
            "seedG",
            {"Person": np.asarray([vt.vid_of(("p5",))], dtype=np.int64)},
            {},
        )
        social_db.db.register_subgraph(seed)
        social_db.catalog.subgraphs["seedG"] = {"Person": 1}
        q = ("select * from graph seedG.Person ( ) --follows--> Person ( ) "
             "into subgraph G")
        _, res = run(social_db, q)
        assert names_at(social_db, res.vertex_sets[0], "Person") == ["p5"]
        assert names_at(social_db, res.vertex_sets[2], "Person") == ["p3", "p6"]


class TestEmptyAndEdgeCases:
    def test_no_match_condition(self, social_db):
        q = ("select * from graph Person (country = 'XX') --follows--> "
             "Person ( ) into subgraph G")
        _, res = run(social_db, q)
        assert res.is_empty()

    def test_edge_condition_filters(self, social_db):
        q = ("select * from graph Person ( ) --follows(weight > 6)--> "
             "Person ( ) into subgraph G")
        _, res = run(social_db, q)
        # weights > 6: p5->p3(9), p6->p2(7), p1->p2(8)
        assert len(res.edge_sets[1]["follows"]) == 3

    def test_single_vertex_atom(self, social_db):
        q = "select * from graph Person (age > 40) into subgraph G"
        _, res = run(social_db, q)
        assert names_at(social_db, res.vertex_sets[0], "Person") == ["p3", "p5"]
