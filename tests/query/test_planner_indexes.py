"""Cost-based anchor access paths: index-seek vs. scan.

Covers the planner's choice (cost model + hints), the executor's seek
path producing identical results to the scan path, incremental index
maintenance across ingests, and the estimate-accuracy acceptance bound
(|est - actual| within the histogram's error bound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, PlanError
from repro.obs import Hints, QueryOptions
from repro.query.planner import AccessPath

SCHEMA = """
create table People(
  id varchar(10),
  city varchar(16),
  age integer,
  joined date
)

create table Knows(src varchar(10), dst varchar(10))

create vertex Person(id) from table People

create edge knows with
vertices (Person as A, Person as B)
from table Knows
where Knows.src = A.id and Knows.dst = B.id
"""

CITIES = ["rome", "oslo", "lima", "kiev", "bonn", "reno", "cork", "pune"]


def build_db(n=400, seed=7):
    """n people, skewed city distribution, ring-ish edges."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.execute(SCHEMA)
    people = [
        (
            f"p{i}",
            CITIES[min(int(rng.geometric(0.45)) - 1, len(CITIES) - 1)],
            int(rng.integers(18, 80)),
            730000 + int(rng.integers(0, 5000)),
        )
        for i in range(n)
    ]
    edges = [(f"p{i}", f"p{(i * 13 + 1) % n}") for i in range(n)]
    db.db.ingest_rows("People", people)
    db.db.ingest_rows("Knows", edges)
    db.catalog.refresh(db.db)
    return db


def subgraph_vids(result):
    sg = result.subgraph
    return {t: sorted(sg.vertices[t].tolist()) for t in sg.vertices}


QUERIES = [
    "select * from graph Person (city = 'pune') --knows--> Person ( ) "
    "into subgraph {}",
    "select * from graph Person (city = 'cork' and age > 40) --knows--> "
    "Person ( ) into subgraph {}",
    "select * from graph Person (age >= 70) --knows--> Person ( ) "
    "into subgraph {}",
    "select * from graph Person (city = 'rome') --knows--> "
    "Person (age < 30) into subgraph {}",
]


class TestSeekEquivalence:
    """index-seek must be invisible in results: seek ≡ scan."""

    @pytest.mark.parametrize("qt", QUERIES)
    @pytest.mark.parametrize("strategy", ["set", "bindings"])
    def test_same_results_with_and_without_index(self, qt, strategy):
        db = build_db()
        opts = QueryOptions(strategy=strategy)
        baseline = db.execute(qt.format("A"), options=opts)[0]
        db.execute("create index by_city_age on Person(city, age)")
        db.execute("create index by_age on Person(age)")
        indexed = db.execute(qt.format("B"), options=opts)[0]
        assert subgraph_vids(baseline) == subgraph_vids(indexed)

    def test_forced_seek_equals_forced_scan(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        q = (
            "select * from graph Person (city = 'oslo') --knows--> "
            "Person ( ) into subgraph {}"
        )
        seek = db.execute(
            q.format("S"),
            options=QueryOptions(hints=Hints(use_index=("by_city",))),
        )[0]
        scan = db.execute(
            q.format("C"),
            options=QueryOptions(hints=Hints(no_index=("by_city",))),
        )[0]
        assert seek.profile.attr_seeks == 1
        assert scan.profile.attr_seeks == 0
        assert subgraph_vids(seek) == subgraph_vids(scan)


class TestCostModelChoice:
    def test_selective_equality_prefers_seek(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        r = db.execute(
            "select * from graph Person (city = 'pune') --knows--> "
            "Person ( ) into subgraph G1"
        )[0]
        ap = r.profile.atoms[0]
        assert ap.access.startswith("index-seek(by_city)")
        assert ap.access_forced is None
        assert r.profile.attr_seeks == 1
        assert r.profile.attr_seek_rows >= 1

    def test_unselective_predicate_prefers_scan(self):
        db = build_db()
        db.execute("create index by_age on Person(age)")
        r = db.execute(
            "select * from graph Person (age >= 18) --knows--> "
            "Person ( ) into subgraph G2"
        )[0]
        assert r.profile.atoms[0].access == "scan"
        assert r.profile.attr_seeks == 0

    def test_no_condition_means_scan(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        r = db.execute(
            "select * from graph Person ( ) --knows--> Person ( ) "
            "into subgraph G3"
        )[0]
        assert r.profile.atoms[0].access == "scan"

    def test_composite_prefix_and_range(self):
        db = build_db()
        db.execute("create index by_city_age on Person(city, age)")
        r = db.execute(
            "select * from graph Person (city = 'rome' and age > 50) "
            "--knows--> Person ( ) into subgraph G4"
        )[0]
        assert r.profile.atoms[0].access == "index-seek(by_city_age)"

    def test_metrics_counters(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        db.execute(
            "select * from graph Person (city = 'pune') --knows--> "
            "Person ( ) into subgraph GM"
        )
        text = db.render_metrics()
        assert "graql_index_seeks_total" in text
        assert "graql_index_seek_rows_total" in text


class TestHints:
    def test_unknown_index_hint_raises_with_fixit(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        with pytest.raises(PlanError, match="unknown index 'nope'"):
            db.execute(
                "select * from graph Person (city = 'rome') --knows--> "
                "Person ( ) into subgraph H1",
                options=QueryOptions(hints=Hints(use_index=("nope",))),
            )
        with pytest.raises(PlanError, match="existing indexes: by_city"):
            db.execute(
                "select * from graph Person ( ) --knows--> Person ( ) "
                "into subgraph H2",
                options=QueryOptions(hints=Hints(no_index=("gone",))),
            )

    def test_use_index_forces_seek_even_when_costlier(self):
        db = build_db()
        db.execute("create index by_age on Person(age)")
        r = db.execute(
            "select * from graph Person (age >= 18) --knows--> "
            "Person ( ) into subgraph H3",
            options=QueryOptions(hints=Hints(use_index=("by_age",))),
        )[0]
        ap = r.profile.atoms[0]
        assert ap.access == "index-seek(by_age)"
        assert ap.access_forced == "hint"

    def test_no_index_forces_scan_even_when_selective(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        r = db.execute(
            "select * from graph Person (city = 'pune') --knows--> "
            "Person ( ) into subgraph H4",
            options=QueryOptions(hints=Hints(no_index=("by_city",))),
        )[0]
        assert r.profile.atoms[0].access == "scan"


class TestMaintenance:
    def test_ingest_after_create_keeps_index_fresh(self):
        db = build_db(n=50)
        db.execute("create index by_city on Person(city)")
        before = db.catalog.indexes["by_city"].num_entries
        db.execute(
            "select * from graph Person (city = 'zurich') --knows--> "
            "Person ( ) into subgraph M0",
            options=QueryOptions(hints=Hints(use_index=("by_city",))),
        )
        db.db.ingest_rows("People", [("q1", "zurich", 33, 731000)])
        db.catalog.refresh(db.db)
        assert db.catalog.indexes["by_city"].num_entries == before + 1
        r = db.execute(
            "select * from graph Person (city = 'zurich') --knows--> "
            "Person ( ) into subgraph M1",
            options=QueryOptions(hints=Hints(use_index=("by_city",))),
        )[0]
        assert r.profile.attr_seek_rows >= 1

    def test_drop_index_reverts_to_scan(self):
        db = build_db()
        db.execute("create index by_city on Person(city)")
        db.execute("drop index by_city")
        assert "by_city" not in db.catalog.indexes
        r = db.execute(
            "select * from graph Person (city = 'pune') --knows--> "
            "Person ( ) into subgraph D1"
        )[0]
        assert r.profile.atoms[0].access == "scan"


class TestEstimateAccuracy:
    """Issue acceptance: estimated anchor cardinality is within the
    histogram's error bound of the actual frontier."""

    @pytest.mark.parametrize("city", ["rome", "oslo", "pune"])
    def test_equality_estimate_within_bound(self, city):
        db = build_db(n=1000, seed=3)
        db.execute("create index by_city on Person(city)")
        r = db.execute(
            f"select * from graph Person (city = '{city}') --knows--> "
            f"Person ( ) into subgraph E{city}"
        )[0]
        ap = r.profile.atoms[0]
        anchor = next(s for s in ap.steps if s.index == 0)
        stats = db.catalog.vertices["Person"].column_stats("city")
        assert stats is not None
        bound = max(stats.error_bound_rows(), 1.0)
        assert abs(ap.access_est - anchor.actual) <= bound

    def test_range_estimate_within_bound(self):
        db = build_db(n=1000, seed=5)
        db.execute("create index by_age on Person(age)")
        r = db.execute(
            "select * from graph Person (age > 60) --knows--> "
            "Person ( ) into subgraph ER"
        )[0]
        ap = r.profile.atoms[0]
        anchor = next(s for s in ap.steps if s.index == 0)
        stats = db.catalog.vertices["Person"].column_stats("age")
        bound = max(stats.error_bound_rows(), 1.0)
        assert abs(ap.access_est - anchor.actual) <= bound


class TestAccessPathObject:
    def test_describe(self):
        scan = AccessPath("scan", None, None, (), None, 10.0, 2.5)
        assert scan.describe() == "scan"
        seek = AccessPath("index-seek", "by_x", "V", ("a",), None, 3.0, 4.0)
        assert seek.describe() == "index-seek(by_x)"
        assert "by_x" in repr(seek)
