"""Integration-level tests for statement execution and composition."""

import numpy as np
import pytest

from repro.errors import CatalogError, ExecutionError


class TestDDLExecution:
    def test_create_and_count_messages(self, social_db):
        results = social_db.execute("create table Extra(id varchar(4))")
        assert results[0].kind == "ddl"
        assert "Extra" in social_db.catalog.tables

    def test_vertex_result_counts_instances(self, social_db):
        r = social_db.execute(
            "create vertex Country(country) from table People"
        )[0]
        assert r.count == 3  # US, DE, FR


class TestGraphToTable:
    def test_into_table_registers(self, social_db):
        social_db.execute(
            "select y.id from graph Person (country = 'US') --follows--> "
            "def y: Person ( ) into table USFollows"
        )
        t = social_db.table("USFollows")
        assert t.num_rows == 5  # p1->p2 x2, p3->p1, p5->p3, p5->p6
        assert social_db.catalog.is_table("USFollows")

    def test_result_table_queryable(self, social_db):
        social_db.execute(
            "select y.id from graph Person ( ) --follows--> def y: Person ( ) "
            "into table All1"
        )
        out = social_db.query(
            "select id, count(*) as n from table All1 group by id "
            "order by n desc, id asc"
        )
        assert out.num_rows > 0

    def test_anonymous_table_result(self, social_db):
        t = social_db.query(
            "select y.id from graph Person (name = 'Dan') --follows--> "
            "def y: Person ( )"
        )
        assert t.to_rows() == [("p1",)]


class TestGraphToSubgraph:
    def test_star_subgraph(self, social_db):
        sg = social_db.query_subgraph(
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph G1"
        )
        assert sg.num_vertices > 0 and sg.num_edges > 0
        assert social_db.db.subgraph("G1") == sg

    def test_endpoint_projection(self, social_db):
        sg = social_db.query_subgraph(
            "select src, dst from graph def src: Person (country = 'US') "
            "--follows--> def dst: Person ( ) into subgraph Ends"
        )
        assert sg.num_edges == 0  # vertices only
        assert "Person" in sg.vertices

    def test_chaining_fig12(self, social_db):
        social_db.execute(
            "select dst from graph Person (name = 'Eve') --follows--> "
            "def dst: Person ( ) into subgraph EveTargets"
        )
        t = social_db.query(
            "select y.id from graph EveTargets.Person ( ) --follows--> "
            "def y: Person ( ) into table Onward"
        )
        # Eve follows p3 and p6; p3 follows p1, p6 follows p2
        assert sorted(r[0] for r in t.to_rows()) == ["p1", "p2"]


class TestAndComposition:
    def test_set_refinement_propagates(self, social_db):
        # US people who follow someone AND live in a big city; the and-arm
        # constrains the labeled step retroactively
        sg = social_db.query_subgraph(
            "select * from graph def x: Person (country = 'DE') --follows--> "
            "Person ( ) and (x --livesIn--> City (population > 3000000)) "
            "into subgraph G"
        )
        vt = social_db.db.vertex_type("Person")
        firsts = {vt.key_of(int(v))[0] for v in sg.vertex_ids("Person")}
        # both p2 and p6 are DE and berlin qualifies
        assert {"p2", "p6"} <= firsts

    def test_and_join_multiplicities(self, social_db):
        t = social_db.query(
            "select y.id as who, City.id as city from graph "
            "Person (country = 'US') --follows--> foreach y: Person ( ) "
            "and (y --livesIn--> City ( )) into table T"
        )
        for who, city in t.to_rows():
            p = social_db.db.vertex_type("Person")
            c = social_db.db.vertex_type("City")
            # the joined city really is the person's city
            vid = p.vid_of((who,))
            assert p.attributes_of(vid)["country"] == c.attributes_of(
                c.vid_of((city,))
            )["country"]


class TestOrComposition:
    def test_union_of_subgraphs(self, social_db):
        a = social_db.query_subgraph(
            "select * from graph Person (name = 'Alice') --follows--> "
            "Person ( ) into subgraph A1"
        )
        b = social_db.query_subgraph(
            "select * from graph Person (name = 'Alice') --livesIn--> "
            "City ( ) into subgraph B1"
        )
        u = social_db.query_subgraph(
            "select * from graph Person (name = 'Alice') --follows--> "
            "Person ( ) or (Person (name = 'Alice') --livesIn--> City ( )) "
            "into subgraph U1"
        )
        assert u == a.union(b, "U1")


class TestParams:
    def test_parameterized_execution(self, social_db):
        t = social_db.query(
            "select y.id from graph Person (name = %Who%) --follows--> "
            "def y: Person ( )",
            params={"Who": "Eve"},
        )
        assert sorted(r[0] for r in t.to_rows()) == ["p3", "p6"]

    def test_unbound_param_fails_cleanly(self, social_db):
        from repro.errors import TypeCheckError

        with pytest.raises((ExecutionError, TypeCheckError)):
            social_db.query(
                "select y.id from graph Person (name = %Who%) --follows--> "
                "def y: Person ( )"
            )


class TestStrategyOverrides:
    def test_forced_direction_same_answer(self, social_db):
        from repro.obs import QueryOptions

        q = ("select * from graph Person (country = 'US') --follows--> "
             "Person (country = 'DE') into subgraph F1")
        a = social_db.execute(
            q, options=QueryOptions(direction="forward")
        )[0].subgraph
        q2 = q.replace("F1", "F2")
        b = social_db.execute(
            q2, options=QueryOptions(direction="backward")
        )[0].subgraph
        assert {k: v.tolist() for k, v in a.vertices.items()} == {
            k: v.tolist() for k, v in b.vertices.items()
        }

    def test_forced_bindings_subgraph_same_as_set(self, social_db):
        from repro.obs import QueryOptions

        q = ("select * from graph Person ( ) --follows--> Person ( ) "
             "into subgraph S1")
        a = social_db.execute(q)[0].subgraph
        b = social_db.execute(
            q.replace("S1", "S2"), options=QueryOptions(strategy="bindings")
        )[0].subgraph
        assert {k: v.tolist() for k, v in a.vertices.items()} == {
            k: v.tolist() for k, v in b.vertices.items()
        }
        assert {k: v.tolist() for k, v in a.edges.items()} == {
            k: v.tolist() for k, v in b.edges.items()
        }


class TestFullPathsTable:
    def test_fig13_wide_table(self, social_db):
        t = social_db.query(
            "select * from graph def a: Person (country = 'US') --follows--> "
            "def b: Person ( ) into table Wide"
        )
        # all attributes of both steps plus the edge's from-table attrs
        assert "a_name" in t.schema.names()
        assert "b_name" in t.schema.names()
        assert "follows_weight" in t.schema.names()
        assert t.num_rows == 5
