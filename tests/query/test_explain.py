"""Tests for the EXPLAIN facility."""

import pytest

from repro.workloads.berlin import Q1_FIG7, Q2_FIG6


class TestGraphExplain:
    def test_strategy_and_direction_shown(self, social_db):
        text = social_db.explain(
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph G"
        )
        assert "strategy: set" in text
        assert "sweep" in text and "cost fwd=" in text

    def test_bindings_reasons(self, social_db):
        text = social_db.explain(
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T"
        )
        assert "strategy: bindings" in text
        assert "table output" in text

    def test_foreach_reason(self, social_db):
        text = social_db.explain(
            "select * from graph foreach x: Person ( ) --follows--> "
            "Person ( ) --follows--> x into subgraph G"
        )
        assert "foreach label" in text

    def test_step_details(self, social_db):
        text = social_db.explain(
            "select * from graph Person (age > 30) --follows--> Person ( ) "
            "into subgraph G"
        )
        assert "vertex Person (6 instances)" in text
        assert "age > 30" in text
        assert "est. sel" in text

    def test_variant_and_regex_steps(self, social_db):
        text = social_db.explain(
            "select * from graph Person ( ) ( --follows--> [ ] )+ "
            "Person ( ) into subgraph G"
        )
        assert "regex group" in text and "fixpoint" in text

    def test_seed_and_label_shown(self, social_db):
        social_db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph SeedG"
        )
        text = social_db.explain(
            "select * from graph SeedG.Person ( ) --follows--> Person ( ) "
            "into subgraph G2"
        )
        assert "seeded by subgraph SeedG" in text


class TestTableExplain:
    def test_pipeline_stages(self, social_db):
        text = social_db.explain(
            "select top 3 country, count(*) as n from table People "
            "where age > 20 group by country order by n desc"
        )
        assert "scan People (6 rows)" in text
        assert "filter age > 20" in text
        assert "aggregate [count(*)] group by country" in text
        assert "sort by n desc" in text
        assert "top 3" in text

    def test_projection_listed(self, social_db):
        text = social_db.explain("select name, age from table People")
        assert "project [name, age]" in text


class TestScriptExplain:
    def test_waves_annotated(self, social_db):
        text = social_db.explain(
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table A\n"
            "select id, count(*) as n from table A group by id"
        )
        assert "(wave 0)" in text and "(wave 1)" in text
        assert "2 wave(s)" in text

    def test_berlin_queries_explain(self, berlin_db):
        t1 = berlin_db.explain(Q2_FIG6, params={"Product1": "p"})
        t2 = berlin_db.explain(
            Q1_FIG7, params={"Country1": "US", "Country2": "DE"}
        )
        assert "GRAPH SELECT" in t1 and "GRAPH SELECT" in t2
        assert "foreach y" in t2

    def test_ddl_explain(self, social_db):
        text = social_db.explain(
            "create table Z(id integer)\n"
            "create vertex ZV(id) from table Z\n"
            "ingest table Z z.csv"
        )
        assert "CREATE TABLE Z" in text
        assert "CREATE VERTEX ZV <- view over Z" in text
        assert "INGEST z.csv -> Z" in text
