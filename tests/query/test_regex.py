"""Unit tests for path regular expressions (Fig. 10)."""

import pytest

from repro import Database
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.frontier import FrontierExecutor


def chain_db(edges, n=8) -> Database:
    """A small typed digraph with one 'next' edge type."""
    db = Database()
    db.execute(
        """
        create table N(id integer, tag varchar(8))
        create table E(src integer, dst integer)
        create vertex V(id) from table N
        create edge next with vertices (V as A, V as B) from table E
        where E.src = A.id and E.dst = B.id
        """
    )
    db.db.ingest_rows("N", [(i, "end" if i == n - 1 else "mid") for i in range(n)])
    db.db.ingest_rows("E", edges)
    db.catalog.refresh(db.db)
    return db


def run(db, text):
    checked = check_statement(parse_statement(text), db.catalog)
    atom = checked.pattern.atoms()[0]
    return FrontierExecutor(db.db).run_atom(atom)


def vids(db, sets, step):
    vt = db.db.vertex_type("V")
    return sorted(int(vt.key_of(int(v))[0]) for v in sets.vertex_sets[step].get("V", []))


LINE = [(i, i + 1) for i in range(7)]  # 0->1->...->7


class TestPlus:
    def test_reachability_on_a_line(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 0) ( --next--> [ ] )+ "
                      "V ( ) into subgraph G")
        assert vids(db, res, 2) == [1, 2, 3, 4, 5, 6, 7]

    def test_target_condition_culls(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 0) ( --next--> [ ] )+ "
                      "V (id = 3) into subgraph G")
        assert vids(db, res, 2) == [3]
        # only the edges 0->1->2->3 lie on paths
        assert len(res.edge_sets[1]["next"]) == 3

    def test_plus_requires_at_least_one_hop(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 0) ( --next--> [ ] )+ "
                      "V (id = 0) into subgraph G")
        assert res.is_empty()  # no cycle back to 0

    def test_cycle(self):
        db = chain_db(LINE + [(7, 0)])
        res = run(db, "select * from graph V (id = 0) ( --next--> [ ] )+ "
                      "V (id = 0) into subgraph G")
        assert vids(db, res, 0) == [0]
        assert len(res.edge_sets[1]["next"]) == 8  # whole cycle on the path


class TestStar:
    def test_zero_hops_allowed(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 3) ( --next--> [ ] )* "
                      "V ( ) into subgraph G")
        assert vids(db, res, 2) == [3, 4, 5, 6, 7]

    def test_star_with_unreachable_target(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 5) ( --next--> [ ] )* "
                      "V (id = 2) into subgraph G")
        assert res.is_empty()

    def test_star_identity_match(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 2) ( --next--> [ ] )* "
                      "V (id = 2) into subgraph G")
        assert vids(db, res, 0) == [2]


class TestCounted:
    def test_exact_count(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 0) ( --next--> [ ] ){3} "
                      "V ( ) into subgraph G")
        assert vids(db, res, 2) == [3]

    def test_count_with_branching(self):
        db = chain_db([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        res = run(db, "select * from graph V (id = 0) ( --next--> [ ] ){2} "
                      "V ( ) into subgraph G")
        assert vids(db, res, 2) == [3]
        assert len(res.edge_sets[1]["next"]) == 4  # both 2-hop routes kept

    def test_count_one_equals_plain_edge(self):
        db = chain_db(LINE)
        a = run(db, "select * from graph V (id = 0) ( --next--> [ ] ){1} "
                    "V ( ) into subgraph G")
        b = run(db, "select * from graph V (id = 0) --next--> V ( ) "
                    "into subgraph G")
        assert vids(db, a, 2) == vids(db, b, 2)

    def test_zero_count_rejected(self):
        from repro.errors import ExecutionError

        db = chain_db(LINE)
        with pytest.raises(ExecutionError):
            run(db, "select * from graph V (id = 0) ( --next--> [ ] ){0} "
                    "V ( ) into subgraph G")


class TestReverseDirection:
    def test_incoming_regex(self):
        db = chain_db(LINE)
        res = run(db, "select * from graph V (id = 7) ( <--next-- [ ] )+ "
                      "V (id = 4) into subgraph G")
        assert vids(db, res, 2) == [4]

    def test_backward_sweep_matches_forward(self):
        db = chain_db(LINE + [(2, 5), (5, 2)])
        q = ("select * from graph V (id = 0) ( --next--> [ ] )+ "
             "V (tag = 'end') into subgraph G")
        checked = check_statement(parse_statement(q), db.catalog)
        atom = checked.pattern.atoms()[0]
        f = FrontierExecutor(db.db).run_atom(atom, "forward")
        b = FrontierExecutor(db.db).run_atom(atom, "backward")
        assert vids(db, f, 0) == vids(db, b, 0)
        assert vids(db, f, 2) == vids(db, b, 2)
        assert sorted(f.edge_sets[1]["next"].tolist()) == sorted(
            b.edge_sets[1]["next"].tolist()
        )


class TestMultiPairGroups:
    def test_two_pair_group(self, social_db):
        # (--follows--> [ ] --livesIn--> [ ]) exercised via berlin-like
        # two-step repetition on the social graph
        q = ("select * from graph Person (name = 'Dan') "
             "( --follows--> [ ] ){2} Person ( ) into subgraph G")
        checked = check_statement(parse_statement(q), social_db.catalog)
        atom = checked.pattern.atoms()[0]
        res = FrontierExecutor(social_db.db).run_atom(atom)
        vt = social_db.db.vertex_type("Person")
        ids = sorted(vt.key_of(int(v))[0] for v in res.vertex_sets[2].get("Person", []))
        # Dan->p1->p2
        assert ids == ["p2"]
