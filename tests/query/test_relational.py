"""Unit tests for the relational statement executor (Table I)."""

import pytest

from repro.errors import ExecutionError
from repro.graql.parser import parse_statement
from repro.query.relational import execute_table_select


def q(db, text):
    stmt = parse_statement(text)
    return execute_table_select(db.db, stmt)


class TestSelect:
    def test_star(self, social_db):
        out = q(social_db, "select * from table People")
        assert out.num_rows == 6
        assert out.schema.names()[0] == "id"

    def test_projection_order(self, social_db):
        out = q(social_db, "select age, name from table People")
        assert out.schema.names() == ["age", "name"]

    def test_alias(self, social_db):
        out = q(social_db, "select name as who from table People")
        assert out.schema.names() == ["who"]

    def test_where(self, social_db):
        out = q(social_db, "select id from table People where country = 'US'")
        assert {r[0] for r in out.to_rows()} == {"p1", "p3", "p5"}

    def test_where_on_date(self, social_db):
        out = q(social_db,
                "select id from table People where joined >= '2013-06-01'")
        assert out.num_rows > 0


class TestAggregates:
    def test_count_star(self, social_db):
        out = q(social_db, "select count(*) as n from table People")
        assert out.row(0) == (6,)

    def test_group_count(self, social_db):
        out = q(social_db,
                "select country, count(*) as n from table People group by country")
        assert dict(out.to_rows()) == {"US": 3, "DE": 2, "FR": 1}

    def test_all_aggregates(self, social_db):
        out = q(social_db,
                "select count(*) as c, sum(age) as s, avg(age) as a, "
                "min(age) as lo, max(age) as hi from table People")
        c, s, a, lo, hi = out.row(0)
        assert (c, s, lo, hi) == (6, 200, 19, 55)
        assert a == pytest.approx(200 / 6)

    def test_default_agg_aliases(self, social_db):
        out = q(social_db, "select count(*), sum(age) from table People")
        assert out.schema.names() == ["count", "sum_age"]

    def test_group_col_in_output(self, social_db):
        out = q(social_db,
                "select country, max(age) as oldest from table People "
                "group by country order by country asc")
        assert out.to_rows() == [("DE", 28), ("FR", 23), ("US", 55)]


class TestOrderTopDistinct:
    def test_order_and_top(self, social_db):
        out = q(social_db,
                "select top 2 name from table People order by age desc")
        assert [r[0] for r in out.to_rows()] == ["Eve", "Carol"]

    def test_order_by_alias(self, social_db):
        out = q(social_db,
                "select country, count(*) as n from table People "
                "group by country order by n desc, country asc")
        assert [r[0] for r in out.to_rows()] == ["US", "DE", "FR"]

    def test_distinct(self, social_db):
        out = q(social_db, "select distinct country from table People")
        assert out.num_rows == 3

    def test_order_by_source_column_not_projected(self, social_db):
        # SQL convention: order keys may be source columns even when not
        # in the projection
        out = q(social_db, "select name from table People order by age asc")
        assert [r[0] for r in out.to_rows()][:2] == ["Frank", "Dan"]

    def test_order_by_truly_unknown_column(self, social_db):
        with pytest.raises(ExecutionError, match="order by"):
            q(social_db, "select name from table People order by nonexistent")

    def test_top_after_order(self, social_db):
        out = q(social_db,
                "select top 1 id from table People order by score desc")
        assert out.row(0) == ("p5",)


class TestIntoNaming:
    def test_result_named_by_into(self, social_db):
        out = q(social_db, "select * from table People into table Snapshot")
        assert out.name == "Snapshot"

    def test_anonymous_result(self, social_db):
        out = q(social_db, "select * from table People")
        assert out.name == "result"


class TestPaperFig6Tail:
    """The exact relational tail of Fig. 6/7."""

    def test_top_k_group_count(self, social_db):
        social_db.execute(
            "select B.id from graph Person ( ) --follows--> def B: Person ( ) "
            "into table T1"
        )
        out = q(social_db,
                "select top 10 id, count(*) as groupCount from table T1 "
                "group by id order by groupCount desc, id asc")
        # follow targets: p2 x3 (two from p1, one from p6), p3 x2, p1 x2, p6 x1
        assert out.to_rows()[0] == ("p2", 3)
        assert dict(out.to_rows())["p3"] == 2
