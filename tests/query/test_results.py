"""Unit tests for result-materialization internals."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.bindings import BindingExecutor
from repro.query.results import JoinedBindings, NameMap


def bindings_for(db, text):
    checked = check_statement(parse_statement(text), db.catalog)
    atom = checked.pattern.atoms()[0]
    bex = BindingExecutor(db.db, db.catalog)
    return JoinedBindings.from_result(0, bex.run_atom(atom), atom), atom


class TestNameMap:
    def test_labels_and_types(self, social_db):
        _, atom = bindings_for(
            social_db,
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T",
        )
        nm = NameMap()
        nm.add_atom(0, atom)
        aord, pos, step = nm.lookup("y")
        assert (aord, pos) == (0, 2)
        # the first occurrence of the type name wins
        aord, pos, _ = nm.lookup("Person")
        assert pos == 0

    def test_unknown_name(self):
        nm = NameMap()
        with pytest.raises(ExecutionError, match="unknown step"):
            nm.lookup("nope")
        with pytest.raises(ExecutionError, match="unknown edge-step"):
            nm.lookup_edge("nope")

    def test_edge_labels_tracked(self, social_db):
        _, atom = bindings_for(
            social_db,
            "select y.id from graph Person ( ) --def f: follows--> def y: "
            "Person ( ) into table T",
        )
        nm = NameMap()
        nm.add_atom(0, atom)
        assert nm.is_edge_label("f")
        assert nm.lookup_edge("f") == (0, 1)


class TestJoinedBindings:
    def test_join_requires_pairs(self, social_db):
        jb, _ = bindings_for(
            social_db,
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T",
        )
        with pytest.raises(ExecutionError, match="shared label"):
            jb.join(jb, [])

    def test_join_multiplies_matching_rows(self, social_db):
        jb, _ = bindings_for(
            social_db,
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T",
        )
        joined = jb.join(jb, [((0, "v", 2), (0, "v", 2))])
        # self-join on the target column: sum over targets of count^2
        import collections

        counts = collections.Counter(jb.columns[(0, "v", 2)].tolist())
        assert joined.nrows == sum(c * c for c in counts.values())

    def test_take(self, social_db):
        jb, _ = bindings_for(
            social_db,
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T",
        )
        import numpy as np

        # JoinedBindings carries plain arrays; slicing works through columns
        sliced = {k: v[:2] for k, v in jb.columns.items()}
        assert all(len(v) == 2 for v in sliced.values())

    def test_edge_types_for_single(self, social_db):
        jb, atom = bindings_for(
            social_db,
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T",
        )
        out = jb.edge_types_for(0, 1, social_db.db)
        assert len(out) == 1 and out[0][0] == "follows"

    def test_edge_types_for_variant(self, social_db):
        checked = check_statement(
            parse_statement(
                "select * from graph Person (name = 'Alice') --[]--> [ ] "
                "into subgraph G"
            ),
            social_db.catalog,
        )
        atom = checked.pattern.atoms()[0]
        bex = BindingExecutor(social_db.db, social_db.catalog)
        jb = JoinedBindings.from_result(0, bex.run_atom(atom), atom)
        split = dict(jb.edge_types_for(0, 1, social_db.db))
        assert set(split) == {"follows", "livesIn"}
        assert len(split["follows"]) == 2 and len(split["livesIn"]) == 1


class TestWideTableEdgeCases:
    def test_variant_step_star_table_rejected(self, social_db):
        with pytest.raises(ExecutionError, match="variant"):
            social_db.query(
                "select * from graph Person (name = 'Alice') --[]--> [ ] "
                "into table W"
            )

    def test_column_name_dedup(self, social_db):
        t = social_db.query(
            "select a.id, b.id from graph def a: Person ( ) --follows--> "
            "def b: Person ( ) into table Dedup"
        )
        assert t.schema.names() == ["id", "id_2"]

    def test_step_item_key_columns(self, social_db):
        t = social_db.query(
            "select b from graph Person (name = 'Alice') --follows--> "
            "def b: Person ( ) into table Keys"
        )
        assert t.schema.names() == ["b_id"]
        assert {r[0] for r in t.to_rows()} == {"p2"}
