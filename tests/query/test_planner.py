"""Unit tests for the dynamic query planner (Section III-B)."""

import pytest

from repro.errors import PlanError
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.planner import plan_atom, plan_graph_select


def checked(db, text):
    return check_statement(parse_statement(text), db.catalog)


class TestDirectionChoice:
    def test_selective_end_wins(self, berlin_db):
        # person-country filter on the left vs unfiltered producers on the
        # right: starting from the filtered side must be estimated cheaper
        c = checked(
            berlin_db,
            "select * from graph PersonVtx (id = 'person1') <--reviewer-- "
            "ReviewVtx ( ) --reviewFor--> ProductVtx ( ) into subgraph G",
        )
        plan = plan_graph_select(c, berlin_db.catalog)
        ap = next(iter(plan.atom_plans.values()))
        assert ap.direction == "forward"
        assert ap.cost_forward < ap.cost_backward

    def test_reverse_when_selectivity_flips(self, berlin_db):
        c = checked(
            berlin_db,
            "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
            "--reviewFor--> ProductVtx (id = 'product1') into subgraph G",
        )
        plan = plan_graph_select(c, berlin_db.catalog)
        ap = next(iter(plan.atom_plans.values()))
        assert ap.direction == "backward"

    def test_force_direction(self, berlin_db):
        c = checked(
            berlin_db,
            "select * from graph PersonVtx (id = 'person1') <--reviewer-- "
            "ReviewVtx ( ) into subgraph G",
        )
        plan = plan_graph_select(c, berlin_db.catalog, force_direction="backward")
        assert next(iter(plan.atom_plans.values())).direction == "backward"

    def test_internal_label_ref_pins_forward(self, social_db):
        c = checked(
            social_db,
            "select * from graph def x: Person (country = 'US') --follows--> "
            "Person ( ) --follows--> x into subgraph G",
        )
        plan = plan_graph_select(c, social_db.catalog, force_direction="backward")
        # forced direction is overridden: the label must be defined before
        # its reference during the sweep
        assert next(iter(plan.atom_plans.values())).direction == "forward"


class TestStrategyChoice:
    def test_subgraph_uses_set(self, social_db):
        c = checked(
            social_db,
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G",
        )
        assert plan_graph_select(c, social_db.catalog).strategy == "set"

    def test_table_uses_bindings(self, social_db):
        c = checked(
            social_db,
            "select y.id from graph Person ( ) --follows--> def y: Person ( ) "
            "into table T",
        )
        assert plan_graph_select(c, social_db.catalog).strategy == "bindings"

    def test_foreach_forces_bindings_even_for_subgraph(self, social_db):
        c = checked(
            social_db,
            "select * from graph foreach x: Person ( ) --follows--> "
            "Person ( ) --follows--> x into subgraph G",
        )
        assert plan_graph_select(c, social_db.catalog).strategy == "bindings"

    def test_set_strategy_refused_when_bindings_needed(self, social_db):
        c = checked(
            social_db,
            "select * from graph foreach x: Person ( ) --follows--> "
            "Person ( ) --follows--> x into subgraph G",
        )
        with pytest.raises(PlanError):
            plan_graph_select(c, social_db.catalog, force_strategy="set")

    def test_cross_step_condition_forces_bindings(self, social_db):
        c = checked(
            social_db,
            "select * from graph def a: Person ( ) --follows--> "
            "Person (age < a.age) into subgraph G",
        )
        assert c.pattern.needs_bindings
        assert plan_graph_select(c, social_db.catalog).strategy == "bindings"


class TestCostModel:
    def test_costs_positive_and_finite(self, berlin_db):
        c = checked(
            berlin_db,
            "select * from graph OfferVtx ( ) --product--> ProductVtx ( ) "
            "--producer--> ProducerVtx ( ) into subgraph G",
        )
        ap = plan_atom(c.pattern.atoms()[0], berlin_db.catalog)
        assert 0 < ap.cost_forward < float("inf")
        assert 0 < ap.cost_backward < float("inf")

    def test_multi_atom_plans(self, berlin_db):
        c = checked(
            berlin_db,
            "select y.id from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
            "--reviewFor--> def y: ProductVtx ( ) and "
            "(y --type--> TypeVtx ( )) into table T",
        )
        plan = plan_graph_select(c, berlin_db.catalog)
        assert len(plan.atom_plans) == 2
