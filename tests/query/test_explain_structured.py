"""Structured EXPLAIN: the ExplainReport/PlanNode API and its pinned
JSON schema.

``Database.explain`` returns a frozen report object; ``str(report)``
must equal ``report.to_text()`` byte for byte (that is what keeps the
golden files meaningful), and ``to_json()`` is a tool contract pinned
here the same way ``graql check --format json`` is pinned in
tests/analysis/test_json_schema.py.
"""

from __future__ import annotations

import json

import pytest

from repro.query.explain import ExplainReport, PlanNode, StatementPlan

#: top-level report keys, exactly
REPORT_KEYS = {"mode", "statements", "schedule"}
#: per-statement keys, exactly
STATEMENT_KEYS = {"index", "wave", "plan", "profile"}
#: per-node keys, exactly
NODE_KEYS = {"kind", "title", "attrs", "children"}

_Q = (
    "select * from graph Person (country = 'US') --follows--> "
    "Person ( ) into subgraph SG"
)


class TestReportObject:
    def test_explain_returns_report(self, social_db):
        report = social_db.explain(_Q)
        assert isinstance(report, ExplainReport)
        assert report.mode == "plan"
        assert all(isinstance(sp, StatementPlan) for sp in report.statements)
        assert all(isinstance(sp.root, PlanNode) for sp in report.statements)

    def test_str_delegates_to_to_text(self, social_db):
        report = social_db.explain(_Q)
        assert str(report) == report.to_text()

    def test_contains_searches_text(self, social_db):
        report = social_db.explain(_Q)
        assert "GRAPH SELECT" in report
        assert "no-such-fragment" not in report

    def test_report_is_frozen(self, social_db):
        report = social_db.explain(_Q)
        with pytest.raises(AttributeError):
            report.mode = "analyze"
        with pytest.raises(AttributeError):
            report.statements[0].root.title = "x"

    def test_analyze_attaches_profiles(self, social_db):
        report = social_db.explain(_Q, mode="analyze")
        assert report.mode == "analyze"
        assert report.statements[0].profile is not None
        assert "PROFILE" in report.to_text()

    def test_plan_mode_has_no_profiles(self, social_db):
        report = social_db.explain(_Q)
        assert all(sp.profile is None for sp in report.statements)


class TestJsonSchema:
    def _walk(self, node: dict):
        yield node
        for c in node["children"]:
            yield from self._walk(c)

    def test_report_key_set_is_pinned(self, social_db):
        payload = social_db.explain(_Q).to_json()
        assert set(payload) == REPORT_KEYS
        assert set(payload["schedule"]) == {"num_waves", "max_parallelism"}
        for sp in payload["statements"]:
            assert set(sp) == STATEMENT_KEYS
            for node in self._walk(sp["plan"]):
                assert set(node) == NODE_KEYS
                assert isinstance(node["attrs"], dict)
                assert isinstance(node["children"], list)

    def test_json_round_trips(self, social_db):
        payload = social_db.explain(_Q).to_json()
        assert json.loads(json.dumps(payload)) == payload

    def test_graph_select_node_kinds(self, social_db):
        payload = social_db.explain(_Q).to_json()
        root = payload["statements"][0]["plan"]
        assert root["kind"] == "graph-select"
        assert root["attrs"]["strategy"] in ("set", "bindings")
        kinds = {n["kind"] for n in self._walk(root)}
        assert {"atom", "vertex-step", "edge-step", "into"} <= kinds

    def test_atom_node_carries_costs_and_access(self, social_db):
        payload = social_db.explain(_Q).to_json()
        root = payload["statements"][0]["plan"]
        atom = next(n for n in self._walk(root) if n["kind"] == "atom")
        assert atom["attrs"]["direction"] in ("forward", "backward")
        assert atom["attrs"]["cost_forward"] > 0
        assert atom["attrs"]["cost_backward"] > 0
        access = next(n for n in self._walk(atom) if n["kind"] == "access")
        assert access["attrs"]["kind"] in ("scan", "index-seek")
        assert access["attrs"]["est_rows"] >= 0

    def test_analyze_profile_in_json(self, social_db):
        payload = social_db.explain(_Q, mode="analyze").to_json()
        prof = payload["statements"][0]["profile"]
        assert prof is not None
        assert "stages" in prof and "atoms" in prof
        assert "attr_seeks" in prof  # seek counters are part of the schema

    def test_table_select_nodes(self, social_db):
        payload = social_db.explain(
            "select name, age from table People"
        ).to_json()
        root = payload["statements"][0]["plan"]
        assert root["kind"] == "table-select"
        kinds = [n["kind"] for n in self._walk(root)]
        assert "scan" in kinds and "project" in kinds

    def test_ddl_nodes(self, social_db):
        payload = social_db.explain(
            "create table Z(id integer)"
        ).to_json()
        assert payload["statements"][0]["plan"]["kind"] == "create-table"


class TestAccessPathInExplain:
    """EXPLAIN names the chosen anchor access path (issue acceptance)."""

    def test_scan_shown_without_indexes(self, social_db):
        assert "access: scan est=" in social_db.explain(_Q)

    def test_index_seek_named_when_index_wins(self, social_db):
        social_db.execute("create index by_country on Person(country)")
        text = str(
            social_db.explain(
                "select * from graph Person (country = 'US') "
                "--follows--> Person ( ) into subgraph SI"
            )
        )
        # tiny fixture: either path may win on cost, but the access line
        # must name whichever was picked
        assert "access: index-seek(by_country)" in text or "access: scan" in text
        node = social_db.explain(
            "select * from graph Person (country = 'US') "
            "--follows--> Person ( ) into subgraph SI2"
        ).to_json()["statements"][0]["plan"]
        access = next(
            n
            for n in TestJsonSchema._walk(TestJsonSchema(), node)
            if n["kind"] == "access"
        )
        if access["attrs"]["kind"] == "index-seek":
            assert access["attrs"]["index"] == "by_country"
            assert access["attrs"]["path"] == "index-seek(by_country)"
        else:
            assert access["attrs"]["path"] == "scan"

    def test_hint_forces_seek_and_is_marked(self, social_db):
        from repro.obs import Hints, QueryOptions

        social_db.execute("create index by_age on Person(age)")
        report = social_db.explain(
            "select * from graph Person (age > 30) --follows--> "
            "Person ( ) into subgraph SH",
            options=QueryOptions(hints=Hints(use_index=("by_age",))),
        )
        assert "access: index-seek(by_age)" in report
        assert "(forced by hint)" in report
