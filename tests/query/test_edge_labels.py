"""Tests for edge labels (Eq. 6: labels alias sets of vertices *or edges*)."""

import pytest

from repro.errors import TypeCheckError
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement


class TestTypecheck:
    def test_edge_label_registers(self, social_db):
        out = check_statement(
            parse_statement(
                "select * from graph Person ( ) --def f: follows--> "
                "Person ( ) into subgraph G"
            ),
            social_db.catalog,
        )
        assert "f" in out.pattern.edge_labels
        assert out.pattern.has_edge_labels

    def test_edge_label_reference_resolves(self, social_db):
        out = check_statement(
            parse_statement(
                "select * from graph Person ( ) --def f: follows--> "
                "Person ( ) --f--> Person ( ) into subgraph G"
            ),
            social_db.catalog,
        )
        atom = out.pattern.atoms()[0]
        assert atom.steps[3].label_ref == "f"
        assert atom.steps[3].names == ["follows"]

    def test_foreach_edge_label_rejected(self, social_db):
        with pytest.raises(TypeCheckError, match="element-wise"):
            check_statement(
                parse_statement(
                    "select * from graph Person ( ) --foreach f: follows--> "
                    "Person ( ) into subgraph G"
                ),
                social_db.catalog,
            )

    def test_duplicate_edge_label_rejected(self, social_db):
        with pytest.raises(TypeCheckError, match="more than once"):
            check_statement(
                parse_statement(
                    "select * from graph Person ( ) --def f: follows--> "
                    "Person ( ) --def f: follows--> Person ( ) "
                    "into subgraph G"
                ),
                social_db.catalog,
            )

    def test_edge_label_shadowing_rejected(self, social_db):
        with pytest.raises(TypeCheckError, match="shadows"):
            check_statement(
                parse_statement(
                    "select * from graph Person ( ) --def follows: follows--> "
                    "Person ( ) into subgraph G"
                ),
                social_db.catalog,
            )

    def test_edge_label_selectable_into_subgraph_only(self, social_db):
        with pytest.raises(TypeCheckError, match="subgraph"):
            check_statement(
                parse_statement(
                    "select f from graph Person ( ) --def f: follows--> "
                    "Person ( ) into table T"
                ),
                social_db.catalog,
            )


class TestExecution:
    def test_edge_label_selection(self, social_db):
        """Select just the labeled edge set into a subgraph."""
        sg = social_db.query_subgraph(
            "select f from graph Person (country = 'US') "
            "--def f: follows(weight > 4)--> Person ( ) into subgraph G"
        )
        # weights > 4 leaving US people: p1->p2 (5), p1->p2 (8), p5->p3 (9)
        assert len(sg.edge_ids("follows")) == 3
        assert sg.num_vertices == 0

    def test_edge_label_rematch_constrains(self, social_db):
        """A later --f--> step only traverses the labeled edge set."""
        # f = heavy follows edges; the second hop must reuse exactly those
        sg_all = social_db.query_subgraph(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "--follows--> Person ( ) into subgraph A"
        )
        sg_lab = social_db.query_subgraph(
            "select * from graph Person ( ) --def f: follows(weight > 6)--> "
            "Person ( ) --f--> Person ( ) into subgraph B"
        )
        # the labeled version is a restriction of the unrestricted one
        assert len(sg_lab.edge_ids("follows")) <= len(sg_all.edge_ids("follows"))
        # every matched edge in B satisfies the label's condition
        et = social_db.db.edge_type("follows")
        w, _ = et.attribute_array("weight")
        for eid in sg_lab.edge_ids("follows"):
            assert w[int(eid)] > 6

    def test_edge_label_cycle_query(self, social_db):
        # paths of two heavy hops: (p1->p2 w8, ...) chain via label reuse
        sg = social_db.query_subgraph(
            "select * from graph Person ( ) --def f: follows(weight >= 7)--> "
            "Person ( ) --f--> Person ( ) into subgraph C"
        )
        # heavy edges: p1->p2 (8), p6->p2 (7), p5->p3 (9): chains? p6->p2
        # then p2->? none heavy from p2 -> expect empty or only valid chains
        et = social_db.db.edge_type("follows")
        vt = social_db.db.vertex_type("Person")
        for eid in sg.edge_ids("follows"):
            s, t = et.endpoints_of(int(eid))
            assert vt.key_of(s)[0] in {"p1", "p6", "p5"} or True

    def test_cluster_falls_back_for_edge_labels(self, social_db):
        from repro.dist import Cluster

        cluster = Cluster(social_db.db, 2, social_db.catalog)
        r = cluster.execute(
            "select f from graph Person ( ) --def f: follows--> Person ( ) "
            "into subgraph EL"
        )[0]
        assert r.subgraph.num_edges == 8

    def test_matches_direct_condition(self, social_db):
        """Label definition + immediate use equals inlining the condition."""
        a = social_db.query_subgraph(
            "select * from graph Person ( ) --def f: follows(weight > 3)--> "
            "Person ( ) into subgraph D1"
        )
        b = social_db.query_subgraph(
            "select * from graph Person ( ) --follows(weight > 3)--> "
            "Person ( ) into subgraph D2"
        )
        assert {k: v.tolist() for k, v in a.edges.items()} == {
            k: v.tolist() for k, v in b.edges.items()
        }


class TestCrossAtomEdgeLabels:
    def test_edge_label_shared_across_and(self, social_db):
        """q2 re-traverses only q1's labeled edge set (Eq. 6 for edges,
        across an 'and' composition)."""
        sg = social_db.query_subgraph(
            "select * from graph def a: Person (country = 'US') "
            "--def f: follows(weight > 4)--> Person ( ) "
            "and (a --f--> Person (country = 'DE')) into subgraph XA"
        )
        et = social_db.db.edge_type("follows")
        w, _ = et.attribute_array("weight")
        vt = social_db.db.vertex_type("Person")
        for eid in sg.edge_ids("follows"):
            assert w[int(eid)] > 4
            s, _t = et.endpoints_of(int(eid))
            assert vt.attributes_of(s)["country"] == "US"

    def test_edge_label_and_selection_combined(self, social_db):
        sg = social_db.query_subgraph(
            "select f from graph def a: Person ( ) "
            "--def f: follows--> Person (country = 'DE') into subgraph XB"
        )
        # only edges into DE people survive the cull and the selection
        et = social_db.db.edge_type("follows")
        vt = social_db.db.vertex_type("Person")
        assert len(sg.edge_ids("follows")) == 4  # p1->p2 x2, p6->p2, p5->p6
        for eid in sg.edge_ids("follows"):
            _s, t = et.endpoints_of(int(eid))
            assert vt.attributes_of(t)["country"] == "DE"
