"""Tests for the Berlin (BSBM) generator and its query catalog."""

import numpy as np
import pytest

from repro.workloads.berlin import (
    BERLIN_DDL,
    QUERIES,
    BerlinData,
    berlin_database,
    generate_berlin,
    write_berlin_csvs,
)


class TestGenerator:
    def test_deterministic(self):
        a = generate_berlin(50, seed=3)
        b = generate_berlin(50, seed=3)
        assert a.tables == b.tables

    def test_seed_changes_data(self):
        a = generate_berlin(50, seed=3)
        b = generate_berlin(50, seed=4)
        assert a.tables != b.tables

    def test_scale_proportions(self):
        data = generate_berlin(100, seed=1)
        counts = data.counts()
        assert counts["Products"] == 100
        assert counts["Offers"] == 400
        assert counts["Reviews"] == 200
        assert counts["Producers"] == 4

    def test_foreign_keys_valid(self):
        data = generate_berlin(60, seed=2)
        products = {r[0] for r in data.tables["Products"]}
        producers = {r[0] for r in data.tables["Producers"]}
        for row in data.tables["Products"]:
            assert row[4] in producers
        for row in data.tables["Offers"]:
            assert row[2] in products
        for row in data.tables["Reviews"]:
            assert row[2] in products

    def test_type_hierarchy_rooted(self):
        data = generate_berlin(80, seed=2)
        by_id = {r[0]: r for r in data.tables["Types"]}
        roots = [r for r in data.tables["Types"] if r[3] is None]
        assert len(roots) == 1
        # every chain reaches the root
        for r in data.tables["Types"]:
            seen = set()
            cur = r
            while cur[3] is not None:
                assert cur[0] not in seen  # no cycles
                seen.add(cur[0])
                cur = by_id[cur[3]]

    def test_product_types_include_ancestors(self):
        data = generate_berlin(60, seed=2)
        by_product = {}
        for pid, tid in data.tables["ProductTypes"]:
            by_product.setdefault(pid, set()).add(tid)
        by_id = {r[0]: r for r in data.tables["Types"]}
        for pid, tids in list(by_product.items())[:10]:
            for tid in tids:
                parent = by_id[tid][3]
                if parent is not None:
                    assert parent in tids  # closure property


class TestDatabase:
    def test_loads_full_schema(self, berlin_db):
        db = berlin_db.db
        assert set(db.vertex_types) >= {
            "TypeVtx", "FeatureVtx", "ProducerVtx", "ProductVtx",
            "VendorVtx", "OfferVtx", "PersonVtx", "ReviewVtx",
        }
        assert set(db.edge_types) >= {
            "subclass", "producer", "type", "feature", "product",
            "vendor", "reviewFor", "reviewer",
        }

    def test_export_edge_built(self, berlin_db):
        # Fig. 4/5 construct: cross-country producer->vendor edges
        et = berlin_db.db.edge_type("export")
        pc = berlin_db.db.vertex_type("ProducerCountry")
        vc = berlin_db.db.vertex_type("VendorCountry")
        for eid in range(et.num_edges):
            s, t = et.endpoints_of(eid)
            assert pc.key_of(s)[0] != vc.key_of(t)[0]

    def test_partition_invariants(self, berlin_db):
        assert berlin_db.db.check_partition_invariants()

    def test_every_catalog_query_runs(self, berlin_db_medium):
        rng = np.random.default_rng(5)
        data = generate_berlin(200, seed=13)
        for name, spec in QUERIES.items():
            params = spec.params(rng, data)
            results = berlin_db_medium.execute(spec.graql, params)
            assert results, name

    def test_q2_counts_shared_features(self, berlin_db):
        # validate the Fig. 6 semantics directly against the tables
        t = berlin_db.query(QUERIES["berlin_q2"].graql,
                            {"Product1": "product3"})
        data = generate_berlin(60, seed=7)
        feats = {}
        for pid, f in data.tables["ProductFeatures"]:
            feats.setdefault(pid, set()).add(f)
        expected = {
            pid: len(fs & feats["product3"])
            for pid, fs in feats.items()
            if pid != "product3" and fs & feats["product3"]
        }
        for pid, count in t.to_rows():
            assert expected[pid] == count
        # and the top row really is the maximum
        if t.num_rows:
            assert t.row(0)[1] == max(expected.values())


class TestCSVExport:
    def test_write_and_ingest_roundtrip(self, tmp_path):
        from repro import Database

        paths = write_berlin_csvs(str(tmp_path), scale=20, seed=3)
        assert set(paths) == set(generate_berlin(20, 3).tables.keys())
        db = Database()
        db.execute(BERLIN_DDL)
        for name, path in paths.items():
            db.execute(f"ingest table {name} '{path}'")
        assert db.vertex_count("ProductVtx") == 20
        assert db.db.check_partition_invariants()
