"""Business-intelligence query catalog validated against hand computations."""

import datetime

import pytest

from repro.workloads.berlin import (
    Q_FEATURES,
    Q_RATINGS,
    Q_VALID_OFFERS,
    generate_berlin,
)


@pytest.fixture(scope="module")
def data():
    return generate_berlin(120, seed=17)


@pytest.fixture(scope="module")
def db():
    from repro.workloads.berlin import berlin_database

    return berlin_database(scale=120, seed=17)


class TestValidOffers:
    def test_date_window_and_rollup(self, db, data):
        day = datetime.date(2010, 6, 1)
        t = db.query(Q_VALID_OFFERS, params={"Day": day, "MinProp": 500})
        # hand computation over the raw tables
        products = {r[0]: r[5] for r in data.tables["Products"]}
        vendors = {r[0]: r[5] for r in data.tables["Vendors"]}
        ordinal = day.toordinal()
        expected: dict[str, list[float]] = {}
        for o in data.tables["Offers"]:
            if not (o[5] <= ordinal <= o[6]):
                continue
            if products[o[2]] <= 500:
                continue
            expected.setdefault(vendors[o[3]], []).append(o[4])
        got = {r[0]: (r[1], r[2]) for r in t.to_rows()}
        assert set(got) == set(expected)
        for country, (count, cheapest) in got.items():
            assert count == len(expected[country])
            assert cheapest == pytest.approx(min(expected[country]))

    def test_ordering(self, db):
        t = db.query(
            Q_VALID_OFFERS,
            params={"Day": datetime.date(2010, 6, 1), "MinProp": 0},
        )
        counts = [r[1] for r in t.to_rows()]
        assert counts == sorted(counts, reverse=True)


class TestRatings:
    def test_per_product_rating_stats(self, db, data):
        producer = data.tables["Producers"][0][0]
        t = db.query(Q_RATINGS, params={"Producer1": producer, "MinRating": 0})
        products_of = {
            r[0] for r in data.tables["Products"] if r[4] == producer
        }
        expected: dict[str, list[int]] = {}
        for rv in data.tables["Reviews"]:
            if rv[2] in products_of:
                expected.setdefault(rv[2], []).append(rv[7])
        got = {r[0]: r for r in t.to_rows()}
        assert set(got) == set(expected)
        for pid, (_, reviews, mean, best) in got.items():
            assert reviews == len(expected[pid])
            assert mean == pytest.approx(
                sum(expected[pid]) / len(expected[pid])
            )
            assert best == max(expected[pid])


class TestFeaturePopularity:
    def test_counts_match_relation_table(self, db, data):
        t = db.query(Q_FEATURES)
        by_feature: dict[str, int] = {}
        for _pid, f in data.tables["ProductFeatures"]:
            by_feature[f] = by_feature.get(f, 0) + 1
        top10 = sorted(by_feature.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        assert t.to_rows() == top10
