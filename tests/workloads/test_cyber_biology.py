"""Tests for the cybersecurity and biology workloads."""

import pytest

from repro.workloads.biology import (
    DOWNSTREAM,
    PATHWAY_GENES,
    biology_database,
    generate_biology,
)
from repro.workloads.cyber import (
    LATERAL_2HOP,
    LATERAL_REGEX,
    cyber_database,
    generate_cyber,
)


class TestCyberGenerator:
    def test_deterministic(self):
        assert generate_cyber(seed=1) == generate_cyber(seed=1)

    def test_flow_endpoints_valid(self):
        data = generate_cyber(num_subnets=2, hosts_per_subnet=10)
        ips = {h[0] for h in data["Hosts"]}
        for f in data["Flows"]:
            assert f[0] in ips and f[1] in ips

    def test_single_dc(self):
        data = generate_cyber()
        dcs = [h for h in data["Hosts"] if h[3] == "dc"]
        assert len(dcs) == 1

    def test_planted_chain_present(self):
        db = cyber_database()
        sg = db.query_subgraph(LATERAL_2HOP)
        assert sg.num_edges >= 2  # at least the planted chain's tail

    def test_regex_reaches_dc(self):
        db = cyber_database(num_subnets=2, hosts_per_subnet=8, flows_per_host=6)
        sg = db.query_subgraph(LATERAL_REGEX)
        host = db.db.vertex_type("HostVtx")
        roles = {host.attributes_of(int(v))["role"] for v in sg.vertex_ids("HostVtx")}
        assert "dc" in roles

    def test_alert_join(self):
        db = cyber_database()
        t = db.query(
            "select h.ip from graph foreach h: HostVtx ( ) --raised--> "
            "AlertVtx (severity >= 5) into table T"
        )
        assert t.num_rows >= 1


class TestBiologyGenerator:
    def test_deterministic(self):
        assert generate_biology(seed=2) == generate_biology(seed=2)

    def test_encodes_bijection_per_gene(self):
        data = generate_biology()
        genes = {g[0] for g in data["Genes"]}
        encoded = [e[0] for e in data["Encodes"]]
        assert sorted(encoded) == sorted(genes)

    def test_signal_flow_within_pathway_layers(self):
        data = generate_biology(num_pathways=2)
        kinds = {r[0]: r[1] for r in data["Reactions"]}
        for up, down, _w in data["SignalFlow"]:
            assert kinds[up] == kinds[down]  # same pathway

    def test_downstream_closure(self):
        db = biology_database(num_pathways=2, reactions_per_pathway=10)
        sg = db.query_subgraph(DOWNSTREAM, params={"Gene": "SYM0_0"})
        assert sg.vertex_ids("ReactionVtx").size > 0
        assert sg.vertex_ids("GeneVtx").size == 1

    def test_pathway_genes_table(self):
        db = biology_database(num_pathways=3)
        t = db.query(PATHWAY_GENES, params={"Pathway": "pathway2"})
        symbols = [r[0] for r in t.to_rows()]
        assert symbols == sorted(set(symbols))
        assert all(s.startswith("SYM2_") for s in symbols)
