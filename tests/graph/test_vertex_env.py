"""Vertex expression environments and scalar-access paths."""

import numpy as np
import pytest

from repro.errors import TypeCheckError
from repro.graql.parser import parse_expression
from repro.storage.expr import evaluate_predicate


class TestEnvFor:
    def test_unqualified_and_own_type(self, social_db):
        vt = social_db.db.vertex_type("Person")
        vids = np.asarray([0, 1, 2], dtype=np.int64)
        env = vt.env_for(vids)
        mask = evaluate_predicate(parse_expression("age > 30"), env)
        assert mask.tolist() == [True, False, True]
        mask2 = evaluate_predicate(parse_expression("Person.age > 30"), env)
        assert mask2.tolist() == mask.tolist()

    def test_extra_qualifier_names(self, social_db):
        vt = social_db.db.vertex_type("Person")
        env = vt.env_for(np.asarray([0], dtype=np.int64), ("alias1",))
        mask = evaluate_predicate(parse_expression("alias1.age > 30"), env)
        assert mask.tolist() == [True]

    def test_unknown_qualifier_rejected(self, social_db):
        vt = social_db.db.vertex_type("Person")
        env = vt.env_for(np.asarray([0], dtype=np.int64))
        with pytest.raises(TypeCheckError):
            evaluate_predicate(parse_expression("Other.age > 30"), env)


class TestScalarAccess:
    def test_key_tuples_cached(self, social_db):
        vt = social_db.db.vertex_type("Person")
        a = vt.key_tuples()
        b = vt.key_tuples()
        assert a is b  # cached

    def test_refresh_clears_caches(self, social_db):
        vt = social_db.db.vertex_type("Person")
        vt.key_tuples()
        assert vt.vid_of(("p1",)) == 0
        social_db.db.ingest_rows(
            "People", [("p9", "Zed", "JP", 44, 1.0, 735700)]
        )
        assert vt.vid_of(("p9",)) is not None
