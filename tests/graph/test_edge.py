"""Unit tests for edge views (Eq. 2 semantics, Figs. 3-5)."""

import pytest

from repro.dtypes import INTEGER, VarChar
from repro.errors import CatalogError, TypeCheckError
from repro.graph import GraphDB
from repro.graql.parser import parse_expression
from repro.storage.schema import Schema


def fig5_db() -> GraphDB:
    """The exact Fig. 5 micro-dataset."""
    db = GraphDB()
    db.create_table("Producers", Schema.of(("id", VarChar(10)), ("country", VarChar(10))))
    db.create_table("Vendors", Schema.of(("id", VarChar(10)), ("country", VarChar(10))))
    db.create_table("Products", Schema.of(("id", VarChar(10)), ("producer", VarChar(10))))
    db.create_table(
        "Offers",
        Schema.of(("id", VarChar(10)), ("product", VarChar(10)), ("vendor", VarChar(10))),
    )
    db.tables["Producers"].append_rows([("1", "US"), ("2", "IT"), ("3", "FR"), ("4", "US")])
    db.tables["Vendors"].append_rows([("1", "CA"), ("2", "CN")])
    db.tables["Products"].append_rows([("p1", "1"), ("p2", "4"), ("p3", "2"), ("p4", "2")])
    db.tables["Offers"].append_rows(
        [("o1", "p1", "1"), ("o2", "p2", "1"), ("o3", "p3", "2"), ("o4", "p4", "2")]
    )
    db.create_vertex("ProducerCountry", ["country"], "Producers")
    db.create_vertex("VendorCountry", ["country"], "Vendors")
    db.create_vertex("ProductVtx", ["id"], "Products")
    db.create_vertex("ProducerVtx", ["id"], "Producers")
    db.create_vertex("OfferVtx", ["id"], "Offers")
    return db


class TestFig5ManyToOne:
    """The paper's worked example must come out exactly."""

    def test_export_edges(self):
        db = fig5_db()
        where = parse_expression(
            "Products.producer = PC.id and Offers.product = Products.id "
            "and Offers.vendor = VC.id and PC.country <> VC.country"
        )
        et = db.create_edge(
            "export", "ProducerCountry", "VendorCountry", "PC", "VC", None, where
        )
        pc = db.vertex_type("ProducerCountry")
        vc = db.vertex_type("VendorCountry")
        pairs = {
            (pc.key_of(int(et.src_vids[i]))[0], vc.key_of(int(et.tgt_vids[i]))[0])
            for i in range(et.num_edges)
        }
        # Figure 5: exactly US->CA and IT->CN
        assert pairs == {("US", "CA"), ("IT", "CN")}
        assert et.num_edges == 2

    def test_same_country_excluded(self):
        # drop the inequality filter: self-pairs may appear
        db = fig5_db()
        where = parse_expression(
            "Products.producer = PC.id and Offers.product = Products.id "
            "and Offers.vendor = VC.id"
        )
        et = db.create_edge(
            "export2", "ProducerCountry", "VendorCountry", "PC", "VC", None, where
        )
        assert et.num_edges == 2  # same pairs here, but no filter applied


class TestSimpleEdges:
    def test_one_to_one_fk_edge(self):
        db = fig5_db()
        et = db.create_edge(
            "producer",
            "ProductVtx",
            "ProducerVtx",
            None,
            None,
            None,
            parse_expression("ProductVtx.producer = ProducerVtx.id"),
        )
        assert et.num_edges == 4  # p4 and p3 share producer 2 but distinct pairs? p3,p4 -> 2
        # products p1->1, p2->4, p3->2, p4->2: four distinct (src,tgt) pairs
        pv = db.vertex_type("ProductVtx")
        pr = db.vertex_type("ProducerVtx")
        pairs = {
            (pv.key_of(int(et.src_vids[i]))[0], pr.key_of(int(et.tgt_vids[i]))[0])
            for i in range(et.num_edges)
        }
        assert pairs == {("p1", "1"), ("p2", "4"), ("p3", "2"), ("p4", "2")}

    def test_direction_follows_declaration_order(self):
        db = fig5_db()
        et = db.create_edge(
            "product",
            "OfferVtx",
            "ProductVtx",
            None,
            None,
            None,
            parse_expression("OfferVtx.product = ProductVtx.id"),
        )
        assert et.source.name == "OfferVtx"
        assert et.target.name == "ProductVtx"


class TestFromTableEdges:
    def build(self, rows):
        db = GraphDB()
        db.create_table("N", Schema.of(("id", INTEGER)))
        db.create_table("R", Schema.of(("s", INTEGER), ("t", INTEGER), ("w", INTEGER)))
        db.tables["N"].append_rows([(i,) for i in range(4)])
        db.tables["R"].append_rows(rows)
        db.create_vertex("V", ["id"], "N")
        et = db.create_edge(
            "r",
            "V",
            "V",
            "A",
            "B",
            ["R"],
            parse_expression("R.s = A.id and R.t = B.id"),
        )
        return db, et

    def test_one_edge_per_row(self):
        # "an edge is created for each table entry satisfying the where
        # clause" — duplicates in R give parallel edges (multigraph)
        db, et = self.build([(0, 1, 5), (0, 1, 7), (1, 2, 9)])
        assert et.num_edges == 3

    def test_edge_attributes_from_table(self):
        db, et = self.build([(0, 1, 5), (1, 2, 9)])
        arr, dtype = et.attribute_array("w")
        assert sorted(arr.tolist()) == [5, 9]

    def test_edge_select_on_attribute(self):
        db, et = self.build([(0, 1, 5), (0, 2, 7), (1, 2, 9)])
        out = et.select(parse_expression("w > 6"))
        assert len(out) == 2

    def test_dangling_rows_dropped(self):
        db, et = self.build([(0, 99, 5)])  # 99 is not a vertex
        assert et.num_edges == 0

    def test_no_attributes_without_table(self):
        db = fig5_db()
        et = db.create_edge(
            "producer",
            "ProductVtx",
            "ProducerVtx",
            None,
            None,
            None,
            parse_expression("ProductVtx.producer = ProducerVtx.id"),
        )
        with pytest.raises(TypeCheckError):
            et.attribute_type("anything")


class TestImplicitWhereTables:
    def test_paper_fig3_feature_form(self):
        """Fig. 3's 'feature' edge names ProductFeatures only in where."""
        db = GraphDB()
        db.create_table("Products", Schema.of(("id", VarChar(10))))
        db.create_table("Features", Schema.of(("id", VarChar(10))))
        db.create_table(
            "ProductFeatures",
            Schema.of(("product", VarChar(10)), ("feature", VarChar(10))),
        )
        db.tables["Products"].append_rows([("p1",), ("p2",)])
        db.tables["Features"].append_rows([("f1",), ("f2",)])
        db.tables["ProductFeatures"].append_rows(
            [("p1", "f1"), ("p1", "f2"), ("p2", "f1")]
        )
        db.create_vertex("ProductVtx", ["id"], "Products")
        db.create_vertex("FeatureVtx", ["id"], "Features")
        et = db.create_edge(
            "feature",
            "ProductVtx",
            "FeatureVtx",
            None,
            None,
            None,  # note: no from_tables — pulled in from the where clause
            parse_expression(
                "ProductFeatures.product = ProductVtx.id "
                "and ProductFeatures.feature = FeatureVtx.id"
            ),
        )
        assert et.num_edges == 3


class TestErrors:
    def test_same_ref_name_rejected(self):
        db = fig5_db()
        with pytest.raises(CatalogError, match="distinct"):
            db.create_edge(
                "selfloop",
                "ProductVtx",
                "ProductVtx",
                None,
                None,
                None,
                parse_expression("ProductVtx.id = ProductVtx.id"),
            )

    def test_unknown_relation(self):
        db = fig5_db()
        with pytest.raises(TypeCheckError, match="unknown relation"):
            db.create_edge(
                "bad",
                "ProductVtx",
                "ProducerVtx",
                None,
                None,
                None,
                parse_expression("Mystery.x = ProductVtx.id"),
            )

    def test_unqualified_attr(self):
        db = fig5_db()
        with pytest.raises(TypeCheckError, match="unqualified"):
            db.create_edge(
                "bad",
                "ProductVtx",
                "ProducerVtx",
                None,
                None,
                None,
                parse_expression("producer = ProducerVtx.id"),
            )
