"""Unit tests for the bidirectional CSR edge index (Section III-B)."""

import numpy as np
import pytest

from repro.graph.edge_index import EdgeIndex


def make_index():
    # edges: 0->1, 0->2, 1->2, 2->0, 2->0 (parallel)
    src = np.asarray([0, 0, 1, 2, 2], dtype=np.int64)
    tgt = np.asarray([1, 2, 2, 0, 0], dtype=np.int64)
    return EdgeIndex(3, src, tgt)


class TestStructure:
    def test_counts(self):
        idx = make_index()
        assert idx.num_edges == 5
        assert idx.num_sources == 3

    def test_degrees(self):
        idx = make_index()
        assert idx.degrees().tolist() == [2, 1, 2]
        assert idx.degree(0) == 2

    def test_neighbors_of(self):
        idx = make_index()
        assert sorted(idx.neighbors_of(0).tolist()) == [1, 2]
        assert idx.neighbors_of(2).tolist() == [0, 0]  # parallel edges kept

    def test_indptr_invariants(self):
        idx = make_index()
        assert idx.indptr[0] == 0
        assert idx.indptr[-1] == idx.num_edges
        assert (np.diff(idx.indptr) >= 0).all()

    def test_eids_unique_and_complete(self):
        idx = make_index()
        assert sorted(idx.eids.tolist()) == [0, 1, 2, 3, 4]

    def test_empty_index(self):
        idx = EdgeIndex(4, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert idx.num_edges == 0
        assert idx.degrees().tolist() == [0, 0, 0, 0]


class TestExpand:
    def test_single_vertex(self):
        idx = make_index()
        srcs, tgts, eids = idx.expand(np.asarray([0], dtype=np.int64))
        assert srcs.tolist() == [0, 0]
        assert sorted(tgts.tolist()) == [1, 2]

    def test_frontier(self):
        idx = make_index()
        srcs, tgts, eids = idx.expand(np.asarray([0, 2], dtype=np.int64))
        assert len(srcs) == 4
        assert sorted(tgts.tolist()) == [0, 0, 1, 2]

    def test_empty_frontier(self):
        idx = make_index()
        srcs, tgts, eids = idx.expand(np.empty(0, dtype=np.int64))
        assert len(srcs) == 0

    def test_duplicate_frontier_entries_expand_independently(self):
        # the binding executor relies on this: one expansion per input row
        idx = make_index()
        srcs, tgts, eids = idx.expand(np.asarray([0, 0], dtype=np.int64))
        assert len(srcs) == 4

    def test_expand_restricted(self):
        idx = make_index()
        allowed = np.asarray([0], dtype=np.int64)  # only eid 0 (0->1)
        srcs, tgts, eids = idx.expand_restricted(
            np.asarray([0], dtype=np.int64), allowed
        )
        assert eids.tolist() == [0]
        assert tgts.tolist() == [1]

    def test_expand_restricted_none_means_all(self):
        idx = make_index()
        _, tgts, _ = idx.expand_restricted(np.asarray([0], dtype=np.int64), None)
        assert len(tgts) == 2

    def test_expand_restricted_empty_allowed(self):
        idx = make_index()
        _, tgts, eids = idx.expand_restricted(
            np.asarray([0], dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(eids) == 0


class TestBidirectional:
    def test_forward_reverse_consistency(self, social_db):
        bidx = social_db.db.index("follows")
        et = social_db.db.edge_type("follows")
        # every edge appears once in each direction with matching endpoints
        for eid in range(et.num_edges):
            s, t = et.endpoints_of(eid)
            assert t in bidx.forward.neighbors_of(s).tolist()
            assert s in bidx.reverse.neighbors_of(t).tolist()

    def test_direction_helper(self, social_db):
        bidx = social_db.db.index("follows")
        assert bidx.direction(True) is bidx.forward
        assert bidx.direction(False) is bidx.reverse

    def test_edge_count_matches(self, social_db):
        bidx = social_db.db.index("follows")
        et = social_db.db.edge_type("follows")
        assert bidx.forward.num_edges == et.num_edges
        assert bidx.reverse.num_edges == et.num_edges
