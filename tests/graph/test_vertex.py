"""Unit tests for vertex views (Eq. 1 semantics)."""

import numpy as np
import pytest

from repro.dtypes import INTEGER, VarChar
from repro.errors import CatalogError, TypeCheckError
from repro.graph.vertex import VertexType
from repro.graql.parser import parse_expression
from repro.storage import Schema, Table

S = Schema.of(("id", VarChar(10)), ("country", VarChar(8)), ("n", INTEGER))
ROWS = [
    ("a", "US", 1),
    ("b", "DE", 2),
    ("c", "US", 3),
    ("d", "FR", 4),
    ("e", None, 5),
    ("f", "US", 6),
]


def table() -> Table:
    return Table.from_rows("T", S, ROWS)


class TestOneToOne:
    def test_basic(self):
        vt = VertexType("V", ["id"], table())
        assert vt.num_vertices == 6
        assert vt.one_to_one

    def test_keys_in_first_occurrence_order(self):
        vt = VertexType("V", ["id"], table())
        assert vt.key_of(0) == ("a",) and vt.key_of(5) == ("f",)

    def test_vid_of(self):
        vt = VertexType("V", ["id"], table())
        assert vt.vid_of(("c",)) == 2
        assert vt.vid_of(("zzz",)) is None

    def test_all_attributes_visible(self):
        vt = VertexType("V", ["id"], table())
        assert vt.attribute_schema().names() == ["id", "country", "n"]
        arr, dtype = vt.attribute_array("n")
        assert arr.tolist() == [1, 2, 3, 4, 5, 6]

    def test_attributes_of(self):
        vt = VertexType("V", ["id"], table())
        assert vt.attributes_of(1) == {"id": "b", "country": "DE", "n": 2}


class TestManyToOne:
    def test_distinct_keys(self):
        vt = VertexType("VC", ["country"], table())
        # US, DE, FR — the NULL-country row is dropped
        assert vt.num_vertices == 3
        assert not vt.one_to_one

    def test_key_order_first_occurrence(self):
        vt = VertexType("VC", ["country"], table())
        assert [vt.key_of(i) for i in range(3)] == [("US",), ("DE",), ("FR",)]

    def test_row_vids_grouping(self):
        vt = VertexType("VC", ["country"], table())
        us_vid = vt.vid_of(("US",))
        rows_of_us = vt.rows[vt.row_vids == us_vid]
        assert {ROWS[r][0] for r in rows_of_us} == {"a", "c", "f"}

    def test_only_key_attributes_visible(self):
        vt = VertexType("VC", ["country"], table())
        assert vt.attribute_schema().names() == ["country"]
        with pytest.raises(TypeCheckError, match="many-to-one"):
            vt.attribute_type("n")

    def test_composite_key(self):
        vt = VertexType("VK", ["country", "n"], table())
        assert vt.num_vertices == 5  # NULL country dropped


class TestWhereClause:
    def test_selection_applies(self):
        vt = VertexType(
            "V", ["id"], table(), parse_expression("n > 2")
        )
        assert vt.num_vertices == 4

    def test_selection_plus_grouping(self):
        vt = VertexType(
            "VC", ["country"], table(), parse_expression("n >= 3")
        )
        # rows c(US,3), d(FR,4), f(US,6) -> countries US, FR
        assert vt.num_vertices == 2


class TestNullKeys:
    def test_null_key_rows_dropped(self):
        vt = VertexType("VC", ["country"], table())
        assert vt.vid_of((None,)) is None


class TestSelect:
    def test_select_condition(self):
        vt = VertexType("V", ["id"], table())
        out = vt.select(parse_expression("country = 'US'"))
        assert sorted(vt.key_of(int(v))[0] for v in out) == ["a", "c", "f"]

    def test_select_with_candidates(self):
        vt = VertexType("V", ["id"], table())
        cands = np.asarray([0, 1], dtype=np.int64)
        out = vt.select(parse_expression("country = 'US'"), cands)
        assert out.tolist() == [0]

    def test_select_none_condition(self):
        vt = VertexType("V", ["id"], table())
        assert len(vt.select(None)) == 6

    def test_null_comparisons_excluded(self):
        vt = VertexType("V", ["id"], table())
        out = vt.select(parse_expression("country <> 'US'"))
        # the NULL country row never matches <> either
        assert sorted(vt.key_of(int(v))[0] for v in out) == ["b", "d"]


class TestRefresh:
    def test_refresh_after_append(self):
        t = table()
        vt = VertexType("V", ["id"], t)
        t.append_rows([("g", "JP", 7)])
        vt.refresh()
        assert vt.num_vertices == 7
        assert vt.vid_of(("g",)) == 6


class TestErrors:
    def test_unknown_key_column(self):
        with pytest.raises(CatalogError):
            VertexType("V", ["nope"], table())
