"""Unit tests for named subgraphs (Section II-C)."""

import numpy as np

from repro.graph import Subgraph


def sg(name="G", **kwargs):
    vertices = {k: np.asarray(v) for k, v in kwargs.get("v", {}).items()}
    edges = {k: np.asarray(v) for k, v in kwargs.get("e", {}).items()}
    return Subgraph(name, vertices, edges)


class TestBasics:
    def test_ids_deduped_and_sorted(self):
        g = sg(v={"A": [3, 1, 3, 2]})
        assert g.vertex_ids("A").tolist() == [1, 2, 3]

    def test_empty_types_dropped(self):
        g = sg(v={"A": [], "B": [1]})
        assert not g.has_vertex_type("A")
        assert g.has_vertex_type("B")

    def test_missing_type_gives_empty(self):
        g = sg(v={"A": [1]})
        assert len(g.vertex_ids("ZZZ")) == 0

    def test_counts(self):
        g = sg(v={"A": [1, 2], "B": [3]}, e={"e": [0, 1, 2]})
        assert g.num_vertices == 3
        assert g.num_edges == 3


class TestAlgebra:
    def test_union(self):
        a = sg(v={"A": [1, 2]}, e={"e": [0]})
        b = sg(v={"A": [2, 3], "B": [0]}, e={"f": [1]})
        u = a.union(b)
        assert u.vertex_ids("A").tolist() == [1, 2, 3]
        assert u.vertex_ids("B").tolist() == [0]
        assert u.edge_ids("e").tolist() == [0]
        assert u.edge_ids("f").tolist() == [1]

    def test_union_is_commutative(self):
        a = sg(v={"A": [1]})
        b = sg(v={"A": [2]})
        assert a.union(b) == b.union(a)

    def test_intersect_vertices(self):
        a = sg(v={"A": [1, 2, 3], "B": [5]})
        b = sg(v={"A": [2, 3, 4]})
        i = a.intersect_vertices(b)
        assert i.vertex_ids("A").tolist() == [2, 3]
        assert not i.has_vertex_type("B")

    def test_equality(self):
        assert sg(v={"A": [1, 2]}) == sg(v={"A": [2, 1]})
        assert sg(v={"A": [1]}) != sg(v={"A": [2]})

    def test_repr(self):
        assert "A" in repr(sg(v={"A": [1]}))
