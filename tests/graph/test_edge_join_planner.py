"""Edge-construction join planner: cross joins, cycles, batch ordering."""

import pytest

from repro.dtypes import INTEGER, VarChar
from repro.graph import GraphDB
from repro.graql.parser import parse_expression
from repro.storage.schema import Schema


def db_two_types():
    db = GraphDB()
    db.create_table("L", Schema.of(("id", INTEGER), ("g", INTEGER)))
    db.create_table("R", Schema.of(("id", INTEGER), ("g", INTEGER)))
    db.tables["L"].append_rows([(0, 1), (1, 2), (2, 1)])
    db.tables["R"].append_rows([(10, 1), (11, 3)])
    db.create_vertex("LV", ["id"], "L")
    db.create_vertex("RV", ["id"], "R")
    return db


class TestCrossJoin:
    def test_no_predicates_gives_cross_product(self):
        db = db_two_types()
        et = db.create_edge("allpairs", "LV", "RV", None, None, None, None)
        # 3 x 2 pairs, deduped on (src,tgt): all distinct
        assert et.num_edges == 6

    def test_filter_only_where(self):
        db = db_two_types()
        et = db.create_edge(
            "samegroup",
            "LV",
            "RV",
            None,
            None,
            None,
            parse_expression("LV.g = RV.g"),
        )
        # group 1: L rows 0,2 x R row 10 -> two edges
        assert et.num_edges == 2


class TestJoinCycles:
    def test_cycle_predicate_becomes_filter(self):
        """A join predicate whose relations are already joined must filter."""
        db = GraphDB()
        db.create_table("N", Schema.of(("id", INTEGER), ("x", INTEGER), ("y", INTEGER)))
        db.tables["N"].append_rows([(0, 1, 1), (1, 2, 3), (2, 5, 5)])
        db.create_vertex("V", ["id"], "N")
        # two equality predicates between the same two relations: the
        # second closes a cycle and must act as a filter
        et = db.create_edge(
            "match",
            "V",
            "V",
            "A",
            "B",
            None,
            parse_expression("A.x = B.x and A.y = B.y"),
        )
        vt = db.vertex_type("V")
        pairs = {
            (int(et.src_vids[i]), int(et.tgt_vids[i]))
            for i in range(et.num_edges)
        }
        # rows match themselves only (all have x==x, y==y), since both
        # coordinates must agree
        assert pairs == {(v, v) for v in range(vt.num_vertices)}


class TestMultiPredicateBatch:
    def test_composite_join_keys(self):
        db = GraphDB()
        db.create_table("P", Schema.of(("id", VarChar(4)), ("a", INTEGER), ("b", INTEGER)))
        db.create_table("Q", Schema.of(("id", VarChar(4)), ("a", INTEGER), ("b", INTEGER)))
        db.tables["P"].append_rows([("p0", 1, 1), ("p1", 1, 2)])
        db.tables["Q"].append_rows([("q0", 1, 1), ("q1", 2, 2)])
        db.create_vertex("PV", ["id"], "P")
        db.create_vertex("QV", ["id"], "Q")
        et = db.create_edge(
            "both",
            "PV",
            "QV",
            None,
            None,
            None,
            parse_expression("PV.a = QV.a and PV.b = QV.b"),
        )
        # only (p0, q0) agrees on both columns
        assert et.num_edges == 1

    def test_assoc_chain_through_two_tables(self):
        """S -> A -> B -> T join chain resolved greedily."""
        db = GraphDB()
        db.create_table("S", Schema.of(("id", INTEGER)))
        db.create_table("T", Schema.of(("id", INTEGER)))
        db.create_table("A", Schema.of(("s", INTEGER), ("k", INTEGER)))
        db.create_table("B", Schema.of(("k", INTEGER), ("t", INTEGER)))
        db.tables["S"].append_rows([(0,), (1,)])
        db.tables["T"].append_rows([(7,), (8,)])
        db.tables["A"].append_rows([(0, 100), (1, 200)])
        db.tables["B"].append_rows([(100, 7), (200, 8), (100, 8)])
        db.create_vertex("SV", ["id"], "S")
        db.create_vertex("TV", ["id"], "T")
        et = db.create_edge(
            "chain",
            "SV",
            "TV",
            None,
            None,
            None,
            parse_expression(
                "A.s = SV.id and B.k = A.k and TV.id = B.t"
            ),
        )
        sv = db.vertex_type("SV")
        tv = db.vertex_type("TV")
        pairs = {
            (sv.key_of(int(et.src_vids[i]))[0], tv.key_of(int(et.tgt_vids[i]))[0])
            for i in range(et.num_edges)
        }
        assert pairs == {(0, 7), (0, 8), (1, 8)}


class TestRefresh:
    def test_edge_rebuild_after_assoc_ingest(self):
        db = GraphDB()
        db.create_table("N", Schema.of(("id", INTEGER)))
        db.create_table("E", Schema.of(("s", INTEGER), ("t", INTEGER)))
        db.tables["N"].append_rows([(0,), (1,)])
        db.create_vertex("V", ["id"], "N")
        et = db.create_edge(
            "e",
            "V",
            "V",
            "A",
            "B",
            ["E"],
            parse_expression("E.s = A.id and E.t = B.id"),
        )
        assert et.num_edges == 0
        db.tables["E"].append_rows([(0, 1)])
        et.refresh()
        assert et.num_edges == 1
