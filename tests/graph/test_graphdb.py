"""Unit tests for GraphDB: DDL, ingest rebuilds, invariants."""

import pytest

from repro.dtypes import VarChar
from repro.errors import CatalogError
from repro.graph import GraphDB, Subgraph
from repro.graql.parser import parse_expression
from repro.storage import Schema, Table


class TestDDL:
    def test_duplicate_table(self, social_db):
        with pytest.raises(CatalogError):
            social_db.db.create_table("People", Schema.of(("id", VarChar(4))))

    def test_duplicate_vertex(self, social_db):
        with pytest.raises(CatalogError):
            social_db.db.create_vertex("Person", ["id"], "People")

    def test_vertex_name_clash_with_table(self, social_db):
        with pytest.raises(CatalogError):
            social_db.db.create_vertex("People", ["id"], "People")

    def test_unknown_table(self, social_db):
        with pytest.raises(CatalogError):
            social_db.db.create_vertex("X", ["id"], "Nope")

    def test_edge_types_between(self, social_db):
        ets = social_db.db.edge_types_between("Person", "Person")
        assert [e.name for e in ets] == ["follows"]
        ets = social_db.db.edge_types_between(None, "City")
        assert [e.name for e in ets] == ["livesIn"]
        ets = social_db.db.edge_types_between(None, None)
        assert {e.name for e in ets} == {"follows", "livesIn"}


class TestIngestRebuild:
    def test_vertex_view_rebuilds(self, social_db):
        before = social_db.db.vertex_type("Person").num_vertices
        social_db.db.ingest_rows("People", [("p7", "Gail", "US", 30, 1.0, 735600)])
        assert social_db.db.vertex_type("Person").num_vertices == before + 1

    def test_edge_view_rebuilds(self, social_db):
        before = social_db.db.edge_type("follows").num_edges
        social_db.db.ingest_rows("Follows", [("p1", "p3", 2)])
        assert social_db.db.edge_type("follows").num_edges == before + 1

    def test_index_rebuilds(self, social_db):
        social_db.db.ingest_rows("Follows", [("p4", "p5", 1)])
        et = social_db.db.edge_type("follows")
        bidx = social_db.db.index("follows")
        assert bidx.forward.num_edges == et.num_edges

    def test_derived_edge_through_vertex(self, social_db):
        # livesIn joins Person.country to City.country; new city -> edges
        before = social_db.db.edge_type("livesIn").num_edges
        social_db.db.ingest_rows("Cities", [("lyon", "FR", 500_000)])
        after = social_db.db.edge_type("livesIn").num_edges
        assert after > before

    def test_ingest_text(self, social_db):
        n = social_db.db.ingest_text("Cities", "rome,IT,2800000\n")
        assert n == 1
        assert social_db.db.vertex_type("City").num_vertices == 4


class TestResults:
    def test_register_result_table(self, social_db):
        t = Table.from_rows("R", Schema.of(("x", VarChar(4))), [("a",)])
        social_db.db.register_result_table("R", t)
        assert social_db.db.table("R").num_rows == 1
        # overwriting a derived table is fine
        social_db.db.register_result_table("R", t.concat(t))
        assert social_db.db.table("R").num_rows == 2

    def test_cannot_overwrite_base_table(self, social_db):
        t = Table.from_rows("People", Schema.of(("x", VarChar(4))), [("a",)])
        with pytest.raises(CatalogError, match="base table"):
            social_db.db.register_result_table("People", t)

    def test_register_subgraph(self, social_db):
        import numpy as np

        sg = Subgraph("G", {"Person": np.asarray([0, 1])}, {})
        social_db.db.register_subgraph(sg)
        assert social_db.db.subgraph("G").num_vertices == 2

    def test_unknown_subgraph(self, social_db):
        with pytest.raises(CatalogError):
            social_db.db.subgraph("nope")


class TestInvariants:
    def test_partition_invariants(self, social_db):
        assert social_db.db.check_partition_invariants()

    def test_totals(self, social_db):
        db = social_db.db
        assert db.total_vertices() == sum(
            vt.num_vertices for vt in db.vertex_types.values()
        )
        assert db.total_edges() == sum(
            et.num_edges for et in db.edge_types.values()
        )
