"""Property: collect-all typechecking finds a superset of fail-fast.

``check_script_collect`` runs the same checks in the same order as the
fail-fast ``check_script`` — it just keeps going after an error.  So for
any script, the first error fail-fast raises must appear (message and
position included) among the collected errors, and a script fail-fast
accepts must collect nothing.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, TypeCheckError
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_script, check_script_collect
from tests.conftest import build_social_db

#: built once — analysis works on a scratch copy of the catalog
DB = build_social_db()

VALID = [
    "select id, name from table People",
    "select country, count(*) as n from table People group by country",
    "create table Fresh(id integer)",
    "select * from graph Person ( ) --follows--> Person ( ) into subgraph G1",
    "select y.id from graph Person ( ) --follows--> def y: Person ( ) "
    "into table TA",
]

INVALID = [
    "select * from table Missing",
    "create table People(id integer)",
    "select bogus from table People",
    "select Person.id from graph Person ( ) --follows--> Person ( ) "
    "into table TB",
    "select id from table People where age > %N%",
    "select * from graph City ( ) --[]--> City ( ) into subgraph G2",
    "select count(*) from graph Person ( ) --follows--> Person ( ) "
    "into table TC",
]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(VALID + INVALID), min_size=1, max_size=5))
def test_collect_all_is_superset_of_fail_fast(stmts):
    source = "\n".join(stmts)
    failfast = None
    try:
        check_script(parse_script(source), DB.catalog)
    except (TypeCheckError, CatalogError) as e:
        failfast = str(e)
    _, errors, _ = check_script_collect(parse_script(source), DB.catalog)
    if failfast is None:
        assert errors == []
    else:
        assert failfast in {str(e) for e in errors}


def test_collect_reports_every_defective_statement():
    """Fail-fast stops at statement 1; collect-all reaches them all."""
    source = "\n".join(INVALID)
    _, errors, _ = check_script_collect(parse_script(source), DB.catalog)
    assert len(errors) >= len(INVALID)
    assert {e.statement_index for e in errors} == set(range(len(INVALID)))


def test_collect_accepts_clean_script():
    checked, errors, _ = check_script_collect(
        parse_script("\n".join(VALID)), DB.catalog
    )
    assert errors == []
    assert all(r is not None for r in checked)
