"""Tests for the public analysis API: ``Database.analyze`` and
:class:`AnalysisResult`, plus the position-threading contract for the
fail-fast exception path (ParseError / TypeCheckError carry line:col)."""

from __future__ import annotations

import json
import re

import pytest

from repro import AnalysisResult, Analyzer, Diagnostic
from repro.analysis.diagnostics import CODES, classify_error
from repro.errors import ParseError, TypeCheckError
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_script

#: three distinct defects (plus a warning) in one script — the
#: acceptance scenario for `graql check`
DEFECTIVE = """\
select bogus from table People
select Person.id from graph Person ( ) --follows--> Person ( ) into table T
select id from table People where age > 10 and age < 5
select * from table Missing
"""


class TestDatabaseAnalyze:
    def test_clean_script(self, social_db):
        result = social_db.analyze("select id, name from table People")
        assert isinstance(result, AnalysisResult)
        assert result.ok and result.diagnostics == []
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 0
        assert result.render_text("x.graql").endswith("clean")

    def test_reports_all_defects_in_one_run(self, social_db):
        result = social_db.analyze(DEFECTIVE)
        got = {d.code for d in result.errors}
        assert {"GQL013", "GQL015", "GQL010"} <= got
        assert "GQW101" in {d.code for d in result.warnings}
        # every diagnostic is positioned and statement-attributed
        for d in result.diagnostics:
            assert d.span is not None
            assert d.statement_index is not None
        assert result.exit_code() == 2

    def test_diagnostics_are_source_ordered(self, social_db):
        result = social_db.analyze(DEFECTIVE)
        stmts = [d.statement_index for d in result.diagnostics]
        assert stmts == sorted(stmts)

    def test_params_are_substituted(self, social_db):
        src = "select id from table People where age > %N%"
        assert not social_db.analyze(src, {"N": 21}).diagnostics
        (d,) = social_db.analyze(src).diagnostics
        assert d.code == "GQL020"

    def test_deprecated_kwargs_reported(self, social_db):
        result = social_db.analyze(
            "select id from table People", force_direction="backward"
        )
        assert [d.code for d in result.diagnostics] == ["GQW140"]
        assert result.exit_code() == 0  # warning, not an error
        assert result.exit_code(strict=True) == 1

    def test_never_raises_on_garbage(self, social_db):
        result = social_db.analyze("se lect ~~~ from @")
        assert not result.ok
        assert result.errors[0].code in ("GQL001", "GQL002")

    def test_analysis_does_not_mutate_catalog(self, social_db):
        social_db.analyze("create table Scratch(id integer)")
        assert "Scratch" not in social_db.catalog.tables


class TestAnalysisResultRendering:
    def test_render_text_format(self, social_db):
        text = social_db.analyze(DEFECTIVE).render_text("q.graql")
        # "<file>: <line>:<col>: <severity>[<code>]: <message>"
        assert re.search(r"q\.graql: 1:8: error\[GQL013\]: ", text)
        assert re.search(r"help: ", text)  # fix-it hints included
        assert re.search(r"q\.graql: \d+ error\(s\), \d+ warning\(s\)", text)

    def test_to_json(self, social_db):
        payload = json.loads(social_db.analyze(DEFECTIVE).to_json("q.graql"))
        assert payload["source"] == "q.graql"
        assert payload["errors"] >= 3 and payload["warnings"] >= 1
        d = payload["diagnostics"][0]
        assert {"code", "severity", "message", "line", "column"} <= set(d)
        assert d["code"] in CODES


class TestAnalyzerConfig:
    def test_verify_ir_toggle(self, social_db):
        src = "select id, name from table People"
        assert Analyzer(social_db.catalog, verify_ir=False).analyze(src).ok
        assert Analyzer(social_db.catalog, verify_ir=True).analyze(src).ok


class TestDiagnosticModel:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic("GQL999", "nope")

    def test_hint_defaults_from_registry(self):
        d = Diagnostic("GQL010", "unknown table 'X'")
        assert d.hint and "catalog" in d.hint

    def test_codes_are_partitioned_by_severity(self):
        for code, (severity, _title, _hint) in CODES.items():
            expected = "error" if code.startswith("GQL") else "warning"
            assert severity == expected

    def test_classifier_default(self):
        assert classify_error(TypeCheckError("some novel message")) == "GQL012"


class TestFailFastPositions:
    """Satellite contract: the *fail-fast* pipeline keeps raising the
    same exception types, now with line:col in the message."""

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as ei:
            parse_script("select\nfrom from table People")
        assert ei.value.line == 2
        assert re.search(r"\(line 2, column \d+\)", str(ei.value))

    def test_typecheck_error_carries_position(self, social_db):
        with pytest.raises(TypeCheckError) as ei:
            check_script(
                parse_script("select id from table People\n"
                             "select bogus from table People"),
                social_db.catalog,
            )
        assert ei.value.line == 2
        assert re.search(r"\(line 2, column \d+\)", str(ei.value))
