"""Golden-file diagnostics corpus.

Every stable code in the registry (repro/analysis/diagnostics.py) is
triggered by at least one ``corpus/*.graql`` script; the matching
``.expected`` file pins the exact codes and ``line:col`` positions the
analyzer reports.  Regenerate after an intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_corpus.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import CODES

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.graql"))

#: codes that cannot be provoked from script text alone; their tests
#: live in test_verifier.py (corrupted IR) and test_analyzer_api.py
#: (deprecated kwargs at the call site)
NON_SCRIPT_CODES = {"GQL030", "GQW140"}


def _render(result) -> str:
    return "".join(f"{d.code} {d.location}\n" for d in result.diagnostics)


class TestGoldenCorpus:
    def test_corpus_is_nonempty(self):
        assert len(CORPUS) >= len(CODES) - len(NON_SCRIPT_CODES)

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_golden(self, path, corpus_db):
        got = _render(corpus_db.analyze(path.read_text()))
        expected = path.with_suffix(".expected")
        if os.environ.get("REGEN_GOLDEN"):
            expected.write_text(got)
        assert expected.exists(), (
            f"missing golden file {expected.name}; run with REGEN_GOLDEN=1"
        )
        assert got == expected.read_text()

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_primary_code_matches_filename(self, path, corpus_db):
        """``gql013_*.graql`` must actually report GQL013."""
        want = path.stem.split("_")[0].upper()
        codes = {d.code for d in corpus_db.analyze(path.read_text()).diagnostics}
        assert want in codes, f"{path.name}: expected {want}, got {codes}"

    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_every_diagnostic_is_positioned(self, path, corpus_db):
        for d in corpus_db.analyze(path.read_text()).diagnostics:
            assert d.span is not None, f"{path.name}: {d!r} has no position"
            assert d.span.line >= 1 and d.span.column >= 1

    def test_every_code_covered(self, corpus_db):
        seen = set(NON_SCRIPT_CODES)
        for path in CORPUS:
            seen |= {
                d.code for d in corpus_db.analyze(path.read_text()).diagnostics
            }
        missing = set(CODES) - seen
        assert not missing, f"codes never exercised by the corpus: {missing}"
        unregistered = seen - set(CODES)
        assert not unregistered
