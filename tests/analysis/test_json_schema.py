"""Golden schema test for ``graql check --format json``.

The JSON envelope and per-diagnostic key set are a tool contract: CI
pipelines and editor integrations parse them, so the shape is pinned
here.  In particular the ``hint`` key is ALWAYS present — ``null`` for
codes without a default fix-it — so consumers never need existence
checks.  ``graql devcheck`` emits the same diagnostic shape plus
``file``/``symbol`` (tests/devlint/test_cli.py).
"""

from __future__ import annotations

import json

from repro.analysis import Analyzer
from repro.cli import main
from repro.engine import Database

#: top-level envelope keys, exactly
ENVELOPE_KEYS = {"source", "errors", "warnings", "diagnostics"}
#: keys every diagnostic carries; "statement" is additionally present
#: when the finding is tied to a statement index
DIAG_KEYS = {"code", "severity", "message", "line", "column", "hint"}


def analyze(source: str):
    return Analyzer(Database().catalog).analyze(source)


class TestEnvelope:
    def test_clean_script(self):
        payload = json.loads(analyze(
            "create table T(id varchar(4), n integer)"
        ).to_json("s.graql"))
        assert set(payload) == ENVELOPE_KEYS
        assert payload["source"] == "s.graql"
        assert payload["errors"] == 0
        assert payload["warnings"] == 0
        assert payload["diagnostics"] == []

    def test_diagnostic_key_set_is_pinned(self):
        payload = json.loads(analyze(
            "select count(*) as n from table Nope"
        ).to_json())
        assert payload["errors"] >= 1
        for d in payload["diagnostics"]:
            assert DIAG_KEYS <= set(d) <= DIAG_KEYS | {"statement"}

    def test_hint_present_and_non_null_for_hinted_code(self):
        # GQL010 (unknown object) carries a default fix-it hint
        payload = json.loads(analyze(
            "select count(*) as n from table Nope"
        ).to_json())
        d = next(x for x in payload["diagnostics"] if x["code"] == "GQL010")
        assert isinstance(d["hint"], str) and d["hint"]

    def test_hint_present_and_null_for_unhinted_code(self):
        # GQL001 (syntax error) has no default hint — key still there
        payload = json.loads(analyze("select select select").to_json())
        d = next(x for x in payload["diagnostics"] if x["code"] == "GQL001")
        assert "hint" in d and d["hint"] is None

    def test_severity_values(self):
        payload = json.loads(analyze(
            "select count(*) as n from table Nope"
        ).to_json())
        for d in payload["diagnostics"]:
            assert d["severity"] in ("error", "warning")


class TestCliJson:
    def test_check_format_json_end_to_end(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text("select count(*) as n from table Nope")
        rc = main(["check", "--format", "json", str(script)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert set(payload) == ENVELOPE_KEYS
        assert payload["source"] == str(script)
        assert all("hint" in d for d in payload["diagnostics"])
