"""Fixtures for the analyzer tests.

``corpus_db`` extends the shared social database with just enough extra
structure to make every statistics-driven warning reachable:

* extra ``Follows`` rows push the ``follows`` expansion factor above the
  GQW130 threshold, so an unbounded ``( --follows--> [ ] )+`` warns;
* a hub-and-spokes schema (one ``Hub`` vertex type with four distinct
  leaf types) leaves a variant ``[ ]`` step matching four vertex types
  after narrowing, which is what GQW131 reports.
"""

from __future__ import annotations

import pytest

from repro import Database
from tests.conftest import build_social_db

HUB_DDL = """
create table HubT(id integer)

create table LeafT1(id integer)

create table LeafT2(id integer)

create table LeafT3(id integer)

create table LeafT4(id integer)

create vertex Hub(id) from table HubT

create vertex Leaf1(id) from table LeafT1

create vertex Leaf2(id) from table LeafT2

create vertex Leaf3(id) from table LeafT3

create vertex Leaf4(id) from table LeafT4

create edge spoke1 with vertices (Hub, Leaf1) where Hub.id = Leaf1.id

create edge spoke2 with vertices (Hub, Leaf2) where Hub.id = Leaf2.id

create edge spoke3 with vertices (Hub, Leaf3) where Hub.id = Leaf3.id

create edge spoke4 with vertices (Hub, Leaf4) where Hub.id = Leaf4.id
"""

#: densify the follow graph: avg out-degree goes from ~1.3 to ~2.8,
#: comfortably above the GQW130 expansion threshold of 1.5
EXTRA_FOLLOWS = [("p1", f"p{i}", 1) for i in range(2, 7)] + [
    ("p2", f"p{i}", 1) for i in range(3, 7)
]


def build_corpus_db() -> Database:
    db = build_social_db()
    db.execute(HUB_DDL)
    db.db.ingest_rows("Follows", EXTRA_FOLLOWS)
    db.catalog.refresh(db.db)
    return db


@pytest.fixture(scope="module")
def corpus_db() -> Database:
    """Analysis never mutates the database, so module scope is safe."""
    return build_corpus_db()
