"""IR verifier tests: corrupted bytes must die before the backend.

The verifier walks the stream with the decoder's grammar but validates
every field; these tests hand-corrupt real encodings (header, tags,
lengths, vocabulary, truncation) and check each raises a *positioned*
:class:`IRError` — and that :meth:`Server.submit` refuses to ship such a
stream to the backend.
"""

from __future__ import annotations

import pytest

from repro.analysis import IRVerifier, verify_statement_ir
from repro.engine.server import Server
from repro.errors import IRError
from repro.graql.ast import (
    EdgeStep,
    GraphSelect,
    IntoClause,
    PathAtom,
    StarItem,
    VertexStep,
)
from repro.graql.ir import encode_statement
from repro.graql.parser import parse_statement
from repro.storage.expr import BinOp, ColRef
from tests.conftest import SOCIAL_DDL

STATEMENTS = [
    "create table Fresh(id integer, name varchar(8))",
    "create vertex FreshV(id) from table People",
    "ingest table People 'people.csv'",
    "select id, name from table People where age > 21 order by name",
    "select * from graph Person (age > 30) --follows--> def y: Person ( ) "
    "into subgraph G",
    "select y.id from graph Person ( ) ( --follows--> [ ] ){2} "
    "def y: Person ( ) into table T",
]

GRAPH_Q = STATEMENTS[4]


def enc(source: str) -> bytes:
    return encode_statement(parse_statement(source))


class TestValidStreams:
    @pytest.mark.parametrize("source", STATEMENTS)
    def test_accepts_every_statement_kind(self, source, social_db):
        data = enc(source)
        verify_statement_ir(data)  # structural only
        verify_statement_ir(data, social_db.catalog)  # + name resolution

    def test_label_reference_resolves_within_pattern(self, social_db):
        # the final "x" is not a vertex type; it resolves against the
        # label the first step defined earlier in the same stream
        data = enc(
            "select * from graph def x: Person ( ) --follows--> Person ( ) "
            "--follows--> x into subgraph G"
        )
        verify_statement_ir(data, social_db.catalog)


class TestHeaderAndFraming:
    def test_bad_magic(self):
        data = b"XXXX" + enc(GRAPH_Q)[4:]
        with pytest.raises(IRError, match="magic") as ei:
            verify_statement_ir(data)
        assert ei.value.offset == 0
        assert ei.value.instruction == "header"

    def test_bad_version(self):
        data = bytearray(enc(GRAPH_Q))
        data[4] = 99
        with pytest.raises(IRError, match="version"):
            verify_statement_ir(bytes(data))

    def test_unknown_statement_tag(self):
        data = bytearray(enc(GRAPH_Q))
        data[5] = 0x7F
        with pytest.raises(IRError, match="statement tag") as ei:
            verify_statement_ir(bytes(data))
        assert ei.value.offset == 5

    def test_trailing_bytes_rejected(self):
        with pytest.raises(IRError, match="trailing"):
            verify_statement_ir(enc(GRAPH_Q) + b"\x00")

    @pytest.mark.parametrize("source", STATEMENTS)
    def test_every_truncation_rejected(self, source):
        """No proper prefix of a statement is a valid statement."""
        data = enc(source)
        for cut in range(len(data)):
            with pytest.raises(IRError):
                verify_statement_ir(data[:cut])

    def test_byte_flips_never_escape_as_other_exceptions(self, social_db):
        """Arbitrary single-byte corruption either still verifies or
        raises IRError — never an unhandled IndexError/UnicodeError/..."""
        data = enc(GRAPH_Q)
        caught = 0
        for i in range(len(data)):
            mutated = bytearray(data)
            mutated[i] ^= 0xFF
            try:
                verify_statement_ir(bytes(mutated), social_db.catalog)
            except IRError as e:
                caught += 1
                assert e.offset is not None
        assert caught > len(data) // 2  # the vast majority is detected


def _graph_select(steps) -> GraphSelect:
    return GraphSelect([StarItem()], PathAtom(steps), IntoClause("subgraph", "G"))


class TestSemanticChecks:
    def test_binop_arity(self):
        # the encoder happily writes a null operand; the verifier refuses
        stmt = _graph_select(
            [
                VertexStep(
                    "Person", cond=BinOp("=", ColRef(None, "age"), None)
                ),
                EdgeStep("follows", "out"),
                VertexStep("Person"),
            ]
        )
        with pytest.raises(IRError, match="missing operand"):
            verify_statement_ir(encode_statement(stmt))

    def test_invalid_edge_direction(self):
        # the AST constructor refuses bad directions, so corrupt the
        # length-prefixed "out" string in the encoded bytes instead
        data = enc(GRAPH_Q)
        needle = b"\x03\x00\x00\x00out"
        assert needle in data
        data = data.replace(needle, b"\x03\x00\x00\x00owt")
        with pytest.raises(IRError, match="direction"):
            verify_statement_ir(data)

    def test_unknown_vertex_type_against_catalog(self, social_db):
        stmt = _graph_select(
            [VertexStep("Nope"), EdgeStep("follows", "out"), VertexStep("Person")]
        )
        data = encode_statement(stmt)
        verify_statement_ir(data)  # structurally fine without a catalog
        with pytest.raises(IRError, match="unknown vertex type 'Nope'"):
            verify_statement_ir(data, social_db.catalog)

    def test_unknown_edge_type_against_catalog(self, social_db):
        stmt = _graph_select(
            [VertexStep("Person"), EdgeStep("admires", "out"), VertexStep("Person")]
        )
        with pytest.raises(IRError, match="unknown edge type 'admires'"):
            verify_statement_ir(encode_statement(stmt), social_db.catalog)

    def test_consecutive_vertex_steps_rejected(self):
        stmt = _graph_select([VertexStep("Person"), VertexStep("Person")])
        with pytest.raises(IRError, match="consecutive vertex steps"):
            verify_statement_ir(encode_statement(stmt))

    def test_pattern_must_end_with_vertex(self):
        stmt = _graph_select([VertexStep("Person"), EdgeStep("follows", "out")])
        with pytest.raises(IRError, match="end with a vertex"):
            verify_statement_ir(encode_statement(stmt))


class TestServerIntegration:
    def _server(self) -> Server:
        s = Server()
        s.submit("admin", SOCIAL_DDL)
        return s

    def test_submit_rejects_corrupted_ir(self):
        s = self._server()
        program = s.compile(
            "admin",
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G",
        )
        cs = program.statements[0]
        raw = bytearray(cs.ir)
        raw[5] = 0x7F  # clobber the statement tag
        cs.ir = bytes(raw)
        s.compile = lambda *a, **k: program  # type: ignore[method-assign]
        shipped_before = s.ir_bytes_shipped
        # the serving engine parses the source to classify read vs write,
        # so the (ignored) stand-in script must still be valid GraQL
        with pytest.raises(IRError, match="statement tag"):
            s.submit(
                "admin",
                "select * from graph Person ( ) --follows--> Person ( ) "
                "into subgraph G",
            )
        # rejected before the backend saw a single byte
        assert s.ir_bytes_shipped == shipped_before
        assert "G" not in s.catalog.subgraphs

    def test_submit_still_executes_valid_ir(self):
        s = self._server()
        results = s.submit(
            "admin",
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G",
        )
        assert results[0].subgraph is not None
