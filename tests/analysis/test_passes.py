"""Unit tests for the individual lint passes."""

from __future__ import annotations

from repro.analysis.passes import (
    EXPANSION_THRESHOLD,
    blowup_pass,
    dead_statement_pass,
    deprecated_kwargs_pass,
    label_pass,
    predicate_pass,
)
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_script_collect


def codes(diags):
    return [d.code for d in diags]


class TestPredicatePass:
    def test_unsatisfiable_interval(self):
        script = parse_script(
            "select id from table People where age > 10 and age < 5"
        )
        (d,) = predicate_pass(script)
        assert d.code == "GQW101"
        assert d.span is not None and d.span.line == 1

    def test_unsatisfiable_on_graph_step(self):
        script = parse_script(
            "select * from graph Person (age > 99 and age < 1) "
            "--follows--> Person ( ) into subgraph G"
        )
        assert codes(predicate_pass(script)) == ["GQW101"]

    def test_tautology(self):
        script = parse_script("select id from table People where 1 = 1")
        (d,) = predicate_pass(script)
        assert d.code == "GQW102"

    def test_satisfiable_is_silent(self):
        script = parse_script(
            "select id from table People where age > 10 and age < 50"
        )
        assert predicate_pass(script) == []


class TestLabelPass:
    def test_unused_label(self):
        script = parse_script(
            "select B.id from graph Person ( ) --follows--> "
            "def B: Person ( ) --follows--> def C: Person ( ) into table T"
        )
        (d,) = label_pass(script)
        assert d.code == "GQW110"
        assert "'C'" in d.message

    def test_label_used_in_condition_is_live(self):
        script = parse_script(
            "select * from graph def a: Person ( ) --follows--> "
            "Person (age > a.age) into subgraph G"
        )
        assert label_pass(script) == []

    def test_label_rematched_by_later_step_is_live(self):
        script = parse_script(
            "select * from graph def x: Person ( ) --follows--> "
            "Person ( ) --follows--> x into subgraph G"
        )
        assert label_pass(script) == []

    def test_cross_statement_shadowing(self):
        script = parse_script(
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T1\n"
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T2"
        )
        out = label_pass(script)
        assert codes(out) == ["GQW111"]
        assert out[0].statement_index == 1


class TestDeadStatementPass:
    DEAD = (
        "select id from table People into table TT\n"
        "select name from table People into table TT\n"
        "select * from table TT"
    )

    def test_overwritten_unread_is_dead(self, social_db):
        out = dead_statement_pass(parse_script(self.DEAD), social_db.catalog)
        assert codes(out) == ["GQW120"]
        assert out[0].statement_index == 0

    def test_read_between_writes_is_live(self, social_db):
        script = parse_script(
            "select id from table People into table TT\n"
            "select * from table TT\n"
            "select name from table People into table TT"
        )
        assert dead_statement_pass(script, social_db.catalog) == []

    def test_final_result_is_live(self, social_db):
        script = parse_script("select id from table People into table TT")
        assert dead_statement_pass(script, social_db.catalog) == []


class TestBlowupPass:
    def _lint(self, db, source):
        script = parse_script(source)
        checked, errors, _ = check_script_collect(script, db.catalog)
        assert not errors
        return blowup_pass(script, catalog=db.catalog, checked=checked)

    def test_dense_unbounded_regex_warns(self, corpus_db):
        out = self._lint(
            corpus_db,
            "select * from graph Person ( ) ( --follows--> [ ] )+ "
            "Person ( ) into subgraph BG",
        )
        assert codes(out) == ["GQW130"]

    def test_sparse_unbounded_regex_is_silent(self, social_db):
        # the plain social graph's fanout is under the threshold
        assert EXPANSION_THRESHOLD > 8 / 6
        out = self._lint(
            social_db,
            "select * from graph Person ( ) ( --follows--> [ ] )+ "
            "Person ( ) into subgraph BG",
        )
        assert out == []

    def test_bounded_regex_is_silent(self, corpus_db):
        out = self._lint(
            corpus_db,
            "select * from graph Person ( ) ( --follows--> [ ] ){2} "
            "Person ( ) into subgraph BG",
        )
        assert out == []

    def test_high_fanout_variant_warns(self, corpus_db):
        out = self._lint(
            corpus_db,
            "select * from graph Hub ( ) --[]--> [ ] into subgraph HG",
        )
        assert codes(out) == ["GQW131"]

    def test_narrowed_variant_is_silent(self, social_db):
        # only two candidate targets (Person, City): under the threshold
        out = self._lint(
            social_db,
            "select * from graph Person ( ) --[]--> [ ] into subgraph HG",
        )
        assert out == []


class TestDeprecatedKwargsPass:
    def test_each_passed_kwarg_reported(self):
        out = deprecated_kwargs_pass(
            {"force_direction": "forward", "force_strategy": None}
        )
        assert codes(out) == ["GQW140"]
        assert "force_direction" in out[0].message

    def test_silent_when_unused(self):
        assert deprecated_kwargs_pass({}) == []
        assert deprecated_kwargs_pass({"force_direction": None}) == []
