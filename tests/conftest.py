"""Shared fixtures: a hand-built social database and Berlin databases."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.workloads.berlin import berlin_database

SOCIAL_DDL = """
create table People(
  id varchar(10),
  name varchar(32),
  country varchar(8),
  age integer,
  score float,
  joined date
)

create table Cities(
  id varchar(10),
  country varchar(8),
  population integer
)

create table Follows(
  src varchar(10),
  dst varchar(10),
  weight integer
)

create vertex Person(id) from table People

create vertex City(id) from table Cities

create edge follows with
vertices (Person as A, Person as B)
from table Follows
where Follows.src = A.id and Follows.dst = B.id

create edge livesIn with
vertices (Person, City)
where Person.country = City.country
"""

PEOPLE_ROWS = [
    ("p1", "Alice", "US", 34, 1.5, 735000),
    ("p2", "Bob", "DE", 28, 2.5, 735100),
    ("p3", "Carol", "US", 41, 3.5, 735200),
    ("p4", "Dan", "FR", 23, 0.5, 735300),
    ("p5", "Eve", "US", 55, 4.5, 735400),
    ("p6", "Frank", "DE", 19, 2.0, 735500),
]

CITY_ROWS = [
    ("nyc", "US", 8_000_000),
    ("berlin", "DE", 3_600_000),
    ("paris", "FR", 2_100_000),
]

FOLLOW_ROWS = [
    ("p1", "p2", 5),
    ("p2", "p3", 3),
    ("p3", "p1", 1),
    ("p4", "p1", 2),
    ("p5", "p3", 9),
    ("p5", "p6", 4),
    ("p6", "p2", 7),
    ("p1", "p2", 8),  # parallel edge (from-table edges keep duplicates)
]


def build_social_db() -> Database:
    db = Database()
    db.execute(SOCIAL_DDL)
    db.db.ingest_rows("People", PEOPLE_ROWS)
    db.db.ingest_rows("Cities", CITY_ROWS)
    db.db.ingest_rows("Follows", FOLLOW_ROWS)
    db.catalog.refresh(db.db)
    return db


@pytest.fixture
def social_db() -> Database:
    return build_social_db()


@pytest.fixture(scope="session")
def berlin_db() -> Database:
    """A small, session-cached Berlin database (read-only in tests!)."""
    return berlin_database(scale=60, seed=7, with_export=True)


@pytest.fixture(scope="session")
def berlin_db_medium() -> Database:
    return berlin_database(scale=200, seed=13, with_export=False)


def random_graph_db(
    seed: int,
    num_vertices: int = 40,
    num_edges: int = 120,
    num_types: int = 2,
) -> Database:
    """A random multigraph database used by property-based tests.

    ``num_types`` vertex types, one intra-type edge type per type plus a
    cross-type edge type, integer/str attributes for conditions.
    """
    rng = np.random.default_rng(seed)
    db = Database()
    ddl = []
    for t in range(num_types):
        ddl.append(
            f"create table T{t}(id integer, color varchar(8), weight integer)"
        )
        ddl.append(f"create vertex V{t}(id) from table T{t}")
    for t in range(num_types):
        ddl.append(f"create table E{t}(src integer, dst integer, cap integer)")
        ddl.append(
            f"create edge e{t} with vertices (V{t} as A, V{t} as B) "
            f"from table E{t} "
            f"where E{t}.src = A.id and E{t}.dst = B.id"
        )
    ddl.append("create table EX(src integer, dst integer, cap integer)")
    ddl.append(
        "create edge cross0 with vertices (V0, V1) from table EX "
        "where EX.src = V0.id and EX.dst = V1.id"
    )
    db.execute("\n".join(ddl))
    per_type = max(num_vertices // num_types, 2)
    for t in range(num_types):
        rows = [
            (
                i,
                str(rng.choice(["red", "green", "blue"])),
                int(rng.integers(0, 10)),
            )
            for i in range(per_type)
        ]
        db.db.ingest_rows(f"T{t}", rows)
    per_edge = max(num_edges // (num_types + 1), 1)
    for t in range(num_types):
        rows = [
            (
                int(rng.integers(per_type)),
                int(rng.integers(per_type)),
                int(rng.integers(0, 10)),
            )
            for _ in range(per_edge)
        ]
        db.db.ingest_rows(f"E{t}", rows)
    rows = [
        (
            int(rng.integers(per_type)),
            int(rng.integers(per_type)),
            int(rng.integers(0, 10)),
        )
        for _ in range(per_edge)
    ]
    db.db.ingest_rows("EX", rows)
    db.catalog.refresh(db.db)
    return db
