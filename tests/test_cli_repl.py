"""Tests for the interactive REPL (scripted stdin)."""

import builtins

import pytest

from repro.cli import main


def run_repl(monkeypatch, capsys, lines, argv=("repl",)):
    it = iter(lines)

    def fake_input(prompt=""):
        try:
            return next(it)
        except StopIteration:
            raise EOFError

    monkeypatch.setattr(builtins, "input", fake_input)
    rc = main(list(argv))
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestREPL:
    def test_quit(self, monkeypatch, capsys):
        rc, out, _ = run_repl(monkeypatch, capsys, ["\\quit"])
        assert rc == 0

    def test_eof_exits(self, monkeypatch, capsys):
        rc, _, _ = run_repl(monkeypatch, capsys, [])
        assert rc == 0

    def test_statement_terminated_by_blank_line(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            ["create table T(id integer)", "", "\\q"],
        )
        assert "created table T" in out

    def test_statement_terminated_by_semicolon(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            ["create table T(id integer);", "\\q"],
        )
        assert "created table T" in out

    def test_multiline_statement(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(",
                "  id integer,",
                "  name varchar(8)",
                ")",
                "",
                "\\tables",
                "\\q",
            ],
        )
        assert "T (0 rows)" in out

    def test_catalog_commands(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(id integer);",
                "create vertex V(id) from table T;",
                "\\tables",
                "\\vertices",
                "\\edges",
                "\\subgraphs",
                "\\q",
            ],
        )
        assert "T (0 rows)" in out
        assert "V (0 instances)" in out

    def test_error_reported_and_repl_continues(self, monkeypatch, capsys):
        rc, out, err = run_repl(
            monkeypatch,
            capsys,
            [
                "select * from table Missing;",
                "create table T(id integer);",
                "\\q",
            ],
        )
        assert "unknown table" in err
        assert "created table T" in out

    def test_explain_command(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(id integer);",
                "\\explain select * from table T",
                "\\q",
            ],
        )
        assert "TABLE SELECT from T" in out

    def test_explain_error_handled(self, monkeypatch, capsys):
        rc, out, err = run_repl(
            monkeypatch,
            capsys,
            ["\\explain select * from table Nope", "\\q"],
        )
        assert "error:" in err

    def test_unknown_backslash_command(self, monkeypatch, capsys):
        rc, out, _ = run_repl(monkeypatch, capsys, ["\\wat", "\\q"])
        assert "unknown command" in out

    def test_demo_command_loads(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            ["\\vertices", "\\q"],
            argv=("demo", "berlin", "--scale", "30"),
        )
        assert "loaded demo 'berlin'" in out
        assert "ProductVtx" in out


class TestREPLCheck:
    def test_check_reports_diagnostics_without_running(
        self, monkeypatch, capsys
    ):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(id integer);",
                "\\check select nope from table T",
                "\\tables",
                "\\q",
            ],
        )
        assert "error[GQL013]" in out
        assert "help:" in out
        # analysis must not have created anything
        assert "1 error(s), 0 warning(s)" in out

    def test_check_clean_statement(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(id integer);",
                "\\check select id from table T",
                "\\q",
            ],
        )
        assert "<repl>: clean" in out


class TestIndexCommands:
    def test_di_lists_indexes(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(id integer, c varchar(4));",
                "create vertex V(id) from table T;",
                "\\di",
                "create index by_c on V(c);",
                "\\di",
                "\\q",
            ],
        )
        assert rc == 0
        assert "(no indexes)" in out
        assert "by_c on V(c)" in out

    def test_schema_command(self, monkeypatch, capsys):
        rc, out, _ = run_repl(
            monkeypatch,
            capsys,
            [
                "create table T(id integer);",
                "create vertex V(id) from table T;",
                "\\schema",
                "\\q",
            ],
        )
        assert "vertex types:" in out
        assert "V <- T(id)" in out
