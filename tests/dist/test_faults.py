"""Unit tests for fault injection and the fault-aware message layer."""

import numpy as np
import pytest

from repro.dist.comm import ENVELOPE_BYTES, Communicator
from repro.dist.faults import CORRUPT, DELIVER, DROP, FaultInjector
from repro.dist.partition import Placement
from repro.errors import CommFailure, WorkerFailed, is_retryable


class TestFaultInjector:
    def test_scheduled_kill_fires_once(self):
        inj = FaultInjector(seed=0, kill_schedule={2: [1]})
        assert inj.poll_kill(0, {0, 1, 2}) is None
        assert inj.poll_kill(2, {0, 1, 2}) == 1
        assert inj.poll_kill(2, {0, 1, 2}) is None  # fired already
        assert inj.stats.kills == 1

    def test_dead_workers_do_not_die_twice(self):
        inj = FaultInjector(seed=0, kill_schedule={0: [1, 1, 2]})
        assert inj.poll_kill(0, {0, 2}) == 2  # 1 is already dead, skipped
        assert inj.stats.kills == 1

    def test_multi_kill_surfaces_one_per_poll(self):
        inj = FaultInjector(seed=0, kill_schedule={0: [1, 2]})
        assert inj.poll_kill(0, {0, 1, 2}) == 1
        assert inj.poll_kill(0, {0, 2}) == 2

    def test_probabilistic_kills_capped(self):
        inj = FaultInjector(seed=0, kill_prob=1.0, max_kills=2)
        kills = [inj.poll_kill(s, {0, 1, 2, 3}) for s in range(10)]
        assert sum(k is not None for k in kills) == 2

    def test_same_seed_same_schedule(self):
        draws = []
        for _ in range(2):
            inj = FaultInjector(seed=42, kill_prob=0.5, drop_prob=0.3, delay_prob=0.3)
            draws.append(
                (
                    [inj.poll_kill(s, {0, 1, 2}) for s in range(20)],
                    [inj.message_fate(0, 1) for _ in range(50)],
                )
            )
        assert draws[0] == draws[1]

    def test_reset_rearms_rng_and_stats(self):
        inj = FaultInjector(seed=9, drop_prob=0.5)
        first = [inj.message_fate(0, 1)[0] for _ in range(20)]
        inj.reset()
        assert inj.stats.drops == 0
        assert [inj.message_fate(0, 1)[0] for _ in range(20)] == first

    def test_fate_counters(self):
        inj = FaultInjector(seed=1, drop_prob=1.0)
        assert inj.message_fate(0, 1)[0] == DROP
        inj2 = FaultInjector(seed=1, corrupt_prob=1.0)
        assert inj2.message_fate(0, 1)[0] == CORRUPT
        inj3 = FaultInjector(seed=1, delay_prob=1.0, delay_ms=(5.0, 5.0))
        fate, delay = inj3.message_fate(0, 1)
        assert fate == DELIVER and delay == 5.0
        assert inj3.stats.delay_ms == 5.0

    def test_active_flag(self):
        assert not FaultInjector(seed=0).active
        assert FaultInjector(seed=0, drop_prob=0.1).active
        assert FaultInjector(seed=0, kill_schedule={0: [1]}).active


class TestCommunicatorEnvelopeAccounting:
    def test_empty_payload_still_pays_envelope(self):
        # a 0-byte array on the wire is still a message with a header
        comm = Communicator(2)
        empty = np.empty(0, dtype=np.int64)
        comm.alltoall([[None, empty], [None, None]])
        assert comm.stats.messages == 1
        assert comm.stats.bytes == ENVELOPE_BYTES

    def test_gather_empty_payload_accounted(self):
        comm = Communicator(2)
        comm.gather([None, np.empty(0, dtype=np.int64)], root=0)
        assert comm.stats.messages == 1
        assert comm.stats.bytes == ENVELOPE_BYTES

    def test_none_still_free(self):
        comm = Communicator(2)
        comm.alltoall([[None, None], [None, None]])
        comm.gather([None, None], root=0)
        assert comm.stats.messages == 0

    def test_snapshot_has_delay_field(self):
        assert Communicator(2).stats.snapshot()["delay_ms"] == 0.0


class TestCommunicatorFaults:
    def _outboxes(self, n=2):
        arr = np.arange(4, dtype=np.int64)
        out = [[None] * n for _ in range(n)]
        out[0][1] = arr
        return out

    def test_kill_raises_retryable_worker_failed(self):
        inj = FaultInjector(seed=0, kill_schedule={0: [1]})
        comm = Communicator(2, placement=Placement(2, 2), injector=inj)
        with pytest.raises(WorkerFailed) as ei:
            comm.alltoall(self._outboxes())
        assert ei.value.worker == 1
        assert is_retryable(ei.value)
        assert comm.stats.supersteps == 1  # the failed barrier still counts

    def test_drop_raises_comm_failure_after_accounting(self):
        inj = FaultInjector(seed=0, drop_prob=1.0)
        comm = Communicator(2, injector=inj)
        with pytest.raises(CommFailure) as ei:
            comm.alltoall(self._outboxes())
        assert is_retryable(ei.value)
        # the failed attempt's traffic is real and accounted
        assert comm.stats.messages == 1
        assert inj.stats.drops == 1

    def test_corruption_detected_at_barrier(self):
        inj = FaultInjector(seed=0, corrupt_prob=1.0)
        comm = Communicator(2, injector=inj)
        with pytest.raises(CommFailure):
            comm.alltoall(self._outboxes())
        assert inj.stats.corruptions == 1

    def test_delay_accounted_not_fatal(self):
        inj = FaultInjector(seed=0, delay_prob=1.0, delay_ms=(2.0, 2.0))
        comm = Communicator(2, injector=inj)
        inboxes = comm.alltoall(self._outboxes())
        assert inboxes[1][0] is not None  # delivered, just late
        assert comm.stats.delay_ms == 2.0

    def test_failover_makes_messages_local(self):
        # worker 1 dead, its partition served by worker... 0? ring: replica
        # of partition 1 is worker 0 only when k spans; with n=2, k=2 the
        # replicas of partition 1 are [1, 0] -> serving = 0 once 1 is dead,
        # so 0 -> partition-1 traffic becomes physically local and free.
        placement = Placement(2, 2)
        placement.fail(1)
        comm = Communicator(2, placement=placement)
        comm.alltoall(self._outboxes())
        assert comm.stats.messages == 0

    def test_lost_partition_is_fatal(self):
        placement = Placement(2, 1)
        placement.fail(1)
        comm = Communicator(2, placement=placement)
        with pytest.raises(WorkerFailed) as ei:
            comm.alltoall(self._outboxes())
        assert not is_retryable(ei.value)
        assert ei.value.partition == 1
