"""Distributed relational operators vs single-node reference."""

import numpy as np
import pytest

from repro.dist.comm import Communicator
from repro.dist.dist_relops import dist_filter_count, dist_group_by_aggregate
from repro.dtypes import FLOAT, INTEGER, VarChar
from repro.graql.parser import parse_expression
from repro.storage import Schema, Table, relops
from repro.storage.relops import AggSpec


def random_table(seed: int, n: int = 200) -> Table:
    rng = np.random.default_rng(seed)
    rows = [
        (
            str(rng.choice(["a", "b", "c", "d"])),
            int(rng.integers(0, 50)),
            float(rng.uniform(0, 10)),
        )
        for _ in range(n)
    ]
    return Table.from_rows(
        "T", Schema.of(("g", VarChar(2)), ("n", INTEGER), ("x", FLOAT)), rows
    )


def normalize(table: Table):
    return sorted(
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in table.to_rows()
    )


AGGS = [
    [AggSpec("count", None, "c")],
    [AggSpec("sum", "n", "s")],
    [AggSpec("min", "n", "lo"), AggSpec("max", "n", "hi")],
    [AggSpec("avg", "x", "a")],
    [AggSpec("count", None, "c"), AggSpec("sum", "n", "s"), AggSpec("avg", "x", "a")],
]


class TestDistGroupBy:
    @pytest.mark.parametrize("workers", [1, 2, 5])
    @pytest.mark.parametrize("agg_idx", range(len(AGGS)))
    def test_matches_single_node(self, workers, agg_idx):
        table = random_table(agg_idx + 1)
        aggs = AGGS[agg_idx]
        ref = relops.group_by_aggregate(table, ["g"], aggs)
        got = dist_group_by_aggregate(table, ["g"], aggs, Communicator(workers))
        assert normalize(got) == normalize(ref)

    def test_multi_key_groups(self):
        table = random_table(9)
        aggs = [AggSpec("count", None, "c")]
        ref = relops.group_by_aggregate(table, ["g", "n"], aggs)
        got = dist_group_by_aggregate(table, ["g", "n"], aggs, Communicator(3))
        assert normalize(got) == normalize(ref)

    def test_global_aggregate_no_groups(self):
        table = random_table(4)
        aggs = [AggSpec("sum", "n", "s"), AggSpec("count", None, "c")]
        ref = relops.group_by_aggregate(table, [], aggs)
        got = dist_group_by_aggregate(table, [], aggs, Communicator(4))
        assert normalize(got) == normalize(ref)

    def test_empty_table(self):
        table = Table("E", Schema.of(("g", VarChar(2)), ("n", INTEGER), ("x", FLOAT)))
        got = dist_group_by_aggregate(
            table, [], [AggSpec("count", None, "c")], Communicator(2)
        )
        assert got.row(0) == (0,)

    def test_messages_accounted(self):
        comm = Communicator(4)
        dist_group_by_aggregate(
            random_table(2), ["g"], [AggSpec("count", None, "c")], comm
        )
        assert comm.stats.messages > 0


class TestDistFilterCount:
    def test_matches_single_node(self):
        table = random_table(5)
        cond = parse_expression("n > 25")
        ref = relops.filter_table(table, cond).num_rows
        got = dist_filter_count(table, cond, Communicator(3))
        assert got == ref

    def test_none_condition(self):
        table = random_table(6)
        assert dist_filter_count(table, None, Communicator(2)) == table.num_rows
