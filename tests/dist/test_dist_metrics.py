"""Tests for distributed-execution metrics and executor internals."""

import numpy as np
import pytest

from repro.dist import Cluster
from repro.dist.comm import Communicator
from repro.dist.dist_query import DistFrontierExecutor, _gather, _scatter
from repro.dist.partition import Partitioner, build_edge_shards
from repro.errors import ExecutionError
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement


def executor_for(db, workers):
    p = Partitioner(workers)
    return DistFrontierExecutor(
        db.db, build_edge_shards(db.db, p), p, Communicator(workers)
    )


def atom_of(db, text):
    return check_statement(parse_statement(text), db.catalog).pattern.atoms()[0]


class TestScatterGather:
    def test_roundtrip(self):
        p = Partitioner(3)
        sets = {"T": np.asarray([0, 1, 2, 5, 7, 9], dtype=np.int64)}
        dist = _scatter(sets, p)
        back = _gather(dist)
        assert back["T"].tolist() == sets["T"].tolist()

    def test_scatter_ownership(self):
        p = Partitioner(4)
        dist = _scatter({"T": np.arange(10, dtype=np.int64)}, p)
        for w, part in enumerate(dist["T"]):
            assert all(v % 4 == w for v in part.tolist())


class TestWorkAccounting:
    def test_work_counts_expansions(self, social_db):
        fx = executor_for(social_db, 3)
        atom = atom_of(
            social_db,
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G",
        )
        fx.run_atom(atom)
        total = int(fx.work_per_worker.sum())
        # forward pass touches all 8 edges; the cull re-expands survivors
        assert total >= 8
        assert (fx.work_per_worker >= 0).all()

    def test_work_spreads_across_workers(self, berlin_db):
        fx = executor_for(berlin_db, 4)
        atom = atom_of(
            berlin_db,
            "select * from graph ReviewVtx ( ) --reviewer--> PersonVtx ( ) "
            "into subgraph G",
        )
        fx.run_atom(atom)
        busy = int((fx.work_per_worker > 0).sum())
        assert busy >= 3  # hash partitioning spreads review sources


class TestEdgeConditionsDistributed:
    def test_edge_cond_matches_local(self, social_db):
        q = ("select * from graph Person ( ) --follows(weight > 4)--> "
             "Person ( ) into subgraph {}")
        ref = social_db.execute(q.format("L"))[0].subgraph
        cluster = Cluster(social_db.db, 3, social_db.catalog)
        got = cluster.execute(q.format("D"))[0].subgraph
        assert {k: v.tolist() for k, v in ref.edges.items()} == {
            k: v.tolist() for k, v in got.edges.items()
        }


class TestSeedsDistributed:
    def test_seeded_query_matches_local(self, social_db):
        social_db.execute(
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph SeedD"
        )
        q = ("select * from graph SeedD.Person ( ) --follows--> Person ( ) "
             "into subgraph {}")
        ref = social_db.execute(q.format("L2"))[0].subgraph
        cluster = Cluster(social_db.db, 2, social_db.catalog)
        got = cluster.execute(q.format("D2"))[0].subgraph
        assert ref == got or (
            {k: v.tolist() for k, v in ref.vertices.items()}
            == {k: v.tolist() for k, v in got.vertices.items()}
        )


class TestRegexRefused:
    def test_regex_raises_on_dist_executor(self, social_db):
        fx = executor_for(social_db, 2)
        atom = atom_of(
            social_db,
            "select * from graph Person ( ) ( --follows--> [ ] )+ "
            "Person ( ) into subgraph G",
        )
        with pytest.raises(ExecutionError, match="distributed"):
            fx.run_atom(atom)

    def test_cluster_falls_back_for_regex(self, social_db):
        cluster = Cluster(social_db.db, 2, social_db.catalog)
        r = cluster.execute(
            "select * from graph Person ( ) ( --follows--> [ ] )+ "
            "Person ( ) into subgraph RF"
        )[0]
        assert r.subgraph.num_vertices > 0  # executed locally


class TestSuperstepAccounting:
    def test_supersteps_proportional_to_edge_steps(self, social_db):
        # k edge steps -> 2k supersteps (forward + cull), independent of
        # worker count
        for hops, expected in ((1, 2), (2, 4)):
            pattern = " --follows--> Person ( )" * hops
            q = f"select * from graph Person ( ){pattern} into subgraph S{hops}"
            cluster = Cluster(social_db.db, 3, social_db.catalog)
            cluster.reset_stats()
            cluster.execute(q)
            assert cluster.comm_stats()["supersteps"] == expected
