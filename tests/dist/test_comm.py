"""Unit tests for the message layer and partitioner."""

import numpy as np
import pytest

from repro.dist.comm import ENVELOPE_BYTES, CommStats, Communicator
from repro.dist.partition import Partitioner


class TestCommunicator:
    def test_alltoall_routing(self):
        comm = Communicator(3)
        payload = lambda s, d: np.asarray([s * 10 + d], dtype=np.int64)
        outboxes = [[payload(s, d) for d in range(3)] for s in range(3)]
        inboxes = comm.alltoall(outboxes)
        for d in range(3):
            for s in range(3):
                assert inboxes[d][s][0] == s * 10 + d

    def test_local_delivery_free(self):
        comm = Communicator(2)
        arr = np.arange(10, dtype=np.int64)
        outboxes = [[arr, None], [None, arr]]  # only local deliveries
        comm.alltoall(outboxes)
        assert comm.stats.messages == 0
        assert comm.stats.bytes == 0

    def test_remote_delivery_accounted(self):
        comm = Communicator(2)
        arr = np.arange(10, dtype=np.int64)
        outboxes = [[None, arr], [None, None]]
        comm.alltoall(outboxes)
        assert comm.stats.messages == 1
        assert comm.stats.bytes == arr.nbytes + ENVELOPE_BYTES

    def test_supersteps_counted(self):
        comm = Communicator(2)
        empty = [[None, None], [None, None]]
        comm.alltoall(empty)
        comm.alltoall(empty)
        assert comm.stats.supersteps == 2

    def test_broadcast(self):
        comm = Communicator(4)
        comm.broadcast(0, np.arange(4, dtype=np.int64))
        assert comm.stats.messages == 3

    def test_gather(self):
        comm = Communicator(3)
        out = comm.gather([np.asarray([i]) for i in range(3)], root=0)
        assert len(out) == 3
        assert comm.stats.messages == 2  # roots own part is free

    def test_reset(self):
        comm = Communicator(2)
        comm.alltoall([[None, np.arange(3)], [None, None]])
        comm.reset()
        assert comm.stats.messages == 0

    def test_tuple_payload_sizes(self):
        comm = Communicator(2)
        payload = (np.arange(4, dtype=np.int64), np.arange(2, dtype=np.int64))
        comm.alltoall([[None, payload], [None, None]])
        assert comm.stats.bytes == 4 * 8 + 2 * 8 + ENVELOPE_BYTES


class TestPartitioner:
    def test_owner_of(self):
        p = Partitioner(4)
        vids = np.arange(10, dtype=np.int64)
        assert p.owner_of(vids).tolist() == [i % 4 for i in range(10)]

    def test_local_vids(self):
        p = Partitioner(3)
        assert p.local_vids(1, 10).tolist() == [1, 4, 7]

    def test_partition_is_complete_and_disjoint(self):
        p = Partitioner(3)
        vids = np.arange(17, dtype=np.int64)
        buckets = p.split_by_owner(vids)
        combined = np.sort(np.concatenate(buckets))
        assert combined.tolist() == vids.tolist()

    def test_single_worker(self):
        p = Partitioner(1)
        assert p.owner_of(np.asarray([5, 9])).tolist() == [0, 0]

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            Partitioner(0)
