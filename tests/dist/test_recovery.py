"""Replica placement, superstep recovery, circuit breaker, degradation."""

import numpy as np
import pytest

from repro.dist import CircuitBreaker, Cluster, FaultInjector, Placement
from repro.dist.recovery import CLOSED, HALF_OPEN, OPEN, RecoveryStats
from repro.errors import DegradedMode, WorkerFailed

QUERY = (
    "select * from graph Person ( ) --follows--> Person ( ) --follows--> "
    "Person ( ) into subgraph {}"
)


def subgraphs_equal(a, b) -> bool:
    return (
        {k: v.tolist() for k, v in a.vertices.items()}
        == {k: v.tolist() for k, v in b.vertices.items()}
        and {k: v.tolist() for k, v in a.edges.items()}
        == {k: v.tolist() for k, v in b.edges.items()}
    )


class TestPlacement:
    def test_identity_when_all_live(self):
        p = Placement(4, 2)
        assert [p.serving(i) for i in range(4)] == [0, 1, 2, 3]

    def test_failover_to_ring_replica(self):
        p = Placement(4, 2)
        p.fail(1)
        assert p.serving(1) == 2  # replicas of 1 are [1, 2]
        assert p.serving(0) == 0

    def test_all_replicas_dead_is_fatal(self):
        p = Placement(4, 2)
        p.fail(1)
        p.fail(2)
        with pytest.raises(WorkerFailed) as ei:
            p.serving(1)
        assert not ei.value.retryable

    def test_nonadjacent_double_failure_survives(self):
        p = Placement(4, 2)
        p.fail(0)
        p.fail(2)
        assert p.serving(0) == 1 and p.serving(2) == 3

    def test_partitions_stored_by(self):
        p = Placement(4, 2)
        # worker 1 stores its primary (1) and replicates partition 0
        assert p.partitions_stored_by(1) == [0, 1]
        assert Placement(4, 1).partitions_stored_by(1) == [1]

    def test_restore_all(self):
        p = Placement(3, 2)
        p.fail(0)
        p.restore_all()
        assert p.serving(0) == 0 and p.num_failed == 0

    def test_replication_bounds(self):
        with pytest.raises(ValueError):
            Placement(2, 3)
        with pytest.raises(ValueError):
            Placement(2, 0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        b = CircuitBreaker(failure_threshold=3, reset_timeout_s=10, clock=lambda: 0.0)
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED and b.allow()
        b.record_failure()
        assert b.state == OPEN and not b.allow()
        assert b.trips == 1

    def test_half_open_probe_success_closes(self):
        now = [0.0]
        b = CircuitBreaker(failure_threshold=1, reset_timeout_s=5, clock=lambda: now[0])
        b.record_failure()
        assert not b.allow()
        now[0] = 6.0
        assert b.allow()  # half-open probe
        assert b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED and b.allow()

    def test_half_open_probe_failure_reopens(self):
        now = [0.0]
        b = CircuitBreaker(failure_threshold=2, reset_timeout_s=5, clock=lambda: now[0])
        b.record_failure()
        b.record_failure()
        now[0] = 6.0
        assert b.allow()
        b.record_failure()  # probe failed: open immediately, new timeout
        assert b.state == OPEN and not b.allow()
        assert b.trips == 2

    def test_success_resets_failure_count(self):
        b = CircuitBreaker(failure_threshold=2, clock=lambda: 0.0)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED


class TestClusterRecovery:
    def test_single_failure_recovers_identically(self, social_db):
        ref = social_db.execute(QUERY.format("LR"))[0].subgraph
        inj = FaultInjector(seed=3, kill_schedule={0: [2]})
        cluster = Cluster(social_db.db, 4, social_db.catalog, replication=2,
                          fault_injector=inj)
        result = cluster.execute(QUERY.format("DR"))[0]
        assert not result.degraded
        assert subgraphs_equal(ref, result.subgraph)
        assert result.recovery["failovers"] == 1
        assert result.recovery["retries"] >= 1
        assert cluster.reliability_stats()["failed_workers"] == 1

    def test_two_nonadjacent_failures_recover(self, social_db):
        ref = social_db.execute(QUERY.format("LR2"))[0].subgraph
        inj = FaultInjector(seed=3, kill_schedule={0: [0], 1: [2]})
        cluster = Cluster(social_db.db, 4, social_db.catalog, replication=2,
                          fault_injector=inj)
        result = cluster.execute(QUERY.format("DR2"))[0]
        assert not result.degraded
        assert subgraphs_equal(ref, result.subgraph)
        assert result.recovery["failovers"] == 2

    def test_drops_retried_transparently(self, social_db):
        ref = social_db.execute(QUERY.format("LD"))[0].subgraph
        inj = FaultInjector(seed=11, drop_prob=0.25)
        cluster = Cluster(social_db.db, 4, social_db.catalog, replication=2,
                          fault_injector=inj, max_retries=30)
        result = cluster.execute(QUERY.format("DD"))[0]
        assert not result.degraded
        assert subgraphs_equal(ref, result.subgraph)
        if inj.stats.drops:
            assert result.recovery["retries"] >= 1
            assert result.recovery["extra_messages"] >= 1

    def test_unreplicated_failure_degrades_with_same_answer(self, social_db):
        ref = social_db.execute(QUERY.format("LU"))[0].subgraph
        inj = FaultInjector(seed=3, kill_schedule={0: [1]})
        cluster = Cluster(social_db.db, 4, social_db.catalog, fault_injector=inj)
        result = cluster.execute(QUERY.format("DU"))[0]
        assert result.degraded
        assert "WorkerFailed" in result.degraded_reason
        assert subgraphs_equal(ref, result.subgraph)
        assert cluster.degraded_statements == 1

    def test_timeout_degrades(self, social_db):
        cluster = Cluster(social_db.db, 3, social_db.catalog)
        result = cluster.execute(QUERY.format("DT"), timeout_s=0.0)[0]
        assert result.degraded
        assert "QueryTimeout" in result.degraded_reason
        assert result.subgraph.num_vertices > 0

    def test_degraded_mode_raises_when_fallback_disabled(self, social_db):
        inj = FaultInjector(seed=3, kill_schedule={0: [1]})
        cluster = Cluster(social_db.db, 4, social_db.catalog,
                          fault_injector=inj, allow_degraded=False)
        with pytest.raises(DegradedMode):
            cluster.execute(QUERY.format("DX"))

    def test_breaker_opens_after_repeated_failures(self, social_db):
        # every statement re-kills nothing (worker stays dead, partition
        # lost with k=1) -> consecutive fatal failures trip the breaker
        inj = FaultInjector(seed=3, kill_schedule={0: [1]})
        cluster = Cluster(social_db.db, 4, social_db.catalog, fault_injector=inj)
        for i in range(3):
            r = cluster.execute(QUERY.format(f"DB{i}"))[0]
            assert r.degraded
        assert cluster.breaker.state == OPEN
        # breaker open: no distributed attempt, still correct answers
        r = cluster.execute(QUERY.format("DB9"))[0]
        assert r.degraded and r.degraded_reason == "circuit breaker open"
        assert cluster.degraded_statements == 4

    def test_heal_restores_distributed_service(self, social_db):
        inj = FaultInjector(seed=3, kill_schedule={0: [1]})
        cluster = Cluster(social_db.db, 4, social_db.catalog, fault_injector=inj,
                          breaker=CircuitBreaker(failure_threshold=1))
        assert cluster.execute(QUERY.format("DH0"))[0].degraded
        assert cluster.breaker.state == OPEN
        cluster.heal()
        result = cluster.execute(QUERY.format("DH1"))[0]
        assert not result.degraded
        assert cluster.breaker.state == CLOSED

    def test_replicated_memory_costs_k_times(self, social_db):
        base = Cluster(social_db.db, 4, social_db.catalog)
        repl = Cluster(social_db.db, 4, social_db.catalog, replication=2)
        m1 = base.memory_per_worker()
        m2 = repl.memory_per_worker()
        assert sum(m2) == pytest.approx(2 * sum(m1))

    def test_recovery_stats_merge(self):
        a, b = RecoveryStats(), RecoveryStats()
        b.retries, b.extra_bytes = 2, 100
        a.merge(b)
        assert a.snapshot()["retries"] == 2
        assert a.snapshot()["extra_bytes"] == 100


class TestServerDegradation:
    def test_server_counts_degraded_statements(self, social_db):
        from repro import Server

        inj = FaultInjector(seed=3, kill_schedule={0: [1]})
        server = Server(backend=social_db.db, workers=4,
                        cluster_opts={"fault_injector": inj})
        result = server.submit("admin", QUERY.format("SD"))[0]
        assert result.degraded
        assert server.degraded_statements == 1

    def test_server_survives_failure_with_replication(self, social_db):
        from repro import Server

        inj = FaultInjector(seed=3, kill_schedule={0: [1]})
        server = Server(backend=social_db.db, workers=4,
                        cluster_opts={"replication": 2, "fault_injector": inj})
        result = server.submit("admin", QUERY.format("SR"))[0]
        assert not result.degraded
        assert result.recovery["failovers"] == 1
        assert server.degraded_statements == 0
