"""Tests for the simulated cluster: shard structure and result equality."""

import numpy as np
import pytest

from repro.dist import Cluster
from repro.dist.partition import Partitioner, build_edge_shards


def subgraphs_equal(a, b) -> bool:
    return (
        {k: v.tolist() for k, v in a.vertices.items()}
        == {k: v.tolist() for k, v in b.vertices.items()}
        and {k: v.tolist() for k, v in a.edges.items()}
        == {k: v.tolist() for k, v in b.edges.items()}
    )


class TestShards:
    def test_shards_cover_all_edges(self, social_db):
        p = Partitioner(3)
        shards = build_edge_shards(social_db.db, p)
        for ename, et in social_db.db.edge_types.items():
            fwd_total = sum(shards[w][ename].forward.num_edges for w in range(3))
            rev_total = sum(shards[w][ename].reverse.num_edges for w in range(3))
            assert fwd_total == et.num_edges
            assert rev_total == et.num_edges

    def test_shard_ownership(self, social_db):
        p = Partitioner(2)
        shards = build_edge_shards(social_db.db, p)
        et = social_db.db.edge_type("follows")
        for w in range(2):
            shard = shards[w]["follows"]
            for eid in shard.forward_eids_local:
                src = int(et.src_vids[eid])
                assert p.owner_of(np.asarray([src]))[0] == w

    def test_eids_are_global(self, social_db):
        p = Partitioner(2)
        shards = build_edge_shards(social_db.db, p)
        all_eids = np.concatenate(
            [shards[w]["follows"].forward_eids_local for w in range(2)]
        )
        assert sorted(all_eids.tolist()) == list(
            range(social_db.db.edge_type("follows").num_edges)
        )


QUERIES = [
    "select * from graph Person (country = 'US') --follows--> Person ( ) "
    "into subgraph G{}",
    "select * from graph Person ( ) --follows--> Person ( ) --follows--> "
    "Person (country = 'DE') into subgraph G{}",
    "select * from graph City ( ) <--livesIn-- Person (age > 25) "
    "into subgraph G{}",
    "select * from graph Person (name = 'Alice') --[]--> [ ] "
    "into subgraph G{}",
]


class TestDistributedEquality:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    @pytest.mark.parametrize("qidx", range(len(QUERIES)))
    def test_matches_single_node(self, social_db, workers, qidx):
        q = QUERIES[qidx]
        ref = social_db.execute(q.format(f"L{workers}{qidx}"))[0].subgraph
        cluster = Cluster(social_db.db, workers, social_db.catalog)
        got = cluster.execute(q.format(f"D{workers}{qidx}"))[0].subgraph
        assert subgraphs_equal(ref, got)

    def test_and_composition_distributed(self, social_db):
        q = ("select * from graph def x: Person (country = 'DE') "
             "--follows--> Person ( ) and (x --livesIn--> City ( )) "
             "into subgraph {}")
        ref = social_db.execute(q.format("LA"))[0].subgraph
        cluster = Cluster(social_db.db, 3, social_db.catalog)
        got = cluster.execute(q.format("DA"))[0].subgraph
        assert subgraphs_equal(ref, got)

    def test_bindings_fall_back_to_local(self, social_db):
        cluster = Cluster(social_db.db, 2, social_db.catalog)
        results = cluster.execute(
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table TD"
        )
        assert results[0].kind == "table"
        assert results[0].table.num_rows == 8


class TestMetrics:
    def test_messages_grow_with_workers(self, social_db):
        q = ("select * from graph Person ( ) --follows--> Person ( ) "
             "into subgraph M{}")
        counts = []
        for w in (1, 2, 4):
            cluster = Cluster(social_db.db, w, social_db.catalog)
            cluster.reset_stats()
            cluster.execute(q.format(w))
            counts.append(cluster.comm_stats()["messages"])
        assert counts[0] == 0  # single worker: everything local
        assert counts[1] <= counts[2]

    def test_edge_balance(self, social_db):
        cluster = Cluster(social_db.db, 2, social_db.catalog)
        bal = cluster.edge_balance()
        assert len(bal["per_worker"]) == 2
        assert sum(bal["per_worker"]) == social_db.db.total_edges()
        assert bal["imbalance"] >= 1.0

    def test_memory_per_worker(self, social_db):
        cluster = Cluster(social_db.db, 4, social_db.catalog)
        mem = cluster.memory_per_worker()
        assert len(mem) == 4 and all(m > 0 for m in mem)

    def test_ddl_through_cluster_reshards(self, social_db):
        cluster = Cluster(social_db.db, 2, social_db.catalog)
        cluster.execute_statement(
            __import__("repro.graql.parser", fromlist=["parse_statement"])
            .parse_statement("create table Zed(id integer)")
        )
        assert "Zed" in cluster.catalog.tables
