"""Unit tests for the devlint semantic model: type inference, call
resolution, and the transitive summaries."""

from __future__ import annotations

from repro.devlint.model import (
    CONDITION,
    EXECUTOR,
    LOCK,
    SOCKET,
    THREAD,
    CodeModel,
    module_name_for,
)


def build(src: str, path: str = "m.py") -> CodeModel:
    return CodeModel.build([(path, src)])


class TestModuleNaming:
    def test_relative_src_path(self):
        assert module_name_for("src/repro/serve/locks.py") == (
            "repro.serve.locks"
        )

    def test_absolute_path_with_src_marker(self):
        assert module_name_for("/abs/checkout/src/repro/net/frame.py") == (
            "repro.net.frame"
        )

    def test_init_collapses_to_package(self):
        assert module_name_for("src/repro/devlint/__init__.py") == (
            "repro.devlint"
        )


class TestAttrTypes:
    def test_constructor_kinds(self):
        m = build(
            "import threading\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "import socket\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition()\n"
            "        self._pool = ThreadPoolExecutor(2)\n"
            "        self._sock = socket.socket()\n"
            "        self._t = threading.Thread(target=None)\n"
        )
        attrs = m.modules["m"].classes["S"].attr_types
        assert attrs["_lock"] == LOCK
        assert attrs["_cond"] == CONDITION
        assert attrs["_pool"] == EXECUTOR
        assert attrs["_sock"] == SOCKET
        assert attrs["_t"] == THREAD

    def test_annotation_through_optional(self):
        m = build(
            "from typing import Optional\n"
            "from concurrent.futures import ThreadPoolExecutor\n"
            "class S:\n"
            "    def __init__(self):\n"
            "        self._pool: Optional[ThreadPoolExecutor] = None\n"
        )
        assert m.modules["m"].classes["S"].attr_types["_pool"] == EXECUTOR

    def test_param_annotation_propagates_to_attr(self):
        m = build(
            "import socket\n"
            "class FrameSocket:\n"
            "    def __init__(self, sock: socket.socket):\n"
            "        self.sock = sock\n"
        )
        assert m.modules["m"].classes["FrameSocket"].attr_types["sock"] == (
            SOCKET
        )

    def test_user_class_attr(self):
        m = build(
            "class Cache:\n"
            "    pass\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.cache = Cache()\n"
        )
        assert m.modules["m"].classes["Engine"].attr_types["cache"] == (
            "m.Cache"
        )


class TestCallResolution:
    def test_self_method(self):
        m = build(
            "class A:\n"
            "    def f(self):\n"
            "        self.g()\n"
            "    def g(self):\n"
            "        pass\n"
        )
        f = m.modules["m"].classes["A"].methods["f"]
        assert [c.qualname for c in f.callees] == ["A.g"]

    def test_typed_receiver_method(self):
        m = build(
            "class Cache:\n"
            "    def lookup(self):\n"
            "        pass\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.cache = Cache()\n"
            "    def run(self):\n"
            "        self.cache.lookup()\n"
        )
        run = m.modules["m"].classes["Engine"].methods["run"]
        assert [c.qualname for c in run.callees] == ["Cache.lookup"]

    def test_module_function_by_bare_name(self):
        m = build(
            "def helper():\n"
            "    pass\n"
            "def caller():\n"
            "    helper()\n"
        )
        caller = m.modules["m"].functions["caller"]
        assert [c.qualname for c in caller.callees] == ["helper"]

    def test_cross_module_import(self):
        m = CodeModel.build([
            (
                "src/repro/a.py",
                "import os\ndef fsyncer(fd):\n    os.fsync(fd)\n",
            ),
            (
                "src/repro/b.py",
                "from repro.a import fsyncer\n"
                "def caller(fd):\n    fsyncer(fd)\n",
            ),
        ])
        caller = m.modules["repro.b"].functions["caller"]
        assert [c.qualname for c in caller.callees] == ["fsyncer"]
        # and the blocking fact propagated through the edge
        assert caller.blocks_via == "os.fsync (via fsyncer)"


class TestSummaries:
    def test_blocking_direct_and_transitive(self):
        m = build(
            "import time\n"
            "def leaf():\n"
            "    time.sleep(1)\n"
            "def mid():\n"
            "    leaf()\n"
            "def top():\n"
            "    mid()\n"
        )
        mod = m.modules["m"]
        assert mod.functions["leaf"].blocks_via == "time.sleep"
        assert mod.functions["mid"].blocks_via == "time.sleep (via leaf)"
        assert mod.functions["top"].blocks_via == "time.sleep (via mid)"

    def test_guard_transitive(self):
        m = build(
            "class C:\n"
            "    def _check_open(self):\n"
            "        pass\n"
            "    def _helper(self):\n"
            "        self._check_open()\n"
            "    def api(self):\n"
            "        self._helper()\n"
        )
        assert m.modules["m"].classes["C"].methods["api"].guards

    def test_durability_flag_via_receiver_name(self):
        m = build(
            "class S:\n"
            "    def __init__(self, wal):\n"
            "        self.wal = wal\n"
            "    def commit(self, rec):\n"
            "        self.wal.append(rec)\n"
        )
        assert m.modules["m"].classes["S"].methods["commit"].durable

    def test_condition_wait_is_not_blocking(self):
        m = build(
            "import threading\n"
            "class G:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def park(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait_for(lambda: True)\n"
        )
        assert m.modules["m"].classes["G"].methods["park"].blocks_via is None

    def test_syntax_error_file_is_skipped(self):
        m = CodeModel.build([
            ("bad.py", "def broken(:\n"),
            ("good.py", "def ok():\n    pass\n"),
        ])
        assert "good" in m.modules and "bad" not in m.modules
