"""Seeded-violation corpus: every GDL code has a snippet that triggers
it and a clean twin that does not.

Each trigger file is scanned alone, so a pass regression shows up as
exactly one missing (or one spurious) code, pointing straight at the
rule that broke.
"""

from __future__ import annotations

import os

import pytest

from repro.devlint import GDL_CODES, run_devcheck

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")

#: code -> (trigger file, expected finding count in it)
TRIGGERS = {
    "GDL001": ("gdl001_lock_order.py", 1),
    "GDL002": ("gdl002_lock_cycle.py", 1),
    "GDL010": ("gdl010_blocking_under_lock.py", 2),
    "GDL020": ("gdl020_ack_before_durability.py", 1),
    "GDL021": ("gdl021_repl_ack_before_durability.py", 1),
    "GDL030": ("gdl030_swallow_crash.py", 2),
    "GDL031": ("gdl031_broad_except.py", 1),
    "GDL032": ("gdl032_unjoined_thread.py", 1),
    "GDL033": ("gdl033_dropped_future.py", 1),
    "GDL034": ("gdl034_missing_guard.py", 1),
}


@pytest.mark.parametrize("code", sorted(TRIGGERS))
def test_trigger_fires_exactly_its_code(code):
    fname, expected = TRIGGERS[code]
    result = run_devcheck([os.path.join(CORPUS, fname)])
    codes = [d.code for d in result.diagnostics]
    assert codes.count(code) == expected, result.render_text()
    # and nothing else: a trigger seeding one violation must not trip
    # unrelated passes
    assert set(codes) == {code}, result.render_text()


@pytest.mark.parametrize("code", sorted(TRIGGERS))
def test_clean_twin_is_clean(code):
    fname, _ = TRIGGERS[code]
    twin = fname.replace(".py", "_clean.py")
    result = run_devcheck([os.path.join(CORPUS, twin)])
    assert result.diagnostics == [], result.render_text()


def test_every_registered_code_is_exercised():
    """GDL090 is baseline-generated (tests/devlint/test_baseline.py);
    every other code must have a corpus pair."""
    corpus_codes = set(TRIGGERS) | {"GDL090"}
    assert corpus_codes == set(GDL_CODES)
    for code, (fname, _) in TRIGGERS.items():
        assert os.path.exists(os.path.join(CORPUS, fname)), fname
        twin = fname.replace(".py", "_clean.py")
        assert os.path.exists(os.path.join(CORPUS, twin)), twin


def test_trigger_findings_carry_spans_symbols_and_hints():
    for code, (fname, _) in TRIGGERS.items():
        result = run_devcheck([os.path.join(CORPUS, fname)])
        for d in result.diagnostics:
            assert d.file and d.file.endswith(fname)
            assert d.span is not None and d.span.line > 0
            assert d.span.column > 0
            assert d.symbol, f"{code} finding lacks a symbol"
            assert d.hint, f"{code} finding lacks a fix-it hint"
            # location renders as file:line:col for editor jumping
            assert d.location == f"{d.file}:{d.span.line}:{d.span.column}"


def test_whole_corpus_scan_matches_per_file_sum():
    """Scanning the directory at once finds the same violations as the
    per-file scans (no cross-file contamination either way)."""
    result = run_devcheck([CORPUS])
    by_code: dict[str, int] = {}
    for d in result.diagnostics:
        by_code[d.code] = by_code.get(d.code, 0) + 1
    expected = {code: n for code, (_, n) in TRIGGERS.items()}
    assert by_code == expected
