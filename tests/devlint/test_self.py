"""The acceptance gate: ``graql devcheck`` over the engine's own source
tree, with the repo's reviewed baseline, must report nothing.

If this test fails, either a real concurrency/durability hazard landed
in the engine (fix it), or a pass regressed into a false positive (fix
the pass), or an intentional pattern needs a *reviewed* baseline entry.
Never loosen the assert.
"""

from __future__ import annotations

from pathlib import Path

from repro.devlint import Baseline, run_devcheck

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src" / "repro")
BASELINE = str(REPO_ROOT / "devlint-baseline.json")


def test_engine_tree_is_clean_under_reviewed_baseline():
    result = run_devcheck([SRC], baseline=Baseline.load(BASELINE))
    assert result.diagnostics == [], result.render_text()
    assert result.exit_code(strict=True) == 0
    # the tree is non-trivial; an empty scan would be a path bug, not a win
    assert result.files_scanned > 50


def test_every_baseline_entry_is_used():
    """Stale suppressions would surface as GDL090 warnings above; this
    spells the intent out: the baseline hides exactly what it claims."""
    baseline = Baseline.load(BASELINE)
    run_devcheck([SRC], baseline=baseline)
    for s in baseline.suppressions:
        assert s.used, f"stale baseline entry: {s!r}"


def test_baseline_entries_all_carry_review_reasons():
    baseline = Baseline.load(BASELINE)
    assert baseline.suppressions, "baseline unexpectedly empty"
    for s in baseline.suppressions:
        assert s.reason.startswith("Reviewed:"), (
            f"{s!r} lacks a 'Reviewed:' rationale"
        )
