"""Baseline suppression semantics: matching, stale-entry reporting
(GDL090), and load-time validation."""

from __future__ import annotations

import json
import os

import pytest

from repro.devlint import Baseline, DevDiagnostic, Suppression, run_devcheck
from repro.devlint.diagnostics import FileSpan

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def finding(code="GDL010", file="src/repro/durability/store.py",
            symbol="DurableStore.sync"):
    return DevDiagnostic(
        code,
        "blocking call under exclusive lock",
        span=FileSpan(file, 10, 5),
        symbol=symbol,
    )


class TestMatching:
    def test_exact_match_suppresses(self):
        s = Suppression("GDL010", "durability/store.py",
                        "DurableStore.sync", "reviewed")
        assert s.matches(finding())

    def test_path_suffix_match(self):
        s = Suppression("GDL010", "store.py", "DurableStore.sync", "r")
        assert s.matches(finding())
        # ...but only on a path-component boundary
        assert not s.matches(finding(file="src/repro/notstore.py"))

    def test_code_and_symbol_must_match(self):
        s = Suppression("GDL010", "durability/store.py",
                        "DurableStore.sync", "r")
        assert not s.matches(finding(code="GDL020"))
        assert not s.matches(finding(symbol="DurableStore.close"))


class TestFilter:
    def test_used_entry_suppresses_and_counts(self):
        b = Baseline([Suppression("GDL010", "durability/store.py",
                                  "DurableStore.sync", "r")])
        kept, suppressed = b.filter([finding()])
        assert kept == [] and suppressed == 1

    def test_stale_entry_becomes_gdl090(self):
        b = Baseline([Suppression("GDL010", "gone.py", "Gone.f", "r")])
        kept, suppressed = b.filter([])
        assert suppressed == 0
        assert [d.code for d in kept] == ["GDL090"]
        assert not kept[0].is_error  # warning: list must shrink, not fail CI
        assert "gone.py" in kept[0].message

    def test_unmatched_finding_is_kept(self):
        b = Baseline([Suppression("GDL010", "durability/store.py",
                                  "DurableStore.sync", "r")])
        other = finding(symbol="DurableStore.checkpoint")
        kept, suppressed = b.filter([finding(), other])
        assert kept == [other] and suppressed == 1


class TestLoad:
    def _write(self, tmp_path, payload):
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps(payload), encoding="utf-8")
        return str(p)

    def test_round_trip(self, tmp_path):
        path = self._write(tmp_path, {
            "version": 1,
            "suppressions": [{
                "code": "GDL010", "file": "durability/store.py",
                "symbol": "DurableStore.sync", "reason": "reviewed",
            }],
        })
        b = Baseline.load(path)
        assert len(b.suppressions) == 1
        assert b.suppressions[0].code == "GDL010"

    def test_wrong_version_rejected(self, tmp_path):
        path = self._write(tmp_path, {"version": 2, "suppressions": []})
        with pytest.raises(ValueError, match="unsupported baseline format"):
            Baseline.load(path)

    def test_missing_reason_rejected(self, tmp_path):
        path = self._write(tmp_path, {
            "version": 1,
            "suppressions": [{
                "code": "GDL010", "file": "f.py", "symbol": "C.m",
            }],
        })
        with pytest.raises(ValueError, match="reason"):
            Baseline.load(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            Baseline.load(str(tmp_path / "nope.json"))


def test_gdl090_surfaces_through_run_devcheck():
    """End to end: a stale baseline entry shows up as a GDL090 warning in
    the scan of a clean corpus file."""
    b = Baseline([Suppression("GDL001", "never_matches.py", "X.y",
                              "stale on purpose")])
    result = run_devcheck(
        [os.path.join(CORPUS, "gdl034_missing_guard_clean.py")], baseline=b
    )
    assert [d.code for d in result.diagnostics] == ["GDL090"]
    assert result.exit_code(strict=False) == 0
    assert result.exit_code(strict=True) == 1
