"""GDL021 clean twin: ``apply_replicated`` strictly precedes the
``REPL_ACK``, so the primary only counts records the replica holds
durably."""

FT_REPL_ACK = 0x22


class Applier:
    def __init__(self, frames, store):
        self.frames = frames
        self.store = store

    def handle_record(self, record):
        seq = self.store.apply_replicated(record)
        self.frames.send_frame(FT_REPL_ACK, {"seq": seq})
