"""GDL021 trigger: the replica acks the streamed record before
``apply_replicated`` lands it in its own WAL — the primary counts the
write replicated while a replica crash can still lose it."""

FT_REPL_ACK = 0x22


class Applier:
    def __init__(self, frames, store):
        self.frames = frames
        self.store = store

    def handle_record(self, record):
        self.frames.send_frame(FT_REPL_ACK, {"seq": record["seq"]})
        self.store.apply_replicated(record)  # GDL021: ack went out first
