"""GDL032 clean twin: one thread is daemonized, the other is joined on
stop(); neither can hang process exit."""

import threading


class Poller:
    def __init__(self, source):
        self.source = source
        self.worker = None
        self.watchdog = None
        self.stopping = threading.Event()

    def start(self):
        self.worker = threading.Thread(target=self._loop)
        self.worker.start()
        self.watchdog = threading.Thread(target=self._watch, daemon=True)
        self.watchdog.start()

    def stop(self):
        self.stopping.set()
        self.worker.join(timeout=5)

    def _loop(self):
        while not self.stopping.is_set():
            self.source.poll()

    def _watch(self):
        self.stopping.wait()
