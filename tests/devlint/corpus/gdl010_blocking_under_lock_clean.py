"""GDL010 clean twin: the lock only guards the shared-state swap; the
fsync and the sleep happen outside the critical section."""

import os
import threading
import time


class Flusher:
    def __init__(self, fileno):
        self._lock = threading.Lock()
        self.fileno = fileno
        self.dirty = []

    def flush(self):
        with self._lock:
            batch, self.dirty = self.dirty, []
        os.fsync(self.fileno)
        return batch

    def backoff(self):
        time.sleep(0.01)
        with self._lock:
            self.dirty.clear()
