"""GDL020 clean twin: WAL append strictly precedes the acknowledgement,
so a crash can only lose an unacknowledged statement."""

FT_RESULT = 0x03


class Session:
    def __init__(self, frames, wal):
        self.frames = frames
        self.wal = wal

    def handle_mutation(self, record, payload):
        self.wal.append(record)
        self.frames.send_frame(FT_RESULT, payload)
