"""GDL034 trigger: a class with a _check_open guard whose public
mutator never reaches it — it would happily run on a closed store."""


class KvStore:
    def __init__(self):
        self.data = {}
        self._closed = False

    def _check_open(self):
        if self._closed:
            raise RuntimeError("store is closed")

    def put(self, key, value):  # GDL034: no guard on the way in
        self.data[key] = value

    def close(self):
        self._closed = True
        self.data.clear()
