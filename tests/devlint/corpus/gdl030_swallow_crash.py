"""GDL030 trigger: a handler broad enough to catch BaseException (so
SimulatedCrash and KeyboardInterrupt too) that never re-raises."""


class Replayer:
    def replay(self, records):
        applied = 0
        for rec in records:
            try:
                rec.apply()
                applied += 1
            except BaseException:  # GDL030: swallows crash exceptions
                continue
        return applied

    def drain(self, queue):
        while queue:
            try:
                queue.pop()
            except:  # noqa: E722  GDL030: bare except, no re-raise
                break
