"""GDL010 trigger: fsync and sleep while holding an exclusive mutex —
every other thread needing the lock stalls behind the disk/clock."""

import os
import threading
import time


class Flusher:
    def __init__(self, fileno):
        self._lock = threading.Lock()
        self.fileno = fileno
        self.dirty = []

    def flush(self):
        with self._lock:
            os.fsync(self.fileno)  # GDL010: disk I/O under the mutex
            self.dirty.clear()

    def backoff(self):
        with self._lock:
            time.sleep(0.01)  # GDL010: clock wait under the mutex
