"""GDL001 trigger: the store lock (rank 4) is held while acquiring the
plan-cache lock (rank 3) — inner-to-outer, against the canonical order."""

import threading


class PlanCache:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}


class DurableStore:
    def __init__(self):
        self._lock = threading.Lock()
        self.cache = PlanCache()

    def evict_with_log(self, key):
        with self._lock:
            with self.cache._lock:  # GDL001: rank 3 acquired under rank 4
                self.cache.entries.pop(key, None)
