"""GDL034 clean twin: every public entry point reaches _check_open
(put directly, get through a guarded helper)."""


class KvStore:
    def __init__(self):
        self.data = {}
        self._closed = False

    def _check_open(self):
        if self._closed:
            raise RuntimeError("store is closed")

    def put(self, key, value):
        self._check_open()
        self.data[key] = value

    def get(self, key):
        return self._lookup(key)

    def _lookup(self, key):
        self._check_open()
        return self.data.get(key)

    def close(self):
        self._closed = True
        self.data.clear()
