"""GDL020 trigger: the result frame goes out before the WAL append —
a crash between the two acknowledges a statement the log never saw."""

FT_RESULT = 0x03


class Session:
    def __init__(self, frames, wal):
        self.frames = frames
        self.wal = wal

    def handle_mutation(self, record, payload):
        self.frames.send_frame(FT_RESULT, payload)  # GDL020: ack first
        self.wal.append(record)
