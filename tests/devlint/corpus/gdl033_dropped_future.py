"""GDL033 trigger: the future from submit() is discarded on the spot —
a traceback inside the worker is lost with it."""


class Prefetcher:
    def __init__(self, pool, loader):
        self.pool = pool
        self.loader = loader

    def warm(self, keys):
        for key in keys:
            self.pool.submit(self.loader.load, key)  # GDL033
