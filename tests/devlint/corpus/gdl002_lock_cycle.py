"""GDL002 trigger: two unranked locks acquired in opposite orders on
two code paths — classic ABBA deadlock."""

import threading


class MessageBus:
    def __init__(self):
        self._lock = threading.Lock()
        self.queue = []


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self.bus = MessageBus()
        self.pending = []

    def forward(self, msg):
        with self._lock:
            with self.bus._lock:  # order: Dispatcher -> MessageBus
                self.bus.queue.append(msg)

    def drain(self):
        with self.bus._lock:
            with self._lock:  # GDL002: MessageBus -> Dispatcher
                self.pending.clear()
