"""GDL031 clean twin: the broad handler records the failure it caught
(the binding is used), so nothing disappears silently."""


class StatsRefresher:
    def __init__(self, backend, log):
        self.backend = backend
        self.log = log
        self.stale = False

    def refresh(self):
        try:
            self.backend.recompute_statistics()
        except Exception as e:
            self.log.warning("stats refresh failed: %s", e)
            self.stale = True
