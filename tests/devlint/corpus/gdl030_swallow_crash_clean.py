"""GDL030 clean twin: cleanup-then-reraise keeps crash exceptions
propagating; the narrow handler cannot catch them at all."""


class Replayer:
    def replay(self, records):
        applied = 0
        for rec in records:
            try:
                rec.apply()
                applied += 1
            except BaseException:
                self.rollback(rec)
                raise  # cleanup only; the crash keeps propagating
        return applied

    def rollback(self, rec):
        rec.undo()

    def drain(self, queue):
        while queue:
            try:
                queue.pop()
            except IndexError:  # narrow: cannot swallow a crash
                break
