"""GDL031 trigger: 'except Exception' that neither re-raises nor looks
at the exception — any failure in the guarded block vanishes."""


class StatsRefresher:
    def __init__(self, backend):
        self.backend = backend
        self.stale = False

    def refresh(self):
        try:
            self.backend.recompute_statistics()
        except Exception:  # GDL031: silent, unbounded
            self.stale = True
