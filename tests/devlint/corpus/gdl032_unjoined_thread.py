"""GDL032 trigger: a non-daemon thread that no code path ever joins —
process shutdown hangs until the loop happens to exit."""

import threading


class Poller:
    def __init__(self, source):
        self.source = source
        self.worker = None

    def start(self):
        self.worker = threading.Thread(target=self._loop)  # GDL032
        self.worker.start()

    def _loop(self):
        while True:
            self.source.poll()
