"""GDL001 clean twin: same locks, acquired outer-to-inner (cache rank 3
before store rank 4), matching the canonical order."""

import threading


class PlanCache:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}


class DurableStore:
    def __init__(self):
        self._lock = threading.Lock()
        self.cache = PlanCache()

    def evict_with_log(self, key):
        with self.cache._lock:
            with self._lock:  # rank 4 under rank 3: canonical
                self.cache.entries.pop(key, None)
