"""GDL002 clean twin: both paths acquire the two locks in the same
order, so no cycle exists."""

import threading


class MessageBus:
    def __init__(self):
        self._lock = threading.Lock()
        self.queue = []


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self.bus = MessageBus()
        self.pending = []

    def forward(self, msg):
        with self._lock:
            with self.bus._lock:
                self.bus.queue.append(msg)

    def drain(self):
        with self._lock:
            with self.bus._lock:
                self.pending.clear()
