"""GDL033 clean twin: futures are kept and their results consumed, so
worker failures surface at the join point."""


class Prefetcher:
    def __init__(self, pool, loader):
        self.pool = pool
        self.loader = loader

    def warm(self, keys):
        futures = [self.pool.submit(self.loader.load, k) for k in keys]
        return [f.result() for f in futures]
