"""``graql devcheck`` CLI: exit codes, JSON envelope, baseline plumbing."""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = str(REPO_ROOT / "src" / "repro")
BASELINE = str(REPO_ROOT / "devlint-baseline.json")
CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
TRIGGER = os.path.join(CORPUS, "gdl010_blocking_under_lock.py")
CLEAN = os.path.join(CORPUS, "gdl010_blocking_under_lock_clean.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["devcheck", CLEAN]) == 0
        assert "devcheck: clean" in capsys.readouterr().out

    def test_errors_exit_two(self, capsys):
        assert main(["devcheck", TRIGGER]) == 2
        out = capsys.readouterr().out
        assert "GDL010" in out
        assert "2 error(s)" in out

    def test_strict_promotes_warnings(self, capsys):
        warn = os.path.join(CORPUS, "gdl031_broad_except.py")
        assert main(["devcheck", warn]) == 0
        capsys.readouterr()
        assert main(["devcheck", "--strict", warn]) == 1

    def test_missing_path_exits_two(self, capsys):
        assert main(["devcheck", "no/such/dir"]) == 2
        assert "no/such/dir" in capsys.readouterr().err

    def test_bad_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "b.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        assert main(["devcheck", "--baseline", str(bad), CLEAN]) == 2
        assert "baseline" in capsys.readouterr().err


class TestJsonOutput:
    def test_envelope_shape(self, capsys):
        rc = main(["devcheck", "--format", "json", TRIGGER])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert payload["source"] == "devcheck"
        assert payload["files_scanned"] == 1
        assert payload["errors"] == 2
        assert payload["warnings"] == 0
        for d in payload["diagnostics"]:
            # same keys as `graql check --format json`, plus file/symbol
            assert set(d) >= {
                "code", "severity", "message", "hint", "file", "symbol",
            }
            assert d["code"] == "GDL010"
            assert d["severity"] == "error"
            assert d["hint"]  # fix-it hint is part of the contract

    def test_self_scan_with_baseline_is_clean_json(self, capsys):
        rc = main([
            "devcheck", "--format", "json", "--strict",
            "--baseline", BASELINE, SRC,
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["diagnostics"] == []
        assert payload["suppressed"] > 0
