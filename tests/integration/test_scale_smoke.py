"""Moderate-scale smoke: the full stack at ~20k vertices / ~65k edges."""

import numpy as np
import pytest

from repro.workloads.berlin import Q1_FIG7, Q2_FIG6, berlin_database


@pytest.fixture(scope="module")
def big_db():
    return berlin_database(scale=2000, seed=31)


class TestScaleSmoke:
    def test_build_invariants(self, big_db):
        db = big_db.db
        assert db.total_vertices() > 15_000
        assert db.total_edges() > 50_000
        assert db.check_partition_invariants()

    def test_berlin_q2(self, big_db):
        t = big_db.query(Q2_FIG6, params={"Product1": "product42"})
        assert 0 < t.num_rows <= 10
        counts = [r[1] for r in t.to_rows()]
        assert counts == sorted(counts, reverse=True)

    def test_berlin_q1(self, big_db):
        t = big_db.query(Q1_FIG7, params={"Country1": "US", "Country2": "DE"})
        assert t.num_rows <= 10

    def test_three_hop_set_query(self, big_db):
        sg = big_db.query_subgraph(
            "select * from graph PersonVtx (country = 'US') <--reviewer-- "
            "ReviewVtx ( ) --reviewFor--> ProductVtx ( ) --producer--> "
            "ProducerVtx (country = 'DE') into subgraph big3"
        )
        # every matched review really connects matched endpoints
        et = big_db.db.edge_type("reviewFor")
        products = set(sg.vertex_ids("ProductVtx").tolist())
        for eid in sg.edge_ids("reviewFor")[:50]:
            _, tgt = et.endpoints_of(int(eid))
            assert tgt in products

    def test_regex_closure_on_type_hierarchy(self, big_db):
        tv = big_db.db.vertex_type("TypeVtx")
        sg = big_db.query_subgraph(
            "select * from graph TypeVtx ( ) ( --subclass--> [ ] )+ "
            "TypeVtx (subclassOf is null) into subgraph roots"
        )
        # every type with a parent reaches the root
        assert len(sg.vertex_ids("TypeVtx")) == tv.num_vertices

    def test_distributed_matches_at_scale(self, big_db):
        from repro.dist import Cluster

        q = ("select * from graph OfferVtx (deliveryDays < 3) --product--> "
             "ProductVtx ( ) into subgraph {}")
        ref = big_db.execute(q.format("bl"))[0].subgraph
        cluster = Cluster(big_db.db, 8, big_db.catalog)
        got = cluster.execute(q.format("bd"))[0].subgraph
        assert {k: v.tolist() for k, v in ref.vertices.items()} == {
            k: v.tolist() for k, v in got.vertices.items()
        }

    def test_relational_pipeline_at_scale(self, big_db):
        t = big_db.query(
            "select top 5 vendor, count(*) as offers, avg(price) as p "
            "from table Offers where deliveryDays < 10 "
            "group by vendor order by offers desc, vendor asc"
        )
        assert t.num_rows == 5
        offers = [r[1] for r in t.to_rows()]
        assert offers == sorted(offers, reverse=True)
