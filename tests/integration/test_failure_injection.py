"""Failure injection: errors must be contained and leave state intact."""

import pytest

from repro import Database
from repro.errors import (
    CatalogError,
    ExecutionError,
    GraQLError,
    IngestError,
    TypeCheckError,
)


class TestIngestAtomicity:
    def test_bad_row_leaves_table_and_views_untouched(self, tmp_path, social_db):
        path = tmp_path / "people.csv"
        path.write_text(
            "p7,Gail,US,30,1.0,2015-01-01\n"
            "p8,Hank,DE,notanint,2.0,2015-01-02\n"  # bad integer
        )
        rows_before = social_db.table("People").num_rows
        vertices_before = social_db.vertex_count("Person")
        with pytest.raises(IngestError, match="'age'"):
            social_db.execute(f"ingest table People '{path}'")
        assert social_db.table("People").num_rows == rows_before
        assert social_db.vertex_count("Person") == vertices_before

    def test_arity_error_reports_line_number(self, tmp_path, social_db):
        path = tmp_path / "bad.csv"
        path.write_text("p7,Gail,US,30,1.0,2015-01-01\np8,short\n")
        with pytest.raises(IngestError, match=":2"):
            social_db.execute(f"ingest table People '{path}'")

    def test_successful_ingest_rebuilds_everything(self, tmp_path, social_db):
        path = tmp_path / "follows.csv"
        path.write_text("p1,p4,3\n")
        edges_before = social_db.edge_count("follows")
        social_db.execute(f"ingest table Follows '{path}'")
        assert social_db.edge_count("follows") == edges_before + 1
        # the index is rebuilt too: the new edge is traversable
        t = social_db.query(
            "select y.id from graph Person (id = 'p1') --follows--> "
            "def y: Person (id = 'p4') into table NewEdge"
        )
        assert t.num_rows == 1


class TestStaticErrorsLeaveNoState:
    def test_failed_statement_registers_nothing(self, social_db):
        with pytest.raises(GraQLError):
            social_db.execute(
                "select y.id from graph Person (bogus = 1) --follows--> "
                "def y: Person ( ) into table ShouldNotExist"
            )
        assert not social_db.catalog.is_table("ShouldNotExist")

    def test_mid_script_failure_keeps_earlier_results(self, social_db):
        # statements execute in order; the first lands, the second fails
        with pytest.raises(GraQLError):
            social_db.execute(
                "select y.id from graph Person ( ) --follows--> def y: "
                "Person ( ) into table Ok1\n"
                "select * from table MissingTable"
            )
        assert social_db.catalog.is_table("Ok1")


class TestRuntimeGuards:
    def test_binding_row_cap_surfaces_cleanly(self):
        import repro.query.bindings as b

        db = Database()
        db.execute(
            "create table N(id integer)\n"
            "create table E(s integer, t integer)\n"
            "create vertex V(id) from table N\n"
            "create edge e with vertices (V as A, V as B) from table E "
            "where E.s = A.id and E.t = B.id"
        )
        db.ingest_rows("N", [(i,) for i in range(20)])
        # complete bipartite-ish blowup
        db.ingest_rows(
            "E", [(i, j) for i in range(10) for j in range(10, 20)]
        )
        old = b.DEFAULT_MAX_ROWS
        b.DEFAULT_MAX_ROWS = 50
        try:
            with pytest.raises(ExecutionError, match="exceeded"):
                db.query(
                    "select y.id from graph V ( ) --e--> V ( ) <--e-- "
                    "def y: V ( ) into table Boom"
                )
        finally:
            b.DEFAULT_MAX_ROWS = old

    def test_unknown_seed_subgraph(self, social_db):
        with pytest.raises((TypeCheckError, CatalogError)):
            social_db.execute(
                "select * from graph nosuch.Person ( ) --follows--> "
                "Person ( ) into subgraph G"
            )

    def test_overwriting_base_table_via_into_rejected(self, social_db):
        with pytest.raises(CatalogError, match="base table"):
            social_db.execute(
                "select y.id from graph Person ( ) --follows--> def y: "
                "Person ( ) into table People"
            )

    def test_result_tables_are_overwritable(self, social_db):
        q = ("select y.id from graph Person ( ) --follows--> def y: "
             "Person ( ) into table Re")
        social_db.execute(q)
        social_db.execute(q)  # second run replaces, no error
        assert social_db.catalog.is_table("Re")

    def test_subgraphs_are_overwritable(self, social_db):
        q = ("select * from graph Person ( ) --follows--> Person ( ) "
             "into subgraph Rg")
        social_db.execute(q)
        social_db.execute(q)
        assert "Rg" in social_db.catalog.subgraphs


class TestParserRecovery:
    def test_error_positions_are_accurate(self, social_db):
        from repro.errors import ParseError

        try:
            social_db.execute("select from table People")
        except ParseError as e:
            assert e.line == 1
        else:
            pytest.fail("expected ParseError")

    def test_garbage_between_statements(self, social_db):
        from repro.errors import LexError, ParseError

        with pytest.raises((ParseError, LexError)):
            social_db.execute(
                "select * from table People\n@@@\nselect * from table People"
            )
