"""End-to-end reproduction of every figure in the paper.

Each test executes the *verbatim* GraQL of a figure (modulo parameter
values) against generated Berlin data and asserts the semantics the paper
describes.  This file is the per-figure index promised in DESIGN.md.
"""

import numpy as np
import pytest

from repro import Database
from repro.workloads.berlin import (
    BERLIN_DDL,
    BERLIN_EXPORT_DDL,
    Q1_FIG7,
    Q2_FIG6,
    Q_FIG9,
    Q_FIG11,
    Q_FIG13,
    Q_REGEX,
    generate_berlin,
)


@pytest.fixture(scope="module")
def db():
    from repro.workloads.berlin import berlin_database

    return berlin_database(scale=80, seed=21, with_export=True)


@pytest.fixture(scope="module")
def data():
    return generate_berlin(80, seed=21)


class TestFig1SchemaGraph:
    """Fig. 1: the Berlin logical data model as vertex/edge types."""

    def test_nine_entity_types(self, db):
        assert len([v for v in db.db.vertex_types if v.endswith("Vtx")]) == 8

    def test_eight_relationship_types(self, db):
        assert set(db.db.edge_types) >= {
            "subclass", "producer", "type", "feature",
            "product", "vendor", "reviewFor", "reviewer",
        }

    def test_edge_endpoints_match_figure(self, db):
        expect = {
            "subclass": ("TypeVtx", "TypeVtx"),
            "producer": ("ProductVtx", "ProducerVtx"),
            "type": ("ProductVtx", "TypeVtx"),
            "feature": ("ProductVtx", "FeatureVtx"),
            "product": ("OfferVtx", "ProductVtx"),
            "vendor": ("OfferVtx", "VendorVtx"),
            "reviewFor": ("ReviewVtx", "ProductVtx"),
            "reviewer": ("ReviewVtx", "PersonVtx"),
        }
        for name, (s, t) in expect.items():
            et = db.db.edge_type(name)
            assert (et.source.name, et.target.name) == (s, t)


class TestFig2Fig3Appendix:
    """Figs. 2-3 + Appendix A: the DDL parses and builds."""

    def test_ddl_builds_fresh(self):
        fresh = Database()
        results = fresh.execute(BERLIN_DDL)
        assert all(r.kind == "ddl" for r in results)
        # 10 tables + 8 vertex types + 8 edge types
        assert len(results) == 26

    def test_vertex_views_are_one_to_one(self, db):
        for name in ("ProductVtx", "OfferVtx", "ReviewVtx"):
            assert db.db.vertex_type(name).one_to_one

    def test_counts_match_tables(self, db):
        assert db.vertex_count("ProductVtx") == db.table("Products").num_rows
        assert db.edge_count("reviewFor") == db.table("Reviews").num_rows


class TestFig4Fig5ManyToOne:
    """Figs. 4-5: country vertices and the export edge."""

    def test_country_vertices_are_many_to_one(self, db):
        pc = db.db.vertex_type("ProducerCountry")
        assert not pc.one_to_one or pc.num_vertices == db.table("Producers").num_rows

    def test_one_vertex_per_unique_country(self, db, data):
        pc = db.db.vertex_type("ProducerCountry")
        countries = {r[5] for r in data.tables["Producers"]}
        assert pc.num_vertices == len(countries)

    def test_export_edges_deduplicated(self, db, data):
        """Fig. 5: one edge per country pair, however many product/offer
        combinations support it."""
        et = db.db.edge_type("export")
        pc = db.db.vertex_type("ProducerCountry")
        vc = db.db.vertex_type("VendorCountry")
        pairs = [
            (pc.key_of(int(et.src_vids[i]))[0], vc.key_of(int(et.tgt_vids[i]))[0])
            for i in range(et.num_edges)
        ]
        assert len(pairs) == len(set(pairs))
        # verify against a hand computation over the raw tables
        producers = {r[0]: r[5] for r in data.tables["Producers"]}
        vendors = {r[0]: r[5] for r in data.tables["Vendors"]}
        products = {r[0]: r[4] for r in data.tables["Products"]}
        expected = set()
        for o in data.tables["Offers"]:
            pcountry = producers[products[o[2]]]
            vcountry = vendors[o[3]]
            if pcountry != vcountry:
                expected.add((pcountry, vcountry))
        assert set(pairs) == expected


class TestFig6BerlinQ2:
    """Fig. 6: top-10 products most similar to Product1 by shared features."""

    def test_verbatim_query(self, db, data):
        t = db.query(Q2_FIG6, params={"Product1": "product5"})
        assert list(t.schema.names()) == ["id", "groupCount"]
        assert t.num_rows <= 10
        # descending counts
        counts = [r[1] for r in t.to_rows()]
        assert counts == sorted(counts, reverse=True)

    def test_intermediate_table_multiplicity(self, db):
        """'each id repeated for each feature the product has in common'"""
        db.execute(Q2_FIG6.split("into table T1")[0] + "into table T1x",
                   params={"Product1": "product5"})
        t1 = db.table("T1x")
        agg = db.query(
            "select id, count(*) as n from table T1x group by id"
        )
        assert t1.num_rows == sum(r[1] for r in agg.to_rows())


class TestFig7Fig8BerlinQ1:
    """Fig. 7/8: multi-path composition with a foreach label."""

    def test_verbatim_query(self, db):
        t = db.query(Q1_FIG7, params={"Country1": "US", "Country2": "DE"})
        assert list(t.schema.names()) == ["id", "groupCount"]

    def test_counts_match_hand_computation(self, db, data):
        t = db.query(Q1_FIG7, params={"Country1": "US", "Country2": "DE"})
        got = dict(t.to_rows())
        # hand computation over raw tables
        producers = {r[0]: r[5] for r in data.tables["Producers"]}
        persons = {r[0]: r[4] for r in data.tables["Persons"]}
        products = {r[0]: r[4] for r in data.tables["Products"]}
        ptypes = {}
        for pid, tid in data.tables["ProductTypes"]:
            ptypes.setdefault(pid, set()).add(tid)
        expected: dict[str, int] = {}
        for rv in data.tables["Reviews"]:
            pid = rv[2]
            if persons[rv[3]] != "DE":
                continue
            if producers[products[pid]] != "US":
                continue
            for tid in ptypes.get(pid, ()):
                expected[tid] = expected.get(tid, 0) + 1
        top10 = dict(
            sorted(expected.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        )
        assert got == top10


class TestFig9TypeMatching:
    """Fig. 9: the subgraph of all reviews and offers of Product1."""

    def test_variant_step_matches_offers_and_reviews(self, db, data):
        sg = db.query_subgraph(Q_FIG9, params={"Product1": "product5"})
        # incoming edges to a product: product (from offers), reviewFor
        assert set(sg.edges) <= {"product", "reviewFor"}
        offers = [o for o in data.tables["Offers"] if o[2] == "product5"]
        reviews = [r for r in data.tables["Reviews"] if r[2] == "product5"]
        assert len(sg.edge_ids("product")) == len(offers)
        assert len(sg.edge_ids("reviewFor")) == len(reviews)
        assert len(sg.vertex_ids("OfferVtx")) == len(offers)
        assert len(sg.vertex_ids("ReviewVtx")) == len(reviews)


class TestFig10PathRegex:
    """Fig. 10: regular-expression paths over the subclass hierarchy."""

    def test_ancestor_closure(self, db, data):
        # pick a leaf type and verify the + closure matches the chain
        by_id = {r[0]: r for r in data.tables["Types"]}
        children = {r[0] for r in data.tables["Types"] if r[3] is not None}
        leaf = sorted(children)[0]
        sg = db.query_subgraph(Q_REGEX, params={"Type1": leaf})
        expected = set()
        cur = by_id[leaf][3]
        while cur is not None:
            expected.add(cur)
            cur = by_id[cur][3]
        tv = db.db.vertex_type("TypeVtx")
        got = {tv.key_of(int(v))[0] for v in sg.vertex_ids("TypeVtx")} - {leaf}
        assert got == expected


class TestFig11SubgraphCapture:
    """Fig. 11: select * / endpoint projection into named subgraphs."""

    def test_star_and_endpoints(self, db):
        full = db.query_subgraph(
            "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
            "into subgraph resultsG"
        )
        ends = db.query_subgraph(
            "select PersonVtx, ReviewVtx from graph PersonVtx ( ) "
            "<--reviewer-- ReviewVtx ( ) into subgraph resultsBE"
        )
        # endpoint projection has the same vertices but no edges
        assert ends.num_edges == 0
        for t in ("PersonVtx", "ReviewVtx"):
            assert np.array_equal(full.vertex_ids(t), ends.vertex_ids(t))
        assert full.num_edges > 0

    def test_fig11_named_query(self, db):
        sg = db.query_subgraph(Q_FIG11, params={"Country1": "US"})
        assert "PersonVtx" in sg.vertices and "ProducerVtx" in sg.vertices


class TestFig12Chaining:
    """Fig. 12: a result subgraph seeds the next query's first step."""

    def test_two_statement_chain(self, db):
        script = """
        select ReviewVtx from graph
        ProductVtx (id = 'product5') <--reviewFor-- ReviewVtx ( )
        into subgraph resQ1

        select PersonVtx.id from graph
        resQ1.ReviewVtx ( ) --reviewer--> PersonVtx ( )
        into table chained
        """
        results = db.execute(script)
        reviewers = {r[0] for r in results[1].table.to_rows()}
        # cross-check: reviewers of product5 straight from the tables
        data = generate_berlin(80, seed=21)
        expected = {r[3] for r in data.tables["Reviews"] if r[2] == "product5"}
        assert reviewers == expected

    def test_seeding_restricts(self, db):
        total = db.query(
            "select PersonVtx.id from graph ReviewVtx ( ) --reviewer--> "
            "PersonVtx ( ) into table allReviewers"
        )
        db.execute(
            "select ReviewVtx from graph ProductVtx (id = 'product5') "
            "<--reviewFor-- ReviewVtx ( ) into subgraph seedSG"
        )
        seeded = db.query(
            "select PersonVtx.id from graph seedSG.ReviewVtx ( ) "
            "--reviewer--> PersonVtx ( ) into table someReviewers"
        )
        assert seeded.num_rows <= total.num_rows


class TestFig13ResultsAsTables:
    """Fig. 13: the full matching subgraph as a wide table."""

    def test_wide_table_has_all_attributes(self, db):
        t = db.query(Q_FIG13, params={"Threshold": 1000})
        names = t.schema.names()
        # attributes of every step, prefixed by type name
        assert any(n.startswith("ReviewVtx_") for n in names)
        assert any(n.startswith("ProductVtx_") for n in names)
        assert any(n.startswith("ProducerVtx_") for n in names)
        # one row per path: every review of a qualifying product
        assert t.num_rows > 0

    def test_row_multiplicity_is_per_path(self, db, data):
        t = db.query(Q_FIG13, params={"Threshold": 1000})
        qualifying = {
            r[0] for r in data.tables["Products"] if r[5] > 1000
        }
        expected = sum(1 for r in data.tables["Reviews"] if r[2] in qualifying)
        assert t.num_rows == expected
