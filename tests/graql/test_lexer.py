"""Unit tests for the GraQL lexer, especially the arrow/minus rules."""

import pytest

from repro.errors import LexError
from repro.graql import tokens as T
from repro.graql.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestArrows:
    def test_out_edge(self):
        assert kinds("--producer-->") == [T.DASHES, T.IDENT, T.RARROW]

    def test_in_edge(self):
        assert kinds("<--reviewer--") == [T.LARROW, T.IDENT, T.DASHES]

    def test_long_dash_runs(self):
        assert kinds("----x---->") == [T.DASHES, T.IDENT, T.RARROW]

    def test_single_minus_is_arithmetic(self):
        assert kinds("a - b") == [T.IDENT, T.MINUS, T.IDENT]

    def test_lt_vs_larrow(self):
        assert kinds("a < b") == [T.IDENT, T.LT, T.IDENT]
        assert kinds("a <-- b") == [T.IDENT, T.LARROW, T.IDENT]

    def test_le_ne(self):
        assert kinds("<= <> >=") == [T.LE, T.NE, T.GE]

    def test_bang_ne(self):
        assert kinds("a != b") == [T.IDENT, T.BANG_NE, T.IDENT]

    def test_bare_bang_rejected(self):
        with pytest.raises(LexError):
            tokenize("a ! b")


class TestLiterals:
    def test_integer(self):
        toks = tokenize("42")
        assert toks[0].kind == T.NUMBER and toks[0].value == 42

    def test_float(self):
        assert tokenize("3.25")[0].value == 3.25

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5E-2")[0].value == 0.025

    def test_int_then_dot_ident(self):
        # "1.x" must not parse as a float
        assert kinds("1.x") == [T.NUMBER, T.DOT, T.IDENT]

    def test_single_quoted_string(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_double_quoted_string(self):
        assert tokenize('"hi there"')[0].value == "hi there"

    def test_escapes(self):
        assert tokenize(r"'it\'s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_param(self):
        tok = tokenize("%Product1%")[0]
        assert tok.kind == T.PARAM and tok.value == "Product1"

    def test_malformed_param(self):
        with pytest.raises(LexError):
            tokenize("%oops")


class TestKeywordsAndIdents:
    def test_keywords_case_insensitive(self):
        toks = tokenize("SELECT Select select")
        assert all(t.is_keyword("select") for t in toks[:-1])

    def test_identifiers_keep_case(self):
        assert tokenize("ProductVtx")[0].value == "ProductVtx"

    def test_underscore_idents(self):
        assert tokenize("propertyNumeric_1")[0].value == "propertyNumeric_1"

    def test_keyword_list(self):
        for word in ("create", "foreach", "def", "ingest", "subgraph", "top"):
            assert tokenize(word)[0].kind == T.KEYWORD


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [T.IDENT, T.IDENT]

    def test_comment_at_eof(self):
        assert kinds("a // trailing") == [T.IDENT]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_position(self):
        try:
            tokenize("ok\n   $")
        except LexError as e:
            assert e.line == 2 and e.column == 4
        else:
            pytest.fail("expected LexError")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == T.EOF


class TestPunctuation:
    def test_braces_brackets(self):
        assert kinds("[ ] { } ( )") == [
            T.LBRACKET, T.RBRACKET, T.LBRACE, T.RBRACE, T.LPAREN, T.RPAREN,
        ]

    def test_star_slash_plus(self):
        assert kinds("* / +") == [T.STAR, T.SLASH, T.PLUS]

    def test_full_statement(self):
        text = "select y.id from graph P (id = %X%) --e--> def y: Q ( )"
        ks = kinds(text)
        assert T.PARAM in [tokenize(text)[i].kind for i in range(len(ks))]
        assert T.RARROW in ks and T.DASHES in ks
