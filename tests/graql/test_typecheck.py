"""Unit tests for static query analysis (paper Section III-A).

The paper enumerates the check classes: wrong-type comparisons, wrong
entity kinds (table vs vertex vs edge), and ill-formed path queries.
Every class gets at least one accept and one reject case here.
"""

import pytest

from repro.catalog import Catalog
from repro.errors import CatalogError, TypeCheckError
from repro.graql.parser import parse_statement
from repro.graql.typecheck import CheckedGraphSelect, check_statement
from tests.conftest import build_social_db


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    return build_social_db().catalog


def check(text, catalog):
    return check_statement(parse_statement(text), catalog)


class TestEntityKinds:
    def test_table_where_vertex_required(self, catalog):
        # "a table name should be used when a table is required, rather
        # than a vertex type name" — and vice versa
        with pytest.raises(CatalogError, match="it is a table"):
            check("select * from graph People ( ) --follows--> Person ( ) "
                  "into subgraph G", catalog)

    def test_vertex_where_table_required(self, catalog):
        with pytest.raises(CatalogError, match="it is a vertex type"):
            check("select * from table Person", catalog)

    def test_edge_where_vertex_required(self, catalog):
        with pytest.raises(CatalogError, match="it is an edge type"):
            check("select * from graph follows ( ) --follows--> Person ( ) "
                  "into subgraph G", catalog)

    def test_unknown_edge(self, catalog):
        with pytest.raises(CatalogError, match="unknown edge"):
            check("select * from graph Person ( ) --friendOf--> Person ( ) "
                  "into subgraph G", catalog)

    def test_vertex_used_as_edge(self, catalog):
        with pytest.raises(CatalogError, match="it is a vertex type"):
            check("select * from graph Person ( ) --City--> Person ( ) "
                  "into subgraph G", catalog)


class TestTypeErrors:
    def test_date_vs_float(self, catalog):
        with pytest.raises(TypeCheckError, match="compare"):
            check("select * from graph Person (joined = 3.14) "
                  "--follows--> Person ( ) into subgraph G", catalog)

    def test_date_vs_date_literal_ok(self, catalog):
        out = check("select * from graph Person (joined > '2013-01-01') "
                    "--follows--> Person ( ) into subgraph G", catalog)
        assert isinstance(out, CheckedGraphSelect)

    def test_string_vs_int(self, catalog):
        with pytest.raises(TypeCheckError):
            check("select * from graph Person (name = 5) --follows--> "
                  "Person ( ) into subgraph G", catalog)

    def test_unknown_attribute(self, catalog):
        with pytest.raises(TypeCheckError, match="no attribute"):
            check("select * from graph Person (salary > 10) --follows--> "
                  "Person ( ) into subgraph G", catalog)

    def test_condition_must_be_boolean(self, catalog):
        with pytest.raises(TypeCheckError):
            check("select * from graph Person (age + 1) --follows--> "
                  "Person ( ) into subgraph G", catalog)

    def test_where_in_table_select(self, catalog):
        with pytest.raises(TypeCheckError):
            check("select * from table People where name > 3", catalog)


class TestPathFormation:
    def test_edge_endpoint_mismatch(self, catalog):
        # follows connects Person->Person; City cannot be its source
        with pytest.raises(TypeCheckError, match="cannot"):
            check("select * from graph City ( ) --follows--> Person ( ) "
                  "into subgraph G", catalog)

    def test_in_edge_endpoint_mismatch(self, catalog):
        with pytest.raises(TypeCheckError, match="cannot"):
            check("select * from graph Person ( ) <--livesIn-- Person ( ) "
                  "into subgraph G", catalog)

    def test_correct_direction_accepted(self, catalog):
        out = check("select * from graph City ( ) <--livesIn-- Person ( ) "
                    "into subgraph G", catalog)
        assert isinstance(out, CheckedGraphSelect)

    def test_variant_edge_narrowing(self, catalog):
        out = check("select * from graph Person ( ) --[]--> [ ] "
                    "into subgraph G", catalog)
        atom = out.pattern.atoms()[0]
        edge = atom.steps[1]
        assert set(edge.names) == {"follows", "livesIn"}
        # the variant vertex narrowed to the possible targets
        assert set(atom.steps[2].types) == {"Person", "City"}

    def test_infeasible_variant(self, catalog):
        # nothing points *into* a City from a City
        with pytest.raises(TypeCheckError, match="infeasible"):
            check("select * from graph City ( ) --[]--> City ( ) "
                  "into subgraph G", catalog)

    def test_variant_with_condition_rejected(self, catalog):
        with pytest.raises(TypeCheckError, match="variant"):
            # conditions on variant edges are rejected by the grammar for
            # "[ ]"; emulate via edge cond on multi-type... instead check
            # the vertex-level rule through a crafted AST
            from repro.graql.ast import (
                EdgeStep,
                GraphSelect,
                IntoClause,
                PathAtom,
                StarItem,
                VertexStep,
            )
            from repro.storage.expr import BinOp, ColRef, Const

            stmt = GraphSelect(
                [StarItem()],
                PathAtom([
                    VertexStep("Person"),
                    EdgeStep(None, "out", is_variant=True,
                             cond=BinOp("=", ColRef(None, "weight"), Const(1))),
                    VertexStep(None, is_variant=True),
                ]),
                IntoClause("subgraph", "G"),
            )
            check_statement(stmt, catalog)


class TestLabels:
    def test_duplicate_label(self, catalog):
        with pytest.raises(TypeCheckError, match="more than once"):
            check("select * from graph def x: Person ( ) --follows--> "
                  "def x: Person ( ) into subgraph G", catalog)

    def test_label_shadowing_object(self, catalog):
        with pytest.raises(TypeCheckError, match="shadows"):
            check("select * from graph def Person: Person ( ) --follows--> "
                  "Person ( ) into subgraph G", catalog)

    def test_label_reference_resolves(self, catalog):
        out = check("select * from graph def x: Person ( ) --follows--> "
                    "Person ( ) --follows--> x into subgraph G", catalog)
        atom = out.pattern.atoms()[0]
        assert atom.steps[4].label_ref == "x"

    def test_foreach_forces_bindings(self, catalog):
        out = check("select * from graph foreach x: Person ( ) --follows--> "
                    "Person ( ) --follows--> x into subgraph G", catalog)
        assert out.pattern.needs_bindings

    def test_unknown_step_name(self, catalog):
        with pytest.raises(CatalogError):
            check("select * from graph zz ( ) --follows--> Person ( ) "
                  "into subgraph G", catalog)


class TestComposition:
    def test_and_requires_shared_label(self, catalog):
        with pytest.raises(TypeCheckError, match="shared"):
            check("select * from graph Person ( ) --follows--> Person ( ) "
                  "and (City ( ) <--livesIn-- Person ( )) into subgraph G",
                  catalog)

    def test_and_with_shared_label_ok(self, catalog):
        out = check("select * from graph Person ( ) --follows--> def y: "
                    "Person ( ) and (y --livesIn--> City ( )) "
                    "into subgraph G", catalog)
        assert isinstance(out, CheckedGraphSelect)

    def test_or_with_table_output_rejected(self, catalog):
        with pytest.raises(TypeCheckError, match="'or' composition"):
            check("select y.id from graph def y: Person ( ) --follows--> "
                  "Person ( ) or (Person ( ) --livesIn--> City ( )) "
                  "into table T", catalog)


class TestSelectItems:
    def test_ambiguous_type_name(self, catalog):
        with pytest.raises(TypeCheckError, match="ambiguous"):
            check("select Person.id from graph Person ( ) --follows--> "
                  "Person ( ) into table T", catalog)

    def test_label_disambiguates(self, catalog):
        out = check("select y.id from graph Person ( ) --follows--> def y: "
                    "Person ( ) into table T", catalog)
        assert isinstance(out, CheckedGraphSelect)

    def test_unqualified_attr_rejected_for_tables(self, catalog):
        with pytest.raises(TypeCheckError):
            check("select id as x from graph Person ( ) --follows--> "
                  "Person ( ) into table T", catalog)

    def test_attr_into_subgraph_rejected(self, catalog):
        with pytest.raises(TypeCheckError, match="attribute"):
            check("select y.id from graph Person ( ) --follows--> def y: "
                  "Person ( ) into subgraph G", catalog)

    def test_aggregate_in_graph_select_rejected(self, catalog):
        with pytest.raises(TypeCheckError, match="aggregate"):
            check("select count(*) from graph Person ( ) --follows--> "
                  "Person ( ) into table T", catalog)

    def test_group_by_rules(self, catalog):
        with pytest.raises(TypeCheckError, match="group by"):
            check("select name, count(*) as c from table People group by country",
                  catalog)

    def test_order_by_unknown_column(self, catalog):
        with pytest.raises(TypeCheckError, match="order by"):
            check("select name from table People order by nonexistent", catalog)


class TestRegexChecks:
    def test_unbounded_regex_table_output_rejected(self, catalog):
        with pytest.raises(TypeCheckError, match="regular expressions"):
            check("select y.id from graph Person ( ) ( --follows--> [ ] )+ "
                  "def y: Person ( ) into table T", catalog)

    def test_counted_regex_table_output_ok(self, catalog):
        out = check("select y.id from graph Person ( ) ( --follows--> [ ] ){2} "
                    "def y: Person ( ) into table T", catalog)
        assert isinstance(out, CheckedGraphSelect)

    def test_unbounded_regex_subgraph_ok(self, catalog):
        out = check("select * from graph Person ( ) ( --follows--> [ ] )+ "
                    "Person ( ) into subgraph G", catalog)
        assert out.pattern.has_regex


class TestDDLChecks:
    def test_duplicate_name(self, catalog):
        with pytest.raises(TypeCheckError, match="already in use"):
            check("create table People(id integer)", catalog)

    def test_vertex_key_not_in_table(self, catalog):
        with pytest.raises(TypeCheckError, match="key column"):
            check("create vertex V(nope) from table People", catalog)

    def test_edge_same_endpoint_needs_alias(self, catalog):
        with pytest.raises(TypeCheckError, match="alias"):
            check("create edge e2 with vertices (Person, Person) "
                  "where Person.id = Person.id", catalog)

    def test_edge_unknown_relation_in_where(self, catalog):
        with pytest.raises(TypeCheckError, match="unknown relation"):
            check("create edge e2 with vertices (Person as A, Person as B) "
                  "where Mystery.x = A.id", catalog)

    def test_edge_unqualified_ref_rejected(self, catalog):
        with pytest.raises(TypeCheckError, match="unqualified"):
            check("create edge e2 with vertices (Person as A, Person as B) "
                  "where id = A.id", catalog)

    def test_ingest_unknown_table(self, catalog):
        with pytest.raises(CatalogError):
            check("ingest table Nope file.csv", catalog)


class TestScriptChecking:
    def test_forward_references_within_script(self, catalog):
        # a script may query objects it declares earlier in the same script
        from repro.graql.parser import parse_script
        from repro.graql.typecheck import check_script

        script = parse_script(
            """
            create table Fresh(id varchar(8))
            create vertex FreshV(id) from table Fresh
            select * from table Fresh
            """
        )
        out = check_script(script, catalog)
        assert len(out) == 3
        # the scratch catalog must not leak into the real one
        assert "Fresh" not in catalog.tables
