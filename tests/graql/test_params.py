"""Unit tests for %Param% substitution."""

import datetime

import pytest

from repro.errors import ExecutionError
from repro.graql.params import substitute_statement, unbound_params
from repro.graql.parser import parse_statement
from repro.storage.expr import Const


def sub(text, **params):
    return substitute_statement(parse_statement(text), params)


class TestSubstitution:
    def test_graph_step_condition(self):
        stmt = sub(
            "select * from graph A (id = %P%) --e--> B ( ) into subgraph G",
            P="p1",
        )
        cond = stmt.pattern.steps[0].cond
        assert isinstance(cond.right, Const) and cond.right.value == "p1"

    def test_edge_condition(self):
        stmt = sub(
            "select * from graph A ( ) --e(w > %W%)--> B ( ) into subgraph G",
            W=5,
        )
        assert stmt.pattern.steps[1].cond.right.value == 5

    def test_table_where(self):
        stmt = sub("select * from table T where n = %N%", N=3)
        assert stmt.where.right.value == 3

    def test_regex_inner_condition(self):
        stmt = sub(
            "select * from graph A ( ) ( --e--> B (x = %X%) ){2} C ( ) "
            "into subgraph G",
            X="v",
        )
        group = stmt.pattern.steps[1]
        assert group.pairs[0][1].cond.right.value == "v"

    def test_date_parameter(self):
        stmt = sub(
            "select * from table T where d > %When%",
            When=datetime.date(2016, 1, 1),
        )
        assert stmt.where.right.value == "2016-01-01"

    def test_numeric_kinds_preserved(self):
        stmt = sub("select * from table T where x > %X%", X=1.5)
        assert stmt.where.right.value == 1.5

    def test_missing_param_raises(self):
        with pytest.raises(ExecutionError, match="unbound"):
            sub("select * from table T where n = %N%")

    def test_unsupported_value_type(self):
        with pytest.raises(ExecutionError):
            sub("select * from table T where n = %N%", N=[1, 2])

    def test_ddl_where_substitution(self):
        stmt = sub("create vertex V(id) from table T where T.k = %K%", K="x")
        assert stmt.where.right.value == "x"

    def test_extra_params_ignored(self):
        stmt = sub("select * from table T", Unused=1)
        assert stmt.where is None


class TestUnboundParams:
    def test_detects_graph_params(self):
        stmt = parse_statement(
            "select * from graph A (id = %P%) --e(w=%W%)--> B ( ) "
            "into subgraph G"
        )
        assert unbound_params(stmt) == {"P", "W"}

    def test_detects_table_params(self):
        stmt = parse_statement("select * from table T where n = %N%")
        assert unbound_params(stmt) == {"N"}

    def test_none_after_substitution(self):
        stmt = sub("select * from table T where n = %N%", N=1)
        assert unbound_params(stmt) == set()
