"""Unit tests for the binary IR (paper Section III)."""

import pytest

from repro.errors import IRError
from repro.graql.ir import (
    MAGIC,
    decode_script,
    decode_statement,
    encode_script,
    encode_statement,
)
from repro.graql.parser import parse_script, parse_statement

STATEMENTS = [
    "create table T(id varchar(10), n integer, x float, d date)",
    "create vertex V(id, n) from table T where T.n > 3",
    "create edge e with vertices (V as A, V as B) from table R "
    "where R.s = A.id and R.t = B.id and R.cap >= 2",
    "ingest table T data.csv",
    "select * from table T",
    "select top 3 distinct id, count(*) as c from table T where x < 1.5 "
    "group by id order by c desc into table R",
    "select y.id as pid from graph A (id = %P% and n is not null) "
    "--e(w > 2)--> def y: B ( ) into table T1",
    "select * from graph A ( ) <--[]-- foreach z: [ ] into subgraph G",
    "select * from graph A ( ) ( --[]--> [ ] )+ B (x = 'end') into subgraph G",
    "select * from graph A ( ) ( --e--> [ ] ){3} B ( ) into subgraph G",
    "select V0, Vn from graph resQ1.V0 ( ) --e--> Vn ( ) into subgraph G2",
    "select T.id from graph A ( ) --e--> def y: B ( ) and (y --f--> T ( )) "
    "into table R2",
    "select * from graph A ( ) --e--> B ( ) or (A ( ) --f--> C ( )) "
    "into subgraph U",
]


@pytest.mark.parametrize("text", STATEMENTS)
def test_statement_roundtrip(text):
    stmt = parse_statement(text)
    data = encode_statement(stmt)
    assert data[:4] == MAGIC
    assert decode_statement(data) == stmt


def test_script_roundtrip():
    script = parse_script("\n\n".join(STATEMENTS))
    data = encode_script(script)
    assert decode_script(data) == script


def test_ir_is_compact():
    stmt = parse_statement(STATEMENTS[6])
    data = encode_statement(stmt)
    # binary IR should be in the same ballpark as the source text
    assert len(data) < 4 * len(STATEMENTS[6])


def test_bad_magic():
    with pytest.raises(IRError, match="magic"):
        decode_statement(b"XXXX\x01\x05")


def test_bad_version():
    stmt = parse_statement("select * from table T")
    data = bytearray(encode_statement(stmt))
    data[4] = 99
    with pytest.raises(IRError, match="version"):
        decode_statement(bytes(data))


def test_truncated_stream():
    stmt = parse_statement("select * from table T")
    data = encode_statement(stmt)
    with pytest.raises(Exception):
        decode_statement(data[: len(data) // 2])


def test_unknown_tag():
    with pytest.raises(IRError):
        decode_statement(MAGIC + b"\x01\xff")


def test_distinct_statements_encode_differently():
    a = encode_statement(parse_statement("select a from table T"))
    b = encode_statement(parse_statement("select b from table T"))
    assert a != b
