"""Pretty-printer round-trip tests on hand-written statements."""

import pytest

from repro.graql.parser import parse_expression, parse_script, parse_statement
from repro.graql.pretty import pretty_expr, pretty_script, pretty_statement

STATEMENTS = [
    "create table T(id varchar(10), n integer, x float, d date)",
    "create vertex V(id) from table T",
    "create vertex V(a, b) from table T where T.n > 3",
    "create edge e with vertices (A, B) where A.x = B.y",
    "create edge e with vertices (V as A, V as B) from table R "
    "where R.s = A.id and R.t = B.id",
    "ingest table P products.csv",
    "ingest table P 'white space/dir.csv'",
    "select * from table T",
    "select top 10 id, count(*) as c from table T where n > 1 "
    "group by id order by c desc, id asc into table R",
    "select distinct a as x from table T",
    "select * from graph A ( ) --e--> B (n = 3) into subgraph G",
    "select y.id from graph A (id = %P%) --e--> def y: B ( ) into table T1",
    "select * from graph A ( ) <--e(w > 2)-- foreach z: B ( ) into subgraph G",
    "select * from graph A ( ) <--[]-- [ ] into subgraph G",
    "select * from graph A ( ) ( --[]--> [ ] )+ B ( ) into subgraph G",
    "select * from graph A ( ) ( --e--> [ ] ){4} B ( ) into subgraph G",
    "select V0, Vn from graph V0 ( ) --e--> Vn ( ) into subgraph G",
    "select * from graph resQ1.Vn (x > 1) --e--> B ( ) into subgraph G2",
    "select T.id from graph A ( ) --e--> def y: B ( ) and (y --f--> T ( )) "
    "into table R",
    "select * from graph A ( ) --e--> B ( ) or (A ( ) --f--> C ( )) "
    "into subgraph G",
]


@pytest.mark.parametrize("text", STATEMENTS)
def test_statement_roundtrip(text):
    stmt = parse_statement(text)
    rendered = pretty_statement(stmt)
    again = parse_statement(rendered)
    assert again == stmt, f"round-trip changed:\n{rendered}"


EXPRESSIONS = [
    "a = 1",
    "a <> 'x'",
    "a < b and c >= d",
    "not (a = 1 or b = 2)",
    "a + b * c - d / e",
    "(a + b) * c",
    "x is null",
    "x is not null",
    "price > 3.5 and name = 'it\\'s'",
    "d = %When% and n = -4",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_expression_roundtrip(text):
    expr = parse_expression(text)
    rendered = pretty_expr(expr)
    assert parse_expression(rendered) == expr, rendered


def test_script_roundtrip():
    script = parse_script("\n\n".join(STATEMENTS))
    assert parse_script(pretty_script(script)) == script


def test_minus_association_preserved():
    # left associativity: a - b - c == (a - b) - c, not a - (b - c)
    e = parse_expression("1 - 2 - 3")
    again = parse_expression(pretty_expr(e))
    assert again == e
