"""Unit tests for the front-end compiler (text -> checked AST -> IR)."""

import pytest

from repro.errors import CatalogError, ParseError, TypeCheckError
from repro.graql.compiler import compile_script
from repro.graql.ir import decode_statement
from repro.graql.typecheck import CheckedGraphSelect


class TestCompileScript:
    def test_pipeline_produces_ir_and_checked(self, social_db):
        program = compile_script(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G",
            social_db.catalog,
        )
        assert len(program) == 1
        cs = program.statements[0]
        assert cs.ir_size > 0
        assert isinstance(cs.checked, CheckedGraphSelect)
        assert decode_statement(cs.ir) == cs.statement

    def test_parameters_substituted_before_encoding(self, social_db):
        program = compile_script(
            "select * from graph Person (name = %Who%) --follows--> "
            "Person ( ) into subgraph G",
            social_db.catalog,
            params={"Who": "Alice"},
        )
        decoded = decode_statement(program.statements[0].ir)
        cond = decoded.pattern.steps[0].cond
        assert cond.right.value == "Alice"

    def test_parse_error_propagates(self, social_db):
        with pytest.raises(ParseError):
            compile_script("select banana from", social_db.catalog)

    def test_type_error_propagates(self, social_db):
        with pytest.raises((TypeCheckError, CatalogError)):
            compile_script("select * from table Missing", social_db.catalog)

    def test_total_ir_size(self, social_db):
        program = compile_script(
            "select * from table People\nselect * from table Cities",
            social_db.catalog,
        )
        assert program.total_ir_size == sum(
            cs.ir_size for cs in program.statements
        )

    def test_forward_declared_objects_compile(self, social_db):
        # a script may create and then query an object (scratch catalog)
        program = compile_script(
            "create table Fresh(id integer)\n"
            "select count(*) as n from table Fresh",
            social_db.catalog,
        )
        assert len(program) == 2
        # compiling had no side effect on the live catalog
        assert not social_db.catalog.is_table("Fresh")

    def test_unbound_param_rejected_at_compile(self, social_db):
        with pytest.raises(TypeCheckError, match="parameters"):
            compile_script(
                "select * from table People where age = %Missing%",
                social_db.catalog,
            )
