"""Unit tests for the GraQL parser covering every statement form."""

import pytest

from repro.dtypes import DATE, FLOAT, INTEGER, VarChar
from repro.errors import ParseError
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateTable,
    CreateVertex,
    DIR_IN,
    DIR_OUT,
    EdgeStep,
    GraphSelect,
    Ingest,
    LABEL_FOREACH,
    LABEL_SET,
    PathAnd,
    PathAtom,
    PathOr,
    RegexGroup,
    REGEX_COUNT,
    REGEX_PLUS,
    REGEX_STAR,
    StarItem,
    StepItem,
    TableSelect,
    VertexStep,
)
from repro.graql.parser import parse_script, parse_statement
from repro.storage.expr import BinOp, ColRef, Const, Param


class TestCreateTable:
    def test_basic(self):
        stmt = parse_statement(
            "create table T(id varchar(10), n integer, x float, d date)"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.schema.names() == ["id", "n", "x", "d"]
        assert stmt.schema.type_of("id") == VarChar(10)
        assert stmt.schema.type_of("n") is INTEGER
        assert stmt.schema.type_of("x") is FLOAT
        assert stmt.schema.type_of("d") is DATE

    def test_comments_inside(self):
        stmt = parse_statement(
            "create table T(\n  id varchar(10), // primary\n  n integer\n)"
        )
        assert len(stmt.schema) == 2

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_statement("create table T(id blob)")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_statement("create table T id integer")


class TestCreateVertex:
    def test_basic(self):
        stmt = parse_statement("create vertex V(id) from table T")
        assert isinstance(stmt, CreateVertex)
        assert stmt.key_cols == ["id"] and stmt.table == "T"
        assert stmt.where is None

    def test_composite_key(self):
        stmt = parse_statement("create vertex V(a, b) from table T")
        assert stmt.key_cols == ["a", "b"]

    def test_with_where(self):
        stmt = parse_statement(
            "create vertex V(id) from table T where T.kind = 'x'"
        )
        assert isinstance(stmt.where, BinOp)


class TestCreateEdge:
    def test_paper_form(self):
        stmt = parse_statement(
            "create edge producer with vertices (ProductVtx, ProducerVtx) "
            "where ProductVtx.producer = ProducerVtx.id"
        )
        assert isinstance(stmt, CreateEdge)
        assert stmt.source.type_name == "ProductVtx"
        assert stmt.target.type_name == "ProducerVtx"
        assert stmt.from_tables == []

    def test_aliases(self):
        stmt = parse_statement(
            "create edge subclass with vertices (TypeVtx as A, TypeVtx as B) "
            "where A.subclassOf = B.id"
        )
        assert stmt.source.alias == "A" and stmt.target.alias == "B"
        assert stmt.source.ref_name == "A"

    def test_from_table(self):
        stmt = parse_statement(
            "create edge t with vertices (P, Q) from table R "
            "where R.p = P.id and R.q = Q.id"
        )
        assert stmt.from_tables == ["R"]

    def test_multiple_from_tables(self):
        stmt = parse_statement(
            "create edge t with vertices (P, Q) from table R, S where R.x = S.y"
        )
        assert stmt.from_tables == ["R", "S"]


class TestIngest:
    def test_bare_filename(self):
        stmt = parse_statement("ingest table Products products.csv")
        assert isinstance(stmt, Ingest)
        assert stmt.path == "products.csv"

    def test_path_with_directories(self):
        stmt = parse_statement("ingest table P data/sub/products.csv")
        assert stmt.path == "data/sub/products.csv"

    def test_quoted_path(self):
        stmt = parse_statement("ingest table P 'some dir/file.csv'")
        assert stmt.path == "some dir/file.csv"

    def test_next_statement_not_swallowed(self):
        script = parse_script(
            "ingest table P products.csv\ncreate table X(id integer)"
        )
        assert len(script) == 2
        assert script.statements[0].path == "products.csv"


class TestTableSelect:
    def test_full_form(self):
        stmt = parse_statement(
            "select top 10 id, count(*) as groupCount from table T1 "
            "where n > 3 group by id order by groupCount desc into table T2"
        )
        assert isinstance(stmt, TableSelect)
        assert stmt.top == 10
        assert stmt.group_by == ["id"]
        assert stmt.order_by[0].column == "groupCount"
        assert not stmt.order_by[0].ascending
        assert stmt.into.name == "T2"

    def test_star(self):
        stmt = parse_statement("select * from table T")
        assert isinstance(stmt.items[0], StarItem)

    def test_distinct(self):
        assert parse_statement("select distinct id from table T").distinct

    def test_aggregates(self):
        stmt = parse_statement(
            "select count(*), sum(n) as s, avg(x), min(d), max(d) from table T"
        )
        funcs = [i.func for i in stmt.items if isinstance(i, AggItem)]
        assert funcs == ["count", "sum", "avg", "min", "max"]

    def test_order_by_multiple(self):
        stmt = parse_statement("select a from table T order by a asc, b desc")
        assert [(k.column, k.ascending) for k in stmt.order_by] == [
            ("a", True),
            ("b", False),
        ]

    def test_aliases(self):
        stmt = parse_statement("select a as x, b from table T")
        assert stmt.items[0].alias == "x" and stmt.items[1].alias is None


class TestGraphSelect:
    def test_minimal_path(self):
        stmt = parse_statement(
            "select * from graph A ( ) --e--> B ( ) into subgraph G"
        )
        assert isinstance(stmt, GraphSelect)
        atom = stmt.pattern
        assert isinstance(atom, PathAtom)
        assert len(atom.steps) == 3
        assert atom.steps[1].direction == DIR_OUT

    def test_in_edge(self):
        stmt = parse_statement("select * from graph A ( ) <--e-- B ( ) into subgraph G")
        assert stmt.pattern.steps[1].direction == DIR_IN

    def test_empty_parens_mean_no_filter(self):
        stmt = parse_statement("select * from graph A ( ) --e--> B ( ) into subgraph G")
        assert stmt.pattern.steps[0].cond is None

    def test_conditions_and_params(self):
        stmt = parse_statement(
            "select * from graph A (id = %P% and n > 3) --e--> B ( ) into subgraph G"
        )
        cond = stmt.pattern.steps[0].cond
        assert isinstance(cond, BinOp) and cond.op == "and"

    def test_def_label(self):
        stmt = parse_statement(
            "select y.id from graph A ( ) --e--> def y: B ( ) into table T"
        )
        step = stmt.pattern.steps[2]
        assert step.label.kind == LABEL_SET and step.label.name == "y"

    def test_foreach_label(self):
        stmt = parse_statement(
            "select * from graph A ( ) --e--> foreach y: B ( ) into subgraph G"
        )
        assert stmt.pattern.steps[2].label.kind == LABEL_FOREACH

    def test_variant_steps(self):
        stmt = parse_statement(
            "select * from graph A (x = 1) <--[]-- [ ] into subgraph G"
        )
        assert stmt.pattern.steps[1].is_variant
        assert stmt.pattern.steps[2].is_variant

    def test_edge_condition(self):
        stmt = parse_statement(
            "select * from graph A ( ) --e(weight > 3)--> B ( ) into subgraph G"
        )
        assert stmt.pattern.steps[1].cond is not None

    def test_and_composition(self):
        stmt = parse_statement(
            "select T.id from graph A ( ) --e--> def y: B ( ) "
            "and (y --f--> T ( )) into table T1"
        )
        assert isinstance(stmt.pattern, PathAnd)
        right = stmt.pattern.right
        assert right.steps[0].name == "y"

    def test_or_composition(self):
        stmt = parse_statement(
            "select * from graph A ( ) --e--> B ( ) or (A ( ) --f--> C ( )) "
            "into subgraph G"
        )
        assert isinstance(stmt.pattern, PathOr)

    def test_seeded_step(self):
        stmt = parse_statement(
            "select * from graph resQ1.Vn (x > 1) --e--> B ( ) into subgraph G"
        )
        first = stmt.pattern.steps[0]
        assert first.seed == "resQ1" and first.name == "Vn"

    def test_regex_plus(self):
        stmt = parse_statement(
            "select * from graph A ( ) ( --[]--> [ ] )+ B ( ) into subgraph G"
        )
        group = stmt.pattern.steps[1]
        assert isinstance(group, RegexGroup)
        assert group.op == REGEX_PLUS and len(group.pairs) == 1

    def test_regex_star_and_count(self):
        s1 = parse_statement(
            "select * from graph A ( ) ( --e--> [ ] )* B ( ) into subgraph G"
        )
        assert s1.pattern.steps[1].op == REGEX_STAR
        s2 = parse_statement(
            "select * from graph A ( ) ( --e--> [ ] ){3} B ( ) into subgraph G"
        )
        assert s2.pattern.steps[1].op == REGEX_COUNT
        assert s2.pattern.steps[1].count == 3

    def test_regex_with_connector_arrows(self):
        # Fig. 10 shows "VertexA --> ( ... )+ --> VertexB"
        stmt = parse_statement(
            "select * from graph A ( ) --> ( --[]--> [ ] )+ --> B ( ) "
            "into subgraph G"
        )
        assert isinstance(stmt.pattern.steps[1], RegexGroup)

    def test_step_items(self):
        stmt = parse_statement(
            "select V0, Vn from graph V0 ( ) --e--> Vn ( ) into subgraph G"
        )
        assert all(isinstance(i, StepItem) for i in stmt.items)

    def test_attr_items_qualified(self):
        stmt = parse_statement(
            "select TypeVtx.id from graph A ( ) --e--> TypeVtx ( ) into table T"
        )
        item = stmt.items[0]
        assert isinstance(item, AttrItem)
        assert item.ref.qualifier == "TypeVtx" and item.ref.name == "id"

    def test_no_into_clause(self):
        stmt = parse_statement("select A.id from graph A ( ) --e--> B ( )")
        assert stmt.into is None

    def test_vertex_vertex_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select * from graph A ( ) B ( ) into subgraph G")

    def test_top_on_graph_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select top 5 * from graph A ( ) --e--> B ( )")


class TestScripts:
    def test_multi_statement_no_separator(self):
        script = parse_script(
            """
            create table T(id varchar(10))
            create vertex V(id) from table T
            select * from table T
            """
        )
        assert len(script) == 3

    def test_semicolons_tolerated(self):
        script = parse_script("select * from table T; select * from table U")
        assert len(script) == 2

    def test_empty_script(self):
        assert len(parse_script("")) == 0

    def test_comment_only(self):
        assert len(parse_script("// nothing here\n")) == 0

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_script("frobnicate the database")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("select * from table T extra junk")
