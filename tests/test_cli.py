"""Tests for the command-line client."""

import pytest

from repro.cli import _parse_params, main


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["A=text", "B=3", "C=2.5"])
        assert params == {"A": "text", "B": 3, "C": 2.5}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestRunCommand:
    def test_run_script(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text(
            """
            create table T(id varchar(4), n integer)
            select count(*) as n from table T
            """
        )
        rc = main(["run", str(script)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "created table T" in out
        assert "(1 rows)" in out

    def test_run_with_params(self, tmp_path, capsys):
        data = tmp_path / "t.csv"
        data.write_text("a,1\nb,2\n")
        script = tmp_path / "s.graql"
        script.write_text(
            f"""
            create table T(id varchar(4), n integer)
            ingest table T '{data}'
            select id from table T where n = %N%
            """
        )
        rc = main(["run", str(script), "--param", "N=2"])
        out = capsys.readouterr().out
        assert rc == 0 and "b" in out

    def test_run_reports_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.graql"
        script.write_text("select * from table Missing")
        rc = main(["run", str(script)])
        err = capsys.readouterr().err
        assert rc == 1 and "unknown table" in err

    def test_subgraph_output_rendering(self, tmp_path, capsys):
        script = tmp_path / "g.graql"
        script.write_text(
            """
            create table N(id integer)
            create table E(s integer, t integer)
            create vertex V(id) from table N
            create edge e with vertices (V as A, V as B) from table E
            where E.s = A.id and E.t = B.id
            select * from graph V ( ) --e--> V ( ) into subgraph G
            """
        )
        rc = main(["run", str(script)])
        out = capsys.readouterr().out
        assert rc == 0 and "subgraph 'G'" in out

    def test_limit_flag(self, tmp_path, capsys):
        data = tmp_path / "t.csv"
        data.write_text("".join(f"r{i},1\n" for i in range(30)))
        script = tmp_path / "s.graql"
        script.write_text(
            f"""
            create table T(id varchar(4), n integer)
            ingest table T '{data}'
            select * from table T
            """
        )
        main(["--limit", "3", "run", str(script)])
        out = capsys.readouterr().out
        assert "30 rows total" in out


class TestExplainFlag:
    def test_run_explain(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text(
            "create table T(id varchar(4), n integer)\n"
            "select n, count(*) as c from table T group by n"
        )
        rc = main(["run", str(script), "--explain"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CREATE TABLE T" in out
        assert "aggregate [count(*)] group by n" in out

    def test_run_explain_reports_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.graql"
        script.write_text("select * from table Missing")
        rc = main(["run", str(script), "--explain"])
        assert rc == 1
