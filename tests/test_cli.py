"""Tests for the command-line client."""

import pytest

from repro.cli import _parse_params, main


class TestParamParsing:
    def test_types_inferred(self):
        params = _parse_params(["A=text", "B=3", "C=2.5"])
        assert params == {"A": "text", "B": 3, "C": 2.5}

    def test_missing_equals(self):
        with pytest.raises(SystemExit):
            _parse_params(["oops"])


class TestRunCommand:
    def test_run_script(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text(
            """
            create table T(id varchar(4), n integer)
            select count(*) as n from table T
            """
        )
        rc = main(["run", str(script)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "created table T" in out
        assert "(1 rows)" in out

    def test_run_with_params(self, tmp_path, capsys):
        data = tmp_path / "t.csv"
        data.write_text("a,1\nb,2\n")
        script = tmp_path / "s.graql"
        script.write_text(
            f"""
            create table T(id varchar(4), n integer)
            ingest table T '{data}'
            select id from table T where n = %N%
            """
        )
        rc = main(["run", str(script), "--param", "N=2"])
        out = capsys.readouterr().out
        assert rc == 0 and "b" in out

    def test_run_reports_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.graql"
        script.write_text("select * from table Missing")
        rc = main(["run", str(script)])
        err = capsys.readouterr().err
        assert rc == 1 and "unknown table" in err

    def test_subgraph_output_rendering(self, tmp_path, capsys):
        script = tmp_path / "g.graql"
        script.write_text(
            """
            create table N(id integer)
            create table E(s integer, t integer)
            create vertex V(id) from table N
            create edge e with vertices (V as A, V as B) from table E
            where E.s = A.id and E.t = B.id
            select * from graph V ( ) --e--> V ( ) into subgraph G
            """
        )
        rc = main(["run", str(script)])
        out = capsys.readouterr().out
        assert rc == 0 and "subgraph 'G'" in out

    def test_limit_flag(self, tmp_path, capsys):
        data = tmp_path / "t.csv"
        data.write_text("".join(f"r{i},1\n" for i in range(30)))
        script = tmp_path / "s.graql"
        script.write_text(
            f"""
            create table T(id varchar(4), n integer)
            ingest table T '{data}'
            select * from table T
            """
        )
        main(["--limit", "3", "run", str(script)])
        out = capsys.readouterr().out
        assert "30 rows total" in out


class TestExplainFlag:
    def test_run_explain(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text(
            "create table T(id varchar(4), n integer)\n"
            "select n, count(*) as c from table T group by n"
        )
        rc = main(["run", str(script), "--explain"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CREATE TABLE T" in out
        assert "aggregate [count(*)] group by n" in out

    def test_run_explain_reports_errors(self, tmp_path, capsys):
        script = tmp_path / "bad.graql"
        script.write_text("select * from table Missing")
        rc = main(["run", str(script), "--explain"])
        assert rc == 1


class TestCheckCommand:
    """The `graql check` exit-code contract: 0 clean, 1 warnings under
    --strict, 2 errors."""

    CLEAN = (
        "create table T(id varchar(4), n integer)\n"
        "select n, count(*) as c from table T group by n\n"
    )
    # a tautology is a warning (GQW102) but not an error
    WARN = (
        "create table T(id varchar(4), n integer)\n"
        "select id from table T where 1 = 1\n"
    )
    # three distinct semantic defects; syntax errors are tested
    # separately since a parse failure is fatal to the whole script
    BAD = (
        "select * from table Missing\n"
        "create table T(id integer)\n"
        "create table T(id integer)\n"
        "select nope from table T\n"
    )

    def _write(self, tmp_path, text):
        script = tmp_path / "s.graql"
        script.write_text(text)
        return str(script)

    def test_clean_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, self.CLEAN)
        assert main(["check", path]) == 0
        assert "clean" in capsys.readouterr().out
        assert main(["check", path, "--strict"]) == 0

    def test_warnings_exit_zero_unless_strict(self, tmp_path, capsys):
        path = self._write(tmp_path, self.WARN)
        assert main(["check", path]) == 0
        out = capsys.readouterr().out
        assert "warning[GQW102]" in out and "0 error(s), 1 warning(s)" in out
        assert main(["check", path, "--strict"]) == 1

    def test_errors_exit_two(self, tmp_path, capsys):
        path = self._write(tmp_path, self.BAD)
        assert main(["check", path]) == 2
        out = capsys.readouterr().out
        # all defects reported in one run, each with line:col
        assert "error[GQL010]" in out  # unknown table
        assert "error[GQL011]" in out  # name already in use
        assert "error[GQL013]" in out  # unknown column
        assert "1:1:" in out and "3:1:" in out and "4:8:" in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, "select 1 = from table\n")
        assert main(["check", path]) == 2
        assert "error[GQL001]" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        path = self._write(tmp_path, self.BAD)
        assert main(["check", path, "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] >= 3
        assert all("code" in d for d in payload["diagnostics"])

    def test_check_does_not_execute(self, tmp_path, capsys):
        data = tmp_path / "t.csv"
        script = tmp_path / "s.graql"
        script.write_text(
            "create table T(id varchar(4))\n"
            f"ingest table T '{data}'\n"
        )
        # the CSV does not exist: run fails, check does not touch data
        assert main(["check", str(script)]) == 0
        assert not data.exists()

    def test_check_with_params(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            "create table T(id varchar(4), n integer)\n"
            "select id from table T where n = %N%\n",
        )
        assert main(["check", path]) == 2  # unsubstituted -> GQL020
        assert "GQL020" in capsys.readouterr().out
        assert main(["check", path, "--param", "N=2"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope.graql")]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_against_demo_catalog(self, tmp_path, capsys):
        path = self._write(
            tmp_path, "select vendor, price from table Offers\n"
        )
        # unknown against an empty database, clean against berlin's
        assert main(["check", path]) == 2
        capsys.readouterr()
        assert main(["check", path, "--demo", "berlin", "--scale", "30"]) == 0


class TestStatsIndexes:
    def test_stats_indexes_flag(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text(
            """
            create table T(id varchar(4), c varchar(4))
            create vertex V(id) from table T
            create index by_c on V(c)
            """
        )
        rc = main(["stats", str(script), "--indexes"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "by_c on V(c)" in out
        assert "0 entries" in out
        assert "graql_" not in out  # metrics suppressed

    def test_stats_indexes_empty(self, tmp_path, capsys):
        script = tmp_path / "s.graql"
        script.write_text("create table T(id integer)")
        rc = main(["stats", str(script), "--indexes"])
        assert rc == 0
        assert "(no indexes)" in capsys.readouterr().out
