"""Server front-end with the distributed backend (full Section III path)."""

import pytest

from repro import Server
from tests.conftest import CITY_ROWS, FOLLOW_ROWS, PEOPLE_ROWS, SOCIAL_DDL


@pytest.fixture
def cluster_server() -> Server:
    s = Server(workers=3)
    s.create_user("admin", "etl", "writer")
    s.submit("etl", SOCIAL_DDL)
    s.backend.ingest_rows("People", PEOPLE_ROWS)
    s.backend.ingest_rows("Cities", CITY_ROWS)
    s.backend.ingest_rows("Follows", FOLLOW_ROWS)
    s.cluster.rebuild()
    return s


class TestServerOnCluster:
    def test_graph_select_runs_distributed(self, cluster_server):
        s = cluster_server
        s.cluster.reset_stats()
        results = s.submit(
            "etl",
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph SG",
        )
        assert results[0].kind == "subgraph"
        # distribution actually happened: remote messages were exchanged
        assert s.cluster.comm_stats()["messages"] > 0

    def test_matches_single_node_server(self, cluster_server):
        single = Server()
        single.create_user("admin", "etl", "writer")
        single.submit("etl", SOCIAL_DDL)
        single.backend.ingest_rows("People", PEOPLE_ROWS)
        single.backend.ingest_rows("Cities", CITY_ROWS)
        single.backend.ingest_rows("Follows", FOLLOW_ROWS)
        single.catalog.refresh(single.backend)
        q = ("select * from graph Person ( ) --follows--> Person ( ) "
             "into subgraph CMP")
        a = single.submit("etl", q)[0].subgraph
        b = cluster_server.submit("etl", q)[0].subgraph
        assert {k: v.tolist() for k, v in a.vertices.items()} == {
            k: v.tolist() for k, v in b.vertices.items()
        }

    def test_relational_falls_through(self, cluster_server):
        results = cluster_server.submit(
            "etl", "select country, count(*) as n from table People group by country"
        )
        assert results[0].table.num_rows == 3

    def test_ddl_reshards(self, cluster_server):
        s = cluster_server
        s.submit("etl", "create table Extra(id integer)")
        assert "Extra" in s.catalog.tables

    def test_ir_still_accounted(self, cluster_server):
        before = cluster_server.ir_bytes_shipped
        cluster_server.submit("etl", "select * from table People")
        assert cluster_server.ir_bytes_shipped > before

    def test_timeout_budget_degrades_to_single_node(self, cluster_server):
        s = cluster_server
        results = s.submit(
            "etl",
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph TB",
            timeout_s=0.0,
        )
        assert results[0].degraded
        assert "QueryTimeout" in results[0].degraded_reason
        assert results[0].subgraph is not None
        assert s.degraded_statements == 1

    def test_recovery_counters_exposed(self, cluster_server):
        results = cluster_server.submit(
            "etl",
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph RC",
        )
        assert results[0].recovery == {
            "retries": 0,
            "failovers": 0,
            "backoff_ms": 0.0,
            "extra_messages": 0,
            "extra_bytes": 0,
        }
