"""Tests for pipelined pair execution (Section III-B1)."""

import pytest

from repro.engine.pipeline import find_fusable_pairs, run_pipelined
from repro.graql.parser import parse_script
from repro.workloads.berlin import Q1_FIG7, Q2_FIG6, berlin_database
from tests.conftest import build_social_db

BROAD_PAIR = """
select y.id from graph
Person ( ) --follows--> def y: Person ( )
into table T1

select id, count(*) as n from table T1
group by id order by n desc, id asc
"""


class TestFusionDetection:
    def test_detects_adjacent_pair(self):
        script = parse_script(BROAD_PAIR)
        assert find_fusable_pairs(script) == {0: 1}

    def test_no_fusion_when_table_reused(self):
        script = parse_script(
            BROAD_PAIR + "\nselect * from table T1"
        )
        assert find_fusable_pairs(script) == {}

    def test_no_fusion_for_subgraph_output(self):
        script = parse_script(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G\n"
            "select * from table People"
        )
        assert find_fusable_pairs(script) == {}

    def test_no_fusion_when_not_adjacent(self):
        script = parse_script(
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table T1\n"
            "select * from table People\n"
            "select id, count(*) as n from table T1 group by id"
        )
        assert find_fusable_pairs(script) == {}


class TestFusedExecution:
    def test_identical_to_sequential(self):
        db1 = build_social_db()
        ref = db1.query(BROAD_PAIR)
        db2 = build_social_db()
        results, stats = run_pipelined(
            db2.db, db2.catalog, parse_script(BROAD_PAIR), num_chunks=3
        )
        assert results[1].table.to_rows() == ref.to_rows()
        assert len(stats) == 1

    def test_chunking_bounds_peak(self):
        db = build_social_db()
        results, stats = run_pipelined(
            db.db, db.catalog, parse_script(BROAD_PAIR), num_chunks=6
        )
        s = stats[0]
        assert s.chunks > 1
        assert s.peak_partial_rows < s.total_paths
        assert s.total_paths == 8  # all follow edges

    def test_intermediate_table_still_registered(self):
        db = build_social_db()
        run_pipelined(db.db, db.catalog, parse_script(BROAD_PAIR), num_chunks=4)
        assert db.db.table("T1").num_rows == 8

    def test_berlin_q2_pipelined(self):
        db1 = berlin_database(scale=120, seed=5)
        ref = db1.query(Q2_FIG6, params={"Product1": "product7"})
        db2 = berlin_database(scale=120, seed=5)
        results, _ = run_pipelined(
            db2.db,
            db2.catalog,
            parse_script(Q2_FIG6),
            params={"Product1": "product7"},
        )
        assert results[1].table.to_rows() == ref.to_rows()

    def test_multi_atom_falls_back(self):
        """Fig. 7 (two atoms) is not fusable; results must still be right."""
        db1 = berlin_database(scale=120, seed=5)
        ref = db1.query(Q1_FIG7, params={"Country1": "US", "Country2": "DE"})
        db2 = berlin_database(scale=120, seed=5)
        results, stats = run_pipelined(
            db2.db,
            db2.catalog,
            parse_script(Q1_FIG7),
            params={"Country1": "US", "Country2": "DE"},
        )
        assert results[1].table.to_rows() == ref.to_rows()
        assert stats == []  # fell back, no fusion

    def test_avg_aggregate_pipelined(self):
        db1 = build_social_db()
        script = """
        select y.age as a from graph
        Person ( ) --follows--> def y: Person ( )
        into table Ages

        select count(*) as n, avg(a) as meanAge, min(a) as lo, max(a) as hi
        from table Ages
        """
        ref = db1.query(script)
        db2 = build_social_db()
        results, stats = run_pipelined(
            db2.db, db2.catalog, parse_script(script), num_chunks=3
        )
        assert results[1].table.to_rows() == pytest.approx(ref.to_rows()[0]) or (
            results[1].table.to_rows() == ref.to_rows()
        )
        assert stats and stats[0].chunks >= 1

    def test_empty_result_pipelined(self):
        db = build_social_db()
        script = """
        select y.id from graph
        Person (country = 'XX') --follows--> def y: Person ( )
        into table Nada

        select id, count(*) as n from table Nada group by id
        """
        results, _ = run_pipelined(db.db, db.catalog, parse_script(script))
        assert results[1].table.num_rows == 0


class TestDatabaseAPI:
    def test_execute_pipelined_entry_point(self):
        db = build_social_db()
        results, stats = db.execute_pipelined(BROAD_PAIR, num_chunks=4)
        assert results[-1].table.num_rows > 0
        assert stats[0].chunks >= 2
