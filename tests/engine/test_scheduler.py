"""Unit tests for multi-statement scheduling (Section III-B1)."""

import pytest

from repro.catalog import Catalog
from repro.engine.scheduler import build_schedule, run_scheduled
from repro.graql.parser import parse_script
from tests.conftest import build_social_db


def waves_of(text, catalog=None):
    return build_schedule(parse_script(text), catalog).waves


class TestDependencies:
    def test_independent_selects_share_wave(self):
        waves = waves_of(
            """
            create table A(id integer)
            create table B(id integer)
            select * from table A into table RA
            select * from table B into table RB
            """
        )
        assert waves[0] == [0, 1]
        assert waves[1] == [2, 3]

    def test_read_after_write(self):
        waves = waves_of(
            """
            create table A(id integer)
            select * from table A into table R
            select * from table R into table R2
            """
        )
        assert waves == [[0], [1], [2]]

    def test_ingest_blocks_view_readers(self):
        waves = waves_of(
            """
            create table A(id integer)
            create vertex V(id) from table A
            ingest table A a.csv
            select * from graph V ( ) into subgraph G
            """
        )
        # the graph select reads view V, which ingest rebuilds
        level = {i: w for w, idx in enumerate(waves) for i in idx}
        assert level[3] > level[2]

    def test_unrelated_ingest_does_not_block(self):
        sched = build_schedule(
            parse_script(
                """
                create table A(id integer)
                create table B(id integer)
                create vertex VA(id) from table A
                ingest table B b.csv
                select * from graph VA ( ) into subgraph G
                """
            )
        )
        # the select depends on VA (stmt 2), not on the ingest of B (stmt 3)
        assert 2 in sched.deps[4]
        assert 3 not in sched.deps[4]

    def test_subgraph_seeding_dependency(self):
        waves = waves_of(
            """
            create table A(id integer)
            create vertex V(id) from table A
            select * from graph V ( ) into subgraph S
            select * from graph S.V ( ) into subgraph S2
            """
        )
        level = {i: w for w, idx in enumerate(waves) for i in idx}
        assert level[3] > level[2]

    def test_write_write_ordering(self):
        waves = waves_of(
            """
            create table A(id integer)
            select * from table A into table R
            select * from table A into table R
            """
        )
        level = {i: w for w, idx in enumerate(waves) for i in idx}
        assert level[2] > level[1]

    def test_edge_dependencies_through_vertices(self):
        waves = waves_of(
            """
            create table N(id integer)
            create table E(s integer, t integer)
            create vertex V(id) from table N
            create edge e with vertices (V as A, V as B) from table E
            where E.s = A.id and E.t = B.id
            ingest table E e.csv
            select * from graph V ( ) --e--> V ( ) into subgraph G
            """
        )
        level = {i: w for w, idx in enumerate(waves) for i in idx}
        assert level[5] > level[4]  # select after ingest rebuilds edge view


class TestScheduleProperties:
    def test_max_parallelism(self):
        sched = build_schedule(
            parse_script(
                "create table A(id integer)\n"
                "create table B(id integer)\n"
                "create table C(id integer)"
            )
        )
        assert sched.max_parallelism == 3
        assert sched.num_waves == 1

    def test_uses_existing_catalog(self, social_db):
        waves = waves_of(
            "ingest table People p.csv\n"
            "select * from graph Person ( ) into subgraph G",
            social_db.catalog,
        )
        level = {i: w for w, idx in enumerate(waves) for i in idx}
        # Person depends on People even though declared outside the script
        assert level[1] > level[0]


class TestRunScheduled:
    def run(self, parallel):
        db = build_social_db()
        script = parse_script(
            """
            select y.id from graph Person (country = 'US') --follows-->
            def y: Person ( ) into table A
            select y.id from graph Person (country = 'DE') --follows-->
            def y: Person ( ) into table B
            select id, count(*) as n from table A group by id into table CA
            select id, count(*) as n from table B group by id into table CB
            """
        )
        results, schedule = run_scheduled(
            db.db, db.catalog, script, parallel=parallel
        )
        return results, schedule, db

    def test_results_in_statement_order(self):
        results, schedule, db = self.run(parallel=False)
        assert len(results) == 4
        assert db.table("CA").num_rows > 0

    def test_parallel_equals_serial(self):
        r1, _, db1 = self.run(parallel=False)
        r2, _, db2 = self.run(parallel=True)
        assert sorted(db1.table("CA").to_rows()) == sorted(db2.table("CA").to_rows())
        assert sorted(db1.table("CB").to_rows()) == sorted(db2.table("CB").to_rows())

    def test_schedule_has_parallel_wave(self):
        _, schedule, _ = self.run(parallel=False)
        assert schedule.max_parallelism >= 2
