"""Unit tests for the public Database session API."""

import pytest

from repro import Database
from repro.errors import ExecutionError, IngestError


class TestExecute:
    def test_multi_statement_script(self):
        db = Database()
        results = db.execute(
            """
            create table T(id varchar(4), n integer)
            create vertex V(id) from table T
            """
        )
        assert [r.kind for r in results] == ["ddl", "ddl"]

    def test_query_returns_last_table(self, social_db):
        t = social_db.query(
            """
            select y.id from graph Person ( ) --follows--> def y: Person ( )
            into table A
            select id, count(*) as n from table A group by id
            """
        )
        assert "n" in t.schema.names()

    def test_query_without_table_raises(self, social_db):
        with pytest.raises(ExecutionError):
            social_db.query(
                "select * from graph Person ( ) --follows--> Person ( ) "
                "into subgraph G"
            )

    def test_query_subgraph(self, social_db):
        sg = social_db.query_subgraph(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G"
        )
        assert sg.num_vertices > 0

    def test_execute_file(self, tmp_path, social_db):
        path = tmp_path / "script.graql"
        path.write_text(
            "select y.id from graph Person ( ) --follows--> def y: "
            "Person ( ) into table FromFile"
        )
        social_db.execute_file(str(path))
        assert social_db.table("FromFile").num_rows > 0


class TestIngestHelpers:
    def test_ingest_rows_refreshes_catalog(self, social_db):
        before = social_db.catalog.vertex("Person").num_vertices
        social_db.ingest_rows("People", [("px", "Xan", "US", 20, 0.1, 735650)])
        assert social_db.catalog.vertex("Person").num_vertices == before + 1

    def test_ingest_text(self, social_db):
        n = social_db.ingest_text("Cities", "tokyo,JP,14000000\n")
        assert n == 1

    def test_ingest_statement_with_file(self, tmp_path, social_db):
        path = tmp_path / "cities.csv"
        path.write_text("osaka,JP,2700000\n")
        r = social_db.execute(f"ingest table Cities '{path}'")[0]
        assert r.kind == "ingest" and r.count == 1

    def test_ingest_missing_file(self, social_db):
        with pytest.raises(IngestError):
            social_db.execute("ingest table Cities /no/such/file.csv")


class TestIntrospection:
    def test_counts(self, social_db):
        assert social_db.vertex_count("Person") == 6
        assert social_db.edge_count("follows") == 8

    def test_table_and_subgraph_access(self, social_db):
        assert social_db.table("People").num_rows == 6
        social_db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph SG"
        )
        assert social_db.subgraph("SG").num_vertices > 0
