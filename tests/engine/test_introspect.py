"""``Database.schema()``: typed catalog introspection.

Pins the SchemaReport JSON key sets the same way the explain report is
pinned in tests/query/test_explain_structured.py.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    EdgeTypeInfo,
    IndexInfo,
    SchemaReport,
    TableInfo,
    VertexTypeInfo,
)

REPORT_KEYS = {"tables", "vertex_types", "edge_types", "indexes", "subgraphs"}
TABLE_KEYS = {"name", "columns", "num_rows", "derived"}
VERTEX_KEYS = {
    "name", "table", "key", "attrs", "num_vertices",
    "stats_attrs", "stats_freshness",
}
EDGE_KEYS = {"name", "source", "target", "attrs", "num_edges"}
INDEX_KEYS = {
    "name", "target", "target_kind", "attrs", "num_entries",
    "stats_freshness",
}
COLUMN_KEYS = {"name", "dtype"}


class TestSchemaReport:
    def test_types_and_counts(self, social_db):
        report = social_db.schema()
        assert isinstance(report, SchemaReport)
        tables = {t.name: t for t in report.tables}
        assert isinstance(tables["People"], TableInfo)
        assert tables["People"].num_rows == 6
        assert [c.name for c in tables["People"].columns][:2] == ["id", "name"]
        vts = {v.name: v for v in report.vertex_types}
        assert isinstance(vts["Person"], VertexTypeInfo)
        assert vts["Person"].table == "People"
        assert vts["Person"].key == ("id",)
        assert vts["Person"].num_vertices == 6
        ets = {e.name: e for e in report.edge_types}
        assert isinstance(ets["follows"], EdgeTypeInfo)
        assert ets["follows"].source == "Person"
        assert ets["follows"].target == "Person"

    def test_report_is_frozen_and_sorted(self, social_db):
        report = social_db.schema()
        with pytest.raises(AttributeError):
            report.tables = ()
        names = [t.name for t in report.tables]
        assert names == sorted(names)

    def test_str_and_contains(self, social_db):
        report = social_db.schema()
        assert str(report) == report.to_text()
        assert "vertex types:" in report
        assert "Person" in report

    def test_indexes_with_stats_freshness(self, social_db):
        social_db.execute("create index by_country on Person(country)")
        report = social_db.schema()
        info = report.index("by_country")
        assert isinstance(info, IndexInfo)
        assert info.target == "Person"
        assert info.attrs == ("country",)
        assert info.num_entries == 6
        # no query planned yet -> no column stats collected
        assert info.stats_freshness is None
        assert "no stats" in info.describe()
        # planning a query against the indexed attribute collects stats
        # (explain plans on a scratch catalog copy, so run for real)
        social_db.execute(
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph SI"
        )
        info = social_db.schema().index("by_country")
        assert info.stats_freshness == 0.0
        assert "stats drift 0%" in info.describe()
        assert "country" in {
            a
            for v in social_db.schema().vertex_types
            if v.name == "Person"
            for a in v.stats_attrs
        }

    def test_index_lookup_missing(self, social_db):
        assert social_db.schema().index("nope") is None


class TestSchemaJson:
    def test_key_sets_are_pinned(self, social_db):
        social_db.execute("create index by_age on Person(age)")
        payload = social_db.schema().to_json()
        assert set(payload) == REPORT_KEYS
        for t in payload["tables"]:
            assert set(t) == TABLE_KEYS
            for c in t["columns"]:
                assert set(c) == COLUMN_KEYS
        for v in payload["vertex_types"]:
            assert set(v) == VERTEX_KEYS
        for e in payload["edge_types"]:
            assert set(e) == EDGE_KEYS
        for i in payload["indexes"]:
            assert set(i) == INDEX_KEYS
        assert json.loads(json.dumps(payload)) == payload

    def test_subgraphs_listed(self, social_db):
        social_db.execute(
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph SX"
        )
        payload = social_db.schema().to_json()
        assert "SX" in payload["subgraphs"]
