"""Unit tests for the front-end server (access control + IR shipping)."""

import pytest

from repro import Server
from repro.errors import AccessError, TypeCheckError


@pytest.fixture
def server() -> Server:
    s = Server()
    s.create_user("admin", "writer1", "writer")
    s.create_user("admin", "reader1", "reader")
    s.submit(
        "writer1",
        """
        create table T(id varchar(8), n integer)
        create vertex V(id) from table T
        """,
    )
    return s


class TestAccounts:
    def test_admin_exists(self):
        assert "admin" in Server().users

    def test_create_requires_admin(self, server):
        with pytest.raises(AccessError):
            server.create_user("writer1", "other", "reader")

    def test_duplicate_user(self, server):
        with pytest.raises(AccessError):
            server.create_user("admin", "writer1", "reader")

    def test_unknown_role(self, server):
        with pytest.raises(AccessError):
            server.create_user("admin", "x", "superuser")

    def test_drop_user(self, server):
        server.drop_user("admin", "reader1")
        assert "reader1" not in server.users

    def test_cannot_drop_admin(self, server):
        with pytest.raises(AccessError):
            server.drop_user("admin", "admin")

    def test_drop_unknown_user_rejected(self, server):
        # symmetric with create_user: dropping a non-existent account is
        # an error, not a silent no-op
        with pytest.raises(AccessError, match="unknown user"):
            server.drop_user("admin", "ghost")

    def test_drop_is_not_idempotent(self, server):
        server.drop_user("admin", "reader1")
        with pytest.raises(AccessError):
            server.drop_user("admin", "reader1")

    def test_unknown_user_rejected(self, server):
        with pytest.raises(AccessError):
            server.submit("ghost", "select * from table T")


class TestRights:
    def test_reader_can_select(self, server):
        results = server.submit("reader1", "select * from table T")
        assert results[0].kind == "table"

    def test_reader_cannot_create(self, server):
        with pytest.raises(AccessError):
            server.submit("reader1", "create table X(id integer)")

    def test_reader_cannot_ingest(self, server):
        with pytest.raises(AccessError):
            server.submit("reader1", "ingest table T data.csv")

    def test_reader_cannot_write_results(self, server):
        with pytest.raises(AccessError):
            server.submit("reader1", "select * from table T into table R")

    def test_writer_can_write_results(self, server):
        server.submit("writer1", "select * from table T into table R")
        assert server.catalog.is_table("R")


class TestFrontEndPipeline:
    def test_static_error_before_execution(self, server):
        # ill-typed script must be rejected with NO backend effect
        from repro.errors import CatalogError

        with pytest.raises((TypeCheckError, CatalogError)):
            server.submit(
                "writer1",
                "create table Ok(id integer)\n"
                "select * from table Nope",
            )
        assert "Ok" not in server.catalog.tables  # nothing executed

    def test_ir_bytes_accounted(self, server):
        before = server.ir_bytes_shipped
        server.submit("reader1", "select * from table T")
        assert server.ir_bytes_shipped > before

    def test_compile_only_has_no_effects(self, server):
        program = server.compile("writer1", "create table Pure(id integer)")
        assert len(program) == 1
        assert program.total_ir_size > 0
        assert "Pure" not in server.catalog.tables

    def test_params_through_server(self, server):
        server.backend.ingest_rows("T", [("a", 1), ("b", 2)])
        server.catalog.refresh(server.backend)
        out = server.submit(
            "reader1", "select * from table T where n = %N%", params={"N": 2}
        )
        assert out[0].table.num_rows == 1
