"""Crash-fault matrix: every injected fault point recovers to an exact
committed prefix, and `verify_store` proves it.

The oracle is an in-memory :class:`Database` executing the same
deterministic op list: op *k* commits WAL seq *k*, so "recovered to seq
*n*" must mean "state identical to the oracle after the first *n* ops"
— not approximately, fingerprint-identical."""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

from repro import Database, WalError
from repro.durability import SimulatedCrash, StorageFaultInjector, verify_store
from repro.durability.state import state_fingerprint

N_OPS = 10  # 2 DDL + 8 single-record ingests; op k == WAL seq k


def op(db, k):
    if k == 1:
        db.execute("create table events (id integer, kind varchar(12))")
    elif k == 2:
        db.execute("create vertex Event(id) from table events")
    else:
        db.ingest_rows("events", [(k, f"kind{k % 3}")])


def oracle_fp(n):
    """Fingerprint of an in-memory database after the first *n* ops."""
    db = Database()
    for k in range(1, n + 1):
        op(db, k)
    fp = state_fingerprint(db.db, [])
    db.close()
    return fp


def run_workload(path, inj):
    """Drive the op list against a durable database; report if it died."""
    db = Database.open(str(path), faults=inj)
    try:
        for k in range(1, N_OPS + 1):
            op(db, k)
    except SimulatedCrash:
        return True
    db.close()
    return False


def assert_exact_prefix(path, expect_seq):
    """Recovery must land on *exactly* the oracle state after expect_seq."""
    with Database.open(str(path)) as db2:
        assert db2.recovery.last_seq == expect_seq
        got = state_fingerprint(db2.db, db2.store.users)
    assert got == oracle_fp(expect_seq), (
        f"recovered state at seq {expect_seq} diverged from the "
        f"committed prefix"
    )
    report = verify_store(str(path))
    assert report.ok, report.problems


class TestFaultMatrix:
    """Kill the store at *every* record seq, for every fault kind."""

    @pytest.mark.parametrize("kind", ["torn_write", "partial_record"])
    @pytest.mark.parametrize("seq", range(1, N_OPS + 1))
    def test_crash_at_every_append(self, tmp_path, kind, seq):
        inj = StorageFaultInjector(seed=seq, **{f"{kind}_at": [seq]})
        assert run_workload(tmp_path, inj)
        # the torn record was never acknowledged and must not reappear
        assert_exact_prefix(tmp_path, seq - 1)

    @pytest.mark.parametrize("seq", range(1, N_OPS + 1))
    def test_bitflip_at_every_record(self, tmp_path, seq):
        inj = StorageFaultInjector(seed=seq * 7, bitflip_at=[seq])
        crashed = run_workload(tmp_path, inj)
        assert not crashed  # silent corruption: the process sails on
        # recovery stops *before* the rotted record; later records are
        # intact on disk but unreachable — never silently replayed
        assert_exact_prefix(tmp_path, seq - 1)

    @pytest.mark.parametrize("seq", range(1, N_OPS + 1))
    def test_crash_after_commit_keeps_the_record(self, tmp_path, seq):
        inj = StorageFaultInjector(seed=seq, crash_after_append_at=[seq])
        assert run_workload(tmp_path, inj)
        assert_exact_prefix(tmp_path, seq)  # committed before death

    def test_two_faults_in_sequence(self, tmp_path):
        """Crash, recover, keep writing, crash again, recover again."""
        assert run_workload(tmp_path, StorageFaultInjector(seed=1, torn_write_at=[4]))
        inj2 = StorageFaultInjector(seed=2, torn_write_at=[6])
        db = Database.open(str(tmp_path), faults=inj2)
        assert db.store.seq == 3
        with pytest.raises(SimulatedCrash):
            for k in range(4, N_OPS + 1):
                op(db, k)
        # seqs 4 and 5 committed on the re-opened store; 6 tore
        assert_exact_prefix(tmp_path, 5)


class TestFsyncFailurePoisoning:
    def test_fsync_failure_poisons_until_reopen(self, tmp_path):
        inj = StorageFaultInjector(fail_fsync_at=[4])
        db = Database.open(str(tmp_path), faults=inj)
        db.execute("create table t (a integer)")  # fsync 2 (magic was 1)
        db.ingest_rows("t", [(1,)])  # fsync 3
        with pytest.raises(WalError, match="fsync"):
            db.ingest_rows("t", [(2,)])  # fsync 4: injected failure
        # poisoned: *every* further mutation refuses, loudly
        with pytest.raises(WalError, match="poisoned"):
            db.ingest_rows("t", [(3,)])
        with pytest.raises(WalError, match="poisoned"):
            db.checkpoint()
        db.close()
        # re-opening truncates any torn tail and resumes service
        with Database.open(str(tmp_path)) as db2:
            assert db2.store.poisoned is None
            db2.ingest_rows("t", [(4,)])
            assert db2.table("t").num_rows >= 2
        assert verify_store(str(tmp_path)).ok


class TestRealProcessKill:
    """SIGKILL — not simulated — between acknowledged statements."""

    CHILD = r"""
import os, signal, sys
sys.path.insert(0, {src!r})
from repro import Database

db = Database.open({path!r})
db.execute("create table t (a integer)")
for i in range(100):
    db.ingest_rows("t", [(i,)])
    print(db.store.seq, flush=True)  # acknowledged to the parent
    if i == 17:
        os.kill(os.getpid(), signal.SIGKILL)
"""

    def test_sigkill_recovers_every_acknowledged_commit(self, tmp_path):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        code = self.CHILD.format(src=os.path.abspath(src), path=str(tmp_path))
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == -signal.SIGKILL
        acked = [int(line) for line in proc.stdout.split()]
        assert acked, "child died before acknowledging anything"
        with Database.open(str(tmp_path)) as db:
            assert db.recovery.last_seq >= max(acked)
            assert db.table("t").num_rows >= len(acked)
        assert verify_store(str(tmp_path)).ok
