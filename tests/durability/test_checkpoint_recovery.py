"""Checkpoints: atomic install, fallback, crash windows, WAL truncation."""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.durability import (
    DurableStore,
    SimulatedCrash,
    StorageFaultInjector,
    list_checkpoints,
    load_latest_checkpoint,
    read_checkpoint,
    verify_store,
)
from repro.durability.faults import (
    CKPT_AFTER_RENAME,
    CKPT_BEFORE_RENAME,
    CKPT_DURING_WRITE,
)
from repro.durability.state import state_fingerprint
from repro.obs import MetricsRegistry, Tracer

SCHEMA = """
create table people (id integer, name varchar(20))
create vertex Person(id) from table people
"""


def build(path, **kwargs):
    db = Database.open(str(path), **kwargs)
    db.execute(SCHEMA)
    db.ingest_rows("people", [(1, "alice"), (2, "bob")])
    return db


def fp(db):
    return state_fingerprint(db.db, db.store.users)


class TestCheckpointFiles:
    def test_checkpoint_restores_identically(self, tmp_path):
        db = build(tmp_path)
        want = fp(db)
        snap = db.checkpoint()
        assert os.path.exists(snap)
        db.close()
        with Database.open(str(tmp_path)) as db2:
            assert db2.recovery.snapshot_path == snap
            assert db2.recovery.records_replayed == 0
            assert fp(db2) == want

    def test_wal_truncated_after_checkpoint(self, tmp_path):
        db = build(tmp_path)
        before = os.path.getsize(tmp_path / "wal.log")
        db.checkpoint()
        after = os.path.getsize(tmp_path / "wal.log")
        assert after < before  # back to just the magic
        db.close()

    def test_keeps_last_two_checkpoints(self, tmp_path):
        db = build(tmp_path)
        for i in range(3):
            db.ingest_rows("people", [(10 + i, f"u{i}")])
            db.checkpoint()
        db.close()
        assert len(list_checkpoints(str(tmp_path))) == 2

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        db = build(tmp_path)
        db.checkpoint()
        older = fp(db)
        db.ingest_rows("people", [(3, "carol")])
        db.checkpoint()
        db.close()
        snaps = list_checkpoints(str(tmp_path))
        assert len(snaps) == 2
        newest = snaps[0][1]
        with open(newest, "r+b") as fh:  # bit-rot the newest snapshot
            fh.seek(30)
            b = fh.read(1)
            fh.seek(30)
            fh.write(bytes([b[0] ^ 0x40]))
        assert read_checkpoint(newest) is None
        payload, path, skipped = load_latest_checkpoint(str(tmp_path))
        assert path == snaps[1][1] and skipped == [newest]
        # recovery lands on the older committed prefix, and says so
        with Database.open(str(tmp_path)) as db2:
            assert fp(db2) == older
            assert db2.recovery.snapshots_skipped == [newest]
            assert not db2.recovery.clean

    def test_no_valid_checkpoint_replays_whole_wal(self, tmp_path):
        db = build(tmp_path)
        want = fp(db)
        db.close()
        with Database.open(str(tmp_path)) as db2:
            assert db2.recovery.snapshot_path is None
            assert db2.recovery.records_replayed == 3
            assert fp(db2) == want


class TestCheckpointCrashWindows:
    """A crash at any point of the checkpoint lifecycle loses nothing:
    the WAL still holds every committed record."""

    @pytest.mark.parametrize(
        "point", [CKPT_DURING_WRITE, CKPT_BEFORE_RENAME, CKPT_AFTER_RENAME]
    )
    def test_crash_point_preserves_committed_state(self, tmp_path, point):
        inj = StorageFaultInjector(checkpoint_crash=point)
        db = build(tmp_path, faults=inj)
        want = fp(db)
        with pytest.raises(SimulatedCrash) as exc:
            db.checkpoint()
        assert exc.value.point == f"checkpoint:{point}"
        # abandon the crashed process; a supervisor re-opens the path
        with Database.open(str(tmp_path)) as db2:
            assert fp(db2) == want
        report = verify_store(str(tmp_path))
        assert report.ok, report.problems

    def test_after_rename_crash_skips_covered_wal_records(self, tmp_path):
        """The snapshot installed but the WAL was not truncated: recovery
        must not replay records the snapshot already covers."""
        inj = StorageFaultInjector(checkpoint_crash=CKPT_AFTER_RENAME)
        db = build(tmp_path, faults=inj)
        want = fp(db)
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        assert os.path.getsize(tmp_path / "wal.log") > len(b"GRQLWAL1")
        with Database.open(str(tmp_path)) as db2:
            assert db2.recovery.snapshot_seq == 3
            assert db2.recovery.records_replayed == 0  # all covered
            assert fp(db2) == want


class TestAutoCheckpoint:
    def test_checkpoint_every_triggers_and_bounds_replay(self, tmp_path):
        db = build(tmp_path, checkpoint_every=4)
        for i in range(10):
            db.ingest_rows("people", [(100 + i, f"u{i}")])
        want = fp(db)
        db.close()
        assert list_checkpoints(str(tmp_path))  # fired without being asked
        with Database.open(str(tmp_path)) as db2:
            assert db2.recovery.snapshot_seq > 0
            assert db2.recovery.records_replayed < 10
            assert fp(db2) == want


class TestObservability:
    def test_recovery_metrics_and_span(self, tmp_path):
        db = build(tmp_path)
        db.close()
        metrics, tracer = MetricsRegistry(), Tracer()
        store = DurableStore.open(str(tmp_path), metrics=metrics, tracer=tracer)
        store.checkpoint()
        store.close()
        text = metrics.render_prometheus()
        assert "graql_recoveries_total 1" in text
        assert "graql_recovery_ms" in text
        assert "graql_checkpoints_total 1" in text
        assert "graql_wal_fsyncs_total" in text
        names = [s.name for s in tracer.roots]
        assert "recovery" in names and "checkpoint" in names

    def test_wal_metrics_count_appends(self, tmp_path):
        db = build(tmp_path)
        text = db.render_metrics()
        assert "graql_wal_records_total 3" in text
        assert "graql_wal_bytes_total" in text
        db.close()
