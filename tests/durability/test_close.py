"""Database.close() / context manager: clean shutdown semantics."""

from __future__ import annotations

import pytest

from repro import ClosedError, Database
from repro.durability import read_wal


class TestClose:
    def test_execute_after_close_raises(self, tmp_path):
        db = Database.open(str(tmp_path))
        db.execute("create table t (a integer)")
        db.close()
        with pytest.raises(ClosedError, match="closed"):
            db.execute("create table u (a integer)")

    def test_ingest_after_close_raises(self, tmp_path):
        db = Database.open(str(tmp_path))
        db.execute("create table t (a integer)")
        db.close()
        with pytest.raises(ClosedError):
            db.ingest_rows("t", [(1,)])

    def test_prepare_after_close_raises(self, tmp_path):
        db = Database.open(str(tmp_path))
        db.execute("create table t (a integer)")
        db.ingest_rows("t", [(1,)])
        db.close()
        with pytest.raises(ClosedError):
            db.query("select a from t into table r")

    def test_double_close_is_idempotent(self, tmp_path):
        db = Database.open(str(tmp_path))
        db.close()
        db.close()
        assert db.closed

    def test_close_applies_to_in_memory_databases_too(self):
        db = Database()
        db.execute("create table t (a integer)")
        db.close()
        with pytest.raises(ClosedError):
            db.execute("create table u (a integer)")

    def test_context_manager_closes(self, tmp_path):
        with Database.open(str(tmp_path)) as db:
            db.execute("create table t (a integer)")
        assert db.closed
        with pytest.raises(ClosedError):
            db.ingest_rows("t", [(1,)])

    def test_context_manager_closes_on_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with Database.open(str(tmp_path)) as db:
                raise RuntimeError("boom")
        assert db.closed

    def test_close_flushes_batched_wal(self, tmp_path):
        # fewer appends than the batch size: only close() makes them durable
        db = Database.open(str(tmp_path), fsync="batch", batch_records=64)
        db.execute("create table t (a integer)")
        db.ingest_rows("t", [(1,), (2,)])
        db.close()
        scan = read_wal(str(tmp_path / "wal.log"))
        assert scan.clean and len(scan.records) == 2
        with Database.open(str(tmp_path)) as db2:
            assert db2.table("t").num_rows == 2
