"""Property test: for ANY mutation script and ANY crash point, recovery
lands on exactly the committed prefix — never more, never less.

Hypothesis drives a random script of single-record operations against a
durable database with a fault injected at a random WAL seq, then checks
the recovered state fingerprint against an in-memory oracle that applied
exactly the committed prefix of the script."""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.durability import SimulatedCrash, StorageFaultInjector, verify_store
from repro.durability.state import state_fingerprint

# every op commits exactly one WAL record, so op k == WAL seq k + 1
# (seq 1 is the fixed `create table t`)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ingest"), st.integers(-1000, 1000)),
        st.tuples(st.just("result")),
        st.tuples(st.just("table")),
    ),
    min_size=1,
    max_size=7,
)

FAULTS = st.sampled_from(["torn_write", "partial_record", "crash_after_append"])


def apply_op(db, k, op):
    if op[0] == "ingest":
        db.ingest_rows("t", [(op[1],)])
    elif op[0] == "result":
        db.query(f"select a from table t into table r{k}")
    else:
        db.execute(f"create table extra{k} (b integer)")


def apply_script(db, ops, upto):
    if upto >= 1:
        db.execute("create table t (a integer)")
    for k, op in enumerate(ops[: max(0, upto - 1)]):
        apply_op(db, k, op)


def oracle_fp(ops, upto):
    db = Database()
    apply_script(db, ops, upto)
    fp = state_fingerprint(db.db, [])
    db.close()
    return fp


@settings(max_examples=30, deadline=None)
@given(ops=OPS, kind=FAULTS, data=st.data())
def test_any_crash_point_recovers_committed_prefix(ops, kind, data):
    total = 1 + len(ops)
    seq = data.draw(st.integers(1, total), label="fault_seq")
    expect = seq if kind == "crash_after_append" else seq - 1
    with tempfile.TemporaryDirectory() as tmp:
        inj = StorageFaultInjector(seed=seq, **{f"{kind}_at": [seq]})
        db = Database.open(tmp, faults=inj)
        try:
            apply_script(db, ops, total)
        except SimulatedCrash:
            pass
        else:
            db.close()
        with Database.open(tmp) as db2:
            assert db2.recovery.last_seq == expect
            got = state_fingerprint(db2.db, db2.store.users)
        assert got == oracle_fp(ops, expect)
        report = verify_store(tmp)
        assert report.ok, report.problems


@settings(max_examples=10, deadline=None)
@given(ops=OPS)
def test_clean_shutdown_recovers_everything(ops):
    total = 1 + len(ops)
    with tempfile.TemporaryDirectory() as tmp:
        with Database.open(tmp) as db:
            apply_script(db, ops, total)
        with Database.open(tmp) as db2:
            assert db2.recovery.clean
            assert db2.recovery.last_seq == total
            got = state_fingerprint(db2.db, db2.store.users)
        assert got == oracle_fp(ops, total)
