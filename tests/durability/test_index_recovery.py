"""Secondary attribute indexes across the durability boundary.

``create index`` / ``drop index`` are WAL-logged DDL; checkpoints record
the index definitions and recovery rebuilds the index structures from
the restored attribute arrays (the sorted vid arrays are derived state —
never serialized).  Whatever the crash window, a reopened database must
seek exactly like the one that died.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.durability import SimulatedCrash, StorageFaultInjector, verify_store
from repro.durability.faults import CKPT_AFTER_RENAME, CKPT_BEFORE_RENAME
from repro.obs import Hints, QueryOptions

SCHEMA = """
create table people (id integer, city varchar(16), age integer)
create vertex Person(id) from table people
create table friends (src integer, dst integer)
create edge knows with vertices (Person as A, Person as B)
from table friends where friends.src = A.id and friends.dst = B.id
"""

ROWS = [
    (1, "rome", 30),
    (2, "oslo", 40),
    (3, "rome", 50),
    (4, "lima", 25),
    (5, "rome", 61),
]
EDGES = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]

SEEK_Q = (
    "select * from graph Person (city = 'rome') --knows--> "
    "Person ( ) into subgraph {}"
)


def build(path, **kwargs):
    db = Database.open(str(path), **kwargs)
    db.execute(SCHEMA)
    db.ingest_rows("people", ROWS)
    db.ingest_rows("friends", EDGES)
    db.execute("create index by_city on Person(city)")
    return db


def forced_seek(db, tag):
    r = db.execute(
        SEEK_Q.format(tag),
        options=QueryOptions(hints=Hints(use_index=("by_city",))),
    )[0]
    assert r.profile.attr_seeks == 1
    sg = r.subgraph
    return {t: sorted(map(int, sg.vertices[t])) for t in sg.vertices}


class TestIndexRecovery:
    def test_wal_replay_restores_index(self, tmp_path):
        db = build(tmp_path)
        want = forced_seek(db, "W0")
        db.close()
        with Database.open(str(tmp_path)) as db2:
            assert db2.recovery.records_replayed > 0
            assert "by_city" in db2.catalog.indexes
            assert db2.catalog.indexes["by_city"].num_entries == len(ROWS)
            assert forced_seek(db2, "W1") == want

    def test_checkpoint_restores_index(self, tmp_path):
        db = build(tmp_path)
        want = forced_seek(db, "C0")
        db.checkpoint()
        db.close()
        with Database.open(str(tmp_path)) as db2:
            assert db2.recovery.records_replayed == 0
            assert "by_city" in db2.catalog.indexes
            assert forced_seek(db2, "C1") == want

    def test_drop_survives_recovery(self, tmp_path):
        db = build(tmp_path)
        db.execute("drop index by_city")
        db.close()
        with Database.open(str(tmp_path)) as db2:
            assert "by_city" not in db2.catalog.indexes
            # and the seek hint now correctly errors
            from repro import PlanError

            with pytest.raises(PlanError, match="unknown index"):
                db2.execute(
                    SEEK_Q.format("D1"),
                    options=QueryOptions(hints=Hints(use_index=("by_city",))),
                )

    def test_post_recovery_ingest_maintains_index(self, tmp_path):
        db = build(tmp_path)
        db.close()
        with Database.open(str(tmp_path)) as db2:
            db2.ingest_rows("people", [(6, "rome", 70)])
            assert db2.catalog.indexes["by_city"].num_entries == len(ROWS) + 1
            vids = forced_seek(db2, "P1")
            assert len(vids["Person"]) >= 4  # the new rome row is seekable

    @pytest.mark.parametrize(
        "point", [CKPT_BEFORE_RENAME, CKPT_AFTER_RENAME]
    )
    def test_crash_during_checkpoint_preserves_index(self, tmp_path, point):
        inj = StorageFaultInjector(checkpoint_crash=point)
        db = build(tmp_path, faults=inj)
        want = forced_seek(db, "X0")
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        # abandon the crashed process; a supervisor re-opens the path
        with Database.open(str(tmp_path)) as db2:
            assert "by_city" in db2.catalog.indexes
            assert forced_seek(db2, "X1") == want
        report = verify_store(str(tmp_path))
        assert report.ok, report.problems
