"""WAL record format, scanner stop conditions, fsync policies."""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.durability import encode_record, read_wal
from repro.durability.faults import SimulatedCrash, StorageFaultInjector
from repro.durability.wal import (
    END_BAD_LENGTH,
    END_BAD_MAGIC,
    END_BAD_PAYLOAD,
    END_CLEAN,
    END_CRC_MISMATCH,
    END_SEQ_GAP,
    END_TORN_HEADER,
    END_TORN_PAYLOAD,
    HEADER_LEN,
    MAGIC,
    WalWriter,
)
from repro.errors import WalError


def payload(seq, **data):
    return {"seq": seq, "epoch": 0, "kind": "ddl", "data": data}


def write_records(path, n, **writer_kwargs):
    w = WalWriter(str(path), **writer_kwargs)
    for i in range(1, n + 1):
        w.append(payload(i, source=f"stmt {i}"))
    w.close()
    return w


class TestCodec:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 3)
        scan = read_wal(str(path))
        assert scan.clean
        assert [r["seq"] for r in scan.records] == [1, 2, 3]
        assert scan.records[0]["data"] == {"source": "stmt 1"}
        assert scan.valid_bytes == os.path.getsize(path)

    def test_record_layout(self):
        rec = encode_record({"seq": 1})
        length, crc = struct.unpack_from("<II", rec)
        body = rec[HEADER_LEN:]
        assert length == len(body)
        assert crc == zlib.crc32(body)

    def test_missing_file_is_empty_clean_scan(self, tmp_path):
        scan = read_wal(str(tmp_path / "nope.log"))
        assert scan.clean and scan.records == []


class TestScannerStops:
    """Every corruption class ends the scan at the previous record."""

    def _truncate(self, path, drop):
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - drop)

    def test_torn_header(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 3)
        last = len(encode_record(payload(3, source="stmt 3")))
        self._truncate(path, last - 2)  # 2 header bytes of record 3 remain
        scan = read_wal(str(path))
        assert scan.reason == END_TORN_HEADER
        assert [r["seq"] for r in scan.records] == [1, 2]

    def test_torn_payload(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 3)
        self._truncate(path, 5)  # payload of record 3 is short
        scan = read_wal(str(path))
        assert scan.reason == END_TORN_PAYLOAD
        assert [r["seq"] for r in scan.records] == [1, 2]

    def test_crc_mismatch(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 2)
        with open(path, "r+b") as fh:  # flip a bit in the last payload
            fh.seek(os.path.getsize(path) - 1)
            b = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([b[0] ^ 0x01]))
        scan = read_wal(str(path))
        assert scan.reason == END_CRC_MISMATCH
        assert [r["seq"] for r in scan.records] == [1]

    def test_bad_payload_valid_crc(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 1)
        body = b"this is not json"
        with open(path, "ab") as fh:
            fh.write(struct.pack("<II", len(body), zlib.crc32(body)) + body)
        scan = read_wal(str(path))
        assert scan.reason == END_BAD_PAYLOAD
        assert [r["seq"] for r in scan.records] == [1]

    def test_sequence_gap(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(str(path))
        w.append(payload(1))
        w.append(payload(3))  # 2 went missing
        w.close()
        scan = read_wal(str(path))
        assert scan.reason == END_SEQ_GAP
        assert [r["seq"] for r in scan.records] == [1]

    def test_bad_length(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 1)
        with open(path, "ab") as fh:
            fh.write(struct.pack("<II", 1 << 31, 0))
        scan = read_wal(str(path))
        assert scan.reason == END_BAD_LENGTH
        assert [r["seq"] for r in scan.records] == [1]

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + encode_record(payload(1)))
        scan = read_wal(str(path))
        assert scan.reason == END_BAD_MAGIC
        assert scan.records == [] and scan.valid_bytes == 0

    def test_start_seq_skips_pre_checkpoint_records(self, tmp_path):
        path = tmp_path / "wal.log"
        write_records(path, 5)
        scan = read_wal(str(path), start_seq=3)
        assert scan.clean
        assert [r["seq"] for r in scan.records] == [4, 5]

    def test_start_seq_requires_continuity(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(str(path))
        w.append(payload(7))
        w.close()
        scan = read_wal(str(path), start_seq=3)  # expects 4 next
        assert scan.reason == END_SEQ_GAP and scan.records == []


class TestFsyncPolicies:
    def test_always_syncs_per_append(self, tmp_path):
        w = write_records(tmp_path / "w.log", 5, fsync="always")
        assert w.fsyncs >= 5

    def test_batch_syncs_every_n(self, tmp_path):
        w = write_records(tmp_path / "w.log", 10, fsync="batch", batch_records=4)
        # 1 initial magic sync + 2 batch boundaries + 1 close flush
        assert 3 <= w.fsyncs <= 4

    def test_off_never_syncs(self, tmp_path):
        w = write_records(tmp_path / "w.log", 10, fsync="off")
        assert w.fsyncs == 0
        # the records still reached the file (page-cache durability)
        scan = read_wal(str(tmp_path / "w.log"))
        assert scan.clean and len(scan.records) == 10

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            WalWriter(str(tmp_path / "w.log"), fsync="sometimes")


class TestFaultedWriter:
    def test_torn_write_crashes_and_leaves_prefix(self, tmp_path):
        path = tmp_path / "wal.log"
        inj = StorageFaultInjector(seed=3, torn_write_at=[2])
        w = WalWriter(str(path), faults=inj)
        w.append(payload(1))
        with pytest.raises(SimulatedCrash):
            w.append(payload(2))
        assert w.closed
        # whatever prefix landed, the scan never yields the torn record
        scan = read_wal(str(path))
        assert [r["seq"] for r in scan.records] == [1]

    def test_bitflip_is_silent_until_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        inj = StorageFaultInjector(seed=5, bitflip_at=[2])
        w = WalWriter(str(path), faults=inj)
        w.append(payload(1))
        w.append(payload(2))  # no crash: corruption is silent
        w.close()
        scan = read_wal(str(path))
        assert scan.reason in (END_CRC_MISMATCH, END_BAD_PAYLOAD)
        assert [r["seq"] for r in scan.records] == [1]

    def test_fault_determinism(self, tmp_path):
        blobs = []
        for name in ("a.log", "b.log"):
            path = tmp_path / name
            inj = StorageFaultInjector(seed=11, torn_write_at=[1])
            w = WalWriter(str(path), faults=inj)
            with pytest.raises(SimulatedCrash):
                w.append(payload(1, source="same bytes"))
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_fsync_failure_raises_wal_error(self, tmp_path):
        inj = StorageFaultInjector(fail_fsync_at=[2])
        w = WalWriter(str(tmp_path / "w.log"), faults=inj, fsync="always")
        with pytest.raises(WalError, match="fsync"):
            w.append(payload(1))  # magic sync was call 1, this is call 2


def test_clean_end_constant_matches_report_default():
    assert END_CLEAN == "clean-end"
