"""Unit tests for the RDF-style triple-store baseline."""

import pytest

from repro.baselines import TriplePattern, TripleStore, Var


def small_store() -> TripleStore:
    ts = TripleStore()
    ts.add("p1", "rdf:type", "Person")
    ts.add("p2", "rdf:type", "Person")
    ts.add("p1", "Person.country", "US")
    ts.add("p2", "Person.country", "DE")
    ts.add("p1", "follows", "p2")
    ts.add("p2", "follows", "p1")
    return ts


class TestStore:
    def test_counts(self):
        assert small_store().num_triples == 6

    def test_indexes_consistent(self):
        ts = small_store()
        assert "p2" in ts.spo["p1"]["follows"]
        assert "p1" in ts.pos["follows"]["p2"]
        assert "follows" in ts.osp["p2"]["p1"]


class TestBGP:
    def test_ground_pattern(self):
        ts = small_store()
        assert ts.query([TriplePattern("p1", "follows", "p2")]) == [()]
        assert ts.query([TriplePattern("p1", "follows", "p9")]) == []

    def test_object_variable(self):
        ts = small_store()
        rows = ts.query([TriplePattern("p1", "follows", Var("x"))], ["x"])
        assert rows == [("p2",)]

    def test_subject_variable(self):
        ts = small_store()
        rows = ts.query([TriplePattern(Var("s"), "Person.country", "US")], ["s"])
        assert rows == [("p1",)]

    def test_join_on_shared_variable(self):
        ts = small_store()
        rows = ts.query(
            [
                TriplePattern(Var("a"), "follows", Var("b")),
                TriplePattern(Var("b"), "Person.country", "DE"),
            ],
            ["a", "b"],
        )
        assert rows == [("p1", "p2")]

    def test_filters(self):
        ts = small_store()
        rows = ts.query(
            [TriplePattern(Var("a"), "Person.country", Var("c"))],
            ["a"],
            filters=[lambda b: b["c"] != "US"],
        )
        assert rows == [("p2",)]

    def test_intermediate_binding_accounting(self):
        ts = small_store()
        ts.query(
            [
                TriplePattern(Var("a"), "rdf:type", "Person"),
                TriplePattern(Var("a"), "follows", Var("b")),
            ]
        )
        assert ts.last_intermediate_bindings >= 4

    def test_predicate_variable(self):
        ts = small_store()
        rows = ts.query([TriplePattern("p1", Var("p"), "p2")], ["p"])
        assert rows == [("follows",)]


class TestFromGraphDB:
    def test_triple_counts(self, social_db):
        ts = TripleStore.from_graphdb(social_db.db)
        # every 1:1 vertex contributes rdf:type + non-null attributes;
        # every from-table edge is reified into >= 2 triples
        assert ts.num_triples > social_db.db.total_vertices()

    def test_same_answers_as_graql(self, social_db):
        """The paper's motivation check: both systems agree on Q results."""
        ts = TripleStore.from_graphdb(social_db.db)
        # GraQL: who do US people follow?
        t = social_db.query(
            "select y.id from graph Person (country = 'US') --follows--> "
            "def y: Person ( ) into table R"
        )
        graql_ids = sorted(r[0] for r in t.to_rows())
        # Triple store: same query as a BGP (follows edges are reified)
        rows = ts.query(
            [
                TriplePattern(Var("a"), "Person.country", "US"),
                TriplePattern(Var("a"), "follows", Var("e")),
                TriplePattern(Var("e"), "follows.target", Var("b")),
                TriplePattern(Var("b"), "Person.id", Var("bid")),
            ],
            ["bid"],
        )
        triple_ids = sorted(r[0] for r in rows)
        assert triple_ids == graql_ids

    def test_many_to_one_vertices_keyed(self):
        # a genuinely many-to-one view exposes only its key attribute
        from repro import Database

        db = Database()
        db.execute(
            "create table P(id varchar(4), country varchar(4))\n"
            "create vertex Country(country) from table P"
        )
        db.ingest_rows("P", [("a", "US"), ("b", "US"), ("c", "DE")])
        ts = TripleStore.from_graphdb(db.db)
        ents = [s for s in ts.spo if isinstance(s, str) and s.startswith("Country/")]
        assert len(ents) == 2
        for e in ents:
            assert set(ts.spo[e]) == {"rdf:type", "Country.country"}
