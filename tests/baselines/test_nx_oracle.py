"""Sanity tests for the networkx oracle itself."""

from repro.baselines import NxOracle
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement


def atom_of(db, text):
    return check_statement(parse_statement(text), db.catalog).pattern.atoms()[0]


class TestMirror:
    def test_node_and_edge_counts(self, social_db):
        oracle = NxOracle(social_db.db)
        assert oracle.graph.number_of_nodes() == social_db.db.total_vertices()
        assert oracle.graph.number_of_edges() == social_db.db.total_edges()

    def test_parallel_edges_kept(self, social_db):
        oracle = NxOracle(social_db.db)
        p = social_db.db.vertex_type("Person")
        a = ("Person", p.vid_of(("p1",)))
        b = ("Person", p.vid_of(("p2",)))
        assert oracle.graph.number_of_edges(a, b) == 2


class TestEnumeration:
    def test_simple_count(self, social_db):
        atom = atom_of(
            social_db,
            "select * from graph Person (country = 'US') --follows--> "
            "Person ( ) into subgraph G",
        )
        oracle = NxOracle(social_db.db)
        assert oracle.count_paths(atom) == 5

    def test_conditions_respected(self, social_db):
        atom = atom_of(
            social_db,
            "select * from graph Person ( ) --follows(weight > 6)--> "
            "Person ( ) into subgraph G",
        )
        oracle = NxOracle(social_db.db)
        paths = oracle.enumerate_paths(atom)
        et = social_db.db.edge_type("follows")
        for p in paths:
            ename, eid = p[1]
            w, _ = et.attribute_array("weight")
            assert w[eid] > 6

    def test_foreach_only_cycles(self, social_db):
        atom = atom_of(
            social_db,
            "select * from graph foreach x: Person ( ) --follows--> "
            "Person ( ) --follows--> Person ( ) --follows--> x "
            "into subgraph G",
        )
        oracle = NxOracle(social_db.db)
        oracle.prepare_labels(atom)
        for p in oracle.enumerate_paths(atom):
            assert p[0] == p[6]

    def test_step_sets_shape(self, social_db):
        atom = atom_of(
            social_db,
            "select * from graph Person ( ) --follows--> Person ( ) "
            "into subgraph G",
        )
        oracle = NxOracle(social_db.db)
        vsets, esets = oracle.step_sets(atom)
        assert set(vsets) == {0, 2}
        assert set(esets) == {1}
