"""Property-based equivalence: executors vs brute-force oracle.

On random multigraph databases and a family of randomized path queries,
the set-frontier executor's per-step sets must equal the union over the
oracle's enumerated paths (Eq. 5), and the binding executor's row count
must equal the oracle's path count.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines import NxOracle
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.bindings import BindingExecutor
from repro.query.frontier import FrontierExecutor

from tests.conftest import random_graph_db

# a family of query templates over the random schema (V0/V1, e0/e1/cross0)
TEMPLATES = [
    "select * from graph V0 ( ) --e0--> V0 ( ) into subgraph G",
    "select * from graph V0 (color = 'red') --e0--> V0 ( ) into subgraph G",
    "select * from graph V0 ( ) --e0(cap > {k})--> V0 (weight < {k2}) "
    "into subgraph G",
    "select * from graph V0 ( ) --e0--> V0 ( ) --e0--> V0 (color = 'blue') "
    "into subgraph G",
    "select * from graph V0 ( ) <--e0-- V0 (weight > {k}) into subgraph G",
    "select * from graph V1 ( ) <--cross0-- V0 (color = 'green') "
    "into subgraph G",
    "select * from graph V0 ( ) --e0--> V0 ( ) --cross0--> V1 ( ) "
    "into subgraph G",
    "select * from graph V0 (weight > {k}) --[]--> [ ] into subgraph G",
    "select * from graph def x: V0 ( ) --e0--> V0 ( ) --e0--> x "
    "into subgraph G",
]


def checked_atom(db, text):
    return check_statement(parse_statement(text), db.catalog).pattern.atoms()[0]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    tidx=st.integers(min_value=0, max_value=len(TEMPLATES) - 1),
    k=st.integers(min_value=0, max_value=9),
    k2=st.integers(min_value=0, max_value=9),
    direction=st.sampled_from(["forward", "backward"]),
)
@settings(max_examples=60, deadline=None)
def test_set_frontier_equals_oracle(seed, tidx, k, k2, direction):
    db = random_graph_db(seed, num_vertices=24, num_edges=70)
    text = TEMPLATES[tidx].format(k=k, k2=k2)
    atom = checked_atom(db, text)
    if direction == "backward" and any(
        getattr(s, "label_ref", None) for s in atom.steps
    ):
        direction = "forward"
    res = FrontierExecutor(db.db).run_atom(atom, direction)
    vsets, esets = NxOracle(db.db).step_sets(atom)
    for i in range(len(atom.steps)):
        if i % 2 == 0:
            got = {
                (t, int(v))
                for t, vs in res.vertex_sets.get(i, {}).items()
                for v in vs
            }
            want = {
                (t, v) for t, vs in vsets.get(i, {}).items() for v in vs
            }
        else:
            got = {
                (t, int(e))
                for t, es in res.edge_sets.get(i, {}).items()
                for e in es
            }
            want = {
                (t, e) for t, es in esets.get(i, {}).items() for e in es
            }
        assert got == want, f"step {i} of {text!r} (seed {seed})"


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    tidx=st.integers(min_value=0, max_value=len(TEMPLATES) - 1),
    k=st.integers(min_value=0, max_value=9),
    k2=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=40, deadline=None)
def test_binding_rows_equal_oracle_paths(seed, tidx, k, k2):
    db = random_graph_db(seed, num_vertices=20, num_edges=50)
    text = TEMPLATES[tidx].format(k=k, k2=k2)
    atom = checked_atom(db, text)
    bex = BindingExecutor(db.db, db.catalog)
    res = bex.run_atom(atom)
    oracle = NxOracle(db.db)
    assert res.nrows == oracle.count_paths(atom), f"{text!r} (seed {seed})"


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    hops=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_regex_plus_equals_bfs_reachability(seed, hops):
    """(--e0--> [])+ from a start set == networkx reachability."""
    import networkx as nx

    db = random_graph_db(seed, num_vertices=20, num_edges=45)
    atom = checked_atom(
        db,
        "select * from graph V0 (weight > 4) ( --e0--> [ ] )+ V0 ( ) "
        "into subgraph G",
    )
    res = FrontierExecutor(db.db).run_atom(atom)
    vt = db.db.vertex_type("V0")
    starts = vt.select(
        __import__("repro.graql.parser", fromlist=["parse_expression"])
        .parse_expression("weight > 4")
    )
    et = db.db.edge_type("e0")
    g = nx.DiGraph()
    g.add_nodes_from(range(vt.num_vertices))
    g.add_edges_from(zip(et.src_vids.tolist(), et.tgt_vids.tolist()))
    reachable = set()
    for s in starts.tolist():
        desc = nx.descendants(g, s)
        reachable |= desc
        # s itself is reachable in >= 1 hops when it lies on a cycle
        if any(g.has_edge(u, s) for u in desc | {s}):
            reachable.add(s)
    got = set(res.vertex_sets[2].get("V0", np.empty(0)).astype(int).tolist())
    assert got == reachable


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=30, deadline=None)
def test_foreach_subset_of_set_label(seed):
    """Eq. 8: element-wise matches are a subset of set-label matches."""
    db = random_graph_db(seed, num_vertices=16, num_edges=40)
    q_each = ("select * from graph foreach x: V0 ( ) --e0--> V0 ( ) "
              "--e0--> x into subgraph G")
    q_set = ("select * from graph def x: V0 ( ) --e0--> V0 ( ) "
             "--e0--> x into subgraph G")
    bex = BindingExecutor(db.db, db.catalog)
    each = bex.run_atom(checked_atom(db, q_each))
    sets = FrontierExecutor(db.db).run_atom(checked_atom(db, q_set))
    each_last = set(each.vertex_column(4).astype(int).tolist())
    set_last = set(
        sets.vertex_sets[4].get("V0", np.empty(0)).astype(int).tolist()
    )
    assert each_last <= set_last
