"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

import hypothesis.strategies as st

from repro.dtypes import DATE, FLOAT, INTEGER, VarChar
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateTable,
    CreateVertex,
    DIR_IN,
    DIR_OUT,
    EdgeStep,
    GraphSelect,
    Ingest,
    IntoClause,
    Label,
    OrderKey,
    PathAtom,
    RegexGroup,
    StarItem,
    StepItem,
    TableSelect,
    VertexEndpoint,
    VertexStep,
)
from repro.storage.expr import BinOp, ColRef, Const, IsNull, Not, Param
from repro.storage.schema import ColumnDef, Schema

# ----------------------------------------------------------------------
# Identifiers and literals
# ----------------------------------------------------------------------

idents = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,9}", fullmatch=True).filter(
    lambda s: s.lower()
    not in {
        "create", "table", "vertex", "edge", "with", "vertices", "from",
        "where", "and", "or", "not", "is", "null", "ingest", "select",
        "index", "on", "drop",
        "into", "subgraph", "graph", "def", "foreach", "top", "distinct",
        "group", "by", "order", "asc", "desc", "as", "count", "sum",
        "avg", "min", "max", "true", "false", "int", "integer", "float",
        "double", "date", "boolean", "bool", "varchar",
    }
)

string_literals = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=126, blacklist_characters="\\'\"%"
    ),
    max_size=12,
)

literals = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    string_literals,
    st.booleans(),
)

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

col_refs_st = st.builds(
    ColRef, st.one_of(st.none(), idents), idents
)

_atoms = st.one_of(
    st.builds(Const, literals),
    col_refs_st,
    st.builds(Param, idents),
)


def _compound(children):
    comparisons = st.builds(
        BinOp,
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        children,
        children,
    )
    arithmetic = st.builds(
        BinOp, st.sampled_from(["+", "-", "*", "/"]), children, children
    )
    logical = st.builds(
        BinOp, st.sampled_from(["and", "or"]), children, children
    )
    return st.one_of(
        comparisons,
        arithmetic,
        logical,
        st.builds(Not, children),
        st.builds(IsNull, children, st.booleans()),
    )


expressions = st.recursive(_atoms, _compound, max_leaves=12)

# Boolean-shaped expressions for where clauses / step conditions
conditions = st.builds(
    BinOp,
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.one_of(col_refs_st, st.builds(Const, literals)),
    st.one_of(col_refs_st, st.builds(Const, literals)),
)

# ----------------------------------------------------------------------
# Schemas / DDL
# ----------------------------------------------------------------------

dtypes_st = st.one_of(
    st.just(INTEGER),
    st.just(FLOAT),
    st.just(DATE),
    st.integers(min_value=1, max_value=255).map(VarChar),
)


@st.composite
def schemas(draw):
    names = draw(
        st.lists(idents, min_size=1, max_size=6, unique_by=str)
    )
    return Schema([ColumnDef(n, draw(dtypes_st)) for n in names])


create_tables = st.builds(CreateTable, idents, schemas())


@st.composite
def create_vertices(draw):
    keys = draw(st.lists(idents, min_size=1, max_size=3, unique_by=str))
    where = draw(st.one_of(st.none(), conditions))
    return CreateVertex(draw(idents), keys, draw(idents), where)


@st.composite
def create_edges(draw):
    s = VertexEndpoint(draw(idents), draw(st.one_of(st.none(), idents)))
    t = VertexEndpoint(draw(idents), draw(st.one_of(st.none(), idents)))
    tables = draw(st.lists(idents, max_size=2, unique_by=str))
    where = draw(st.one_of(st.none(), conditions))
    return CreateEdge(draw(idents), s, t, tables, where)


ingests = st.builds(
    Ingest,
    idents,
    st.from_regex(r"[a-z][a-z0-9_]{0,8}(/[a-z][a-z0-9_]{0,8}){0,2}\.csv", fullmatch=True),
)

# ----------------------------------------------------------------------
# Path patterns
# ----------------------------------------------------------------------

labels_st = st.one_of(
    st.none(),
    st.builds(Label, st.sampled_from(["def", "foreach"]), idents),
)


@st.composite
def vertex_steps(draw):
    if draw(st.booleans()):
        return VertexStep(None, is_variant=True, label=draw(labels_st))
    seed = draw(st.one_of(st.none(), idents))
    return VertexStep(
        draw(idents),
        cond=draw(st.one_of(st.none(), conditions)),
        label=draw(labels_st),
        seed=seed,
    )


@st.composite
def edge_steps(draw):
    direction = draw(st.sampled_from([DIR_OUT, DIR_IN]))
    if draw(st.booleans()):
        return EdgeStep(None, direction, is_variant=True, label=draw(labels_st))
    return EdgeStep(
        draw(idents),
        direction,
        cond=draw(st.one_of(st.none(), conditions)),
        label=draw(labels_st),
    )


@st.composite
def regex_groups(draw):
    pairs = draw(
        st.lists(st.tuples(edge_steps(), vertex_steps()), min_size=1, max_size=2)
    )
    # labels/seeds inside regex groups are not meaningful; strip them
    pairs = [
        (e, VertexStep(v.name, v.is_variant, v.cond, None, None))
        for e, v in pairs
    ]
    op = draw(st.sampled_from(["star", "plus", "count"]))
    count = draw(st.integers(min_value=1, max_value=5)) if op == "count" else None
    return RegexGroup(pairs, op, count)


@st.composite
def path_atoms(draw):
    steps = [draw(vertex_steps())]
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.integers(0, 3)) == 0:
            steps.append(draw(regex_groups()))
        else:
            steps.append(draw(edge_steps()))
        steps.append(draw(vertex_steps()))
    return PathAtom(steps)


@st.composite
def graph_selects(draw):
    into = draw(
        st.one_of(
            st.none(),
            st.builds(IntoClause, st.sampled_from(["table", "subgraph"]), idents),
        )
    )
    if into is not None and into.kind == "subgraph":
        items = draw(
            st.one_of(
                st.just([StarItem()]),
                st.lists(st.builds(StepItem, idents), min_size=1, max_size=3),
            )
        )
    else:
        items = draw(
            st.one_of(
                st.just([StarItem()]),
                st.lists(
                    st.builds(
                        AttrItem,
                        st.builds(ColRef, idents, idents),
                        st.one_of(st.none(), idents),
                    ),
                    min_size=1,
                    max_size=3,
                ),
            )
        )
    return GraphSelect(items, draw(path_atoms()), into)


@st.composite
def table_selects(draw):
    has_agg = draw(st.booleans())
    if has_agg:
        items = draw(
            st.lists(
                st.one_of(
                    st.builds(
                        AggItem,
                        st.sampled_from(["count", "sum", "avg", "min", "max"]),
                        st.one_of(st.none(), idents),
                        st.one_of(st.none(), idents),
                    ),
                    st.builds(
                        AttrItem,
                        st.builds(ColRef, st.none(), idents),
                        st.none(),
                    ),
                ),
                min_size=1,
                max_size=3,
            )
        )
    else:
        items = draw(
            st.one_of(
                st.just([StarItem()]),
                st.lists(
                    st.builds(
                        AttrItem,
                        st.builds(ColRef, st.none(), idents),
                        st.one_of(st.none(), idents),
                    ),
                    min_size=1,
                    max_size=3,
                ),
            )
        )
    return TableSelect(
        items,
        draw(idents),
        top=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=100))),
        distinct=draw(st.booleans()),
        where=draw(st.one_of(st.none(), conditions)),
        group_by=draw(st.lists(idents, max_size=2, unique_by=str)),
        order_by=draw(
            st.lists(st.builds(OrderKey, idents, st.booleans()), max_size=2)
        ),
        into=draw(
            st.one_of(st.none(), st.builds(IntoClause, st.just("table"), idents))
        ),
    )


statements = st.one_of(
    create_tables,
    create_vertices(),
    create_edges(),
    ingests,
    graph_selects(),
    table_selects(),
)
