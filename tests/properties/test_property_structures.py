"""Property-based structural invariants: CSR indexes, vertex views, ingest."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.dtypes import INTEGER, VarChar
from repro.graph.edge_index import EdgeIndex
from repro.graph.vertex import VertexType
from repro.storage import Schema, Table
from repro.storage.csvio import read_csv_text_into


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=0, max_value=60))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
    )
    tgt = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
    )
    return n, np.asarray(src, dtype=np.int64), np.asarray(tgt, dtype=np.int64)


class TestCSRInvariants:
    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_structure(self, data):
        n, src, tgt = data
        idx = EdgeIndex(n, src, tgt)
        # indptr is monotone and spans all edges
        assert idx.indptr[0] == 0
        assert idx.indptr[-1] == len(src)
        assert (np.diff(idx.indptr) >= 0).all()
        # every eid appears exactly once
        assert sorted(idx.eids.tolist()) == list(range(len(src)))
        # degrees sum to edge count
        assert int(idx.degrees().sum()) == len(src)

    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_adjacency_preserved(self, data):
        n, src, tgt = data
        idx = EdgeIndex(n, src, tgt)
        for eid in range(len(src)):
            assert tgt[eid] in idx.neighbors_of(int(src[eid])).tolist()

    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_expand_equals_per_vertex_union(self, data):
        n, src, tgt = data
        idx = EdgeIndex(n, src, tgt)
        frontier = np.unique(src)[:5]
        srcs, tgts, eids = idx.expand(frontier)
        # expansion of the frontier == concatenation of per-vertex lists
        expected = []
        for v in frontier:
            expected.extend((int(v), int(t)) for t in idx.neighbors_of(int(v)))
        assert sorted(zip(srcs.tolist(), tgts.tolist())) == sorted(expected)

    @given(edge_lists())
    @settings(max_examples=100, deadline=None)
    def test_forward_reverse_are_transposes(self, data):
        n, src, tgt = data
        fwd = EdgeIndex(n, src, tgt)
        rev = EdgeIndex(n, tgt, src)
        fwd_pairs = sorted(
            zip(np.repeat(np.arange(n), np.diff(fwd.indptr)).tolist(),
                fwd.neighbors.tolist())
        )
        rev_pairs = sorted(
            zip(rev.neighbors.tolist(),
                np.repeat(np.arange(n), np.diff(rev.indptr)).tolist())
        )
        assert fwd_pairs == rev_pairs


SCHEMA = Schema.of(("id", INTEGER), ("k", VarChar(2)))

vertex_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.sampled_from(["a", "b", "c", None]),
    ),
    max_size=50,
)


class TestVertexViewInvariants:
    @given(vertex_rows)
    @settings(max_examples=100, deadline=None)
    def test_one_vertex_per_distinct_key(self, rows):
        t = Table.from_rows("T", SCHEMA, rows)
        vt = VertexType("V", ["k"], t)
        distinct = {r[1] for r in rows if r[1] is not None}
        assert vt.num_vertices == len(distinct)
        assert {k[0] for k in vt.key_tuples()} == distinct

    @given(vertex_rows)
    @settings(max_examples=100, deadline=None)
    def test_row_vids_consistent(self, rows):
        t = Table.from_rows("T", SCHEMA, rows)
        vt = VertexType("V", ["id"], t)
        # every selected row maps to a vid whose key equals the row's key
        for pos, row_idx in enumerate(vt.rows):
            vid = int(vt.row_vids[pos])
            assert vt.key_of(vid) == (rows[int(row_idx)][0],)

    @given(vertex_rows)
    @settings(max_examples=50, deadline=None)
    def test_refresh_is_rebuild(self, rows):
        t = Table.from_rows("T", SCHEMA, rows)
        vt = VertexType("V", ["k"], t)
        t.append_rows([(99, "z")])
        vt.refresh()
        fresh = VertexType("V2", ["k"], t)
        assert vt.num_vertices == fresh.num_vertices
        assert vt.key_tuples() == fresh.key_tuples()


class TestIngestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-1000, max_value=1000),
                st.sampled_from(["a", "b", ""]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_csv_roundtrip_row_count(self, rows):
        text = "\n".join(f"{n},{k}" for n, k in rows)
        t = Table("T", SCHEMA)
        count = read_csv_text_into(t, text + ("\n" if text else ""))
        assert count == len(rows)
        assert t.num_rows == len(rows)
