"""Property-based equivalence: index-seek ≡ full scan.

On random databases and random anchor predicates, executing with a
secondary attribute index (seek forced by hint) must produce exactly
the same result as executing with the index forbidden (vectorized
scan) — on both execution strategies.  Also checks the raw
:class:`AttributeIndex` seek primitives against a NumPy oracle.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.obs import Hints, QueryOptions
from repro.storage.indexes import AttributeIndex

from tests.conftest import random_graph_db

# anchor predicates over the random schema's V0(color varchar, weight int)
PREDICATES = [
    "color = '{c}'",
    "weight = {k}",
    "weight > {k}",
    "weight <= {k}",
    "color = '{c}' and weight > {k}",
    "color = '{c}' and weight = {k}",
    "weight >= {k} and weight < {k2}",
]

COLORS = ["red", "green", "blue"]


def _subgraph_key(result):
    sg = result.subgraph
    return (
        {t: sorted(map(int, sg.vertices[t])) for t in sg.vertices},
        {t: sorted(map(int, sg.edges[t])) for t in sg.edges},
    )


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    pidx=st.integers(min_value=0, max_value=len(PREDICATES) - 1),
    cidx=st.integers(min_value=0, max_value=len(COLORS) - 1),
    k=st.integers(min_value=0, max_value=9),
    k2=st.integers(min_value=0, max_value=9),
    strategy=st.sampled_from(["set", "bindings"]),
)
@settings(max_examples=50, deadline=None)
def test_seek_equals_scan_on_random_graphs(seed, pidx, cidx, k, k2, strategy):
    db = random_graph_db(seed, num_vertices=30, num_edges=80)
    db.execute("create index pidx on V0(color, weight)")
    db.execute("create index widx on V0(weight)")
    pred = PREDICATES[pidx].format(c=COLORS[cidx], k=k, k2=k2)
    q = (
        f"select * from graph V0 ({pred}) --e0--> V0 ( ) "
        "into subgraph {}"
    )
    # whichever single index the predicate can use, force it; forcing an
    # inapplicable one degrades to scan, which must also be identical
    use = "widx" if pred.startswith("weight") else "pidx"
    seek = db.execute(
        q.format("GS"),
        options=QueryOptions(
            strategy=strategy, hints=Hints(use_index=(use,))
        ),
    )[0]
    scan = db.execute(
        q.format("GC"),
        options=QueryOptions(
            strategy=strategy, hints=Hints(no_index=("pidx", "widx"))
        ),
    )[0]
    assert scan.profile.attr_seeks == 0
    assert _subgraph_key(seek) == _subgraph_key(scan)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n=st.integers(min_value=0, max_value=200),
    nulls=st.floats(min_value=0.0, max_value=0.4),
)
@settings(max_examples=60, deadline=None)
def test_attribute_index_matches_numpy_oracle(seed, n, nulls):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 8, size=n).astype(np.float64)
    b = rng.integers(0, 20, size=n).astype(np.float64)
    mask_a = rng.random(n) < nulls
    mask_b = rng.random(n) < nulls
    idx = AttributeIndex([a, b], [mask_a, mask_b])
    valid = ~mask_a & ~mask_b
    for key in range(8):
        got = idx.seek_eq((float(key),))
        want = np.flatnonzero(valid & (a == key))
        np.testing.assert_array_equal(got, want)
        lo, hi = 5.0, 12.0
        got = idx.seek_range(lo, hi, prefix=(float(key),))
        want = np.flatnonzero(valid & (a == key) & (b >= lo) & (b <= hi))
        np.testing.assert_array_equal(got, want)
    got = idx.seek_range(3.0, None, low_exclusive=True)
    want = np.flatnonzero(valid & (a > 3.0))
    np.testing.assert_array_equal(got, want)
    got = idx.seek_range(None, 6.0, high_exclusive=True)
    want = np.flatnonzero(valid & (a < 6.0))
    np.testing.assert_array_equal(got, want)
