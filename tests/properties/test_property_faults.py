"""Property-based fault tolerance: determinism and oracle equivalence.

Two properties pin down the fault model (docs/RELIABILITY.md):

* **seeded determinism** — the same injector seed produces the same
  fault schedule, the same recovery actions, and therefore the same
  result and the same fault/recovery counters;
* **oracle equivalence** — with k=2 replication, any single injected
  fail-stop (plus probabilistic message drops) leaves every
  set-semantics distributed query returning exactly the single-node
  engine's answer.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dist import Cluster, FaultInjector
from tests.conftest import random_graph_db

QUERIES = [
    "select * from graph V0 ( ) --e0--> V0 ( ) into subgraph {}",
    "select * from graph V0 (color = 'red') --e0--> V0 (weight > 3) "
    "into subgraph {}",
    "select * from graph V0 ( ) --e0--> V0 ( ) --cross0--> V1 ( ) "
    "into subgraph {}",
    "select * from graph V1 ( ) <--cross0-- V0 ( ) into subgraph {}",
]


def _canon(subgraph):
    return (
        {k: v.tolist() for k, v in subgraph.vertices.items()},
        {k: v.tolist() for k, v in subgraph.edges.items()},
    )


@given(
    seed=st.integers(min_value=0, max_value=2000),
    qidx=st.integers(min_value=0, max_value=len(QUERIES) - 1),
    workers=st.integers(min_value=2, max_value=6),
    victim=st.integers(min_value=0, max_value=5),
    kill_step=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_single_failure_equals_single_node_oracle(
    seed, qidx, workers, victim, kill_step
):
    db = random_graph_db(seed, num_vertices=30, num_edges=80)
    q = QUERIES[qidx]
    ref = db.execute(q.format("L"))[0].subgraph
    inj = FaultInjector(
        seed=seed, kill_schedule={kill_step: [victim % workers]}
    )
    cluster = Cluster(
        db.db, workers, db.catalog, replication=2, fault_injector=inj
    )
    result = cluster.execute(q.format("D"))[0]
    assert not result.degraded  # k=2 survives any single fail-stop
    assert _canon(ref) == _canon(result.subgraph)
    if inj.stats.kills:
        assert result.recovery["failovers"] == inj.stats.kills


@given(
    seed=st.integers(min_value=0, max_value=2000),
    qidx=st.integers(min_value=0, max_value=len(QUERIES) - 1),
    workers=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_drops_and_delays_preserve_oracle_equality(seed, qidx, workers):
    db = random_graph_db(seed, num_vertices=25, num_edges=60)
    q = QUERIES[qidx]
    ref = db.execute(q.format("L"))[0].subgraph
    inj = FaultInjector(seed=seed, drop_prob=0.1, delay_prob=0.2)
    cluster = Cluster(
        db.db, workers, db.catalog, replication=2,
        fault_injector=inj, max_retries=50,
    )
    result = cluster.execute(q.format("D"))[0]
    assert not result.degraded
    assert _canon(ref) == _canon(result.subgraph)


@given(
    seed=st.integers(min_value=0, max_value=2000),
    qidx=st.integers(min_value=0, max_value=len(QUERIES) - 1),
    workers=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_same_seed_same_faults_same_result(seed, qidx, workers):
    db = random_graph_db(seed, num_vertices=25, num_edges=60)
    q = QUERIES[qidx]
    runs = []
    for tag in ("A", "B"):
        inj = FaultInjector(
            seed=seed, kill_prob=0.2, drop_prob=0.1, delay_prob=0.2,
            max_kills=1,
        )
        cluster = Cluster(
            db.db, workers, db.catalog, replication=2,
            fault_injector=inj, max_retries=50,
        )
        result = cluster.execute(q.format(tag))[0]
        runs.append(
            (
                _canon(result.subgraph),
                inj.stats.snapshot(),
                result.recovery,
                cluster.comm_stats(),
            )
        )
    (sub_a, faults_a, rec_a, comm_a), (sub_b, faults_b, rec_b, comm_b) = runs
    assert sub_a == sub_b
    assert faults_a == faults_b
    assert rec_a == rec_b
    assert comm_a == comm_b
