"""Property-based round-trip for the binary IR: decode(encode(x)) == x."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graql.ast import Script
from repro.graql.ir import (
    decode_script,
    decode_statement,
    encode_script,
    encode_statement,
)

from tests.properties.strategies import statements


@given(statements)
@settings(max_examples=200, deadline=None)
def test_statement_ir_roundtrip(stmt):
    assert decode_statement(encode_statement(stmt)) == stmt


@given(st.lists(statements, max_size=5))
@settings(max_examples=50, deadline=None)
def test_script_ir_roundtrip(stmts):
    script = Script(stmts)
    assert decode_script(encode_script(script)) == script


@given(statements, statements)
@settings(max_examples=100, deadline=None)
def test_ir_injective_on_distinct_statements(a, b):
    if a != b:
        assert encode_statement(a) != encode_statement(b)
