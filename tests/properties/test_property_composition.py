"""Property-based tests for multi-path composition semantics.

* ``or`` must equal the union of the branch subgraphs.
* ``and`` under set semantics must reach the shared-label fixpoint: the
  label set equals the intersection of "on a full q1 path at the defining
  step" and "on a full q2 path at the referencing step", iterated to
  stability — verified against a brute-force oracle.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.baselines import NxOracle
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement

from tests.conftest import random_graph_db


def subgraph_of(db, text, name):
    return db.execute(text.format(name))[0].subgraph


@given(
    seed=st.integers(min_value=0, max_value=3000),
    k=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=40, deadline=None)
def test_or_is_union(seed, k):
    db = random_graph_db(seed, num_vertices=24, num_edges=60)
    a = (
        "select * from graph V0 (weight > %d) --e0--> V0 ( ) "
        "into subgraph {}" % k
    )
    b = "select * from graph V0 ( ) --cross0--> V1 ( ) into subgraph {}"
    combined = (
        "select * from graph V0 (weight > %d) --e0--> V0 ( ) "
        "or (V0 ( ) --cross0--> V1 ( )) into subgraph {}" % k
    )
    sa = subgraph_of(db, a, "A")
    sb = subgraph_of(db, b, "B")
    su = subgraph_of(db, combined, "U")
    assert su == sa.union(sb, "U")


def _and_oracle(db, q1_text, q2_text, def_pos, ref_pos):
    """Brute-force fixpoint for 'q1 and q2' sharing one set label."""
    oracle = NxOracle(db.db)
    atom1 = check_statement(parse_statement(q1_text), db.catalog).pattern.atoms()[0]
    atom2_checked = check_statement(parse_statement(q2_text), db.catalog)
    atom2 = atom2_checked.pattern.atoms()[0]

    def paths_with_constraint(atom, pos, allowed):
        oracle.prepare_labels(atom)
        out = []
        for p in oracle.enumerate_paths(atom):
            if allowed is None or p[pos] in allowed:
                out.append(p)
        return out

    allowed = None
    for _ in range(8):
        p1 = paths_with_constraint(atom1, def_pos, allowed)
        s1 = {p[def_pos] for p in p1}
        p2 = paths_with_constraint(atom2, ref_pos, s1)
        s2 = {p[ref_pos] for p in p2}
        if s2 == allowed:
            break
        allowed = s2
    p1 = paths_with_constraint(atom1, def_pos, allowed)
    p2 = paths_with_constraint(atom2, ref_pos, allowed)
    vset: dict[str, set] = {}
    eset: dict[str, set] = {}
    for paths in (p1, p2):
        for p in paths:
            for i, el in enumerate(p):
                name, ident = el
                (vset if i % 2 == 0 else eset).setdefault(name, set()).add(ident)
    return vset, eset


@given(
    seed=st.integers(min_value=0, max_value=2000),
    k=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_and_reaches_shared_label_fixpoint(seed, k):
    db = random_graph_db(seed, num_vertices=20, num_edges=50)
    q1 = (
        "select * from graph V0 (weight > %d) --e0--> def y: V0 ( ) "
        "into subgraph G1" % k
    )
    q2 = "select * from graph y --cross0--> V1 (weight < 8) into subgraph G2"
    combined = (
        "select * from graph V0 (weight > %d) --e0--> def y: V0 ( ) "
        "and (y --cross0--> V1 (weight < 8)) into subgraph {}" % k
    )
    got = subgraph_of(db, combined, f"AND{seed}")
    # oracle: q2 as a standalone atom whose first step is unconstrained V0
    q2_standalone = (
        "select * from graph V0 ( ) --cross0--> V1 (weight < 8) "
        "into subgraph G2x"
    )
    vset, eset = _and_oracle(db, q1, q2_standalone, def_pos=2, ref_pos=0)
    got_v = {
        (t, int(v)) for t, vs in got.vertices.items() for v in vs
    }
    want_v = {(t, v) for t, vs in vset.items() for v in vs}
    assert got_v == want_v, f"seed {seed}"
    got_e = {(t, int(e)) for t, es in got.edges.items() for e in es}
    want_e = {(t, e) for t, es in eset.items() for e in es}
    assert got_e == want_e, f"seed {seed}"
