"""Property-based: distributed execution is exactly single-node execution."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.dist import Cluster
from repro.dist.comm import Communicator
from repro.dist.dist_relops import dist_group_by_aggregate
from repro.dtypes import INTEGER, VarChar
from repro.storage import Schema, Table, relops
from repro.storage.relops import AggSpec

from tests.conftest import random_graph_db

QUERIES = [
    "select * from graph V0 ( ) --e0--> V0 ( ) into subgraph {}",
    "select * from graph V0 (color = 'red') --e0--> V0 (weight > 3) "
    "into subgraph {}",
    "select * from graph V0 ( ) --e0--> V0 ( ) --cross0--> V1 ( ) "
    "into subgraph {}",
    "select * from graph V1 ( ) <--cross0-- V0 ( ) into subgraph {}",
    "select * from graph V0 ( ) --[]--> [ ] into subgraph {}",
]


@given(
    seed=st.integers(min_value=0, max_value=3000),
    qidx=st.integers(min_value=0, max_value=len(QUERIES) - 1),
    workers=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_cluster_equals_single_node(seed, qidx, workers):
    db = random_graph_db(seed, num_vertices=30, num_edges=80)
    q = QUERIES[qidx]
    ref = db.execute(q.format("L"))[0].subgraph
    cluster = Cluster(db.db, workers, db.catalog)
    got = cluster.execute(q.format("D"))[0].subgraph
    assert {k: v.tolist() for k, v in ref.vertices.items()} == {
        k: v.tolist() for k, v in got.vertices.items()
    }
    assert {k: v.tolist() for k, v in ref.edges.items()} == {
        k: v.tolist() for k, v in got.edges.items()
    }


SCHEMA = Schema.of(("g", VarChar(2)), ("n", INTEGER))

rows_st = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d", None]),
        st.integers(min_value=-9, max_value=9),
    ),
    max_size=60,
)


@given(rows=rows_st, workers=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_dist_groupby_equals_single_node(rows, workers):
    table = Table.from_rows("T", SCHEMA, rows)
    aggs = [
        AggSpec("count", None, "c"),
        AggSpec("sum", "n", "s"),
        AggSpec("min", "n", "lo"),
        AggSpec("max", "n", "hi"),
    ]
    ref = relops.group_by_aggregate(table, ["g"], aggs)
    got = dist_group_by_aggregate(table, ["g"], aggs, Communicator(workers))
    assert sorted(ref.to_rows(), key=repr) == sorted(got.to_rows(), key=repr)
