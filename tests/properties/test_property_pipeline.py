"""Property: pipelined fused execution is identical to sequential."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.pipeline import run_pipelined
from repro.graql.parser import parse_script

from tests.conftest import random_graph_db

TEMPLATES = [
    # (graph part, consumer part)
    (
        "select y.id as target from graph V0 (weight > {k}) --e0--> def y: "
        "V0 ( ) into table P",
        "select target, count(*) as n from table P group by target "
        "order by n desc, target asc",
    ),
    (
        "select a.id as src, y.id as dst from graph def a: V0 ( ) --e0--> "
        "def y: V0 (color = 'red') into table P",
        "select src, count(*) as n, min(dst) as lo, max(dst) as hi "
        "from table P group by src order by src asc",
    ),
    (
        "select y.weight as w from graph V0 ( ) --cross0--> def y: V1 ( ) "
        "into table P",
        "select count(*) as n, sum(w) as s, avg(w) as a from table P",
    ),
]


@given(
    seed=st.integers(min_value=0, max_value=2000),
    tidx=st.integers(min_value=0, max_value=len(TEMPLATES) - 1),
    k=st.integers(min_value=0, max_value=9),
    chunks=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=50, deadline=None)
def test_pipelined_equals_sequential(seed, tidx, k, chunks):
    g, c = TEMPLATES[tidx]
    script_text = g.format(k=k) + "\n" + c
    db1 = random_graph_db(seed, num_vertices=24, num_edges=60)
    ref = db1.query(script_text)
    db2 = random_graph_db(seed, num_vertices=24, num_edges=60)
    results, stats = run_pipelined(
        db2.db, db2.catalog, parse_script(script_text), num_chunks=chunks
    )
    got = results[1].table
    def norm(rows):
        return [
            tuple(round(v, 9) if isinstance(v, float) else v for v in r)
            for r in rows
        ]

    assert norm(got.to_rows()) == norm(ref.to_rows()), (seed, tidx, k, chunks)
    # the intermediate table matches too (as a multiset)
    assert sorted(db2.table("P").to_rows()) == sorted(db1.table("P").to_rows())
