"""Robustness fuzzing: the front-end never crashes, it *rejects*.

For arbitrary generated statements (valid or not) checked against a real
catalog, static analysis must either succeed or raise a GraQLError — no
AssertionError, KeyError, TypeError or other internal leakage.  Same for
the parser over arbitrary printable text, and for execution of statements
that pass the checker.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import GraQLError
from repro.graql.lexer import tokenize
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_statement

from tests.conftest import build_social_db
from tests.properties.strategies import statements

_db = build_social_db()
_catalog = _db.catalog


@given(statements)
@settings(max_examples=300, deadline=None)
def test_typecheck_never_crashes(stmt):
    try:
        check_statement(stmt, _catalog)
    except GraQLError:
        pass  # rejection is fine; crashes are not


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200))
@settings(max_examples=300, deadline=None)
def test_parser_never_crashes_on_garbage(text):
    try:
        parse_script(text)
    except GraQLError:
        pass


@given(st.text(max_size=100))
@settings(max_examples=200, deadline=None)
def test_lexer_never_crashes(text):
    try:
        tokenize(text)
    except GraQLError:
        pass


@given(statements)
@settings(max_examples=150, deadline=None)
def test_checked_statements_execute_or_reject(stmt):
    """Anything the checker accepts must execute without internal errors."""
    from repro.query.executor import execute_statement

    db = build_social_db()
    try:
        checked = check_statement(stmt, db.catalog)
    except GraQLError:
        return
    # DDL statements may collide with existing names at execution; queries
    # may hit runtime guards — all must surface as GraQLError only
    try:
        execute_statement(db.db, db.catalog, stmt)
    except GraQLError:
        pass
