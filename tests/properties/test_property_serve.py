"""Property-based tests: prepared re-execution matches one-shot queries.

A :class:`~repro.serve.PreparedStatement` pays parse/typecheck/IR once
and binds values per execution; the property here is that no binding can
make it disagree with the ordinary one-shot ``Database.query`` path
(which re-runs the whole front-end every time).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from tests.conftest import build_social_db

DB = build_social_db()  # pure reads only below: safe to share

AGE_Q = "select name, age from table People where age > %MinAge%"
SCORE_Q = "select name from table People where score <= %Cap%"
GRAPH_Q = (
    "select y.id, y.age from graph Person (age > %MinAge%) --follows--> "
    "def y: Person ( )"
)

PS_AGE = DB.prepare(AGE_Q)
PS_SCORE = DB.prepare(SCORE_Q)
PS_GRAPH = DB.prepare(GRAPH_Q)


def _rows(table):
    return sorted(tuple(r) for r in table.iter_rows())


@given(age=st.integers(min_value=-10, max_value=120))
@settings(max_examples=40, deadline=None)
def test_prepared_int_binding_matches_one_shot(age):
    prepared = PS_AGE.execute({"MinAge": age})[-1].table
    oneshot = DB.query(AGE_Q, params={"MinAge": age})
    assert _rows(prepared) == _rows(oneshot)


@given(cap=st.floats(min_value=-1.0, max_value=6.0,
                     allow_nan=False, allow_infinity=False))
@settings(max_examples=40, deadline=None)
def test_prepared_float_binding_matches_one_shot(cap):
    prepared = PS_SCORE.execute({"Cap": cap})[-1].table
    oneshot = DB.query(SCORE_Q, params={"Cap": cap})
    assert _rows(prepared) == _rows(oneshot)


@given(age=st.integers(min_value=0, max_value=60))
@settings(max_examples=25, deadline=None)
def test_prepared_graph_select_matches_one_shot(age):
    prepared = PS_GRAPH.execute({"MinAge": age})[-1].table
    oneshot = DB.query(GRAPH_Q, params={"MinAge": age})
    assert _rows(prepared) == _rows(oneshot)


@given(ages=st.lists(st.integers(min_value=0, max_value=100),
                     min_size=2, max_size=6))
@settings(max_examples=20, deadline=None)
def test_reexecution_sequence_is_stateless(ages):
    """Executing the same prepared statement many times with different
    bindings leaves no residue: re-binding an earlier value reproduces
    the earlier answer exactly."""
    first = [_rows(PS_AGE.execute({"MinAge": a})[-1].table) for a in ages]
    second = [_rows(PS_AGE.execute({"MinAge": a})[-1].table) for a in ages]
    assert first == second
