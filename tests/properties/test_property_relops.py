"""Property-based tests: relational-operator algebraic laws."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.dtypes import INTEGER, VarChar
from repro.graql.parser import parse_expression
from repro.storage import Schema, Table, relops
from repro.storage.expr import BinOp, ColRef, Const
from repro.storage.relops import AggSpec

SCHEMA = Schema.of(("g", VarChar(2)), ("n", INTEGER), ("m", INTEGER))

rows_st = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", None]),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
    ),
    max_size=40,
)


def table_of(rows) -> Table:
    return Table.from_rows("T", SCHEMA, rows)


ints = st.integers(min_value=-5, max_value=5)


@given(rows_st, ints, ints)
@settings(max_examples=80, deadline=None)
def test_filter_conjunction_equals_sequential(rows, a, b):
    t = table_of(rows)
    c1 = BinOp(">", ColRef(None, "n"), Const(a))
    c2 = BinOp("<", ColRef(None, "m"), Const(b))
    both = relops.filter_table(t, BinOp("and", c1, c2))
    seq = relops.filter_table(relops.filter_table(t, c1), c2)
    assert both.to_rows() == seq.to_rows()


@given(rows_st, ints)
@settings(max_examples=80, deadline=None)
def test_filter_commutes(rows, a):
    t = table_of(rows)
    c1 = BinOp(">", ColRef(None, "n"), Const(a))
    c2 = BinOp("=", ColRef(None, "g"), Const("a"))
    ab = relops.filter_table(relops.filter_table(t, c1), c2)
    ba = relops.filter_table(relops.filter_table(t, c2), c1)
    assert ab.to_rows() == ba.to_rows()


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_distinct_idempotent(rows):
    t = table_of(rows)
    once = relops.distinct(t)
    twice = relops.distinct(once)
    assert once.to_rows() == twice.to_rows()


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_distinct_is_set_of_rows(rows):
    t = table_of(rows)
    assert sorted(
        relops.distinct(t).to_rows(), key=repr
    ) == sorted(set(t.to_rows()), key=repr)


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_order_by_is_permutation(rows):
    t = table_of(rows)
    out = relops.order_by(t, [("n", True), ("m", False)])
    assert sorted(out.to_rows(), key=repr) == sorted(t.to_rows(), key=repr)


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_order_by_sorted(rows):
    t = table_of(rows)
    out = relops.order_by(t, [("n", True)])
    ns = [r[1] for r in out.to_rows()]
    assert ns == sorted(ns)


@given(rows_st, st.integers(min_value=0, max_value=50))
@settings(max_examples=80, deadline=None)
def test_top_n_is_prefix(rows, n):
    t = table_of(rows)
    out = relops.top_n(t, n)
    assert out.to_rows() == t.to_rows()[:n]


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_group_counts_sum_to_rows(rows):
    t = table_of(rows)
    g = relops.group_by_aggregate(t, ["g"], [AggSpec("count", None, "c")])
    if t.num_rows:
        assert sum(r[1] for r in g.to_rows()) == t.num_rows
    else:
        assert g.num_rows == 0  # SQL: GROUP BY on empty input yields no rows


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_group_sums_match_python(rows):
    t = table_of(rows)
    g = relops.group_by_aggregate(t, ["g"], [AggSpec("sum", "n", "s")])
    expected: dict = {}
    for grp, n, _ in rows:
        expected[grp] = expected.get(grp, 0) + n
    got = dict(g.to_rows())
    assert got == expected


@given(rows_st)
@settings(max_examples=80, deadline=None)
def test_min_max_bound_each_group(rows):
    t = table_of(rows)
    g = relops.group_by_aggregate(
        t, ["g"], [AggSpec("min", "n", "lo"), AggSpec("max", "n", "hi")]
    )
    for grp, lo, hi in g.to_rows():
        vals = [r[1] for r in rows if r[0] == grp]
        assert lo == min(vals) and hi == max(vals)


@given(rows_st, rows_st)
@settings(max_examples=60, deadline=None)
def test_join_matches_bruteforce(lrows, rrows):
    lt = table_of(lrows)
    rt = table_of(rrows)
    li, ri = relops.join_indices(lt, rt, ["g", "n"], ["g", "n"])
    got = sorted(zip(li.tolist(), ri.tolist()))
    expected = sorted(
        (i, j)
        for i, (lg, ln, _) in enumerate(lrows)
        for j, (rg, rn, _) in enumerate(rrows)
        if lg is not None and lg == rg and ln == rn
    )
    assert got == expected


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_join_symmetry(rows):
    t = table_of(rows)
    li, ri = relops.join_indices(t, t, ["g"], ["g"])
    pairs = set(zip(li.tolist(), ri.tolist()))
    assert {(b, a) for a, b in pairs} == pairs


@given(rows_st)
@settings(max_examples=60, deadline=None)
def test_semi_join_matches_membership(rows):
    t = table_of(rows)
    half = t.head(t.num_rows // 2)
    mask = relops.semi_join_mask(t, half, ["n"], ["n"])
    half_ns = {r[1] for r in half.to_rows()}
    for i, row in enumerate(t.to_rows()):
        assert mask[i] == (row[1] in half_ns)
