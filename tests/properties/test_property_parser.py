"""Property-based round-trip: pretty-print -> reparse == identity."""

from hypothesis import given, settings

from repro.graql.ast import Script
from repro.graql.parser import parse_expression, parse_script, parse_statement
from repro.graql.pretty import pretty_expr, pretty_script, pretty_statement

from tests.properties.strategies import expressions, statements

import hypothesis.strategies as st


@given(expressions)
@settings(max_examples=200, deadline=None)
def test_expression_roundtrip(expr):
    rendered = pretty_expr(expr)
    assert parse_expression(rendered) == expr, rendered


@given(statements)
@settings(max_examples=200, deadline=None)
def test_statement_roundtrip(stmt):
    rendered = pretty_statement(stmt)
    assert parse_statement(rendered) == stmt, rendered


@given(st.lists(statements, max_size=4))
@settings(max_examples=50, deadline=None)
def test_script_roundtrip(stmts):
    script = Script(stmts)
    rendered = pretty_script(script)
    assert parse_script(rendered) == script, rendered
