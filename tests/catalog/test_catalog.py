"""Unit tests for the metadata catalog (Section III)."""

import pytest

from repro.catalog import Catalog
from repro.errors import CatalogError


class TestRefresh:
    def test_tables(self, social_db):
        cat = social_db.catalog
        assert cat.table("People").num_rows == 6
        assert cat.table("People").schema.has("country")

    def test_vertices(self, social_db):
        vm = social_db.catalog.vertex("Person")
        assert vm.num_vertices == 6
        assert vm.one_to_one
        assert vm.key_cols == ["id"]
        assert vm.table == "People"

    def test_vertex_distinct_counts(self, social_db):
        vm = social_db.catalog.vertex("Person")
        assert vm.distinct_counts["country"] == 3
        assert vm.distinct_counts["id"] == 6

    def test_edges(self, social_db):
        em = social_db.catalog.edge("follows")
        assert em.num_edges == 8
        assert em.source_type == "Person" and em.target_type == "Person"

    def test_degree_stats(self, social_db):
        em = social_db.catalog.edge("follows")
        st = em.degree_stats
        assert st.avg_out == pytest.approx(8 / 6)
        assert st.max_out >= 2  # p1 follows p2 twice + p5 two targets

    def test_edge_attr_schema(self, social_db):
        em = social_db.catalog.edge("follows")
        assert em.attr_schema.has("weight")
        em2 = social_db.catalog.edge("livesIn")
        assert len(em2.attr_schema) == 0

    def test_refresh_after_ingest(self, social_db):
        social_db.ingest_rows("People", [("p9", "Zoe", "JP", 30, 1.0, 735700)])
        assert social_db.catalog.vertex("Person").num_vertices == 7


class TestLookupHints:
    """III-A style 'wrong entity kind' messages."""

    def test_vertex_as_table(self, social_db):
        with pytest.raises(CatalogError, match="vertex type; a table name"):
            social_db.catalog.table("Person")

    def test_table_as_vertex(self, social_db):
        with pytest.raises(CatalogError, match="table; a vertex type"):
            social_db.catalog.vertex("People")

    def test_edge_as_vertex(self, social_db):
        with pytest.raises(CatalogError, match="edge type; a vertex type"):
            social_db.catalog.vertex("follows")

    def test_vertex_as_edge(self, social_db):
        with pytest.raises(CatalogError, match="vertex type; an edge type"):
            social_db.catalog.edge("Person")

    def test_plain_unknown(self, social_db):
        with pytest.raises(CatalogError, match="unknown table"):
            social_db.catalog.table("Nothing")


class TestEdgesBetween:
    def test_exact(self, social_db):
        ems = social_db.catalog.edges_between("Person", "City")
        assert [e.name for e in ems] == ["livesIn"]

    def test_wildcard_source(self, social_db):
        ems = social_db.catalog.edges_between(None, "Person")
        assert [e.name for e in ems] == ["follows"]

    def test_no_match(self, social_db):
        assert social_db.catalog.edges_between("City", "City") == []


class TestPredicates:
    def test_is_kind(self, social_db):
        cat = social_db.catalog
        assert cat.is_table("People") and not cat.is_table("Person")
        assert cat.is_vertex("Person") and not cat.is_vertex("follows")
        assert cat.is_edge("livesIn") and not cat.is_edge("People")
