"""Catalog statistics: sampled distinct counts on large columns."""

import numpy as np
import pytest

from repro import Database
from repro.catalog.catalog import Catalog


@pytest.fixture
def wide_db(monkeypatch):
    # shrink the sampling threshold so the sampled path runs on test data
    monkeypatch.setattr(Catalog, "DISTINCT_SAMPLE", 200)
    db = Database()
    db.execute(
        "create table Big(id integer, bucket integer)\n"
        "create vertex BigV(id) from table Big"
    )
    rng = np.random.default_rng(3)
    rows = [(i, int(rng.integers(10))) for i in range(2000)]
    db.ingest_rows("Big", rows)
    return db


class TestSampledDistincts:
    def test_small_columns_exact(self, social_db):
        vm = social_db.catalog.vertex("Person")
        assert vm.distinct_counts["country"] == 3

    def test_sampled_estimate_reasonable(self, wide_db):
        vm = wide_db.catalog.vertex("BigV")
        # 'bucket' has 10 distinct values; the linear-spaced sample sees
        # all of them, the extrapolation must stay within a sane band
        est = vm.distinct_counts["bucket"]
        assert 10 <= est <= 200

    def test_key_estimate_scales(self, wide_db):
        vm = wide_db.catalog.vertex("BigV")
        # 'id' is unique: sampled distinct extrapolates to ~row count
        est = vm.distinct_counts["id"]
        assert est >= 1000

    def test_selectivity_uses_estimates(self, wide_db):
        from repro.catalog.stats import estimate_selectivity
        from repro.graql.parser import parse_expression

        vm = wide_db.catalog.vertex("BigV")
        sel_bucket = estimate_selectivity(
            parse_expression("bucket = 3"), vm.distinct_counts
        )
        sel_id = estimate_selectivity(
            parse_expression("id = 3"), vm.distinct_counts
        )
        assert sel_id < sel_bucket  # unique key is far more selective
