"""Unit tests for selectivity estimation and degree statistics."""

import numpy as np
import pytest

from repro.catalog.stats import (
    DegreeStats,
    SEL_EQ_DEFAULT,
    SEL_NEQ,
    SEL_RANGE,
    distinct_count,
    estimate_selectivity,
)
from repro.graql.parser import parse_expression


def est(text, distincts=None):
    return estimate_selectivity(parse_expression(text), distincts)


class TestSelectivity:
    def test_none_is_one(self):
        assert estimate_selectivity(None) == 1.0

    def test_equality_default(self):
        assert est("a = 1") == SEL_EQ_DEFAULT

    def test_equality_with_distincts(self):
        assert est("a = 1", {"a": 50}) == pytest.approx(1 / 50)

    def test_inequality(self):
        assert est("a <> 1") == SEL_NEQ

    def test_range(self):
        assert est("a < 5") == SEL_RANGE
        assert est("a >= 5") == SEL_RANGE

    def test_conjunction_multiplies(self):
        assert est("a = 1 and b = 2", {"a": 10, "b": 10}) == pytest.approx(0.01)

    def test_disjunction_adds_capped(self):
        assert est("a <> 1 or b <> 2") == 1.0

    def test_not_complements(self):
        assert est("not a = 1", {"a": 4}) == pytest.approx(0.75)

    def test_clamped_to_unit_interval(self):
        assert 0 < est("a = 1 and b = 2 and c = 3", {"a": 10**6, "b": 10**6, "c": 10**6}) <= 1.0

    def test_is_null(self):
        assert est("a is null") == pytest.approx(0.1)
        assert est("a is not null") == pytest.approx(0.9)

    def test_more_selective_ordering(self):
        # equality should look more selective than a range, which beats <>
        assert est("a = 1", {"a": 100}) < est("a < 1") < est("a <> 1")


class TestDegreeStats:
    def test_basic(self):
        out = np.asarray([2, 0, 4])
        inn = np.asarray([1, 1, 1, 3])
        st = DegreeStats(out, inn)
        assert st.avg_out == pytest.approx(2.0)
        assert st.max_out == 4
        assert st.frac_out_nonzero == pytest.approx(2 / 3)
        assert st.avg_in == pytest.approx(1.5)

    def test_expansion_factor(self):
        st = DegreeStats(np.asarray([4.0]), np.asarray([1.0]))
        assert st.expansion_factor(True) == 4.0
        assert st.expansion_factor(False) == 1.0

    def test_empty(self):
        st = DegreeStats(np.empty(0), np.empty(0))
        assert st.avg_out == 0.0 and st.max_in == 0


class TestDistinctCount:
    def test_ints(self):
        assert distinct_count(np.asarray([1, 2, 2, 3])) == 3

    def test_objects(self):
        arr = np.asarray(["a", "b", "a"], dtype=object)
        assert distinct_count(arr) == 2
