"""Small coverage tests for utility paths."""

import numpy as np
import pytest

from repro.dtypes import INTEGER, VarChar
from repro.storage import Schema, Table, relops
from repro.storage.csvio import rows_to_csv_text
from repro.storage.expr import Const, Env, evaluate_scalar
from repro.errors import ExecutionError


class TestCsvHelpers:
    def test_rows_to_csv_text(self):
        types = [VarChar(4), INTEGER]
        text = rows_to_csv_text(types, [("a", 1), (None, 2)])
        assert text.splitlines() == ["a,1", ",2"]


class TestTableEdgeCases:
    def test_pretty_empty_table(self):
        t = Table("E", Schema.of(("id", INTEGER)))
        text = t.pretty()
        assert "id" in text

    def test_order_by_no_keys(self):
        t = Table.from_rows("T", Schema.of(("n", INTEGER)), [(2,), (1,)])
        assert relops.order_by(t, []).to_rows() == [(2,), (1,)]

    def test_take_empty_indices(self):
        t = Table.from_rows("T", Schema.of(("n", INTEGER)), [(2,), (1,)])
        assert t.take(np.empty(0, dtype=np.int64)).num_rows == 0


class TestExprScalars:
    def test_evaluate_scalar_constant_folding(self):
        from repro.graql.parser import parse_expression

        assert evaluate_scalar(parse_expression("2 * (3 + 4)")) == 14
        assert evaluate_scalar(parse_expression("10 / 4")) == 2.5

    def test_env_from_columns_unknown(self):
        env = Env.from_columns({}, 3)
        with pytest.raises(ExecutionError, match="resolve"):
            env.resolve(None, "missing")

    def test_env_from_columns_hit(self):
        arr = np.asarray([1, 2, 3], dtype=np.int64)
        env = Env.from_columns({(None, "x"): (arr, INTEGER)}, 3)
        got, dtype = env.resolve(None, "x")
        assert got is arr and dtype is INTEGER


class TestSubgraphEdgeOnly:
    def test_union_edge_only_subgraphs(self):
        from repro.graph import Subgraph

        a = Subgraph("A", {}, {"e": np.asarray([1, 2])})
        b = Subgraph("B", {}, {"e": np.asarray([2, 3]), "f": np.asarray([0])})
        u = a.union(b)
        assert u.edge_ids("e").tolist() == [1, 2, 3]
        assert u.edge_ids("f").tolist() == [0]
        assert u.num_vertices == 0
