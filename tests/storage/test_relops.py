"""Unit tests for the vectorized relational operators (Table I set)."""

import numpy as np
import pytest

from repro.dtypes import FLOAT, INTEGER, VarChar
from repro.errors import ExecutionError
from repro.graql.parser import parse_expression
from repro.storage import Schema, Table, relops
from repro.storage.relops import AggSpec

S = Schema.of(("id", VarChar(10)), ("grp", VarChar(10)), ("n", INTEGER), ("x", FLOAT))
ROWS = [
    ("a", "g1", 5, 1.0),
    ("b", "g2", 3, 2.0),
    ("c", "g1", 7, 3.0),
    ("d", "g2", 1, 4.0),
    ("e", "g1", 5, 5.0),
    ("f", None, 9, float("nan")),
]
T = Table.from_rows("T", S, ROWS)


class TestFilter:
    def test_basic(self):
        out = relops.filter_table(T, parse_expression("n >= 5"))
        assert {r[0] for r in out.to_rows()} == {"a", "c", "e", "f"}

    def test_none_keeps_all(self):
        assert relops.filter_table(T, None).num_rows == 6


class TestDistinct:
    def test_full_row(self):
        doubled = T.concat(T)
        assert relops.distinct(doubled).num_rows == 6

    def test_subset(self):
        out = relops.distinct(T, ["grp"])
        assert out.num_rows == 3  # g1, g2, NULL

    def test_first_occurrence_wins(self):
        out = relops.distinct(T, ["n"])
        ids = [r[0] for r in out.to_rows()]
        assert "a" in ids and "e" not in ids  # both n=5, 'a' first

    def test_empty(self):
        empty = Table("E", S)
        assert relops.distinct(empty).num_rows == 0


class TestOrderBy:
    def test_ascending(self):
        out = relops.order_by(T, [("n", True)])
        assert [r[2] for r in out.to_rows()] == [1, 3, 5, 5, 7, 9]

    def test_descending(self):
        out = relops.order_by(T, [("n", False)])
        assert [r[2] for r in out.to_rows()] == [9, 7, 5, 5, 3, 1]

    def test_multi_key_mixed(self):
        out = relops.order_by(T, [("grp", True), ("n", False)])
        rows = out.to_rows()
        # NULL group sorts first, then g1 descending by n, then g2
        assert rows[0][0] == "f"
        g1 = [r for r in rows if r[1] == "g1"]
        assert [r[2] for r in g1] == [7, 5, 5]

    def test_stability(self):
        out = relops.order_by(T, [("n", True)])
        fives = [r[0] for r in out.to_rows() if r[2] == 5]
        assert fives == ["a", "e"]  # input order preserved on ties

    def test_string_descending(self):
        out = relops.order_by(T, [("id", False)])
        assert out.row(0)[0] == "f"


class TestTopN:
    def test_top(self):
        assert relops.top_n(T, 2).num_rows == 2

    def test_top_zero(self):
        assert relops.top_n(T, 0).num_rows == 0

    def test_top_larger_than_table(self):
        assert relops.top_n(T, 100).num_rows == 6

    def test_negative_raises(self):
        with pytest.raises(ExecutionError):
            relops.top_n(T, -1)


class TestGroupBy:
    def test_count_star(self):
        out = relops.group_by_aggregate(T, ["grp"], [AggSpec("count", None, "c")])
        d = dict(out.to_rows())
        assert d["g1"] == 3 and d["g2"] == 2 and d[None] == 1

    def test_count_column_skips_nulls(self):
        out = relops.group_by_aggregate(T, [], [AggSpec("count", "x", "c")])
        assert out.row(0)[0] == 5  # one NaN excluded

    def test_sum(self):
        out = relops.group_by_aggregate(T, ["grp"], [AggSpec("sum", "n", "s")])
        d = dict(out.to_rows())
        assert d["g1"] == 17 and d["g2"] == 4

    def test_avg(self):
        out = relops.group_by_aggregate(T, ["grp"], [AggSpec("avg", "x", "a")])
        d = dict(out.to_rows())
        assert d["g1"] == pytest.approx(3.0)

    def test_min_max_numeric(self):
        out = relops.group_by_aggregate(
            T, ["grp"], [AggSpec("min", "n", "lo"), AggSpec("max", "n", "hi")]
        )
        d = {r[0]: (r[1], r[2]) for r in out.to_rows()}
        assert d["g1"] == (5, 7) and d["g2"] == (1, 3)

    def test_min_max_strings(self):
        out = relops.group_by_aggregate(
            T, ["grp"], [AggSpec("min", "id", "lo"), AggSpec("max", "id", "hi")]
        )
        d = {r[0]: (r[1], r[2]) for r in out.to_rows()}
        assert d["g1"] == ("a", "e") and d["g2"] == ("b", "d")

    def test_whole_table_aggregate(self):
        out = relops.group_by_aggregate(
            T, [], [AggSpec("sum", "n", "s"), AggSpec("count", None, "c")]
        )
        assert out.num_rows == 1
        assert out.row(0) == (30, 6)

    def test_multi_column_group(self):
        out = relops.group_by_aggregate(
            T, ["grp", "n"], [AggSpec("count", None, "c")]
        )
        assert out.num_rows == 5  # (g1,5) merges a and e

    def test_sum_on_string_rejected(self):
        with pytest.raises(ExecutionError):
            relops.group_by_aggregate(T, [], [AggSpec("sum", "id", "s")])

    def test_agg_star_non_count_rejected(self):
        with pytest.raises(ExecutionError):
            relops.group_by_aggregate(T, [], [AggSpec("avg", None, "a")])

    def test_unknown_func_rejected(self):
        with pytest.raises(ExecutionError):
            AggSpec("median", "n", "m")


class TestJoins:
    L = Table.from_rows(
        "L",
        Schema.of(("k", VarChar(4)), ("v", INTEGER)),
        [("a", 1), ("b", 2), ("a", 3), (None, 4)],
    )
    R = Table.from_rows(
        "R",
        Schema.of(("k", VarChar(4)), ("w", INTEGER)),
        [("a", 10), ("c", 20), ("a", 30), (None, 40)],
    )

    def test_join_indices_duplicates(self):
        li, ri = relops.join_indices(self.L, self.R, ["k"], ["k"])
        pairs = {(int(a), int(b)) for a, b in zip(li, ri)}
        # rows 0,2 of L match rows 0,2 of R -> 4 pairs
        assert pairs == {(0, 0), (0, 2), (2, 0), (2, 2)}

    def test_nulls_never_join(self):
        li, ri = relops.join_indices(self.L, self.R, ["k"], ["k"])
        assert 3 not in li.tolist() and 3 not in ri.tolist()

    def test_join_tables_prefixes(self):
        out = relops.join_tables(
            self.L, self.R, ["k"], ["k"], left_prefix="l_", right_prefix="r_"
        )
        assert out.schema.names() == ["l_k", "l_v", "r_k", "r_w"]
        assert out.num_rows == 4

    def test_multi_key_join(self):
        li, ri = relops.join_indices(self.L, self.L, ["k", "v"], ["k", "v"])
        # each non-null row matches itself exactly
        assert sorted(zip(li.tolist(), ri.tolist())) == [(0, 0), (1, 1), (2, 2)]

    def test_empty_join(self):
        li, ri = relops.join_indices(self.L, self.R, ["v"], ["w"])
        assert len(li) == 0

    def test_mismatched_keys_raise(self):
        with pytest.raises(ExecutionError):
            relops.join_indices(self.L, self.R, ["k"], [])

    def test_semi_join_mask(self):
        mask = relops.semi_join_mask(self.L, self.R, ["k"], ["k"])
        assert mask.tolist() == [True, False, True, False]

    def test_join_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        lrows = [(int(rng.integers(5)),) for _ in range(50)]
        rrows = [(int(rng.integers(5)),) for _ in range(50)]
        sch = Schema.of(("k", INTEGER))
        lt = Table.from_rows("L", sch, lrows)
        rt = Table.from_rows("R", sch, rrows)
        li, ri = relops.join_indices(lt, rt, ["k"], ["k"])
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i, (lk,) in enumerate(lrows)
            for j, (rk,) in enumerate(rrows)
            if lk == rk
        )
        assert got == expected


class TestUnion:
    def test_union_all(self):
        out = relops.union_all([T, T, T])
        assert out.num_rows == 18

    def test_union_empty_list(self):
        with pytest.raises(ExecutionError):
            relops.union_all([])
