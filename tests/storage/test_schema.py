"""Unit tests for schemas and secondary indexes."""

import numpy as np
import pytest

from repro.dtypes import INTEGER, VarChar
from repro.errors import CatalogError
from repro.storage import Schema, Table
from repro.storage.indexes import HashIndex, SortedIndex, key_tuple, unique_key_codes
from repro.storage.schema import ColumnDef


class TestSchema:
    def test_of_builder(self):
        s = Schema.of(("a", INTEGER), ("b", VarChar(4)))
        assert s.names() == ["a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([ColumnDef("a", INTEGER), ColumnDef("a", INTEGER)])

    def test_index_and_type_of(self):
        s = Schema.of(("a", INTEGER), ("b", VarChar(4)))
        assert s.index_of("b") == 1
        assert s.type_of("b") == VarChar(4)

    def test_unknown_column(self):
        s = Schema.of(("a", INTEGER))
        with pytest.raises(CatalogError):
            s.index_of("z")

    def test_subset_preserves_order(self):
        s = Schema.of(("a", INTEGER), ("b", VarChar(4)), ("c", INTEGER))
        sub = s.subset(["c", "a"])
        assert sub.names() == ["c", "a"]

    def test_concat_with_prefix(self):
        a = Schema.of(("x", INTEGER))
        b = Schema.of(("x", INTEGER))
        merged = a.concat(b, prefix="r_")
        assert merged.names() == ["x", "r_x"]

    def test_ddl_rendering(self):
        s = Schema.of(("a", INTEGER), ("b", VarChar(4)))
        ddl = s.ddl()
        assert "a integer" in ddl and "b varchar(4)" in ddl

    def test_equality(self):
        assert Schema.of(("a", INTEGER)) == Schema.of(("a", INTEGER))
        assert Schema.of(("a", INTEGER)) != Schema.of(("a", VarChar(4)))


TBL = Table.from_rows(
    "T",
    Schema.of(("k", VarChar(4)), ("g", VarChar(4)), ("n", INTEGER)),
    [("a", "x", 1), ("b", "y", 2), ("a", "x", 3), ("c", "y", 4)],
)


class TestHashIndex:
    def test_single_key(self):
        idx = HashIndex(TBL, ["k"])
        assert idx.lookup(("a",)).tolist() == [0, 2]
        assert idx.lookup(("b",)).tolist() == [1]

    def test_missing_key_empty(self):
        idx = HashIndex(TBL, ["k"])
        assert len(idx.lookup(("zzz",))) == 0

    def test_composite_key(self):
        idx = HashIndex(TBL, ["k", "g"])
        assert idx.lookup(("a", "x")).tolist() == [0, 2]

    def test_contains_and_len(self):
        idx = HashIndex(TBL, ["k"])
        assert idx.contains(("c",))
        assert len(idx) == 3


class TestSortedIndex:
    def test_lookup_many(self):
        codes = np.asarray([3, 1, 3, 2, 1], dtype=np.int64)
        idx = SortedIndex(codes)
        rows, qidx = idx.lookup_many(np.asarray([1, 3], dtype=np.int64))
        got = sorted(zip(qidx.tolist(), rows.tolist()))
        assert got == [(0, 1), (0, 4), (1, 0), (1, 2)]

    def test_lookup_no_match(self):
        idx = SortedIndex(np.asarray([5, 6], dtype=np.int64))
        rows, qidx = idx.lookup_many(np.asarray([1], dtype=np.int64))
        assert len(rows) == 0 and len(qidx) == 0


class TestKeyHelpers:
    def test_unique_key_codes(self):
        inv, keys = unique_key_codes(TBL, ["k"])
        assert len(keys) == 3
        # rows 0 and 2 share a key code
        assert inv[0] == inv[2]

    def test_key_tuple(self):
        assert key_tuple(TBL, ["k", "n"], 3) == ("c", 4)
