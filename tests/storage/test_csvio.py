"""Unit tests for atomic CSV ingest and export (Section II-A2)."""

import pytest

from repro.dtypes import DATE, FLOAT, INTEGER, VarChar
from repro.errors import IngestError
from repro.storage import Schema, Table, read_csv_into, write_csv
from repro.storage.csvio import read_csv_text_into

S = Schema.of(
    ("id", VarChar(10)),
    ("n", INTEGER),
    ("price", FLOAT),
    ("day", DATE),
)


def make() -> Table:
    return Table("T", S)


class TestTextIngest:
    def test_basic(self):
        t = make()
        n = read_csv_text_into(t, "a,1,2.5,2016-01-01\nb,2,3.5,2016-01-02\n")
        assert n == 2
        assert t.row(0) == ("a", 1, 2.5, DATE.parse("2016-01-01"))

    def test_header_row_skipped(self):
        t = make()
        n = read_csv_text_into(t, "id,n,price,day\na,1,2.5,2016-01-01\n")
        assert n == 1

    def test_blank_lines_skipped(self):
        t = make()
        n = read_csv_text_into(t, "a,1,2.5,2016-01-01\n\n\nb,2,3.5,2016-01-02\n")
        assert n == 2

    def test_empty_fields_are_null(self):
        t = make()
        read_csv_text_into(t, "a,,,\n")
        _, n, price, day = t.row(0)
        from repro.dtypes.values import DATE_NULL, INT_NULL

        assert n == INT_NULL and price != price and day == DATE_NULL

    def test_wrong_arity_reports_line(self):
        t = make()
        with pytest.raises(IngestError, match=":2"):
            read_csv_text_into(t, "a,1,2.5,2016-01-01\nb,2\n")

    def test_bad_type_reports_column(self):
        t = make()
        with pytest.raises(IngestError, match="'n'"):
            read_csv_text_into(t, "a,notanint,2.5,2016-01-01\n")

    def test_atomicity_on_late_error(self):
        t = make()
        with pytest.raises(IngestError):
            read_csv_text_into(
                t, "a,1,2.5,2016-01-01\nb,2,3.5,2016-01-02\nc,x,1.0,2016-01-03\n"
            )
        assert t.num_rows == 0  # nothing landed

    def test_whitespace_stripped(self):
        t = make()
        read_csv_text_into(t, "a , 1 , 2.5 , 2016-01-01\n")
        assert t.row(0)[0] == "a"

    def test_varchar_overflow_rejected(self):
        t = make()
        with pytest.raises(IngestError, match="varchar"):
            read_csv_text_into(t, "averylongidentifier,1,2.5,2016-01-01\n")


class TestFileRoundtrip:
    def test_write_then_read(self, tmp_path):
        t = make()
        read_csv_text_into(t, "a,1,2.5,2016-01-01\nb,,3.5,\n")
        path = str(tmp_path / "out.csv")
        write_csv(t, path)
        t2 = make()
        n = read_csv_into(t2, path)
        assert n == 2
        assert t2.to_rows() == t.to_rows()

    def test_write_without_header(self, tmp_path):
        t = make()
        read_csv_text_into(t, "a,1,2.5,2016-01-01\n")
        path = str(tmp_path / "nh.csv")
        write_csv(t, path, header=False)
        with open(path) as fh:
            first = fh.readline()
        assert first.startswith("a,")

    def test_missing_file(self):
        with pytest.raises(IngestError, match="not found"):
            read_csv_into(make(), "/nonexistent/file.csv")
