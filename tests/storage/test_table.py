"""Unit tests for columnar tables and columns."""

import numpy as np
import pytest

from repro.dtypes import FLOAT, INTEGER, VarChar
from repro.errors import CatalogError
from repro.storage import Column, Schema, Table
from repro.storage.schema import ColumnDef

S = Schema.of(("id", VarChar(10)), ("n", INTEGER), ("x", FLOAT))
ROWS = [("a", 1, 1.5), ("b", 2, 2.5), ("c", 3, float("nan")), ("d", 4, 4.5)]


@pytest.fixture
def table() -> Table:
    return Table.from_rows("T", S, ROWS)


class TestConstruction:
    def test_from_rows(self, table):
        assert table.num_rows == 4
        assert table.num_columns == 3

    def test_empty_table(self):
        t = Table("E", S)
        assert t.num_rows == 0

    def test_from_texts_parses(self):
        t = Table.from_texts("T", S, [("a", "7", "1.25")])
        assert t.row(0) == ("a", 7, 1.25)

    def test_ragged_columns_rejected(self):
        cols = [
            Column.from_values(VarChar(10), ["a"]),
            Column.from_values(INTEGER, [1, 2]),
            Column.from_values(FLOAT, [1.0]),
        ]
        with pytest.raises(CatalogError):
            Table("bad", S, cols)

    def test_wrong_column_count_rejected(self):
        with pytest.raises(CatalogError):
            Table("bad", S, [Column.empty(INTEGER)])


class TestAccess:
    def test_row(self, table):
        assert table.row(1) == ("b", 2, 2.5)

    def test_nan_survives(self, table):
        x = table.row(2)[2]
        assert x != x

    def test_iter_rows(self, table):
        assert len(list(table.iter_rows())) == 4

    def test_column_by_name(self, table):
        assert table.column("n").values() == [1, 2, 3, 4]

    def test_unknown_column(self, table):
        with pytest.raises(CatalogError):
            table.column("zzz")

    def test_column_dict_zero_copy(self, table):
        d = table.column_dict()
        assert d["n"] is table.column("n").data


class TestRows:
    def test_rows_are_tuples(self, table):
        row = table.row(0)
        assert isinstance(row, tuple)
        assert row == ("a", 1, 1.5)

    def test_name_addressing(self, table):
        row = table.row(1)
        assert row["id"] == row.id == row[0] == "b"
        assert row["n"] == row.n == row[1] == 2

    def test_unknown_name_raises(self, table):
        row = table.row(0)
        with pytest.raises(KeyError, match="zzz"):
            row["zzz"]
        with pytest.raises(AttributeError, match="zzz"):
            row.zzz

    def test_keys_and_as_dict(self, table):
        row = table.row(0)
        assert list(row.keys()) == ["id", "n", "x"]
        assert row.as_dict() == {"id": "a", "n": 1, "x": 1.5}

    def test_positional_unpacking_still_works(self, table):
        rid, n, x = table.row(3)
        assert (rid, n, x) == ("d", 4, 4.5)

    def test_iter_batches_partitions_all_rows(self, table):
        batches = list(table.iter_batches(batch_size=3))
        assert [len(b) for b in batches] == [3, 1]
        flat = [tuple(r) for b in batches for r in b]
        assert flat[0] == ("a", 1, 1.5)
        assert len(flat) == 4

    def test_iter_batches_rejects_bad_size(self, table):
        with pytest.raises(ValueError):
            list(table.iter_batches(batch_size=0))

    def test_iter_rows_yields_named_rows(self, table):
        names = [r.id for r in table.iter_rows()]
        assert names == ["a", "b", "c", "d"]

    def test_row_values_are_python_scalars(self, table):
        row = table.row(1)
        assert type(row[1]) is int
        assert type(row[2]) is float


class TestTransforms:
    def test_take(self, table):
        t = table.take(np.asarray([2, 0]))
        assert [r[0] for r in t.to_rows()] == ["c", "a"]

    def test_filter(self, table):
        mask = np.asarray([True, False, True, False])
        assert table.filter(mask).num_rows == 2

    def test_project(self, table):
        t = table.project(["n", "id"])
        assert t.schema.names() == ["n", "id"]
        assert t.row(0) == (1, "a")

    def test_rename(self, table):
        t = table.rename_columns({"id": "key"})
        assert t.schema.names() == ["key", "n", "x"]

    def test_with_column(self, table):
        col = Column.from_values(INTEGER, [10, 20, 30, 40])
        t = table.with_column(ColumnDef("extra", INTEGER), col)
        assert t.schema.has("extra")
        assert t.row(0)[-1] == 10

    def test_with_column_wrong_length(self, table):
        col = Column.from_values(INTEGER, [1])
        with pytest.raises(CatalogError):
            table.with_column(ColumnDef("bad", INTEGER), col)

    def test_head(self, table):
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 4

    def test_concat(self, table):
        t = table.concat(table)
        assert t.num_rows == 8

    def test_concat_schema_mismatch(self, table):
        other = Table.from_rows("O", Schema.of(("id", VarChar(10))), [("z",)])
        with pytest.raises(CatalogError):
            table.concat(other)


class TestAppendRows:
    def test_append_in_place(self, table):
        table.append_rows([("e", 5, 5.5)])
        assert table.num_rows == 5
        assert table.row(4) == ("e", 5, 5.5)

    def test_append_atomic_on_bad_row(self, table):
        # a row of wrong arity fails before mutation
        with pytest.raises(Exception):
            table.append_rows([("ok", 9, 9.0), ("bad",)])
        assert table.num_rows == 4


class TestColumn:
    def test_null_mask_strings(self):
        c = Column.from_values(VarChar(4), ["a", None, "b"])
        assert c.null_mask().tolist() == [False, True, False]

    def test_null_mask_floats(self):
        c = Column.from_values(FLOAT, [1.0, float("nan")])
        assert c.null_mask().tolist() == [False, True]

    def test_null_mask_int_sentinel(self):
        from repro.dtypes.values import INT_NULL

        c = Column.from_values(INTEGER, [1, INT_NULL])
        assert c.null_mask().tolist() == [False, True]

    def test_nulls_constructor(self):
        c = Column.nulls(INTEGER, 3)
        assert c.null_mask().all()

    def test_concat_type_mismatch(self):
        a = Column.from_values(INTEGER, [1])
        b = Column.from_values(FLOAT, [1.0])
        with pytest.raises(ValueError):
            a.concat(b)

    def test_sort_key_nan_goes_first(self):
        c = Column.from_values(FLOAT, [2.0, float("nan"), 1.0])
        order = np.argsort(c.sort_key(), kind="stable")
        assert order[0] == 1

    def test_value_unboxes_numpy(self):
        c = Column.from_values(INTEGER, [5])
        assert type(c.value(0)) is int


class TestPretty:
    def test_pretty_contains_values(self, table):
        text = table.pretty()
        assert "id" in text and "a" in text

    def test_pretty_limit(self, table):
        text = table.pretty(limit=2)
        assert "4 rows total" in text
