"""Unit tests for expression trees, inference, and vectorized evaluation."""

import numpy as np
import pytest

from repro.dtypes import BOOLEAN, DATE, FLOAT, INTEGER, VarChar
from repro.errors import ExecutionError, TypeCheckError
from repro.storage import Schema, Table
from repro.storage.expr import (
    BinOp,
    ColRef,
    Const,
    Env,
    IsNull,
    Not,
    Param,
    col_refs,
    conjoin,
    conjuncts,
    evaluate,
    evaluate_predicate,
    evaluate_scalar,
    infer_type,
    params,
    substitute_params,
)
from repro.graql.parser import parse_expression

S = Schema.of(
    ("name", VarChar(10)),
    ("n", INTEGER),
    ("x", FLOAT),
    ("d", DATE),
)
T = Table.from_texts(
    "T",
    S,
    [
        ("alice", "10", "1.5", "2016-01-01"),
        ("bob", "20", "2.5", "2016-06-01"),
        ("carol", "", "", ""),
        ("dave", "40", "0.5", "2015-01-01"),
    ],
)


def ev(text: str) -> np.ndarray:
    return evaluate_predicate(parse_expression(text), Env.from_table(T))


class TestEvaluation:
    def test_int_comparison(self):
        assert ev("n > 15").tolist() == [False, True, False, True]

    def test_equality_string(self):
        assert ev("name = 'bob'").tolist() == [False, True, False, False]

    def test_ne_both_spellings(self):
        assert ev("n <> 10").tolist() == ev("n != 10").tolist()

    def test_and_or(self):
        assert ev("n > 15 and x < 1").tolist() == [False, False, False, True]
        assert ev("n = 10 or name = 'bob'").tolist() == [True, True, False, False]

    def test_not(self):
        # NULL row (index 2): n > 15 is False, so 'not' makes it True
        # (documented two-valued NULL semantics)
        assert ev("not n > 15").tolist() == [True, False, True, False]

    def test_null_comparisons_false(self):
        assert not ev("n = 10")[2]
        assert not ev("n <> 10")[2]
        assert not ev("x < 100")[2]

    def test_is_null(self):
        assert ev("n is null").tolist() == [False, False, True, False]
        assert ev("n is not null").tolist() == [True, True, False, True]

    def test_date_string_coercion(self):
        assert ev("d >= '2016-01-01'").tolist() == [True, True, False, False]
        assert ev("'2016-01-01' = d").tolist() == [True, False, False, False]

    def test_arithmetic(self):
        out = evaluate(parse_expression("n + 5"), Env.from_table(T))
        assert out[0] == 15

    def test_arithmetic_null_propagates(self):
        out = evaluate(parse_expression("n * 2"), Env.from_table(T))
        from repro.dtypes.values import INT_NULL

        assert out[2] == INT_NULL

    def test_division_is_float(self):
        out = evaluate(parse_expression("n / 4"), Env.from_table(T))
        assert out[0] == pytest.approx(2.5)

    def test_mixed_arithmetic_comparison(self):
        assert ev("n + x > 21").tolist() == [False, True, False, True]

    def test_unary_minus(self):
        assert evaluate_scalar(parse_expression("-5")) == -5
        assert evaluate_scalar(parse_expression("-(2 + 3)")) == -5

    def test_precedence(self):
        assert evaluate_scalar(parse_expression("2 + 3 * 4")) == 14
        assert evaluate_scalar(parse_expression("(2 + 3) * 4")) == 20

    def test_string_ordering(self):
        assert ev("name < 'c'").tolist() == [True, True, False, False]

    def test_unbound_param_raises(self):
        with pytest.raises(ExecutionError):
            ev("n = %P%")

    def test_non_boolean_condition_raises(self):
        with pytest.raises(ExecutionError):
            evaluate_predicate(parse_expression("n + 1"), Env.from_table(T))

    def test_qualified_ref_against_table_name(self):
        assert ev("T.n > 15").tolist() == [False, True, False, True]

    def test_unknown_qualifier_raises(self):
        with pytest.raises(ExecutionError):
            ev("Other.n > 15")


class TestInference:
    def resolve(self, qualifier, name):
        if S.has(name):
            return S.type_of(name)
        raise TypeCheckError(f"no column {name}")

    def infer(self, text):
        return infer_type(parse_expression(text), self.resolve)

    def test_comparison_is_boolean(self):
        assert self.infer("n > 1") == BOOLEAN

    def test_date_float_rejected(self):
        # the paper's example: comparing a date to a floating-point number
        with pytest.raises(TypeCheckError):
            self.infer("d = 3.14")

    def test_date_string_literal_ok(self):
        assert self.infer("d = '2016-01-01'") == BOOLEAN

    def test_date_bad_string_literal(self):
        with pytest.raises(TypeCheckError):
            self.infer("d = 'hello'")

    def test_string_int_rejected(self):
        with pytest.raises(TypeCheckError):
            self.infer("name = 42")

    def test_arithmetic_types(self):
        assert self.infer("n + 1") is INTEGER
        assert self.infer("n + x") is FLOAT
        assert self.infer("n / 2") is FLOAT

    def test_arithmetic_on_strings_rejected(self):
        with pytest.raises(TypeCheckError):
            self.infer("name + 1")

    def test_logical_needs_boolean(self):
        with pytest.raises(TypeCheckError):
            self.infer("n and x")

    def test_not_needs_boolean(self):
        with pytest.raises(TypeCheckError):
            self.infer("not n")

    def test_unsubstituted_param_rejected(self):
        with pytest.raises(TypeCheckError):
            self.infer("n = %P%")


class TestTreeUtilities:
    def test_col_refs(self):
        e = parse_expression("a.x = 1 and y > b.z")
        refs = col_refs(e)
        assert {(r.qualifier, r.name) for r in refs} == {
            ("a", "x"),
            (None, "y"),
            ("b", "z"),
        }

    def test_params_listing(self):
        e = parse_expression("n = %A% or x = %B%")
        assert sorted(params(e)) == ["A", "B"]

    def test_substitute_params(self):
        e = parse_expression("n = %A%")
        out = substitute_params(e, {"A": 7})
        assert params(out) == []
        assert isinstance(out.right, Const) and out.right.value == 7

    def test_substitute_missing_raises(self):
        with pytest.raises(ExecutionError):
            substitute_params(parse_expression("n = %A%"), {})

    def test_conjuncts_roundtrip(self):
        e = parse_expression("a = 1 and b = 2 and c = 3")
        cj = conjuncts(e)
        assert len(cj) == 3
        again = conjoin(cj)
        assert conjuncts(again) == cj

    def test_conjuncts_respects_or(self):
        e = parse_expression("a = 1 and (b = 2 or c = 3)")
        assert len(conjuncts(e)) == 2

    def test_expr_equality_and_hash(self):
        a = parse_expression("x = 1 and y > 2")
        b = parse_expression("x = 1 and y > 2")
        assert a == b
        assert hash(a) == hash(b)
        assert a != parse_expression("x = 1 and y > 3")

    def test_walk_visits_all(self):
        e = parse_expression("not (a = 1)")
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds[0] == "Not"
        assert "BinOp" in kinds and "ColRef" in kinds


class TestConstTyping:
    def test_int_literal(self):
        assert Const(5).dtype is INTEGER

    def test_float_literal(self):
        assert Const(2.5).dtype is FLOAT

    def test_bool_literal(self):
        assert Const(True).dtype is BOOLEAN

    def test_str_literal(self):
        assert Const("ab").dtype.kind == "string"

    def test_bad_op(self):
        with pytest.raises(ValueError):
            BinOp("%%", Const(1), Const(2))
