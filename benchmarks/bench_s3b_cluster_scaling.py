"""S3B-DIST — distributed execution on the simulated cluster.

Reports, per worker count: execution time, messages, bytes moved,
supersteps, and load imbalance for a 3-hop Berlin path query.  The shape
facts the paper's design argues for: partition-local work shrinks with
workers (aggregate-memory scaling) while communication grows with the cut.
"""

import pytest

from repro.dist import Cluster

QUERY = (
    "select * from graph PersonVtx (country = 'US') <--reviewer-- "
    "ReviewVtx ( ) --reviewFor--> ProductVtx ( ) --producer--> "
    "ProducerVtx ( ) into subgraph {}"
)


@pytest.mark.parametrize("workers", [1, 2, 4, 8, 16])
def test_s3b_cluster_scaling(benchmark, berlin_bench_db, workers):
    db = berlin_bench_db
    cluster = Cluster(db.db, workers, db.catalog)

    counter = [0]

    def run():
        counter[0] += 1
        cluster.reset_stats()
        return cluster.execute(QUERY.format(f"cs{workers}_{counter[0]}"))

    results = benchmark(run)
    stats = cluster.comm_stats()
    balance = cluster.edge_balance()
    mem = cluster.memory_per_worker()
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["messages"] = stats["messages"]
    benchmark.extra_info["kb_moved"] = round(stats["bytes"] / 1024, 1)
    benchmark.extra_info["supersteps"] = stats["supersteps"]
    benchmark.extra_info["imbalance"] = round(balance["imbalance"], 3)
    benchmark.extra_info["max_worker_memory_kb"] = round(max(mem) / 1024, 1)
    assert results[0].subgraph.num_vertices > 0


def test_s3b_memory_scales_down(benchmark, berlin_bench_db):
    """Aggregate-memory claim: the partitionable edge payload shrinks
    ~linearly with workers (CSR indptr is a fixed per-worker overhead of
    the global-vid shard layout and is reported separately)."""
    db = berlin_bench_db
    total, payload = {}, {}

    def run():
        for w in (1, 4, 16):
            cluster = Cluster(db.db, w, db.catalog)
            total[w] = max(cluster.memory_per_worker())
            payload[w] = max(cluster.memory_per_worker(payload_only=True))

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_kb"] = {w: round(v / 1024, 1) for w, v in total.items()}
    benchmark.extra_info["payload_kb"] = {w: round(v / 1024, 1) for w, v in payload.items()}
    assert total[4] < total[1] and total[16] < total[4]
    # payload partitions near-linearly
    assert payload[16] < payload[1] / 8
