"""PLAN-1 — secondary attribute indexes under the cost-based planner.

The tentpole claim: a selective (<1%) anchor predicate answered by an
index seek beats the vectorized full scan by >= 5x, and the planner
picks the seek on its own from column statistics.  Also gates the
vectorized HashIndex build (key factorization + grouped argsort) against
the per-row Python loop it replaced.

Run with ``--benchmark-disable`` for the CI correctness/ratio gates only.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Database
from repro.obs import Hints, QueryOptions
from repro.storage.indexes import HashIndex
from repro.storage.table import Table

N_PEOPLE = 200_000
#: 'rare' is given to ~0.25% of people — the selective anchor
RARE_FRAC = 0.0025

SEEK_Q = (
    "select * from graph Person (city = 'rare') --knows--> "
    "Person ( ) into subgraph {}"
)


@pytest.fixture(scope="module")
def indexed_db():
    rng = np.random.default_rng(11)
    db = Database()
    db.execute(
        """
        create table People(id integer, city varchar(16), age integer)
        create table Knows(src integer, dst integer)
        create vertex Person(id) from table People
        create edge knows with vertices (Person as A, Person as B)
        from table Knows where Knows.src = A.id and Knows.dst = B.id
        """
    )
    cities = ["rome", "oslo", "lima", "kiev", "bonn", "reno", "cork"]
    draw = rng.random(N_PEOPLE)
    people = [
        (
            i,
            "rare" if draw[i] < RARE_FRAC else cities[i % len(cities)],
            int(20 + i % 60),
        )
        for i in range(N_PEOPLE)
    ]
    edges = [(i, (i * 13 + 1) % N_PEOPLE) for i in range(N_PEOPLE)]
    db.db.ingest_rows("People", people)
    db.db.ingest_rows("Knows", edges)
    db.catalog.refresh(db.db)
    db.execute("create index by_city on Person(city)")
    # warm up: collects the column statistics the planner will use
    db.execute(SEEK_Q.format("warm"))
    return db


def test_planner_picks_seek_for_selective_anchor(benchmark, indexed_db):
    db = indexed_db

    def run():
        return db.execute(SEEK_Q.format("pick"))

    results = benchmark(run)
    p = results[0].profile
    ap = p.atoms[0]
    assert ap.access == "index-seek(by_city)"
    assert ap.access_forced is None  # chosen by cost, not by hint
    assert p.attr_seeks == 1
    benchmark.extra_info["access"] = ap.access
    benchmark.extra_info["est_rows"] = ap.access_est


def test_index_seek_speedup_gate(benchmark, indexed_db):
    """CI gate: forced seek >= 5x faster than forced scan on the
    selective anchor."""
    db = indexed_db
    reps = 5
    out = {}

    def run():
        t0 = time.perf_counter()
        for i in range(reps):
            db.execute(
                SEEK_Q.format(f"sc{i}"),
                options=QueryOptions(hints=Hints(no_index=("by_city",))),
            )
        out["scan"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(reps):
            db.execute(
                SEEK_Q.format(f"sk{i}"),
                options=QueryOptions(hints=Hints(use_index=("by_city",))),
            )
        out["seek"] = time.perf_counter() - t0
        return out

    benchmark(run)
    speedup = out["scan"] / max(out["seek"], 1e-9)
    benchmark.extra_info["scan_s"] = round(out["scan"], 4)
    benchmark.extra_info["seek_s"] = round(out["seek"], 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 5.0, (
        f"index-seek speedup {speedup:.1f}x below the 5x gate "
        f"(scan {out['scan']:.4f}s, seek {out['seek']:.4f}s)"
    )


def _naive_hash_build(table: Table, key_names):
    """The per-row loop the vectorized HashIndex build replaced."""
    cols = [table.column(k) for k in key_names]
    frozen: dict[tuple, list[int]] = {}
    for row in range(table.num_rows):
        key = tuple(c.value(row) for c in cols)
        frozen.setdefault(key, []).append(row)
    return {k: np.asarray(v, dtype=np.int64) for k, v in frozen.items()}


def test_hash_index_build_vectorized(benchmark, indexed_db):
    """CI gate: the vectorized build beats the per-row loop >= 2x and
    produces identical groups."""
    table = indexed_db.db.table("People")
    out = {}

    def run():
        t0 = time.perf_counter()
        idx = HashIndex(table, ["city", "age"])
        out["vectorized"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive = _naive_hash_build(table, ["city", "age"])
        out["naive"] = time.perf_counter() - t0
        out["idx"], out["ref"] = idx, naive
        return idx

    benchmark(run)
    idx, ref = out["idx"], out["ref"]
    for key, rows in ref.items():
        np.testing.assert_array_equal(np.sort(idx.lookup(key)), np.sort(rows))
    ratio = out["naive"] / max(out["vectorized"], 1e-9)
    benchmark.extra_info["build_s"] = round(out["vectorized"], 4)
    benchmark.extra_info["naive_s"] = round(out["naive"], 4)
    benchmark.extra_info["ratio"] = round(ratio, 2)
    assert ratio >= 2.0, (
        f"vectorized HashIndex build only {ratio:.1f}x faster than the "
        f"per-row loop"
    )
