"""THROUGHPUT — the paper's stated objective.

    "The principal intent is to minimize per query processing time and
    maximize throughput." (Section I)

A mixed workload drawn from the Berlin BI query catalog, executed
back-to-back: the benchmark reports queries/second for the in-memory
engine, plus a parameterized-reuse variant (same template, varying
parameters) that models the paper's "dynamic, just-in-time" query
environment.
"""

import numpy as np
import pytest

from repro.workloads.berlin import QUERIES, generate_berlin

#: templates cheap enough to run many times per round
MIX = ["berlin_q2", "fig9_type_match", "bi_reviewers", "bi_features"]


def test_throughput_mixed_workload(benchmark, berlin_bench_db, berlin_bench_data):
    db = berlin_bench_db
    rng = np.random.default_rng(17)
    # pre-draw parameters so the measured loop is pure query execution
    batch = []
    for i in range(12):
        name = MIX[i % len(MIX)]
        spec = QUERIES[name]
        batch.append((spec.graql, spec.params(rng, berlin_bench_data)))

    def run():
        out = 0
        for graql, params in batch:
            results = db.execute(graql, params)
            out += results[-1].count
        return out

    benchmark(run)
    benchmark.extra_info["queries_per_round"] = len(batch)
    benchmark.extra_info["note"] = "multiply OPS by queries_per_round for q/s"


def test_throughput_parameter_reuse(benchmark, berlin_bench_db):
    """One template, many parameter bindings (prepared-statement style)."""
    db = berlin_bench_db
    from repro.graql.parser import parse_script

    script = parse_script(QUERIES["berlin_q2"].graql)
    from repro.query.executor import execute_statement

    counter = [0]

    def run():
        counter[0] = (counter[0] + 1) % 50
        params = {"Product1": f"product{counter[0]}"}
        out = None
        for stmt in script.statements:
            out = execute_statement(db.db, db.catalog, stmt, params)
        return out

    result = benchmark(run)
    assert result.table.num_rows <= 10
