"""ABL-STRAT — executor-strategy ablation (design choice in DESIGN.md).

The same subgraph query run under both strategies: the set-frontier
two-pass (per-step sets, linear in traversed edges) vs forced path
enumeration (bindings).  The set strategy's advantage grows with path
multiplicity — the reason the planner defaults to it for subgraph
results.
"""

import pytest

from repro.obs import QueryOptions
from repro.workloads.berlin import berlin_database

# high-multiplicity pattern: person -> reviews -> products -> offers
QUERY = (
    "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
    "--reviewFor--> ProductVtx ( ) <--product-- OfferVtx ( ) "
    "into subgraph {}"
)


@pytest.mark.parametrize("strategy", ["set", "bindings"])
def test_ablation_strategy(benchmark, berlin_bench_db, strategy):
    db = berlin_bench_db
    counter = [0]

    def run():
        counter[0] += 1
        return db.execute(
            QUERY.format(f"ab_{strategy}_{counter[0]}"),
            options=QueryOptions(strategy=strategy),
        )

    results = benchmark(run)
    sg = results[0].subgraph
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["vertices"] = sg.num_vertices
    benchmark.extra_info["edges"] = sg.num_edges


def test_ablation_strategies_agree(benchmark, berlin_bench_db):
    db = berlin_bench_db
    out = {}

    def run():
        out["a"] = db.execute(QUERY.format("agA"), options=QueryOptions(strategy="set"))[0].subgraph
        out["b"] = db.execute(QUERY.format("agB"), options=QueryOptions(strategy="bindings"))[0].subgraph

    benchmark.pedantic(run, rounds=1, iterations=1)
    a, b = out["a"], out["b"]
    assert {k: v.tolist() for k, v in a.vertices.items()} == {
        k: v.tolist() for k, v in b.vertices.items()
    }
    assert {k: v.tolist() for k, v in a.edges.items()} == {
        k: v.tolist() for k, v in b.edges.items()
    }


def test_ablation_set_wins_at_scale(benchmark):
    """Shape: set-frontier beats enumeration on multiplicity-heavy
    subgraph queries at scale."""
    import time

    db = berlin_database(scale=1000, seed=9)
    reps = 3
    out = {}

    def run():
        t0 = time.perf_counter()
        for i in range(reps):
            db.execute(QUERY.format(f"s{i}"), options=QueryOptions(strategy="set"))
        out["set"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(reps):
            db.execute(QUERY.format(f"b{i}"), options=QueryOptions(strategy="bindings"))
        out["bindings"] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["set_ms"] = round(out["set"] / reps * 1e3, 2)
    benchmark.extra_info["bindings_ms"] = round(out["bindings"] / reps * 1e3, 2)
    assert out["set"] < out["bindings"], out
