"""FIG10 — path regular expressions over variant steps.

Measures ``+`` closure (subclass-hierarchy reachability), ``*``, and
``{n}`` exact repetition on chains of growing length, demonstrating the
fixpoint evaluation's termination and scaling.
"""

import pytest

from repro import Database
from repro.workloads.berlin import Q_REGEX


def chain_database(n: int) -> Database:
    db = Database()
    db.execute(
        """
        create table N(id integer)
        create table E(src integer, dst integer)
        create vertex V(id) from table N
        create edge next with vertices (V as A, V as B) from table E
        where E.src = A.id and E.dst = B.id
        """
    )
    db.db.ingest_rows("N", [(i,) for i in range(n)])
    db.db.ingest_rows("E", [(i, i + 1) for i in range(n - 1)])
    db.catalog.refresh(db.db)
    return db


def test_fig10_subclass_closure(benchmark, berlin_bench_db):
    db = berlin_bench_db
    leaf = db.query(
        "select distinct type from table ProductTypes order by type desc"
    ).row(0)[0]

    def run():
        return db.query_subgraph(Q_REGEX, params={"Type1": leaf})

    sg = benchmark(run)
    benchmark.extra_info["ancestors"] = int(sg.vertex_ids("TypeVtx").size)


@pytest.mark.parametrize("length", [64, 256, 1024])
def test_fig10_plus_closure_chain(benchmark, length):
    db = chain_database(length)

    def run():
        return db.query_subgraph(
            "select * from graph V (id = 0) ( --next--> [ ] )+ V ( ) "
            "into subgraph R"
        )

    sg = benchmark(run)
    benchmark.extra_info["chain_length"] = length
    assert sg.vertex_ids("V").size == length  # start + all reachable


@pytest.mark.parametrize("count", [2, 8])
def test_fig10_counted_repetition(benchmark, count):
    db = chain_database(64)

    def run():
        return db.query_subgraph(
            "select * from graph V (id = 0) ( --next--> [ ] ){%d} V ( ) "
            "into subgraph R" % count
        )

    sg = benchmark(run)
    assert sg.vertex_ids("V").size == count + 1  # the exact-length path
