"""FIG1 — the Berlin logical data model (Fig. 1) built as views.

Measures end-to-end database construction: DDL execution plus ingest with
atomic rebuild of all 8 vertex views, 8+ edge views and their
bidirectional CSR indexes.  The paper's design claim is that graph views
over tables are cheap enough to rebuild wholesale on ingest.
"""

import pytest

from repro.workloads.berlin import BERLIN_DDL, berlin_database, generate_berlin


@pytest.mark.parametrize("scale", [100, 300])
def test_fig01_full_build(benchmark, scale):
    data = generate_berlin(scale, seed=1)

    def build():
        from repro import Database

        db = Database()
        db.execute(BERLIN_DDL)
        for name, rows in data.tables.items():
            db.db.ingest_rows(name, rows)
        db.catalog.refresh(db.db)
        return db

    db = benchmark(build)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["vertices"] = db.db.total_vertices()
    benchmark.extra_info["edges"] = db.db.total_edges()
    assert db.db.total_edges() > 0
    assert db.db.check_partition_invariants()


def test_fig01_incremental_ingest(benchmark):
    """Atomic ingest cost: append rows + rebuild dependent views.

    Uses its own database: ingest mutates state, and the session-shared
    fixture must stay read-only for the other benchmarks.
    """
    db = berlin_database(scale=300, seed=1)
    rows = [
        (
            f"extra{i}",
            "Product",
            f"label{i}",
            "c",
            "producer0",
            1, 2, 3, 4, 5,
            "t", "t", "t", "t", "t",
            "pub1",
            730000,
        )
        for i in range(50)
    ]

    counter = [0]

    def ingest_batch():
        batch = [
            (f"x{counter[0]}_{i}",) + r[1:] for i, r in enumerate(rows)
        ]
        counter[0] += 1
        db.db.ingest_rows("Products", batch)

    benchmark(ingest_batch)
    benchmark.extra_info["dependent_views_rebuilt"] = 5  # product views/edges
