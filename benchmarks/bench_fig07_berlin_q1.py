"""FIG7/FIG8 — Berlin Query 1: multi-path composition with a foreach label.

The verbatim Fig. 7 script: the review path and the type path joined on
the element-wise ``y`` label (the Fig. 8 branch point), then the top-k
group count.
"""

import pytest

from repro.workloads.berlin import COUNTRIES, Q1_FIG7


def test_fig07_berlin_q1(benchmark, berlin_bench_db):
    db = berlin_bench_db
    params = {"Country1": COUNTRIES[0], "Country2": COUNTRIES[1]}

    def run():
        return db.query(Q1_FIG7, params=params)

    table = benchmark(run)
    benchmark.extra_info["result_rows"] = table.num_rows
    assert list(table.schema.names()) == ["id", "groupCount"]


def test_fig07_and_composition_only(benchmark, berlin_bench_db):
    """The multi-path graph part in isolation (bindings + label join)."""
    db = berlin_bench_db
    graph_part = Q1_FIG7.split("select top 10")[0].replace(
        "into table T1", "into table T1benchQ1"
    )
    params = {"Country1": COUNTRIES[0], "Country2": COUNTRIES[1]}

    def run():
        return db.execute(graph_part, params=params)

    results = benchmark(run)
    benchmark.extra_info["joined_paths"] = results[0].table.num_rows
