"""Devcheck self-scan wall time.

``graql devcheck src/repro`` runs in CI on every push, so its cost is a
budget, not a curiosity: the whole scan — model build, fixpoint
summaries, every pass, baseline filtering — must finish in under 10
seconds (the acceptance bound from the devlint design; in practice it is
~2s for the ~100-module tree).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.devlint import Baseline, run_devcheck

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src" / "repro")
BASELINE = str(REPO_ROOT / "devlint-baseline.json")

BUDGET_SECONDS = 10.0


def test_devcheck_self_scan_under_budget(benchmark):
    def scan():
        return run_devcheck([SRC], baseline=Baseline.load(BASELINE))

    start = time.perf_counter()
    result = benchmark.pedantic(scan, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    assert result.diagnostics == [], result.render_text()
    assert elapsed < BUDGET_SECONDS, (
        f"devcheck self-scan took {elapsed:.2f}s, budget is "
        f"{BUDGET_SECONDS:.0f}s"
    )
    benchmark.extra_info["files_scanned"] = result.files_scanned
    benchmark.extra_info["suppressed"] = result.suppressed
    benchmark.extra_info["budget_seconds"] = BUDGET_SECONDS
