"""NET-1 — the wire tax (docs/NETWORK.md).

Measures what the network layer costs relative to the in-process path
on identical workloads against one shared engine:

1. **One-shot latency**: `RemoteConnection.execute` vs. the same
   statement through an in-process IR-transport connection.  The remote
   path adds framing, one socket round trip and result re-
   materialization; asserted only to stay within a sane multiple, since
   loopback latency dwarfs nothing here.
2. **Prepared vs. one-shot over the wire**: prepared execution skips
   the per-request front-end compile exactly as it does in-process —
   asserted faster than one-shot against a *cold* plan cache (the
   apples-to-apples case; a warm plan cache makes one-shot equivalent,
   which is the cache doing its job), and row-identical.
3. **Streamed row throughput**: rows/second through BATCH frames for a
   multi-thousand-row result, recorded for EXPERIMENTS.md.

Correctness is asserted throughout (remote rows == local rows), so the
benchmark doubles as a regression test under ``--benchmark-disable``.
"""

from __future__ import annotations

import time

from repro import Database, connect
from repro.net import GraqlServer

# remote one-shot must stay within this multiple of in-process one-shot
# on loopback (it pays framing + a round trip + re-materialization)
WIRE_TAX_CEILING = 25.0
# prepared must beat one-shot-that-compiles, modulo measurement noise
PREPARED_NOISE_MARGIN = 1.1

ROWS = 4000
QUERY = "select id, name, age from table People where age > %MinAge%"


def _bench_db() -> Database:
    db = Database()
    db.execute(
        "create table People(id varchar(10), name varchar(16), age integer)"
    )
    db.ingest_rows(
        "People",
        [(f"p{i}", f"N{i}", 20 + i % 60) for i in range(ROWS)],
    )
    return db


def _time(fn, rounds: int) -> float:
    fn()  # warm (connection buffers, cache, allocator)
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - t0) / rounds


def test_wire_tax_and_prepared_speedup(benchmark):
    db = _bench_db()
    srv = GraqlServer(db)
    srv.start()
    rounds = 30
    try:
        remote = connect(srv.url)
        local = connect(db.server, transport="ir")
        params = {"MinAge": 70}

        expected = sorted(
            tuple(r)
            for r in local.execute(QUERY, params=params)[-1].table.iter_rows()
        )

        def remote_one_shot():
            return remote.execute(QUERY, params=params)[-1].table

        def local_one_shot():
            return local.execute(QUERY, params=params)[-1].table

        assert sorted(tuple(r) for r in remote_one_shot().iter_rows()) == expected

        remote_s = _time(remote_one_shot, rounds)
        local_s = _time(local_one_shot, rounds)
        tax = remote_s / local_s
        assert tax <= WIRE_TAX_CEILING, (
            f"remote one-shot {tax:.1f}x in-process (ceiling "
            f"{WIRE_TAX_CEILING}x): the wire is charging too much"
        )

        ps = remote.prepare(QUERY)
        assert (
            sorted(tuple(r) for r in ps.execute(params)[-1].table.iter_rows())
            == expected
        )
        def remote_prepared():
            return ps.execute(params)[-1].table

        cache = db.server.serving.cache

        def remote_one_shot_cold():
            # a cold plan cache: every request pays the full front end,
            # which is exactly what prepare() amortizes away
            cache.invalidate()
            return remote.execute(QUERY, params=params)[-1].table

        prepared_s = _time(remote_prepared, rounds)
        cold_s = _time(remote_one_shot_cold, rounds)
        assert prepared_s <= cold_s * PREPARED_NOISE_MARGIN, (
            f"prepared {prepared_s * 1e3:.2f}ms vs cold one-shot "
            f"{cold_s * 1e3:.2f}ms over the wire: binding-only execution "
            f"must not cost more than recompiling"
        )

        # streamed row throughput through a row-at-a-time-free cursor
        cur = remote.cursor(batch_size=512)
        t0 = time.perf_counter()
        cur.execute("select id, name, age from table People")
        n = len(cur.fetchall())
        stream_s = time.perf_counter() - t0
        assert n == ROWS
        rows_per_s = n / stream_s

        benchmark.pedantic(remote_one_shot, rounds=rounds, iterations=1)
        benchmark.extra_info["remote_one_shot_ms"] = round(remote_s * 1e3, 3)
        benchmark.extra_info["remote_cold_one_shot_ms"] = round(cold_s * 1e3, 3)
        benchmark.extra_info["local_one_shot_ms"] = round(local_s * 1e3, 3)
        benchmark.extra_info["remote_prepared_ms"] = round(prepared_s * 1e3, 3)
        benchmark.extra_info["wire_tax"] = round(tax, 2)
        benchmark.extra_info["stream_rows_per_s"] = int(rows_per_s)
        remote.close()
    finally:
        srv.shutdown()
