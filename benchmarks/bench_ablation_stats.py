"""ABL-STATS — what catalog statistics buy the planner (Section III-B).

    "further analysis can be performed with respect to dynamic properties
    of the data ... number of instances of vertex and edge types, as well
    as statistical properties of the degree distribution"

Compares the planner's direction decisions with full catalog statistics
against a statistics-stripped catalog (no per-attribute distinct counts):
on queries whose selectivity hides behind an equality filter on a
non-key attribute, the stats-less planner misjudges the cheap end.
"""

import copy

import pytest

from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement
from repro.query.planner import plan_graph_select

# country is low-cardinality; id is unique: only statistics reveal that
# filtering ProducerVtx by id is far more selective than PersonVtx by country
QUERY = (
    "select * from graph PersonVtx (country = 'US') <--reviewer-- "
    "ReviewVtx ( ) --reviewFor--> ProductVtx ( ) --producer--> "
    "ProducerVtx (id = 'producer1') into subgraph g"
)


def strip_stats(catalog):
    bare = copy.deepcopy(catalog)
    for vm in bare.vertices.values():
        vm.distinct_counts = {}
    return bare


def test_ablation_stats_direction_quality(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    checked = check_statement(parse_statement(QUERY), catalog)
    out = {}

    def run():
        out["with"] = plan_graph_select(checked, catalog)
        out["without"] = plan_graph_select(checked, strip_stats(catalog))

    benchmark.pedantic(run, rounds=1, iterations=1)
    with_stats = out["with"]
    without = out["without"]
    ap_with = next(iter(with_stats.atom_plans.values()))
    ap_without = next(iter(without.atom_plans.values()))
    # with statistics the unique-id end wins clearly
    assert ap_with.direction == "backward"
    # and the estimated gap is much larger than the stats-less guess
    gap_with = ap_with.cost_forward / max(ap_with.cost_backward, 1e-9)
    gap_without = ap_without.cost_forward / max(ap_without.cost_backward, 1e-9)
    assert gap_with > gap_without


def test_ablation_stats_planning_cost(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    checked = check_statement(parse_statement(QUERY), catalog)

    def run():
        return plan_graph_select(checked, catalog)

    plan = benchmark(run)
    ap = next(iter(plan.atom_plans.values()))
    benchmark.extra_info["direction"] = ap.direction
    benchmark.extra_info["cost_fwd"] = round(ap.cost_forward, 1)
    benchmark.extra_info["cost_bwd"] = round(ap.cost_backward, 1)
