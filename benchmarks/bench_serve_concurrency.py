"""SERVE-1 — the serving layer's two performance claims (docs/API.md).

1. **Plan cache**: a cache hit replaces the cold front-end pipeline
   (parse -> typecheck -> plan resolution) with a key computation and an
   LRU lookup.  Asserted: the hit path is >= 5x faster than the compile
   work it skips.
2. **Concurrent serving**: read-only submissions share the catalog under
   the read lock and run on the worker pool.  Asserted: with 8 workers a
   batch of selects completes >= 2x faster than with 1 worker — gated on
   ``os.cpu_count() >= 2`` because a single hardware thread cannot run
   two Python workers at once; on 1-core hosts the assertion degrades to
   a sanity floor (the pool must not *lose* more than half its
   single-worker throughput to coordination overhead).

Both halves also assert result correctness, so the benchmark doubles as
a regression test under ``--benchmark-disable`` in CI.
"""

from __future__ import annotations

import os
import time

from repro import Database
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_statement

CACHE_SPEEDUP_FLOOR = 5.0
PARALLEL_SPEEDUP_FLOOR = 2.0
ONE_CORE_SANITY_FLOOR = 0.5

DDL = """
create table People(id varchar(10), name varchar(16), country varchar(8),
                    age integer)
create table Follows(src varchar(10), dst varchar(10))
create vertex Person(id) from table People
create edge follows with vertices (Person as A, Person as B)
from table Follows
where Follows.src = A.id and Follows.dst = B.id
"""

QUERY = (
    "select y.id from graph Person (age > 30) --follows--> "
    "def y: Person (country = 'US')"
)


def _bench_db(serving_opts=None) -> Database:
    db = Database(serving_opts=serving_opts)
    db.execute(DDL)
    db.ingest_rows(
        "People",
        [
            (f"p{i}", f"N{i}", "US" if i % 3 else "DE", 20 + i % 50)
            for i in range(500)
        ],
    )
    db.ingest_rows(
        "Follows", [(f"p{i}", f"p{(i * 7 + 1) % 500}") for i in range(1500)]
    )
    return db


def test_cache_hit_beats_cold_compile(benchmark):
    db = _bench_db()
    rounds = 200

    def cold_compile() -> None:
        script = parse_script(QUERY)
        for stmt in script.statements:
            check_statement(stmt, db.catalog)

    # populate, then time the hit path the engine runs instead of compiling
    db.execute(QUERY)
    cache = db.server.serving.cache

    def cache_hit():
        key = cache.key(QUERY, None, db.catalog.epoch)
        return cache.lookup(key)

    assert cache_hit() is not None

    t0 = time.perf_counter()
    for _ in range(rounds):
        cold_compile()
    compile_s = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    for _ in range(rounds):
        cache_hit()
    hit_s = (time.perf_counter() - t0) / rounds

    speedup = compile_s / hit_s
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"plan-cache hit only {speedup:.1f}x faster than cold compile "
        f"(floor {CACHE_SPEEDUP_FLOOR}x)"
    )
    # and a hit returns the same rows as a cold execution
    warm = db.query(QUERY)
    db.server.serving.cache.invalidate()
    cold = db.query(QUERY)
    assert sorted(map(tuple, warm.iter_rows())) == sorted(
        map(tuple, cold.iter_rows())
    )

    benchmark.pedantic(cache_hit, rounds=rounds, iterations=1)
    benchmark.extra_info["compile_ms"] = round(compile_s * 1000, 4)
    benchmark.extra_info["hit_ms"] = round(hit_s * 1000, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)


def _run_batch(db: Database, submissions: int) -> float:
    """Wall-clock seconds to drain *submissions* pooled read queries."""
    serving = db.server.serving
    expected = db.query(QUERY).num_rows

    def one() -> int:
        return db.query(QUERY).num_rows

    t0 = time.perf_counter()
    futures = [
        serving.submit_work("admin", False, one) for _ in range(submissions)
    ]
    counts = [f.result(timeout=120) for f in futures]
    elapsed = time.perf_counter() - t0
    assert counts == [expected] * submissions
    serving.close()
    return elapsed


def test_parallel_read_throughput(benchmark):
    submissions = 24
    serial = _run_batch(_bench_db({"max_workers": 1, "max_queue": 64}), submissions)
    pooled = _run_batch(_bench_db({"max_workers": 8, "max_queue": 64}), submissions)
    speedup = serial / pooled

    cores = os.cpu_count() or 1
    if cores >= 2:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"8 workers only {speedup:.2f}x over 1 worker on {cores} cores "
            f"(floor {PARALLEL_SPEEDUP_FLOOR}x)"
        )
    else:
        # one hardware thread: parallel speedup is impossible, but the
        # pool must not collapse under its own coordination
        assert speedup >= ONE_CORE_SANITY_FLOOR, (
            f"8-worker pool at {speedup:.2f}x of single-worker throughput "
            f"on a 1-core host (sanity floor {ONE_CORE_SANITY_FLOOR}x)"
        )

    def run():
        return _run_batch(
            _bench_db({"max_workers": 8, "max_queue": 64}), submissions
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["submissions"] = submissions
    benchmark.extra_info["serial_s"] = round(serial, 4)
    benchmark.extra_info["pooled_s"] = round(pooled, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
