"""FIG11 + FIG12 + FIG13 — result capture and chaining (Section II-C).

* Fig. 11: ``select *`` vs endpoint projection into subgraphs;
* Fig. 12: seeding a second query from a named result subgraph;
* Fig. 13: the full matching subgraph materialized as a wide table with
  every step's attributes.
"""

import pytest

from repro.workloads.berlin import Q_FIG11, Q_FIG13


def test_fig11_star_capture(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query_subgraph(
            "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
            "--reviewFor--> ProductVtx ( ) into subgraph fig11star"
        )

    sg = benchmark(run)
    benchmark.extra_info["vertices"] = sg.num_vertices
    benchmark.extra_info["edges"] = sg.num_edges


def test_fig11_endpoint_projection(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query_subgraph(Q_FIG11, params={"Country1": "US"})

    sg = benchmark(run)
    assert sg.num_edges == 0


def test_fig12_chained_queries(benchmark, berlin_bench_db):
    db = berlin_bench_db
    script = """
    select ReviewVtx from graph
    ProductVtx (propertyNumeric_1 > 1500) <--reviewFor-- ReviewVtx ( )
    into subgraph fig12seed

    select PersonVtx.id from graph
    fig12seed.ReviewVtx ( ) --reviewer--> PersonVtx ( )
    into table fig12out
    """

    def run():
        return db.execute(script)

    results = benchmark(run)
    benchmark.extra_info["seeded_rows"] = results[1].table.num_rows


def test_fig12_seeding_cheaper_than_full(benchmark, berlin_bench_db):
    """Seeded second query must beat the unseeded equivalent."""
    import time

    db = berlin_bench_db
    db.execute(
        "select ReviewVtx from graph ProductVtx (propertyNumeric_1 > 1900) "
        "<--reviewFor-- ReviewVtx ( ) into subgraph tinySeed"
    )

    def seeded():
        return db.query(
            "select PersonVtx.id from graph tinySeed.ReviewVtx ( ) "
            "--reviewer--> PersonVtx ( ) into table seededOut"
        )

    benchmark(seeded)
    t0 = time.perf_counter()
    full = db.query(
        "select PersonVtx.id from graph ReviewVtx ( ) --reviewer--> "
        "PersonVtx ( ) into table fullOut"
    )
    full_time = time.perf_counter() - t0
    benchmark.extra_info["full_query_seconds"] = round(full_time, 6)
    benchmark.extra_info["full_rows"] = full.num_rows


def test_fig13_wide_table(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query(Q_FIG13, params={"Threshold": 1000})

    table = benchmark(run)
    benchmark.extra_info["rows"] = table.num_rows
    benchmark.extra_info["columns"] = table.num_columns
    # all three steps' attributes plus edge attrs appear
    assert table.num_columns > 30
