"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact (figure or table — see the
per-experiment index in DESIGN.md) and records the *shape* facts the paper
claims in ``benchmark.extra_info`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.berlin import berlin_database, generate_berlin

BENCH_SCALE = 300
BENCH_SEED = 42


@pytest.fixture(scope="session")
def berlin_bench_db():
    return berlin_database(scale=BENCH_SCALE, seed=BENCH_SEED, with_export=True)


@pytest.fixture(scope="session")
def berlin_bench_data():
    return generate_berlin(BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def berlin_large_db():
    return berlin_database(scale=1000, seed=BENCH_SEED, with_export=False)
