"""FIG2/FIG3/APPENDIX — front-end processing of the paper's verbatim DDL.

Measures the client/front-end pipeline of Section III on the Appendix-A +
Figs. 2-3 declarations: lex + parse, static analysis against the catalog,
and binary-IR encode/decode round-trip.  These are the costs a GEMS
front-end pays before anything reaches the backend.
"""

import pytest

from repro.catalog import Catalog
from repro.graql.compiler import compile_script
from repro.graql.ir import decode_statement, encode_script
from repro.graql.parser import parse_script
from repro.workloads.berlin import BERLIN_DDL


def test_fig02_parse(benchmark):
    script = benchmark(parse_script, BERLIN_DDL)
    assert len(script) == 26
    benchmark.extra_info["statements"] = len(script)


def test_fig02_compile_with_static_analysis(benchmark):
    catalog = Catalog()

    def compile_fresh():
        return compile_script(BERLIN_DDL, catalog)

    program = benchmark(compile_fresh)
    benchmark.extra_info["ir_bytes"] = program.total_ir_size
    assert program.total_ir_size > 0


def test_fig02_ir_roundtrip(benchmark):
    script = parse_script(BERLIN_DDL)

    def roundtrip():
        blob = encode_script(script)
        # decode each statement the way the backend does
        from repro.graql.ir import decode_script

        return decode_script(blob)

    again = benchmark(roundtrip)
    assert again == script
