"""TAB1 — every relational operation of Table I, measured individually.

select (selection + projection), order by, group by, distinct, count,
avg, min, max, sum, top n, and ``as`` aliasing — all on the Berlin
Products/Offers tables at bench scale.
"""

import pytest

QUERIES = {
    "select_projection": "select id, label from table Products",
    "select_where": "select id from table Products where propertyNumeric_1 > 1000",
    "order_by": "select id from table Offers order by price desc",
    "group_by_count": "select vendor, count(*) as n from table Offers group by vendor",
    "distinct": "select distinct country from table Producers",
    "count": "select count(*) as n from table Offers",
    "avg": "select avg(price) as p from table Offers",
    "min_max": "select min(price) as lo, max(price) as hi from table Offers",
    "sum": "select sum(deliveryDays) as d from table Offers",
    "top_n": "select top 10 id from table Offers order by price desc",
    "alias": "select id as offerId, price as euros from table Offers",
    "full_pipeline": (
        "select top 5 vendor, count(*) as n, avg(price) as p "
        "from table Offers where deliveryDays < 10 "
        "group by vendor order by p desc"
    ),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_tab1_operation(benchmark, berlin_bench_db, name):
    db = berlin_bench_db
    query = QUERIES[name]

    def run():
        return db.query(query)

    table = benchmark(run)
    benchmark.extra_info["operation"] = name
    benchmark.extra_info["result_rows"] = table.num_rows
    assert table.num_rows >= 1
