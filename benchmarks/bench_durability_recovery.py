"""DURA-1 — durable storage engine: WAL append overhead and recovery budget.

Measures (a) the per-statement cost of write-ahead logging under each
fsync policy, (b) crash-recovery time when the whole WAL must be
replayed, and (c) recovery time from a fresh checkpoint — the knob the
`checkpoint_every` auto-checkpoint exists to turn.

Shape facts this records (docs/DURABILITY.md): `always` pays one fsync
per statement while `off` pays none; full-WAL recovery replays every
record and still lands under the budget; a checkpoint drops the replay
count to zero and recovery time with it.  The correctness asserts run
even in CI quick mode (`--benchmark-disable`).
"""

from __future__ import annotations

import tempfile

import pytest

from repro import Database
from repro.durability import list_checkpoints

N_RECORDS = 400
#: budgets are deliberately generous (shared CI runners); the shape
#: facts — replay counts, fsync counts, checkpointed << full — carry
#: the real claim
FULL_REPLAY_BUDGET_MS = 4000.0
CHECKPOINT_RECOVERY_BUDGET_MS = 1000.0


def _build(path, n, *, checkpoint=False, **kwargs):
    db = Database.open(path, checkpoint_every=0, **kwargs)
    db.execute("create table events (id integer, kind varchar(12))")
    for i in range(n):
        db.ingest_rows("events", [(i, f"k{i % 5}")])
    if checkpoint:
        db.checkpoint()
    db.close()


@pytest.mark.parametrize("fsync", ["always", "batch", "off"])
def test_wal_append_overhead(benchmark, fsync):
    """Per-policy cost of logging 100 single-row ingests."""

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            db = Database.open(tmp, checkpoint_every=0, fsync=fsync)
            db.execute("create table events (id integer, kind varchar(12))")
            for i in range(100):
                db.ingest_rows("events", [(i, "k")])
            fsyncs, records = db.store._writer.fsyncs, db.store.seq
            db.close()
            return fsyncs, records

    fsyncs, records = benchmark(run)
    assert records == 101
    if fsync == "always":
        assert fsyncs >= 101  # one per acknowledged statement
    elif fsync == "off":
        assert fsyncs == 0
    else:
        assert 0 < fsyncs < 101  # batched: strictly between the extremes
    benchmark.extra_info["fsyncs"] = fsyncs
    benchmark.extra_info["wal_records"] = records


def test_recovery_full_wal_replay(benchmark):
    """No checkpoint on disk: recovery replays every record, in budget."""
    with tempfile.TemporaryDirectory() as tmp:
        _build(tmp, N_RECORDS)
        assert not list_checkpoints(tmp)

        def run():
            db = Database.open(tmp, checkpoint_every=0)
            report = db.recovery
            db.close()
            return report

        report = benchmark(run)
        assert report.clean
        assert report.records_replayed == N_RECORDS + 1
        assert report.duration_ms < FULL_REPLAY_BUDGET_MS
        benchmark.extra_info["records_replayed"] = report.records_replayed
        benchmark.extra_info["recovery_ms"] = round(report.duration_ms, 2)


def test_recovery_from_checkpoint(benchmark):
    """Fresh checkpoint: zero replay, recovery well under the budget."""
    with tempfile.TemporaryDirectory() as tmp:
        _build(tmp, N_RECORDS, checkpoint=True)
        assert list_checkpoints(tmp)

        def run():
            db = Database.open(tmp, checkpoint_every=0)
            report = db.recovery
            db.close()
            return report

        report = benchmark(run)
        assert report.clean
        assert report.records_replayed == 0  # the snapshot covers the WAL
        assert report.snapshot_seq == N_RECORDS + 1
        assert report.duration_ms < CHECKPOINT_RECOVERY_BUDGET_MS
        benchmark.extra_info["recovery_ms"] = round(report.duration_ms, 2)
