"""MOTIV — the Section I motivation: attributed tables vs RDF triples.

    "While successful, we encountered many difficulties because our system
    only supported graph representations.  We found that we lacked
    efficient ways to store fixed sets of attributes..."

Runs the same Berlin-style query three ways: the GraQL engine (attributed
tables + edge indexes), the first-generation-style triple store (every
attribute a triple, every query a chain of triple-pattern joins), and the
networkx brute-force matcher.  The shape claim: GraQL wins, and the
triple store additionally pays intermediate-binding blowup for each
attribute access.
"""

import pytest

from repro.baselines import NxOracle, TriplePattern, TripleStore, Var
from repro.graql.parser import parse_statement
from repro.graql.typecheck import check_statement

# who reviews products of US producers?  (2 attribute accesses + 3 hops)
GRAQL = (
    "select PersonVtx.id from graph ProducerVtx (country = 'US') "
    "<--producer-- ProductVtx ( ) <--reviewFor-- ReviewVtx ( ) "
    "--reviewer--> PersonVtx ( ) into table motivOut"
)

ORACLE_ATOM_TEXT = (
    "select * from graph ProducerVtx (country = 'US') <--producer-- "
    "ProductVtx ( ) <--reviewFor-- ReviewVtx ( ) --reviewer--> "
    "PersonVtx ( ) into subgraph motivSG"
)


def triple_patterns():
    return [
        TriplePattern(Var("producer"), "ProducerVtx.country", "US"),
        TriplePattern(Var("product"), "producer", Var("producer")),
        TriplePattern(Var("review"), "reviewFor", Var("product")),
        TriplePattern(Var("review"), "reviewer", Var("person")),
        TriplePattern(Var("person"), "PersonVtx.id", Var("pid")),
    ]


def test_motiv_graql_engine(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query(GRAQL)

    table = benchmark(run)
    benchmark.extra_info["rows"] = table.num_rows
    assert table.num_rows > 0


def test_motiv_triple_store(benchmark, berlin_bench_db):
    ts = TripleStore.from_graphdb(berlin_bench_db.db)

    def run():
        return ts.query(triple_patterns(), ["pid"])

    rows = benchmark(run)
    benchmark.extra_info["rows"] = len(rows)
    benchmark.extra_info["triples"] = ts.num_triples
    benchmark.extra_info["intermediate_bindings"] = ts.last_intermediate_bindings


def test_motiv_networkx_bruteforce(benchmark, berlin_bench_db):
    db = berlin_bench_db
    atom = check_statement(
        parse_statement(ORACLE_ATOM_TEXT), db.catalog
    ).pattern.atoms()[0]
    oracle = NxOracle(db.db)

    def run():
        return oracle.count_paths(atom)

    count = benchmark(run)
    benchmark.extra_info["paths"] = count


def test_motiv_same_answers(benchmark, berlin_bench_db):
    """All three systems agree on the result set (fairness check)."""
    db = berlin_bench_db
    out = {}

    def run():
        out["graql"] = sorted({r[0] for r in db.query(GRAQL).to_rows()})
        ts = TripleStore.from_graphdb(db.db)
        out["triple"] = sorted(
            {r[0] for r in ts.query(triple_patterns(), ["pid"])}
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert out["graql"] == out["triple"]


def test_motiv_triple_blowup_shape(benchmark, berlin_bench_db):
    """The triple store materializes far more intermediate bindings than
    the GraQL result has rows — the attribute-as-triple overhead."""
    db = berlin_bench_db
    out = {}

    def run():
        out["rows"] = db.query(GRAQL).num_rows
        ts = TripleStore.from_graphdb(db.db)
        ts.query(triple_patterns(), ["pid"])
        out["bindings"] = ts.last_intermediate_bindings

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["result_rows"] = out["rows"]
    benchmark.extra_info["intermediate_bindings"] = out["bindings"]
    assert out["bindings"] > out["rows"]
