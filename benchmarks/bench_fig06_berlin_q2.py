"""FIG6 — Berlin Query 2: top-10 most similar products by shared features.

The verbatim two-statement script of Fig. 6: a path query enumerating one
row per shared feature ("each id repeated for each feature the product has
in common"), then the relational top-k group-count.
"""

import pytest

from repro.workloads.berlin import Q2_FIG6


def test_fig06_berlin_q2(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query(Q2_FIG6, params={"Product1": "product7"})

    table = benchmark(run)
    benchmark.extra_info["result_rows"] = table.num_rows
    assert table.num_rows <= 10
    counts = [r[1] for r in table.to_rows()]
    assert counts == sorted(counts, reverse=True)


def test_fig06_path_enumeration_only(benchmark, berlin_bench_db):
    """Just the graph part (T1 materialization), no aggregation."""
    db = berlin_bench_db
    graph_part = Q2_FIG6.split("select top 10")[0].replace(
        "into table T1", "into table T1bench"
    )

    def run():
        return db.execute(graph_part, params={"Product1": "product7"})

    results = benchmark(run)
    benchmark.extra_info["paths"] = results[0].table.num_rows
    assert results[0].table.num_rows > 0
