"""OBS-OVH — the observability layer's overhead budget.

The QueryOptions redesign wires profiling and tracing through every
pipeline layer; the contract (docs/OBSERVABILITY.md) is that what is
*off* stays almost free:

* default options (profile on, trace off) vs. ``profile=False``:
  < 5% wall-clock overhead.  Profiling is a fixed ~50µs of
  ``perf_counter`` calls, profile-object construction and registry
  bumps per statement, so the budget is stated — and measured — on a
  query heavy enough to amortize it the way real workloads do
  (a multi-ms unselective two-hop join, not a microsecond lookup);
* tracing adds spans only when ``trace=True``; the off path is one
  ``is None`` test per call site.

Methodology: interleaved best-of-N of small batches — the min of a
batch mean is robust against scheduler noise and frequency scaling,
and interleaving the two modes cancels slow drift.
"""

import time

from repro.obs import QueryOptions
from repro.workloads.berlin import Q2_FIG6, berlin_database

#: unselective two-hop join: every review of every product (several ms)
HEAVY_QUERY = (
    "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
    "--reviewFor--> ProductVtx ( ) into subgraph OV"
)

BATCH = 3  # executions per timing sample
ROUNDS = 6  # samples per mode, interleaved
OVERHEAD_BUDGET = 1.05  # observability-on may cost at most +5%


def _sample(db, options, batch=BATCH):
    t0 = time.perf_counter()
    for _ in range(batch):
        db.execute(HEAVY_QUERY, None, options)
    return (time.perf_counter() - t0) / batch


def test_profile_overhead_under_budget(benchmark):
    db = berlin_database(scale=1500, seed=11, with_export=False)
    plain = QueryOptions(profile=False)
    default = QueryOptions()  # profile on, trace off

    # warm every path once per mode before timing
    db.execute(HEAVY_QUERY, None, plain)
    db.execute(HEAVY_QUERY, None, default)

    def run():
        off = on = float("inf")
        for _ in range(ROUNDS):
            off = min(off, _sample(db, plain))
            on = min(on, _sample(db, default))
        return off, on

    off, on = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = on / off
    benchmark.extra_info["profile_off_ms"] = round(off * 1e3, 3)
    benchmark.extra_info["profile_on_ms"] = round(on * 1e3, 3)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    assert ratio < OVERHEAD_BUDGET, (
        f"observability-on overhead {ratio:.3f}x exceeds "
        f"{OVERHEAD_BUDGET}x budget (off={off * 1e3:.2f}ms, "
        f"on={on * 1e3:.2f}ms)"
    )


def test_trace_off_is_free(benchmark):
    """trace=False (default) must not allocate a tracer at all."""
    db = berlin_database(scale=60, seed=11, with_export=True)
    r = db.execute(Q2_FIG6, {"Product1": "product3"})[0]
    assert r.profile is not None and r.profile.trace is None

    def run():
        return db.execute(Q2_FIG6, {"Product1": "product3"})

    benchmark(run)


def test_trace_on_attaches_spans(benchmark):
    db = berlin_database(scale=60, seed=11, with_export=True)

    def run():
        return db.execute(
            Q2_FIG6, {"Product1": "product3"}, QueryOptions(trace=True)
        )

    results = benchmark(run)
    trace = results[0].profile.trace
    assert trace is not None and trace.children
    benchmark.extra_info["span_count"] = sum(1 for _ in _walk(trace))


def _walk(span):
    yield span
    for c in span.children:
        yield from _walk(c)
