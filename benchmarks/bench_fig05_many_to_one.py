"""FIG4/FIG5 — many-to-one mappings: the export edge's multi-way join.

Reproduces the Fig. 5 derivation (producer country -> vendor country via
Products and Offers) and measures the edge-construction join plan as the
fact tables grow.  The paper's claim: many-to-one declarations collapse
arbitrarily many supporting rows into a deduplicated edge set.
"""

import pytest

from repro.graph.edge import EdgeType
from repro.graql.parser import parse_expression
from repro.workloads.berlin import berlin_database

WHERE = parse_expression(
    "Products.producer = PC.id and Offers.product = Products.id "
    "and Offers.vendor = VC.id and PC.country <> VC.country"
)


@pytest.mark.parametrize("scale", [100, 300, 1000])
def test_fig05_export_edge_build(benchmark, scale):
    db = berlin_database(scale=scale, seed=5, with_export=True)
    pc = db.db.vertex_type("ProducerCountry")
    vc = db.db.vertex_type("VendorCountry")

    def build():
        return EdgeType(
            "exportBench",
            pc,
            vc,
            "PC",
            "VC",
            [],
            WHERE,
            table_lookup=db.db.tables.get,
        )

    et = benchmark(build)
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["supporting_offers"] = db.table("Offers").num_rows
    benchmark.extra_info["derived_edges"] = et.num_edges
    # dedup: far fewer edges than supporting rows, capped by country pairs
    assert et.num_edges <= pc.num_vertices * vc.num_vertices
    assert et.num_edges < db.table("Offers").num_rows
