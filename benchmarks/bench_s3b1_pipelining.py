"""S3B1-PIPE — pipelined execution of dependent statements (III-B1).

    "Pipelined execution of dependent query statements can also be
    considered to reduce the amount of space needed to materialize
    intermediate results."

A broad graph-select -> aggregation pair executed sequentially (full
intermediate table) vs fused/chunked (only per-chunk rows + per-group
partials live at once).  The space claim is the headline: peak
materialized rows drop by ~the chunk count while results stay identical.
"""

import pytest

from repro.engine.pipeline import run_pipelined
from repro.graql.parser import parse_script
from repro.workloads.berlin import berlin_database

# broad on purpose: every review path in the database
PAIR = """
select y.id from graph
PersonVtx ( ) <--reviewer-- ReviewVtx ( ) --reviewFor--> def y: ProductVtx ( )
into table allReviews

select top 10 id, count(*) as n from table allReviews
group by id order by n desc, id asc
"""


def test_s3b1_sequential_pair(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query(PAIR)

    table = benchmark(run)
    full_rows = db.table("allReviews").num_rows
    benchmark.extra_info["intermediate_rows"] = full_rows
    assert table.num_rows == 10


@pytest.mark.parametrize("chunks", [4, 16])
def test_s3b1_pipelined_pair(benchmark, chunks):
    db = berlin_database(scale=300, seed=42)
    script = parse_script(PAIR)

    def run():
        return run_pipelined(db.db, db.catalog, script, num_chunks=chunks)

    results, stats = benchmark(run)
    s = stats[0]
    benchmark.extra_info["chunks"] = s.chunks
    benchmark.extra_info["total_paths"] = s.total_paths
    benchmark.extra_info["peak_partial_rows"] = s.peak_partial_rows
    # the space claim: peak materialization well below the full table
    assert s.peak_partial_rows < s.total_paths
    assert results[1].table.num_rows == 10


def test_s3b1_pipelined_identical_results(benchmark):
    state = {}

    def run():
        db1 = berlin_database(scale=300, seed=42)
        state["ref"] = db1.query(PAIR)
        db2 = berlin_database(scale=300, seed=42)
        state["results"], state["stats"] = run_pipelined(
            db2.db, db2.catalog, parse_script(PAIR), num_chunks=8
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    results, stats = state["results"], state["stats"]
    assert results[1].table.to_rows() == state["ref"].to_rows()
    # and the space shape: ~1/chunks of the total at a time
    s = stats[0]
    benchmark.extra_info["peak_rows"] = s.peak_partial_rows
    benchmark.extra_info["total_paths"] = s.total_paths
    assert s.peak_partial_rows <= s.total_paths / 2
