"""ROBUST-1 — recovery overhead of the fault-tolerant cluster backend.

Measures, per (workers, injected fail-stop failures), the cost of
surviving faults relative to the failure-free run of the same 3-hop
Berlin path query: wall-clock time, total messages/bytes, and the
recovery-only share (retried supersteps' extra traffic, failovers,
backoff).  Replication is k=2, so any single failure — and the
non-adjacent double failure injected here — recovers without data loss;
the answer is asserted identical to the failure-free run every time.

Shape facts this reproduces (docs/RELIABILITY.md): recovery cost is one
re-run of the interrupted superstep (a fraction of total traffic, not a
full-query restart), and it shrinks relative to total work as the
cluster grows because the retried superstep is 1/(2·hops) of the
supersteps while failover only re-routes the dead worker's partitions.
"""

import pytest

from repro.dist import Cluster, FaultInjector

QUERY = (
    "select * from graph PersonVtx (country = 'US') <--reviewer-- "
    "ReviewVtx ( ) --reviewFor--> ProductVtx ( ) --producer--> "
    "ProducerVtx ( ) into subgraph {}"
)

#: fail-stop schedules: 0, 1, or 2 non-adjacent kills (k=2 ring survives)
SCHEDULES = {0: {}, 1: {1: [0]}, 2: {1: [0], 3: [2]}}


def _canon(subgraph):
    return (
        {k: v.tolist() for k, v in subgraph.vertices.items()},
        {k: v.tolist() for k, v in subgraph.edges.items()},
    )


@pytest.mark.parametrize("workers", [1, 2, 4, 8, 16])
@pytest.mark.parametrize("failures", [0, 1, 2])
def test_robustness_recovery_overhead(benchmark, berlin_bench_db, workers, failures):
    if failures > 0 and workers < 4:
        pytest.skip("failure runs need >= 4 workers for non-adjacent kills")
    db = berlin_bench_db
    baseline = None
    if failures:
        clean = Cluster(db.db, workers, db.catalog, replication=min(2, workers))
        baseline = _canon(
            clean.run_graph_select(
                _checked(db, QUERY.format(f"base{workers}_{failures}"))
            ).subgraph
        )

    counter = [0]

    def run():
        counter[0] += 1
        inj = FaultInjector(seed=7, kill_schedule=SCHEDULES[failures])
        cluster = Cluster(
            db.db, workers, db.catalog, replication=min(2, workers),
            fault_injector=inj, backoff_base_s=0.0,
        )
        result = cluster.run_graph_select(
            _checked(db, QUERY.format(f"r{workers}_{failures}_{counter[0]}"))
        )
        return result, cluster

    result, cluster = benchmark(run)
    stats = cluster.comm_stats()
    rec = result.recovery
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["failures"] = failures
    benchmark.extra_info["messages"] = stats["messages"]
    benchmark.extra_info["kb_moved"] = round(stats["bytes"] / 1024, 1)
    benchmark.extra_info["supersteps"] = stats["supersteps"]
    benchmark.extra_info["retries"] = rec["retries"]
    benchmark.extra_info["failovers"] = rec["failovers"]
    benchmark.extra_info["extra_messages"] = rec["extra_messages"]
    benchmark.extra_info["extra_kb"] = round(rec["extra_bytes"] / 1024, 1)
    assert result.subgraph.num_vertices > 0
    assert not result.degraded
    if failures:
        assert rec["failovers"] == failures
        # recovery re-runs supersteps, never the whole query: the extra
        # traffic stays below the failure-free total
        assert rec["extra_bytes"] <= stats["bytes"]
        assert baseline == _canon(result.subgraph)


def _checked(db, text):
    from repro.graql.parser import parse_statement
    from repro.graql.typecheck import check_statement

    return check_statement(parse_statement(text), db.catalog)


def test_robustness_degraded_fallback_cost(benchmark, berlin_bench_db):
    """Breaker-open path: every statement answered single-node. The
    benchmark shows degraded service costs zero cluster traffic and
    stays correct — availability traded for the scaling win."""
    db = berlin_bench_db
    cluster = Cluster(db.db, 8, db.catalog, replication=2)
    cluster.breaker.state = "open"
    cluster.breaker.opened_at = float("inf")  # keep it open for the run

    counter = [0]

    def run():
        counter[0] += 1
        return cluster.execute(QUERY.format(f"deg{counter[0]}"))[0]

    result = benchmark(run)
    assert result.degraded
    assert result.degraded_reason == "circuit breaker open"
    assert result.subgraph.num_vertices > 0
    benchmark.extra_info["degraded_statements"] = cluster.degraded_statements
    benchmark.extra_info["messages"] = cluster.comm_stats()["messages"]
    assert cluster.comm_stats()["messages"] == 0
