"""S3B-IDX — what the reverse edge index buys (Section III-B ablation).

    "The existence of both forward and reverse indices enables significant
    flexibility on how to execute a path query: the execution is not
    restricted to the forward-looking lexical representation."

The query is written with its selective filter at the *end* (lexically),
so a forward-only engine expands a huge frontier before filtering.  The
planner, free to start from the selective side via the reverse index,
should win by a growing factor with scale.
"""

import time

import pytest

from repro.obs import QueryOptions

# selective condition last: lexical order is the bad direction
QUERY = (
    "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
    "--reviewFor--> ProductVtx (id = 'product3') into subgraph {}"
)


def test_s3b_planned_direction(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.execute(QUERY.format("pd1"))

    results = benchmark(run)
    plan = results[0].plan
    ap = next(iter(plan.atom_plans.values()))
    benchmark.extra_info["chosen_direction"] = ap.direction
    assert ap.direction == "backward"  # the planner must spot it


def test_s3b_forced_lexical_direction(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.execute(QUERY.format("pd2"), options=QueryOptions(direction="forward"))

    benchmark(run)


def test_s3b_direction_speedup_shape(benchmark, berlin_large_db):
    """Shape assertion: planned beats forced-forward at scale."""
    db = berlin_large_db
    reps = 5
    out = {}

    def run():
        t0 = time.perf_counter()
        for i in range(reps):
            db.execute(QUERY.format(f"pf{i}"), options=QueryOptions(direction="forward"))
        out["forced"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        for i in range(reps):
            db.execute(QUERY.format(f"pp{i}"))
        out["planned"] = time.perf_counter() - t0

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["forced_ms_per_query"] = round(out["forced"] / reps * 1e3, 3)
    benchmark.extra_info["planned_ms_per_query"] = round(out["planned"] / reps * 1e3, 3)
    # the shape claim: best-direction execution is faster when the
    # selective end is not the lexical start
    assert out["planned"] < out["forced"], out
