"""FIG9 — type matching: the subgraph of all offers and reviews of a
product via the variant step ``<--[]-- [ ]``.

Section II-B4: a variant step is satisfied by the union of all compatible
edge types — here ``product`` and ``reviewFor``.
"""

import pytest

from repro.workloads.berlin import Q_FIG9


def test_fig09_type_matching(benchmark, berlin_bench_db):
    db = berlin_bench_db

    def run():
        return db.query_subgraph(Q_FIG9, params={"Product1": "product7"})

    sg = benchmark(run)
    benchmark.extra_info["edge_types_matched"] = sorted(sg.edges.keys())
    # only edge types arriving at ProductVtx can match
    assert set(sg.edges) <= {"product", "reviewFor"}
    assert sg.num_edges > 0


def test_fig09_vs_explicit_union(benchmark, berlin_bench_db):
    """The same result via two concrete queries + union — the variant
    step should not be slower than ~2 concrete traversals."""
    db = berlin_bench_db

    def run():
        a = db.query_subgraph(
            "select * from graph ProductVtx (id = 'product7') <--product-- "
            "OfferVtx ( ) into subgraph fig9a"
        )
        b = db.query_subgraph(
            "select * from graph ProductVtx (id = 'product7') <--reviewFor-- "
            "ReviewVtx ( ) into subgraph fig9b"
        )
        return a.union(b, "explicit")

    explicit = benchmark(run)
    variant = db.query_subgraph(Q_FIG9, params={"Product1": "product7"})
    assert {k: v.tolist() for k, v in variant.edges.items()} == {
        k: v.tolist() for k, v in explicit.edges.items()
    }
