"""S3B1 — multi-statement dependence scheduling (Section III-B1).

A script of independent per-country analysis statements: the dependence
DAG should expose them as one parallel wave, and wave-parallel execution
should not lose to serial (NumPy kernels release the GIL).
"""

import pytest

from repro.engine.scheduler import build_schedule, run_scheduled
from repro.graql.parser import parse_script
from repro.workloads.berlin import COUNTRIES, berlin_database


def make_script(n_countries: int):
    parts = []
    for i, c in enumerate(COUNTRIES[:n_countries]):
        parts.append(
            f"select y.id from graph PersonVtx (country = '{c}') "
            f"<--reviewer-- ReviewVtx ( ) --reviewFor--> def y: "
            f"ProductVtx ( ) into table byC{i}"
        )
        parts.append(
            f"select id, count(*) as n from table byC{i} group by id "
            f"into table aggC{i}"
        )
    return parse_script("\n".join(parts))


def test_s3b1_schedule_construction(benchmark, berlin_bench_db):
    script = make_script(6)

    def build():
        return build_schedule(script, berlin_bench_db.catalog)

    schedule = benchmark(build)
    benchmark.extra_info["statements"] = len(script)
    benchmark.extra_info["waves"] = schedule.num_waves
    benchmark.extra_info["max_parallelism"] = schedule.max_parallelism
    # 6 independent chains: graph selects all in wave 0, aggs in wave 1
    assert schedule.max_parallelism == 6
    assert schedule.num_waves == 2


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "dag-parallel"])
def test_s3b1_script_execution(benchmark, parallel):
    script = make_script(4)

    def run():
        db = berlin_database(scale=150, seed=3)
        return run_scheduled(
            db.db, db.catalog, script, parallel=parallel, max_workers=4
        )

    results, schedule = benchmark(run)
    benchmark.extra_info["parallel"] = parallel
    benchmark.extra_info["waves"] = schedule.num_waves
    assert len(results) == len(script)
