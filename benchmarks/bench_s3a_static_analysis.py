"""S3A — static query analysis throughput and error detection (III-A).

    "These are a number of possible query checks that can be computed in
    a fully static manner without having access to the real data."

Measures type-checking of valid queries against the catalog, and verifies
that every error class the paper lists is caught without touching data.
"""

import pytest

from repro.errors import CatalogError, TypeCheckError
from repro.graql.parser import parse_script, parse_statement
from repro.graql.typecheck import check_script, check_statement
from repro.workloads.berlin import Q1_FIG7, Q2_FIG6
from repro.graql.params import substitute_statement

VALID = [
    "select * from graph ProductVtx (propertyNumeric_1 > 5) --feature--> "
    "FeatureVtx ( ) into subgraph g1",
    "select top 3 vendor, count(*) as n from table Offers group by vendor "
    "order by n desc",
    "select * from graph OfferVtx (price < 100.0) --product--> "
    "ProductVtx ( ) --producer--> ProducerVtx (country = 'US') "
    "into subgraph g2",
]

# one representative per Section III-A error class
INVALID = [
    # date compared to a float — the paper's example
    "select * from graph OfferVtx (validFrom = 3.14) --product--> "
    "ProductVtx ( ) into subgraph g",
    # table used where a vertex type is required
    "select * from graph Offers ( ) --product--> ProductVtx ( ) "
    "into subgraph g",
    # ill-formed path: edge cannot arrive at that vertex type
    "select * from graph ProductVtx ( ) --product--> OfferVtx ( ) "
    "into subgraph g",
    # unknown attribute
    "select * from graph ProductVtx (nonexistent = 1) --feature--> "
    "FeatureVtx ( ) into subgraph g",
]


def test_s3a_check_throughput(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    stmts = [parse_statement(v) for v in VALID]

    def check_all():
        return [check_statement(s, catalog) for s in stmts]

    out = benchmark(check_all)
    assert len(out) == len(VALID)
    benchmark.extra_info["queries_checked"] = len(VALID)


def test_s3a_berlin_queries_check(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    script = parse_script(Q2_FIG6 + "\n" + Q1_FIG7)
    script = type(script)(
        [
            substitute_statement(
                s, {"Product1": "p", "Country1": "US", "Country2": "DE"}
            )
            for s in script.statements
        ]
    )

    def check():
        return check_script(script, catalog)

    benchmark(check)


def test_s3a_all_error_classes_caught(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    stmts = [parse_statement(v) for v in INVALID]

    def check_invalid():
        caught = 0
        for s in stmts:
            try:
                check_statement(s, catalog)
            except (TypeCheckError, CatalogError):
                caught += 1
        return caught

    caught = benchmark(check_invalid)
    assert caught == len(INVALID)
    benchmark.extra_info["error_classes"] = len(INVALID)
