"""S3A — static query analysis throughput and error detection (III-A).

    "These are a number of possible query checks that can be computed in
    a fully static manner without having access to the real data."

Measures type-checking of valid queries against the catalog, and verifies
that every error class the paper lists is caught without touching data.
Also enforces the semantic analyzer's overhead budget: ``graql check``
(collect-all typecheck + lint passes, without the IR round-trip) may cost
at most 10% more than plain parse + typecheck.
"""

import time

import pytest

from repro.analysis import Analyzer
from repro.errors import CatalogError, TypeCheckError
from repro.graql.parser import parse_script, parse_statement
from repro.graql.typecheck import check_script, check_statement
from repro.workloads.berlin import Q1_FIG7, Q2_FIG6
from repro.graql.params import substitute_statement

VALID = [
    "select * from graph ProductVtx (propertyNumeric_1 > 5) --feature--> "
    "FeatureVtx ( ) into subgraph g1",
    "select top 3 vendor, count(*) as n from table Offers group by vendor "
    "order by n desc",
    "select * from graph OfferVtx (price < 100.0) --product--> "
    "ProductVtx ( ) --producer--> ProducerVtx (country = 'US') "
    "into subgraph g2",
]

# one representative per Section III-A error class
INVALID = [
    # date compared to a float — the paper's example
    "select * from graph OfferVtx (validFrom = 3.14) --product--> "
    "ProductVtx ( ) into subgraph g",
    # table used where a vertex type is required
    "select * from graph Offers ( ) --product--> ProductVtx ( ) "
    "into subgraph g",
    # ill-formed path: edge cannot arrive at that vertex type
    "select * from graph ProductVtx ( ) --product--> OfferVtx ( ) "
    "into subgraph g",
    # unknown attribute
    "select * from graph ProductVtx (nonexistent = 1) --feature--> "
    "FeatureVtx ( ) into subgraph g",
]


def test_s3a_check_throughput(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    stmts = [parse_statement(v) for v in VALID]

    def check_all():
        return [check_statement(s, catalog) for s in stmts]

    out = benchmark(check_all)
    assert len(out) == len(VALID)
    benchmark.extra_info["queries_checked"] = len(VALID)


def test_s3a_berlin_queries_check(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    script = parse_script(Q2_FIG6 + "\n" + Q1_FIG7)
    script = type(script)(
        [
            substitute_statement(
                s, {"Product1": "p", "Country1": "US", "Country2": "DE"}
            )
            for s in script.statements
        ]
    )

    def check():
        return check_script(script, catalog)

    benchmark(check)


def test_s3a_all_error_classes_caught(benchmark, berlin_bench_db):
    catalog = berlin_bench_db.catalog
    stmts = [parse_statement(v) for v in INVALID]

    def check_invalid():
        caught = 0
        for s in stmts:
            try:
                check_statement(s, catalog)
            except (TypeCheckError, CatalogError):
                caught += 1
        return caught

    caught = benchmark(check_invalid)
    assert caught == len(INVALID)
    benchmark.extra_info["error_classes"] = len(INVALID)


# ----------------------------------------------------------------------
# Analyzer overhead budget (docs/ANALYSIS.md)
# ----------------------------------------------------------------------

ANALYZER_BATCH = 5  # script analyses per timing sample
ANALYZER_ROUNDS = 8  # samples per mode, interleaved
ANALYZER_BUDGET = 1.10  # lint passes + diagnostics may cost at most +10%


def test_s3a_analyzer_overhead_under_budget(benchmark, berlin_bench_db):
    """The lint passes and diagnostic machinery ride on top of the same
    parse + typecheck the front-end always does; their overhead per
    statement must stay under 10% of that baseline.  The IR round-trip
    (``verify_ir=True``) is a separate, optional cost and is reported
    but not budgeted here.

    Methodology matches bench_obs_overhead: interleaved best-of-N batch
    means, so scheduler noise and frequency drift hit both modes alike.
    """
    catalog = berlin_bench_db.catalog
    source = "\n".join(VALID)
    n_stmts = len(VALID)
    analyzer = Analyzer(catalog, verify_ir=False)
    analyzer_ir = Analyzer(catalog, verify_ir=True)

    def sample(fn):
        t0 = time.perf_counter()
        for _ in range(ANALYZER_BATCH):
            fn()
        return (time.perf_counter() - t0) / ANALYZER_BATCH

    def baseline():
        check_script(parse_script(source), catalog)

    def analyze():
        result = analyzer.analyze(source)
        assert result.ok

    def analyze_ir():
        result = analyzer_ir.analyze(source)
        assert result.ok

    # warm every path once before timing
    baseline(), analyze(), analyze_ir()

    def run():
        base = lint = full = float("inf")
        for _ in range(ANALYZER_ROUNDS):
            base = min(base, sample(baseline))
            lint = min(lint, sample(analyze))
            full = min(full, sample(analyze_ir))
        return base, lint, full

    base, lint, full = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = lint / base
    benchmark.extra_info["parse_typecheck_us_per_stmt"] = round(base * 1e6 / n_stmts, 2)
    benchmark.extra_info["analyze_us_per_stmt"] = round(lint * 1e6 / n_stmts, 2)
    benchmark.extra_info["analyze_with_ir_us_per_stmt"] = round(full * 1e6 / n_stmts, 2)
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    assert ratio < ANALYZER_BUDGET, (
        f"analyzer overhead {ratio:.3f}x exceeds {ANALYZER_BUDGET}x budget "
        f"(parse+typecheck={base * 1e6 / n_stmts:.1f}us/stmt, "
        f"analyze={lint * 1e6 / n_stmts:.1f}us/stmt)"
    )
