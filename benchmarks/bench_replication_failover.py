"""ROBUST-2 — WAL-shipping apply lag and the failover budget.

Two gates over the replication subsystem (docs/REPLICATION.md), both
asserted in quick (``--benchmark-disable``) mode so CI enforces them:

* **apply lag drains** — after a burst of writes on the primary, the
  replica converges to the primary's seq and the primary's per-peer
  accounting reports zero record lag; the drain time and effective
  records/second land in ``extra_info``;
* **failover-to-first-query < 2s** — from the instant the primary
  vanishes (no drain, no goodbye): promote the replica, and the *same*
  self-healing client completes a SELECT on the survivor — with every
  acknowledged write present — inside the two-second budget.
"""

from __future__ import annotations

import time

from repro.engine.session import Database
from repro.net import GraqlServer, RemoteConnection
from repro.replication import Replica

#: one WAL record per statement in the write burst
BURST = 64

#: the ROBUST-2 failover budget (seconds)
FAILOVER_BUDGET_S = 2.0


def _wait_until(pred, timeout=15.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(interval)
    return False


class _Pair:
    """A primary server and a streaming replica on loopback."""

    def __init__(self, base):
        self.primary_db = Database.open(str(base / "p.db"), fsync="off")
        self.server = GraqlServer(self.primary_db, port=0)
        self.server.start()
        self.replica = Replica(
            str(base / "r.db"), self.server.url, durability={"fsync": "off"}
        ).start()
        self.replica_server = GraqlServer(None, port=0, replica=self.replica)
        self.replica_server.start()

    def endpoints(self):
        return (
            f"{self.server.url},"
            f"{self.replica_server.host}:{self.replica_server.port}"
        )

    def wait_acked(self, seq):
        assert _wait_until(
            lambda: any(
                p["ack_seq"] >= seq for p in self.server.replication.peers()
            )
        ), f"replica never acknowledged seq {seq}"

    def close(self):
        self.replica_server.shutdown(drain=False, timeout=10.0)
        self.replica.close()
        self.server.shutdown(drain=False, timeout=10.0)
        self.primary_db.close()


def test_replication_apply_lag_drains(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        pair = _Pair(tmp_path / f"lag{counter[0]}")
        try:
            pair.primary_db.execute(
                "create table Events( id integer, v integer )"
            )
            t0 = time.monotonic()
            for i in range(BURST):
                pair.primary_db.ingest_rows("Events", [(i, i * 7)])
            seq = pair.primary_db.store.seq
            pair.wait_acked(seq)
            drain_s = time.monotonic() - t0
            (peer,) = pair.server.replication.peers()
            assert peer["lag_records"] == 0
            assert pair.replica.database.store.seq == seq
            rows = pair.replica.database.query(
                "select count(*) as n from table Events"
            )
            assert [tuple(r) for r in rows.iter_rows()] == [(BURST,)]
            return drain_s, seq
        finally:
            pair.close()

    drain_s, seq = benchmark(run)
    benchmark.extra_info["records"] = seq
    benchmark.extra_info["drain_ms"] = round(drain_s * 1e3, 2)
    benchmark.extra_info["records_per_s"] = round(seq / drain_s, 1)


def test_failover_to_first_query_budget(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        pair = _Pair(tmp_path / f"fo{counter[0]}")
        conn = RemoteConnection(pair.endpoints(), "admin")
        try:
            acked = []
            for i in range(5):
                conn.execute(f"create table Committed{i}( x integer )")
                acked.append(f"Committed{i}")
            pair.wait_acked(pair.primary_db.store.seq)

            # the primary vanishes mid-service: no drain, no goodbye
            pair.server.shutdown(drain=False, timeout=10.0)
            t0 = time.monotonic()
            pair.replica.promote()
            t = conn.execute("select count(*) as n from table Committed0")
            elapsed = time.monotonic() - t0

            assert [tuple(r) for r in t[-1].table.iter_rows()] == [(0,)]
            for name in acked:  # zero acknowledged-write loss
                conn.execute(f"select count(*) as n from table {name}")
            conn.execute("create table AfterFailover( x integer )")
            assert pair.replica.database.store.replication_epoch == 1
            assert elapsed < FAILOVER_BUDGET_S, (
                f"failover-to-first-query took {elapsed:.2f}s"
            )
            return elapsed
        finally:
            conn.close()
            pair.close()

    elapsed = benchmark(run)
    benchmark.extra_info["failover_to_first_query_ms"] = round(elapsed * 1e3, 2)
    benchmark.extra_info["budget_s"] = FAILOVER_BUDGET_S
