"""The simulated GEMS backend cluster: partitioning, messages, scaling.

Section III of the paper targets "a cluster of high-performance servers
with ample DRAM ... the database is primarily resident on the aggregated
memory of the compute nodes".  This example partitions a Berlin database
across 1..8 simulated workers and shows what the distributed executor
measures: message counts, bytes moved, supersteps, per-worker load
balance, and that results match the single-node engine exactly.

Run:  python examples/distributed_cluster.py [scale]
"""

import sys
import time

import numpy as np

from repro.dist import Cluster
from repro.workloads.berlin import berlin_database

QUERY = """
select * from graph
PersonVtx (country = 'US')
<--reviewer-- ReviewVtx ( )
--reviewFor--> ProductVtx ( )
--producer--> ProducerVtx (country = 'DE')
into subgraph reviewChains
"""


def main(scale: int = 500) -> None:
    print(f"building Berlin database at scale {scale} ...")
    db = berlin_database(scale=scale, seed=7)
    print(db.db)

    # single-node reference
    t0 = time.perf_counter()
    ref = db.execute(QUERY)[0].subgraph
    t_local = time.perf_counter() - t0
    print(f"\nsingle-node: {ref.num_vertices} vertices, "
          f"{ref.num_edges} edges in {t_local * 1e3:.1f} ms")

    print(f"\n{'workers':>8} {'time ms':>9} {'messages':>9} {'KB moved':>9} "
          f"{'supersteps':>10} {'imbalance':>9} {'identical':>9}")
    for workers in (1, 2, 4, 8):
        cluster = Cluster(db.db, workers, db.catalog)
        cluster.reset_stats()
        t0 = time.perf_counter()
        result = cluster.execute(QUERY)[0].subgraph
        elapsed = (time.perf_counter() - t0) * 1e3
        stats = cluster.comm_stats()
        balance = cluster.edge_balance()
        identical = all(
            np.array_equal(ref.vertex_ids(t), result.vertex_ids(t))
            for t in set(ref.vertices) | set(result.vertices)
        )
        print(
            f"{workers:>8} {elapsed:>9.1f} {stats['messages']:>9} "
            f"{stats['bytes'] / 1024:>9.1f} {stats['supersteps']:>10} "
            f"{balance['imbalance']:>9.3f} {str(identical):>9}"
        )

    # memory-per-worker view: the paper's "aggregated memory" argument
    cluster = Cluster(db.db, 8, db.catalog)
    mem = cluster.memory_per_worker()
    print(
        f"\nedge-shard memory across 8 workers: total "
        f"{sum(mem) / 1024:.0f} KB, max per worker {max(mem) / 1024:.0f} KB "
        f"(aggregate capacity grows with the cluster)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 500)
