"""The paper's running example: Berlin (BSBM) business intelligence.

Loads the Appendix-A schema with the Fig. 2/3 vertex/edge declarations,
generates a BSBM-style e-commerce dataset, and runs the paper's queries:

* Fig. 6 (Berlin Query 2): top-10 products most similar to a product by
  shared features;
* Fig. 7 (Berlin Query 1): top-10 most discussed product categories for
  products of Country1 reviewed from Country2 (multi-path + foreach);
* Fig. 4/5: the many-to-one ``export`` edge between producer and vendor
  countries;
* Fig. 9: the type-matching query returning all offers and reviews of a
  product;
* Fig. 10-style path regular expression over the subclass hierarchy.

Run:  python examples/berlin_business_intelligence.py [scale]
"""

import sys

from repro.workloads.berlin import (
    Q1_FIG7,
    Q2_FIG6,
    Q_FIG9,
    Q_REGEX,
    berlin_database,
)


def main(scale: int = 300) -> None:
    print(f"generating Berlin dataset at scale {scale} ...")
    db = berlin_database(scale=scale, seed=7, with_export=True)
    print(db.db)

    # --- Fig. 6 / Berlin Q2 ------------------------------------------------
    product = "product1"
    print(f"\n=== Berlin Query 2 (Fig. 6): products most similar to {product}")
    t = db.query(Q2_FIG6, params={"Product1": product})
    print(t.pretty())

    # --- Fig. 7 / Berlin Q1 ------------------------------------------------
    print("\n=== Berlin Query 1 (Fig. 7): most discussed categories "
          "(producers in US, reviewers in DE)")
    t = db.query(Q1_FIG7, params={"Country1": "US", "Country2": "DE"})
    print(t.pretty())

    # --- Fig. 4/5: the export many-to-one edge ------------------------------
    print("\n=== Fig. 4/5: export edges between producer and vendor countries")
    et = db.db.edge_type("export")
    pc = db.db.vertex_type("ProducerCountry")
    vc = db.db.vertex_type("VendorCountry")
    shown = 0
    for eid in range(et.num_edges):
        s, t_ = et.endpoints_of(eid)
        print(f"  {pc.key_of(s)[0]} -> {vc.key_of(t_)[0]}")
        shown += 1
        if shown >= 12:
            print(f"  ... ({et.num_edges} export edges total)")
            break

    # --- Fig. 9: type matching ----------------------------------------------
    print(f"\n=== Fig. 9: subgraph of everything pointing at {product}")
    sg = db.query_subgraph(Q_FIG9, params={"Product1": product})
    for vt, vids in sorted(sg.vertices.items()):
        print(f"  vertices {vt}: {len(vids)}")
    for etn, eids in sorted(sg.edges.items()):
        print(f"  edges {etn}: {len(eids)}")

    # --- Fig. 10: path regular expression ------------------------------------
    leaf = db.query(
        "select distinct type from table ProductTypes order by type desc",
    ).row(0)[0]
    print(f"\n=== Fig. 10-style regex: ancestors of type {leaf} via subclass+")
    sg = db.query_subgraph(Q_REGEX, params={"Type1": leaf})
    print(f"  reachable types: {len(sg.vertex_ids('TypeVtx'))}, "
          f"subclass edges on paths: {len(sg.edge_ids('subclass'))}")

    # --- planner insight ------------------------------------------------------
    print("\n=== planner: direction choice for Berlin Q1's main path")
    results = db.execute(Q1_FIG7, params={"Country1": "US", "Country2": "DE"})
    plan = results[0].plan
    for ap in plan.atom_plans.values():
        print(
            f"  atom: chose {ap.direction} "
            f"(cost forward={ap.cost_forward:.0f}, backward={ap.cost_backward:.0f})"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
