"""Cybersecurity threat hunting on a network interaction graph.

The paper's introduction motivates attributed graph databases with
"interaction graphs representing communication occurring over time
between different hosts".  This example loads a synthetic enterprise
network (hosts with fixed attributes, flows as attributed edges), then:

1. finds the planted lateral-movement chain with a concrete path query
   over RDP flows,
2. proves reachability to the domain controller with an unbounded path
   regular expression,
3. correlates alerts with flow structure (multi-path and-composition),
4. post-processes flow volumes with the relational subset.

Run:  python examples/cybersecurity_hunt.py
"""

from repro.workloads.cyber import CYBER_DDL, cyber_database


def main() -> None:
    db = cyber_database(num_subnets=4, hosts_per_subnet=25, flows_per_host=20)
    print(db.db)

    # 1. Two-hop RDP lateral movement into the DC.
    print("\n=== lateral movement: workstation -RDP-> host -RDP-> domain controller")
    sg = db.query_subgraph(
        """
        select * from graph
        HostVtx (role = 'workstation')
        --flow(port = 3389)--> HostVtx ( )
        --flow(port = 3389)--> HostVtx (role = 'dc')
        into subgraph lateral
        """
    )
    print(f"  suspicious hosts: {len(sg.vertex_ids('HostVtx'))}, "
          f"RDP flows on chains: {len(sg.edge_ids('flow'))}")
    host = db.db.vertex_type("HostVtx")
    for vid in sg.vertex_ids("HostVtx"):
        attrs = host.attributes_of(int(vid))
        print(f"    {attrs['ip']:<12} role={attrs['role']}")

    # 2. Unbounded reachability (path regex): can any alerted workstation
    #    reach the DC over any number of flows?
    print("\n=== alerted workstations that can reach the DC (flow+ closure)")
    sg = db.query_subgraph(
        """
        select * from graph
        AlertVtx (severity >= 4) <--raised-- HostVtx (role = 'workstation')
        into subgraph alerted

        select * from graph
        alerted.HostVtx ( ) ( --flow--> [ ] )+ HostVtx (role = 'dc')
        into subgraph reachesDC
        """
    )
    print(f"  hosts on DC-reaching paths: {len(sg.vertex_ids('HostVtx'))}")

    # 3. Multi-path: hosts that both raised an alert AND send large
    #    cross-subnet transfers (foreach = same host instance).
    print("\n=== hosts with alerts that also exfiltrate (>500KB flows)")
    t = db.query(
        """
        select h.ip, AlertVtx.kind from graph
        foreach h: HostVtx ( ) --raised--> AlertVtx (severity >= 3)
        and
        (h --flow(bytes > 500000)--> HostVtx ( ))
        into table exfil
        """
    )
    print(t.pretty(10))

    # 4. Relational post-processing: top talkers by total bytes.
    print("\n=== top talkers (relational aggregation over the Flows table)")
    t = db.query(
        """
        select top 5 src, count(*) as flows, sum(bytes) as totalBytes
        from table Flows
        group by src order by totalBytes desc
        """
    )
    print(t.pretty())


if __name__ == "__main__":
    main()
