"""The GEMS system pieces: server, accounts, IR shipping, plans, pipelining.

Section III of the paper describes GEMS as clients + a front-end server
(access control, user accounts, catalog, static analysis, binary IR) + a
backend.  This example drives those pieces directly:

1. accounts and role-based rights on the front-end server,
2. static rejection of an ill-typed script *before* any backend effect,
3. binary-IR shipping with byte accounting,
4. EXPLAIN plans (strategy, sweep direction, selectivities, schedule),
5. pipelined execution of a dependent statement pair (III-B1) with its
   intermediate-space accounting.

Run:  python examples/gems_server.py
"""

from repro import Server
from repro.errors import AccessError, GraQLError
from repro.workloads.berlin import BERLIN_DDL, generate_berlin


def main() -> None:
    server = Server()

    # 1. accounts & rights -------------------------------------------------
    server.create_user("admin", "etl", "writer")
    server.create_user("admin", "analyst", "reader")
    print("users:", sorted(server.users))

    server.submit("etl", BERLIN_DDL)
    data = generate_berlin(200, seed=7)
    for name, rows in data.tables.items():
        server.backend.ingest_rows(name, rows)
    server.catalog.refresh(server.backend)
    print(f"loaded: {server.backend}")

    print("\nanalyst tries to create a table (must be refused):")
    try:
        server.submit("analyst", "create table Hack(id integer)")
    except AccessError as e:
        print(f"  refused: {e}")

    # 2. static analysis guards the backend --------------------------------
    print("\nill-typed script (date compared to float) is rejected "
          "with zero backend effect:")
    try:
        server.submit(
            "etl",
            "create table WillNotExist(id integer)\n"
            "select * from graph OfferVtx (validFrom = 3.14) "
            "--product--> ProductVtx ( ) into subgraph bad",
        )
    except GraQLError as e:
        print(f"  rejected: {e}")
    print("  WillNotExist created?", "WillNotExist" in server.catalog.tables)

    # 3. binary IR shipping -------------------------------------------------
    before = server.ir_bytes_shipped
    results = server.submit(
        "analyst",
        "select vendor, count(*) as offers from table Offers "
        "group by vendor order by offers desc",
    )
    print(f"\nanalyst query returned {results[0].table.num_rows} rows; "
          f"IR shipped this call: {server.ir_bytes_shipped - before} bytes "
          f"(total {server.ir_bytes_shipped})")

    # 4. EXPLAIN ------------------------------------------------------------
    from repro.engine.session import Database

    db = Database()
    db.db = server.backend
    db.catalog = server.catalog
    print("\nEXPLAIN of a review-chain query:")
    print(
        db.explain(
            "select * from graph PersonVtx ( ) <--reviewer-- ReviewVtx ( ) "
            "--reviewFor--> ProductVtx (id = 'product3') into subgraph plan1"
        )
    )

    # 5. pipelined pair (III-B1) ---------------------------------------------
    pair = """
    select y.id from graph
    PersonVtx ( ) <--reviewer-- ReviewVtx ( ) --reviewFor--> def y: ProductVtx ( )
    into table reviewCounts

    select top 5 id, count(*) as n from table reviewCounts
    group by id order by n desc, id asc
    """
    results, stats = db.execute_pipelined(pair, num_chunks=8)
    s = stats[0]
    print("\npipelined dependent pair (III-B1):")
    print(f"  total paths {s.total_paths}, peak materialized "
          f"{s.peak_partial_rows} rows across {s.chunks} chunks")
    print(results[1].table.pretty())


if __name__ == "__main__":
    main()
