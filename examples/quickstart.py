"""Quickstart: declare tables, view them as a graph, query with GraQL.

Walks the full pipeline of the paper on a toy social commerce dataset:
tables -> vertex/edge views (Eqs. 1-2) -> path queries with labels ->
results as tables and subgraphs (Section II-C).

Run:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()

    # 1. All data is stored in tabular form (design principle #1).
    db.execute(
        """
        create table People(
          id varchar(10),
          name varchar(32),
          country varchar(8),
          age integer
        )

        create table Purchases(
          person varchar(10),
          item varchar(10),
          price float,
          day date
        )

        create table Items(
          id varchar(10),
          category varchar(16)
        )

        create table Follows(
          src varchar(10),
          dst varchar(10)
        )
        """
    )

    # 2. Graph elements are views over those tables (design principle #2).
    db.execute(
        """
        create vertex Person(id) from table People

        create vertex Item(id) from table Items

        create edge follows with
        vertices (Person as A, Person as B)
        from table Follows
        where Follows.src = A.id and Follows.dst = B.id

        create edge bought with
        vertices (Person, Item)
        from table Purchases
        where Purchases.person = Person.id and Purchases.item = Item.id
        """
    )

    # 3. Ingest is atomic: rows land and every view rebuilds together.
    db.ingest_rows(
        "People",
        [
            ("alice", "Alice", "US", 34),
            ("bob", "Bob", "DE", 28),
            ("carol", "Carol", "US", 41),
            ("dan", "Dan", "FR", 23),
        ],
    )
    db.ingest_rows(
        "Items",
        [("laptop", "electronics"), ("novel", "books"), ("mug", "kitchen")],
    )
    db.ingest_rows(
        "Follows",
        [("alice", "bob"), ("bob", "carol"), ("carol", "alice"), ("dan", "alice")],
    )
    # dates are stored as proleptic ordinals; ingest_text parses ISO dates
    db.ingest_text(
        "Purchases",
        "alice,laptop,1200.0,2016-02-01\n"
        "bob,novel,19.5,2016-02-11\n"
        "carol,laptop,1150.0,2016-02-21\n"
        "carol,mug,8.0,2016-02-22\n",
    )

    print(db.db)

    # 4. Path query with a set label: what do people followed by a US
    #    person buy?  One row per matched path (Fig. 6 semantics).
    table = db.query(
        """
        select friend.id as buyer, Item.id as item from graph
        Person (country = 'US') --follows--> def friend: Person ( )
        --bought--> Item ( )
        into table friendPurchases
        """
    )
    print("\npurchases of people that US members follow:")
    print(table.pretty())

    # 5. Relational post-processing (Table I subset) on the result.
    summary = db.query(
        """
        select item, count(*) as buyers from table friendPurchases
        group by item order by buyers desc
        """
    )
    print("\nitems ranked by buyers reached through follows:")
    print(summary.pretty())

    # 6. Subgraph result + chaining (Figs. 11-12): capture the 2-hop
    #    follow neighborhood of Dan, then query only inside it.
    db.execute(
        """
        select * from graph
        Person (id = 'dan') --follows--> Person ( ) --follows--> Person ( )
        into subgraph danReach
        """
    )
    reach = db.subgraph("danReach")
    print(f"\nsubgraph danReach: {reach!r}")

    seeded = db.query(
        """
        select Person.name from graph
        danReach.Person (age > 25) --bought--> Item (category = 'electronics')
        into table richFriends
        """
    )
    print("\nwithin Dan's reach, electronics buyers over 25:")
    print(seeded.pretty())


if __name__ == "__main__":
    main()
