"""Biological pathway analysis: signal flow through reaction networks.

The paper's introduction motivates graph databases with "the modeling of
biological pathways which represent the flow of molecular 'signals'
inside a cell".  This example loads layered pathway DAGs
(genes -> proteins -> reactions -> downstream reactions) and:

1. traces everything downstream of one gene's protein with a ``*`` path
   regular expression (signal propagation),
2. lists the genes acting in one pathway (graph-to-table + distinct),
3. finds convergence points — reactions fed by several pathways' signals,
4. ranks pathways by mean reaction rate with the relational subset.

Run:  python examples/biology_pathways.py
"""

from repro.workloads.biology import biology_database


def main() -> None:
    db = biology_database(num_pathways=6, reactions_per_pathway=14, genes_per_pathway=8)
    print(db.db)

    # 1. Signal propagation: downstream closure of one gene.
    gene = "SYM0_0"
    print(f"\n=== everything downstream of gene {gene} (feeds* closure)")
    sg = db.query_subgraph(
        """
        select * from graph
        GeneVtx (symbol = %Gene%) --encodes--> ProteinVtx ( )
        --catalyzes--> ReactionVtx ( ) ( --feeds--> [ ] )* ReactionVtx ( )
        into subgraph downstream
        """,
        params={"Gene": gene},
    )
    print(f"  reactions reached: {len(sg.vertex_ids('ReactionVtx'))}, "
          f"signal links on paths: {len(sg.edge_ids('feeds'))}")

    # 2. Genes of one pathway.
    print("\n=== genes acting in pathway1")
    t = db.query(
        """
        select GeneVtx.symbol from graph
        GeneVtx ( ) --encodes--> ProteinVtx ( )
        --catalyzes--> ReactionVtx (pathway = 'pathway1')
        into table pathway1Genes

        select distinct symbol from table pathway1Genes order by symbol asc
        """
    )
    print(t.pretty(10))

    # 3. Convergence: reactions receiving signal from two different
    #    upstream reactions (element-wise label keeps the same target).
    print("\n=== convergence points (reactions with >= 2 upstream feeds)")
    t = db.query(
        """
        select target.id from graph
        ReactionVtx ( ) --feeds--> def target: ReactionVtx ( )
        into table fed

        select top 5 id, count(*) as inputs from table fed
        group by id order by inputs desc, id asc
        """
    )
    # 'fed' holds the downstream endpoint of every feeds edge; counting
    # rows per id counts in-degree
    print(t.pretty())

    # 4. Pathway statistics (Table I subset).
    print("\n=== pathways ranked by mean reaction rate")
    t = db.query(
        """
        select pathway, count(*) as reactions, avg(rate) as meanRate,
               max(rate) as fastest
        from table Reactions
        group by pathway order by meanRate desc
        """
    )
    print(t.pretty())


if __name__ == "__main__":
    main()
