"""Cybersecurity workload — the paper's first motivating domain.

    "In cybersecurity, interaction graphs representing communication
    occurring over time between different hosts or devices on a network
    can be modeled and represented accurately in a graph database."
    (Section I)

Schema: ``Hosts`` (fixed per-host attributes — exactly the "fixed sets of
attributes" the paper says a pure graph representation stores wastefully),
``Flows`` (one row per network flow, carried as edge attributes via the
``from table`` clause), and ``Alerts``.  The generator builds a network of
subnets with servers and workstations, normal intra-subnet traffic, and
plants a *lateral-movement* chain (compromised workstation -> stepping
stones -> domain controller) that the example queries hunt for.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

import numpy as np

from repro.engine.session import Database

CYBER_DDL = """
create table Hosts(
  ip varchar(16),
  subnet varchar(16),
  os varchar(16),
  role varchar(16), // workstation | server | dc
  criticality integer
)

create table Flows(
  src varchar(16),
  dst varchar(16),
  port integer,
  proto varchar(8),
  bytes integer,
  packets integer,
  day date
)

create table Alerts(
  id varchar(10),
  host varchar(16),
  kind varchar(16),
  severity integer,
  day date
)

create vertex HostVtx(ip)
from table Hosts

create vertex AlertVtx(id)
from table Alerts

create edge flow with
vertices (HostVtx as Src, HostVtx as Dst)
from table Flows
where Flows.src = Src.ip and Flows.dst = Dst.ip

create edge raised with
vertices (HostVtx, AlertVtx)
where AlertVtx.host = HostVtx.ip
"""

#: the lateral-movement hunt: an alerted workstation that reaches a
#: domain controller through admin-port flows in at most 3 hops
LATERAL_2HOP = """
select * from graph
HostVtx (role = 'workstation')
--flow(port = 3389)--> HostVtx ( )
--flow(port = 3389)--> HostVtx (role = 'dc')
into subgraph lateral
"""

LATERAL_REGEX = """
select * from graph
HostVtx (role = 'workstation') ( --flow--> [ ] )+ HostVtx (role = 'dc')
into subgraph reachesDC
"""

BEACON_COUNT = """
select Dst.ip from graph
HostVtx (subnet = %Subnet%) --flow(bytes < 1000)--> def Dst: HostVtx ( )
into table beacons

select top 10 ip, count(*) as hits
from table beacons
group by ip order by hits desc, ip asc
"""


def generate_cyber(
    num_subnets: int = 4,
    hosts_per_subnet: int = 25,
    flows_per_host: int = 20,
    seed: int = 11,
) -> dict[str, list[tuple]]:
    """Deterministic network + traffic + one planted lateral-movement chain."""
    rng = np.random.default_rng(seed)
    hosts: list[tuple] = []
    ips: list[str] = []
    roles: dict[str, str] = {}
    for s in range(num_subnets):
        subnet = f"10.0.{s}.0"
        for h in range(hosts_per_subnet):
            ip = f"10.0.{s}.{h + 1}"
            if h == 0 and s == 0:
                role = "dc"
            elif h < 3:
                role = "server"
            else:
                role = "workstation"
            os_name = str(rng.choice(["linux", "windows", "macos"]))
            hosts.append((ip, subnet, os_name, role, int(rng.integers(1, 6))))
            ips.append(ip)
            roles[ip] = role
    day0 = _dt.date(2016, 3, 1)
    flows: list[tuple] = []
    for ip in ips:
        for _ in range(flows_per_host):
            # mostly intra-subnet traffic
            if rng.random() < 0.8:
                peer_candidates = [p for p in ips if p.rsplit(".", 1)[0] == ip.rsplit(".", 1)[0] and p != ip]
            else:
                peer_candidates = [p for p in ips if p != ip]
            dst = peer_candidates[int(rng.integers(len(peer_candidates)))]
            flows.append(
                (
                    ip,
                    dst,
                    int(rng.choice([22, 80, 443, 445, 3389, 8080])),
                    str(rng.choice(["tcp", "udp"])),
                    int(rng.integers(100, 1_000_000)),
                    int(rng.integers(1, 1000)),
                    (day0 + _dt.timedelta(days=int(rng.integers(30)))).toordinal(),
                )
            )
    # planted lateral movement: workstation in last subnet -> server hop ->
    # server hop -> the DC, all on RDP
    chain = [
        f"10.0.{num_subnets - 1}.{hosts_per_subnet}",
        f"10.0.{num_subnets - 1}.2",
        "10.0.0.2",
        "10.0.0.1",
    ]
    for a, b in zip(chain, chain[1:]):
        flows.append((a, b, 3389, "tcp", 52_000, 80, day0.toordinal()))
    alerts = [
        ("alert0", chain[0], "malware", 5, day0.toordinal()),
        ("alert1", chain[1], "anomaly", 3, (day0 + _dt.timedelta(days=1)).toordinal()),
    ]
    for i in range(2, max(3, len(ips) // 20)):
        alerts.append(
            (
                f"alert{i}",
                ips[int(rng.integers(len(ips)))],
                str(rng.choice(["portscan", "anomaly", "bruteforce"])),
                int(rng.integers(1, 5)),
                (day0 + _dt.timedelta(days=int(rng.integers(30)))).toordinal(),
            )
        )
    return {"Hosts": hosts, "Flows": flows, "Alerts": alerts}


def cyber_database(
    num_subnets: int = 4,
    hosts_per_subnet: int = 25,
    flows_per_host: int = 20,
    seed: int = 11,
) -> Database:
    """A loaded cybersecurity database."""
    db = Database()
    db.execute(CYBER_DDL)
    for name, rows in generate_cyber(
        num_subnets, hosts_per_subnet, flows_per_host, seed
    ).items():
        db.db.ingest_rows(name, rows)
    db.catalog.refresh(db.db)
    return db
