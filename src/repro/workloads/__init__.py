"""Workload generators.

* :mod:`repro.workloads.berlin` — the paper's running example: a
  BSBM-style (Berlin SPARQL Benchmark) e-commerce dataset matching the
  Appendix-A schema exactly, plus the verbatim GraQL of Figs. 2-13 and a
  catalog of business-intelligence queries with parameter generators.
* :mod:`repro.workloads.cyber` — the introduction's cybersecurity
  motivation: interaction graphs of hosts communicating over time.
* :mod:`repro.workloads.biology` — the introduction's computational
  biology motivation: signaling-pathway graphs (genes, proteins,
  reactions).

All generators are deterministic given a seed and scale with a single
``scale`` knob.
"""

from repro.workloads.berlin import (
    BERLIN_DDL,
    BERLIN_EXPORT_DDL,
    BerlinData,
    berlin_database,
    generate_berlin,
)

__all__ = [
    "BERLIN_DDL",
    "BERLIN_EXPORT_DDL",
    "BerlinData",
    "generate_berlin",
    "berlin_database",
]
