"""Computational-biology workload — the paper's second motivating domain.

    "Examples from biology include the modeling of biological pathways
    which represent the flow of molecular 'signals' inside a cell for
    purposes of metabolism, gene expression or other cellular functions."
    (Section I)

Schema: genes encode proteins, proteins catalyze reactions, and reactions
feed downstream reactions (the signal flow).  The generator builds layered
pathway DAGs; the example queries trace signal propagation with path
regular expressions and find the genes upstream of a phenotype reaction.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.session import Database

BIOLOGY_DDL = """
create table Genes(
  id varchar(12),
  symbol varchar(12),
  chromosome varchar(4),
  expression float
)

create table Proteins(
  id varchar(12),
  family varchar(12),
  mass float
)

create table Reactions(
  id varchar(12),
  pathway varchar(16),
  kind varchar(12), // phosphorylation | binding | expression
  rate float
)

create table Encodes(
  gene varchar(12),
  protein varchar(12)
)

create table Catalyzes(
  protein varchar(12),
  reaction varchar(12)
)

create table SignalFlow(
  upstream varchar(12),
  downstream varchar(12),
  weight float
)

create vertex GeneVtx(id)
from table Genes

create vertex ProteinVtx(id)
from table Proteins

create vertex ReactionVtx(id)
from table Reactions

create edge encodes with
vertices (GeneVtx, ProteinVtx)
from table Encodes
where Encodes.gene = GeneVtx.id and Encodes.protein = ProteinVtx.id

create edge catalyzes with
vertices (ProteinVtx, ReactionVtx)
from table Catalyzes
where Catalyzes.protein = ProteinVtx.id
and Catalyzes.reaction = ReactionVtx.id

create edge feeds with
vertices (ReactionVtx as Up, ReactionVtx as Down)
from table SignalFlow
where SignalFlow.upstream = Up.id and SignalFlow.downstream = Down.id
"""

#: signal propagation: every reaction downstream of those catalyzed by a
#: gene's protein (unbounded path regex over 'feeds')
DOWNSTREAM = """
select * from graph
GeneVtx (symbol = %Gene%) --encodes--> ProteinVtx ( )
--catalyzes--> ReactionVtx ( ) ( --feeds--> [ ] )* ReactionVtx ( )
into subgraph downstream
"""

#: genes whose products act in a pathway (table output)
PATHWAY_GENES = """
select GeneVtx.symbol, ReactionVtx.id from graph
GeneVtx ( ) --encodes--> ProteinVtx ( )
--catalyzes--> ReactionVtx (pathway = %Pathway%)
into table pathwayGenes

select distinct symbol from table pathwayGenes order by symbol asc
"""


def generate_biology(
    num_pathways: int = 5,
    reactions_per_pathway: int = 12,
    genes_per_pathway: int = 8,
    seed: int = 23,
) -> dict[str, list[tuple]]:
    """Layered pathway DAGs with genes -> proteins -> reactions."""
    rng = np.random.default_rng(seed)
    genes: list[tuple] = []
    proteins: list[tuple] = []
    reactions: list[tuple] = []
    encodes: list[tuple] = []
    catalyzes: list[tuple] = []
    signal: list[tuple] = []
    for p in range(num_pathways):
        pname = f"pathway{p}"
        # layered DAG of reactions
        layer_sizes = []
        remaining = reactions_per_pathway
        while remaining > 0:
            k = int(rng.integers(2, 5))
            layer_sizes.append(min(k, remaining))
            remaining -= k
        layers: list[list[str]] = []
        for li, size in enumerate(layer_sizes):
            layer = []
            for j in range(size):
                rid = f"rx{p}_{li}_{j}"
                layer.append(rid)
                reactions.append(
                    (
                        rid,
                        pname,
                        str(rng.choice(["phosphorylation", "binding", "expression"])),
                        float(np.round(rng.uniform(0.1, 9.9), 3)),
                    )
                )
            layers.append(layer)
        for up_layer, down_layer in zip(layers, layers[1:]):
            for up in up_layer:
                for down in down_layer:
                    if rng.random() < 0.6:
                        signal.append(
                            (up, down, float(np.round(rng.uniform(0.1, 1.0), 3)))
                        )
                # guarantee connectivity: at least one downstream link
                if not any(s[0] == up and s[1] in down_layer for s in signal):
                    signal.append(
                        (
                            up,
                            down_layer[int(rng.integers(len(down_layer)))],
                            0.5,
                        )
                    )
        for g in range(genes_per_pathway):
            gid = f"gene{p}_{g}"
            genes.append(
                (
                    gid,
                    f"SYM{p}_{g}",
                    str(rng.choice(["1", "2", "7", "X"])),
                    float(np.round(rng.uniform(0.0, 20.0), 3)),
                )
            )
            prid = f"prot{p}_{g}"
            proteins.append(
                (
                    prid,
                    f"fam{int(rng.integers(6))}",
                    float(np.round(rng.uniform(10.0, 200.0), 2)),
                )
            )
            encodes.append((gid, prid))
            # proteins catalyze reactions in the first layers
            targets = layers[0] + (layers[1] if len(layers) > 1 else [])
            for rid in rng.choice(
                targets, size=min(2, len(targets)), replace=False
            ):
                catalyzes.append((prid, str(rid)))
    return {
        "Genes": genes,
        "Proteins": proteins,
        "Reactions": reactions,
        "Encodes": encodes,
        "Catalyzes": catalyzes,
        "SignalFlow": signal,
    }


def biology_database(
    num_pathways: int = 5,
    reactions_per_pathway: int = 12,
    genes_per_pathway: int = 8,
    seed: int = 23,
) -> Database:
    """A loaded pathway database."""
    db = Database()
    db.execute(BIOLOGY_DDL)
    for name, rows in generate_biology(
        num_pathways, reactions_per_pathway, genes_per_pathway, seed
    ).items():
        db.db.ingest_rows(name, rows)
    db.catalog.refresh(db.db)
    return db
