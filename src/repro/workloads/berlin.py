"""The Berlin (BSBM) workload — the paper's running example.

``BERLIN_DDL`` is the paper's data definition: the Appendix-A table
declarations, the Fig. 2 vertex declarations and the Fig. 3 edge
declarations (including the ``feature`` edge that references its relation
table only in the ``where`` clause, exactly as printed).  One deviation:
the Appendix declares most string columns ``varchar(10)``, which cannot
hold the paper's own example value "ProductType" (11 chars) nor ids past
``product999``; those columns are widened to ``varchar(16)`` here.
``BERLIN_EXPORT_DDL`` adds the Fig. 4 many-to-one country vertices and
``export`` edge.

``generate_berlin`` synthesizes a deterministic dataset in the spirit of
the Berlin SPARQL Benchmark's e-commerce generator: products made by
producers, carrying features and types from a subclass hierarchy, offered
by vendors, reviewed by persons.  One ``scale`` knob sets the product
count; every other entity count follows BSBM's rough proportions.

``QUERIES`` is the query catalog: the verbatim Figs. 6/7/9/11/13 queries
plus additional business-intelligence queries exercising every language
feature, with parameter generators for benchmarking.
"""

from __future__ import annotations

import datetime as _dt
import os
from typing import Any, Callable

import numpy as np

from repro.engine.session import Database
from repro.storage.csvio import write_csv

COUNTRIES = ["US", "DE", "FR", "GB", "JP", "CN", "IT", "ES", "RU", "BR", "CA", "AT"]

BERLIN_DDL = """
create table Types(
  id varchar(16),
  type varchar(16), // ProductType
  comment varchar(255),
  subclassOf varchar(16), // Types.id
  publisher varchar(16),
  date date
)

create table Features(
  id varchar(16),
  type varchar(16), // ProductFeatures
  label varchar(16),
  comment varchar(255),
  publisher varchar(16),
  date date
)

create table Producers(
  id varchar(16),
  type varchar(16), // Producer
  label varchar(16),
  comment varchar(255),
  homepage varchar(16),
  country varchar(16),
  publisher varchar(16),
  date date
)

create table Products(
  id varchar(16),
  type varchar(16), // Product
  label varchar(16),
  comment varchar(255),
  producer varchar(16), // Producers.id
  propertyNumeric_1 integer,
  propertyNumeric_2 integer,
  propertyNumeric_3 integer,
  propertyNumeric_4 integer,
  propertyNumeric_5 integer,
  propertyText_1 varchar(16),
  propertyText_2 varchar(16),
  propertyText_3 varchar(16),
  propertyText_4 varchar(16),
  propertyText_5 varchar(16),
  publisher varchar(16),
  date date
)

create table ProductTypes(
  product varchar(16), // Products.id
  type varchar(16) // Types.id
)

create table ProductFeatures(
  product varchar(16), // Products.id
  feature varchar(16) // Features.id
)

create table Vendors(
  id varchar(16),
  type varchar(16), // Vendor
  label varchar(16),
  comment varchar(255),
  homepage varchar(16),
  country varchar(16),
  publisher varchar(16),
  date date
)

create table Offers(
  id varchar(16),
  type varchar(16), // Offer
  product varchar(16), // Products.id
  vendor varchar(16), // Vendors.id
  price float,
  validFrom date,
  validTo date,
  deliveryDays integer,
  offerWebPage varchar(16),
  publisher varchar(16),
  date date
)

create table Persons(
  id varchar(16),
  type varchar(16), // Person
  name varchar(16),
  mailbox varchar(16),
  country varchar(16),
  publisher varchar(16),
  date date
)

create table Reviews(
  id varchar(16),
  type varchar(16), // Review
  reviewFor varchar(16), // Products.id
  reviewer varchar(16), // Persons.id
  reviewDate date,
  title varchar(16),
  text varchar(16),
  ratings_1 integer,
  ratings_2 integer,
  ratings_3 integer,
  ratings_4 integer,
  publisher varchar(16),
  date date
)

create vertex TypeVtx(id)
from table Types

create vertex FeatureVtx(id)
from table Features

create vertex ProducerVtx(id)
from table Producers

create vertex ProductVtx(id)
from table Products

create vertex VendorVtx(id)
from table Vendors

create vertex OfferVtx(id)
from table Offers

create vertex PersonVtx(id)
from table Persons

create vertex ReviewVtx(id)
from table Reviews

create edge subclass with
vertices (TypeVtx as A, TypeVtx as B)
where A.subclassOf = B.id

create edge producer with
vertices (ProductVtx, ProducerVtx)
where ProductVtx.producer = ProducerVtx.id

create edge type with
vertices (ProductVtx, TypeVtx)
from table ProductTypes
where ProductTypes.product = ProductVtx.id
and ProductTypes.type = TypeVtx.id

create edge feature with
vertices (ProductVtx, FeatureVtx)
where ProductFeatures.product = ProductVtx.id
and ProductFeatures.feature = FeatureVtx.id

create edge product with
vertices (OfferVtx, ProductVtx)
where OfferVtx.product = ProductVtx.id

create edge vendor with
vertices (OfferVtx, VendorVtx)
where OfferVtx.vendor = VendorVtx.id

create edge reviewFor with
vertices (ReviewVtx, ProductVtx)
where ReviewVtx.reviewFor = ProductVtx.id

create edge reviewer with
vertices (ReviewVtx, PersonVtx)
where ReviewVtx.reviewer = PersonVtx.id
"""

#: Fig. 4: many-to-one country vertices + the export edge whose four-way
#: join derives country-to-country trade links (Fig. 5 semantics)
BERLIN_EXPORT_DDL = """
create vertex ProducerCountry(country)
from table Producers

create vertex VendorCountry(country)
from table Vendors

create edge export with
vertices (ProducerCountry as PC, VendorCountry as VC)
where Products.producer = PC.id
and Offers.product = Products.id
and Offers.vendor = VC.id
and PC.country <> VC.country
"""


class BerlinData:
    """Generated rows per table (stored-form tuples)."""

    def __init__(self, tables: dict[str, list[tuple]], scale: int, seed: int) -> None:
        self.tables = tables
        self.scale = scale
        self.seed = seed

    def counts(self) -> dict[str, int]:
        return {k: len(v) for k, v in self.tables.items()}

    def __repr__(self) -> str:
        return f"BerlinData(scale={self.scale}, {self.counts()})"


def _date(rng: np.random.Generator, start=_dt.date(2005, 1, 1), span_days=3000) -> int:
    return (start + _dt.timedelta(days=int(rng.integers(span_days)))).toordinal()


def generate_berlin(scale: int = 200, seed: int = 7) -> BerlinData:
    """Generate a Berlin dataset with ``scale`` products.

    BSBM-style proportions: ~1 producer per 25 products, ~1 vendor per
    20, features ~ scale/2 with 5-15 per product, a subclass hierarchy of
    branching factor 4, ~1 person per 10 products, ~2 reviews and ~4
    offers per product.
    """
    rng = np.random.default_rng(seed)
    n_products = max(scale, 4)
    n_producers = max(n_products // 25, 2)
    n_vendors = max(n_products // 20, 2)
    n_features = max(n_products // 2, 8)
    n_persons = max(n_products // 10, 4)
    n_offers = n_products * 4
    n_reviews = n_products * 2

    def country() -> str:
        # skewed: earlier countries more common (BSBM-ish Zipf)
        weights = 1.0 / np.arange(1, len(COUNTRIES) + 1)
        weights /= weights.sum()
        return str(rng.choice(COUNTRIES, p=weights))

    # type hierarchy: root + levels of branching factor 4
    types: list[tuple] = []
    parents: list[str | None] = [None]
    type_ids = ["type0"]
    types.append(("type0", "ProductType", "root type", None, "pub1", _date(rng)))
    level = ["type0"]
    depth = 0
    while len(type_ids) < max(8, n_products // 20) and depth < 6:
        nxt = []
        for parent in level:
            for _ in range(4):
                tid = f"type{len(type_ids)}"
                type_ids.append(tid)
                types.append(
                    (tid, "ProductType", f"subtype of {parent}", parent, "pub1", _date(rng))
                )
                nxt.append(tid)
                if len(type_ids) >= max(8, n_products // 20):
                    break
            if len(type_ids) >= max(8, n_products // 20):
                break
        level = nxt
        depth += 1
    leaf_types = [t for t in type_ids if t not in {r[3] for r in types}]
    if not leaf_types:
        leaf_types = type_ids[1:] or type_ids

    features = [
        (
            f"feat{i}",
            "ProductFeature",
            f"label{i}",
            f"feature {i}",
            "pub1",
            _date(rng),
        )
        for i in range(n_features)
    ]

    producers = [
        (
            f"producer{i}",
            "Producer",
            f"label{i}",
            f"producer {i}",
            f"hp{i}",
            country(),
            "pub1",
            _date(rng),
        )
        for i in range(n_producers)
    ]

    # parent map for ancestor closure
    parent_of = {r[0]: r[3] for r in types}

    products: list[tuple] = []
    product_types: list[tuple] = []
    product_features: list[tuple] = []
    for i in range(n_products):
        pid = f"product{i}"
        products.append(
            (
                pid,
                "Product",
                f"label{i}",
                f"product {i}",
                f"producer{int(rng.integers(n_producers))}",
                int(rng.integers(1, 2001)),
                int(rng.integers(1, 2001)),
                int(rng.integers(1, 2001)),
                int(rng.integers(1, 2001)),
                int(rng.integers(1, 2001)),
                f"text{int(rng.integers(100))}",
                f"text{int(rng.integers(100))}",
                f"text{int(rng.integers(100))}",
                f"text{int(rng.integers(100))}",
                f"text{int(rng.integers(100))}",
                "pub1",
                _date(rng),
            )
        )
        # leaf type + all ancestors (BSBM assigns the full chain)
        leaf = leaf_types[int(rng.integers(len(leaf_types)))]
        t: str | None = leaf
        while t is not None:
            product_types.append((pid, t))
            t = parent_of.get(t)
        nfeat = int(rng.integers(5, 16))
        chosen = rng.choice(n_features, size=min(nfeat, n_features), replace=False)
        for f in chosen:
            product_features.append((pid, f"feat{int(f)}"))

    vendors = [
        (
            f"vendor{i}",
            "Vendor",
            f"label{i}",
            f"vendor {i}",
            f"hp{i}",
            country(),
            "pub1",
            _date(rng),
        )
        for i in range(n_vendors)
    ]

    offers: list[tuple] = []
    for i in range(n_offers):
        valid_from = _date(rng)
        offers.append(
            (
                f"offer{i}",
                "Offer",
                f"product{int(rng.integers(n_products))}",
                f"vendor{int(rng.integers(n_vendors))}",
                float(np.round(rng.uniform(5, 10_000), 2)),
                valid_from,
                valid_from + int(rng.integers(10, 200)),
                int(rng.integers(1, 15)),
                f"page{i}",
                "pub1",
                _date(rng),
            )
        )

    persons = [
        (
            f"person{i}",
            "Person",
            f"name{i}",
            f"mb{i}",
            country(),
            "pub1",
            _date(rng),
        )
        for i in range(n_persons)
    ]

    reviews: list[tuple] = []
    for i in range(n_reviews):
        reviews.append(
            (
                f"review{i}",
                "Review",
                f"product{int(rng.integers(n_products))}",
                f"person{int(rng.integers(n_persons))}",
                _date(rng),
                f"title{i}",
                f"text{i}",
                int(rng.integers(1, 11)),
                int(rng.integers(1, 11)),
                int(rng.integers(1, 11)),
                int(rng.integers(1, 11)),
                "pub1",
                _date(rng),
            )
        )

    return BerlinData(
        {
            "Types": types,
            "Features": features,
            "Producers": producers,
            "Products": products,
            "ProductTypes": product_types,
            "ProductFeatures": product_features,
            "Vendors": vendors,
            "Offers": offers,
            "Persons": persons,
            "Reviews": reviews,
        },
        scale,
        seed,
    )


def berlin_database(
    scale: int = 200, seed: int = 7, with_export: bool = False
) -> Database:
    """A fully-loaded Berlin database (DDL executed, rows ingested)."""
    db = Database()
    db.execute(BERLIN_DDL)
    data = generate_berlin(scale, seed)
    for name, rows in data.tables.items():
        db.db.ingest_rows(name, rows)
    if with_export:
        db.catalog.refresh(db.db)
        db.execute(BERLIN_EXPORT_DDL)
    db.catalog.refresh(db.db)
    return db


def write_berlin_csvs(directory: str, scale: int = 200, seed: int = 7) -> dict[str, str]:
    """Write the generated dataset as CSV files for ``ingest table``."""
    os.makedirs(directory, exist_ok=True)
    db = Database()
    db.execute(BERLIN_DDL)
    data = generate_berlin(scale, seed)
    paths = {}
    for name, rows in data.tables.items():
        table = db.db.table(name)
        table.append_rows(rows)
        path = os.path.join(directory, f"{name}.csv")
        write_csv(table, path, header=False)
        paths[name] = path
    return paths


# ----------------------------------------------------------------------
# Query catalog (verbatim paper queries + additional BI queries)
# ----------------------------------------------------------------------

#: Fig. 6 — Berlin Query 2: top 10 products most similar to %Product1%
#: by the count of features in common.
Q2_FIG6 = """
select y.id from graph
ProductVtx (id = %Product1%)
--feature--> FeatureVtx ( )
<--feature-- def y: ProductVtx (id <> %Product1%)
into table T1

select top 10 id, count(*) as groupCount
from table T1
group by id order by groupCount desc, id asc
"""

#: Fig. 7 — Berlin Query 1: top 10 most discussed product categories of
#: products from %Country1% based on reviews from reviewers in %Country2%.
Q1_FIG7 = """
select TypeVtx.id from graph
PersonVtx (country = %Country2%)
<--reviewer-- ReviewVtx ( )
--reviewFor--> foreach y: ProductVtx ( )
--producer--> ProducerVtx (country = %Country1%)
and
(y --type--> TypeVtx ( ))
into table T1

select top 10 id, count(*) as groupCount
from table T1
group by id order by groupCount desc, id asc
"""

#: Fig. 9 — the subgraph of all reviews and offers of %Product1%
#: (type-matching variant step).
Q_FIG9 = """
select * from graph
ProductVtx (id = %Product1%) <--[]-- [ ]
into subgraph resultsG
"""

#: Fig. 10-style — types reachable from a product's direct type through
#: one or more subclass hops (path regular expression).
Q_REGEX = """
select * from graph
TypeVtx (id = %Type1%) ( --subclass--> [ ] )+ TypeVtx ( )
into subgraph ancestors
"""

#: Fig. 11 — endpoint projection into a subgraph.
Q_FIG11 = """
select PersonVtx, ProducerVtx from graph
PersonVtx ( ) <--reviewer-- ReviewVtx ( ) --reviewFor--> ProductVtx ( )
--producer--> ProducerVtx (country = %Country1%)
into subgraph endpoints
"""

#: Fig. 13 — the full matching subgraph as a wide table.
Q_FIG13 = """
select * from graph
ReviewVtx ( ) --reviewFor--> ProductVtx (propertyNumeric_1 > %Threshold%)
--producer--> ProducerVtx ( )
into table fullPaths
"""

#: BI query: average offer price per vendor country for one product type.
Q_PRICE = """
select OfferVtx.price, VendorVtx.country from graph
TypeVtx (id = %Type1%) <--type-- ProductVtx ( )
<--product-- foreach o: OfferVtx (deliveryDays < 7)
and
(o --vendor--> VendorVtx ( ))
into table offerPrices

select country, count(*) as offers, avg(price) as avgPrice
from table offerPrices
group by country order by avgPrice desc
"""

#: BI query: reviewers who reviewed products of a given producer.
Q_REVIEWERS = """
select distinct id from table reviewerIds order by id asc
"""

Q_REVIEWERS_GRAPH = """
select PersonVtx.id from graph
ProducerVtx (id = %Producer1%) <--producer-- ProductVtx ( )
<--reviewFor-- ReviewVtx (ratings_1 >= %MinRating%)
--reviewer--> PersonVtx ( )
into table reviewerIds
"""

#: BI query: offers valid on a given date, rolled up by vendor country.
Q_VALID_OFFERS = """
select o.price as price, VendorVtx.country as country from graph
foreach o: OfferVtx (validFrom <= %Day% and validTo >= %Day%)
--vendor--> VendorVtx ( )
and
(o --product--> ProductVtx (propertyNumeric_1 > %MinProp%))
into table validOffers

select country, count(*) as offers, min(price) as cheapest
from table validOffers
group by country order by offers desc, country asc
"""

#: BI query: rating summary per product of one producer (edge-date mix).
Q_RATINGS = """
select p.id as product, ReviewVtx.ratings_1 as r1 from graph
ProducerVtx (id = %Producer1%) <--producer-- def p: ProductVtx ( )
<--reviewFor-- ReviewVtx ( )
into table producerRatings

select product, count(*) as reviews, avg(r1) as meanRating,
       max(r1) as best
from table producerRatings
group by product order by meanRating desc, product asc
"""

#: BI query: feature popularity — how many products carry each feature.
Q_FEATURES = """
select f.id as feature from graph
ProductVtx ( ) --feature--> def f: FeatureVtx ( )
into table featureUse

select top 10 feature, count(*) as products from table featureUse
group by feature order by products desc, feature asc
"""


class QuerySpec:
    """A named query plus a parameter generator."""

    def __init__(self, name: str, graql: str, params: Callable[[np.random.Generator, BerlinData], dict[str, Any]]) -> None:
        self.name = name
        self.graql = graql
        self.params = params


def _p_product(rng, data):
    return {"Product1": f"product{int(rng.integers(len(data.tables['Products'])))}"}


def _p_countries(rng, data):
    return {"Country1": COUNTRIES[0], "Country2": COUNTRIES[1]}


def _p_type(rng, data):
    ids = [r[0] for r in data.tables["Types"]]
    return {"Type1": ids[int(rng.integers(len(ids)))]}


def _p_threshold(rng, data):
    return {"Threshold": 1500}


def _p_producer(rng, data):
    ids = [r[0] for r in data.tables["Producers"]]
    return {"Producer1": ids[int(rng.integers(len(ids)))], "MinRating": 5}


def _p_day(rng, data):
    import datetime as _dtmod

    return {"Day": _dtmod.date(2010, 6, 1), "MinProp": 500}


QUERIES: dict[str, QuerySpec] = {
    "berlin_q1": QuerySpec("berlin_q1", Q1_FIG7, _p_countries),
    "berlin_q2": QuerySpec("berlin_q2", Q2_FIG6, _p_product),
    "fig9_type_match": QuerySpec("fig9_type_match", Q_FIG9, _p_product),
    "fig10_regex": QuerySpec("fig10_regex", Q_REGEX, _p_type),
    "fig11_endpoints": QuerySpec("fig11_endpoints", Q_FIG11, _p_countries),
    "fig13_full_table": QuerySpec("fig13_full_table", Q_FIG13, _p_threshold),
    "bi_price": QuerySpec("bi_price", Q_PRICE, _p_type),
    "bi_reviewers": QuerySpec(
        "bi_reviewers", Q_REVIEWERS_GRAPH + "\n" + Q_REVIEWERS, _p_producer
    ),
    "bi_valid_offers": QuerySpec("bi_valid_offers", Q_VALID_OFFERS, _p_day),
    "bi_ratings": QuerySpec("bi_ratings", Q_RATINGS, _p_producer),
    "bi_features": QuerySpec("bi_features", Q_FEATURES, lambda rng, data: {}),
}
