"""Metadata catalog (paper Section III).

The GEMS front-end server keeps "a central metadata repository (catalog)
of all existing database objects (tables, vertices, edges) ... updated
information on the sizes of those objects".  Static query analysis
(Section III-A) runs against this catalog *without touching data*;
dynamic planning (Section III-B) additionally uses the statistical
summaries in :mod:`repro.catalog.stats` (cardinalities, degree
distributions, per-attribute distinct counts).
"""

from repro.catalog.catalog import Catalog, EdgeMeta, TableMeta, VertexMeta
from repro.catalog.stats import DegreeStats, estimate_selectivity

__all__ = [
    "Catalog",
    "TableMeta",
    "VertexMeta",
    "EdgeMeta",
    "DegreeStats",
    "estimate_selectivity",
]
