"""Data statistics for dynamic query planning (Section III-B).

    "Examples of these properties could be number of instances of vertex
    and edge types, as well as statistical properties of the degree
    distribution of a vertex type with respect to an edge type."

:class:`DegreeStats` summarizes exactly that degree distribution, and
:func:`estimate_selectivity` is the textbook heuristic estimator the
planner uses to decide which end of a path query to start from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage.expr import (
    BinOp,
    ColRef,
    Const,
    Expr,
    IsNull,
    Not,
)

# Default selectivity guesses (System-R style heuristics)
SEL_EQ_DEFAULT = 0.1
SEL_RANGE = 1.0 / 3.0
SEL_NEQ = 0.9
SEL_FALLBACK = 0.5


class DegreeStats:
    """Degree-distribution summary of one edge type w.r.t. its endpoints."""

    def __init__(self, out_degrees: np.ndarray, in_degrees: np.ndarray) -> None:
        self.avg_out = float(out_degrees.mean()) if len(out_degrees) else 0.0
        self.max_out = int(out_degrees.max()) if len(out_degrees) else 0
        self.frac_out_nonzero = (
            float((out_degrees > 0).mean()) if len(out_degrees) else 0.0
        )
        self.avg_in = float(in_degrees.mean()) if len(in_degrees) else 0.0
        self.max_in = int(in_degrees.max()) if len(in_degrees) else 0
        self.frac_in_nonzero = (
            float((in_degrees > 0).mean()) if len(in_degrees) else 0.0
        )

    def expansion_factor(self, outgoing: bool) -> float:
        """Expected frontier growth when traversing this edge type."""
        return self.avg_out if outgoing else self.avg_in

    def __repr__(self) -> str:
        return (
            f"DegreeStats(out: avg={self.avg_out:.2f} max={self.max_out}, "
            f"in: avg={self.avg_in:.2f} max={self.max_in})"
        )


def estimate_selectivity(
    cond: Optional[Expr],
    distinct_counts: Optional[dict[str, int]] = None,
) -> float:
    """Estimate the fraction of instances a step condition retains.

    *distinct_counts* maps attribute names to their number of distinct
    values (from the catalog); equality against a literal then estimates
    1/ndistinct, the classic uniformity assumption.  Without statistics
    the System-R defaults apply.  The result is clamped to (0, 1].
    """
    if cond is None:
        return 1.0
    sel = _estimate(cond, distinct_counts or {})
    return float(min(max(sel, 1e-9), 1.0))


def _estimate(cond: Expr, distincts: dict[str, int]) -> float:
    if isinstance(cond, BinOp):
        if cond.op == "and":
            return _estimate(cond.left, distincts) * _estimate(cond.right, distincts)
        if cond.op == "or":
            a = _estimate(cond.left, distincts)
            b = _estimate(cond.right, distincts)
            return min(a + b, 1.0)
        if cond.op == "=":
            attr = _literal_comparison_attr(cond)
            if attr is not None and distincts.get(attr, 0) > 0:
                return 1.0 / distincts[attr]
            return SEL_EQ_DEFAULT
        if cond.op in ("<>", "!="):
            return SEL_NEQ
        if cond.op in ("<", "<=", ">", ">="):
            return SEL_RANGE
        return SEL_FALLBACK
    if isinstance(cond, Not):
        return 1.0 - _estimate(cond.operand, distincts)
    if isinstance(cond, IsNull):
        return 0.1 if not cond.negated else 0.9
    return SEL_FALLBACK


def _literal_comparison_attr(cond: BinOp) -> Optional[str]:
    """The attribute name if *cond* compares a column against a literal."""
    if isinstance(cond.left, ColRef) and isinstance(cond.right, Const):
        return cond.left.name
    if isinstance(cond.right, ColRef) and isinstance(cond.left, Const):
        return cond.right.name
    return None


def distinct_count(arr: np.ndarray) -> int:
    """Number of distinct values in a column array (catalog refresh)."""
    if arr.dtype == np.dtype(object):
        return len({v for v in arr})
    return int(len(np.unique(arr)))
