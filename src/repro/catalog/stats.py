"""Data statistics for dynamic query planning (Section III-B).

    "Examples of these properties could be number of instances of vertex
    and edge types, as well as statistical properties of the degree
    distribution of a vertex type with respect to an edge type."

:class:`DegreeStats` summarizes the degree distribution,
:class:`ColumnStats` summarizes one attribute column (distinct count,
null fraction, equi-depth histogram), and :func:`estimate_selectivity`
turns a step condition into a retained-fraction estimate.  With column
statistics the estimate interpolates real value distributions; without
them the System-R constants below are the fallback.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.storage.expr import (
    BinOp,
    ColRef,
    Const,
    Expr,
    IsNull,
    Not,
)

# Default selectivity guesses (System-R style heuristics)
SEL_EQ_DEFAULT = 0.1
SEL_RANGE = 1.0 / 3.0
SEL_NEQ = 0.9
SEL_FALLBACK = 0.5

#: equi-depth histogram resolution; each bucket holds ~1/B of the rows,
#: so any range estimate is within built_rows/B of the true count
HISTOGRAM_BINS = 64

#: column statistics survive a catalog refresh while the row count has
#: drifted by at most this fraction since they were built
STATS_STALENESS_FRAC = 0.2


class DegreeStats:
    """Degree-distribution summary of one edge type w.r.t. its endpoints."""

    def __init__(self, out_degrees: np.ndarray, in_degrees: np.ndarray) -> None:
        self.avg_out = float(out_degrees.mean()) if len(out_degrees) else 0.0
        self.max_out = int(out_degrees.max()) if len(out_degrees) else 0
        self.frac_out_nonzero = (
            float((out_degrees > 0).mean()) if len(out_degrees) else 0.0
        )
        self.avg_in = float(in_degrees.mean()) if len(in_degrees) else 0.0
        self.max_in = int(in_degrees.max()) if len(in_degrees) else 0
        self.frac_in_nonzero = (
            float((in_degrees > 0).mean()) if len(in_degrees) else 0.0
        )

    def expansion_factor(self, outgoing: bool) -> float:
        """Expected frontier growth when traversing this edge type."""
        return self.avg_out if outgoing else self.avg_in

    def __repr__(self) -> str:
        return (
            f"DegreeStats(out: avg={self.avg_out:.2f} max={self.max_out}, "
            f"in: avg={self.avg_in:.2f} max={self.max_in})"
        )


class ColumnStats:
    """Summary statistics of one attribute column.

    Equi-depth histogram: ``bins`` holds B+1 edges taken at the value
    quantiles of the non-null rows, so every bucket covers ~1/B of the
    rows and a range estimate is off by at most one bucket (the
    "histogram error bound": ``built_rows / B`` rows).
    """

    __slots__ = ("ndv", "null_frac", "built_rows", "bins", "min_val", "max_val", "numeric")

    def __init__(
        self,
        ndv: int,
        null_frac: float,
        built_rows: int,
        bins: Optional[np.ndarray],
        min_val: Any,
        max_val: Any,
        numeric: bool,
    ) -> None:
        self.ndv = ndv
        self.null_frac = null_frac
        self.built_rows = built_rows
        self.bins = bins
        self.min_val = min_val
        self.max_val = max_val
        self.numeric = numeric

    # ------------------------------------------------------------------
    def eq_selectivity(self, value: Any = None) -> float:
        """P(attr = literal).

        With a literal and a histogram, the estimate is the histogram
        mass at the value: equi-depth bucket edges repeat for heavy
        hitters, so the edge span of *value* measures its frequency to
        within one bucket.  A value occupying no edge span (anything
        rarer than a bucket) falls back to per-distinct uniformity.
        """
        if self.built_rows == 0 or self.ndv <= 0:
            return SEL_EQ_DEFAULT
        uniform = (1.0 - self.null_frac) / self.ndv
        if value is None or self.bins is None or len(self.bins) < 2:
            return uniform
        v = self._comparable(value)
        if v is None:
            return uniform
        mass = self._frac_below(v, inclusive=True) - self._frac_below(
            v, inclusive=False
        )
        mass *= 1.0 - self.null_frac
        bucket = 1.0 / (len(self.bins) - 1)
        return mass if mass > bucket else min(uniform, bucket)

    def range_selectivity(self, op: str, value: Any) -> float:
        """P(attr <op> literal) interpolated from the histogram."""
        if self.built_rows == 0:
            return SEL_RANGE
        if self.bins is None or len(self.bins) < 2:
            return SEL_RANGE
        value = self._comparable(value)
        if value is None:
            return SEL_RANGE
        if op == "<":
            frac = self._frac_below(value, inclusive=False)
        elif op == "<=":
            frac = self._frac_below(value, inclusive=True)
        elif op == ">":
            frac = 1.0 - self._frac_below(value, inclusive=True)
        elif op == ">=":
            frac = 1.0 - self._frac_below(value, inclusive=False)
        else:
            return SEL_RANGE
        return frac * (1.0 - self.null_frac)

    def null_selectivity(self, negated: bool) -> float:
        return (1.0 - self.null_frac) if negated else self.null_frac

    def _comparable(self, value: Any):
        """Coerce a literal into the histogram's value domain."""
        if self.numeric:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return None
            return value
        return str(value)

    def _frac_below(self, value: Any, *, inclusive: bool) -> float:
        """Fraction of non-null rows with attr < value (<= if inclusive)."""
        edges = self.bins
        nb = len(edges) - 1
        side = "right" if inclusive else "left"
        try:
            i = int(np.searchsorted(edges, value, side=side))
        except TypeError:
            return SEL_RANGE
        if i <= 0:
            return 0.0
        if i > nb:
            return 1.0
        lo, hi = edges[i - 1], edges[i]
        if self.numeric and hi > lo:
            within = min(max((float(value) - float(lo)) / (float(hi) - float(lo)), 0.0), 1.0)
        else:
            within = 0.5  # strings / repeated edges: mid-bucket assumption
        return ((i - 1) + within) / nb

    def error_bound_rows(self) -> float:
        """Worst-case row error of a histogram range estimate."""
        if self.bins is None or len(self.bins) < 2:
            return float(self.built_rows)
        return self.built_rows / (len(self.bins) - 1)

    def __repr__(self) -> str:
        return (
            f"ColumnStats(ndv={self.ndv}, null_frac={self.null_frac:.3f}, "
            f"rows={self.built_rows}, bins={0 if self.bins is None else len(self.bins) - 1})"
        )


def build_column_stats(
    arr: np.ndarray,
    null_mask: np.ndarray,
    bins: int = HISTOGRAM_BINS,
) -> ColumnStats:
    """Collect :class:`ColumnStats` over one vid-aligned attribute array."""
    n = len(arr)
    if n == 0:
        return ColumnStats(0, 0.0, 0, None, None, None, True)
    null_frac = float(null_mask.mean())
    vals = arr[~null_mask]
    numeric = arr.dtype != np.dtype(object)
    if len(vals) == 0:
        return ColumnStats(0, null_frac, n, None, None, None, numeric)
    if not numeric:
        vals = np.array([str(v) for v in vals], dtype=object)
    ndv = distinct_count(vals)
    svals = np.sort(vals, kind="stable")
    nb = max(1, min(bins, len(svals)))
    edges = svals[np.linspace(0, len(svals) - 1, nb + 1).astype(np.int64)]
    lo = svals[0] if svals.dtype == object else svals[0].item()
    hi = svals[-1] if svals.dtype == object else svals[-1].item()
    return ColumnStats(ndv, null_frac, n, edges, lo, hi, numeric)


def estimate_selectivity(
    cond: Optional[Expr],
    distinct_counts: Optional[dict[str, int]] = None,
    column_stats: Optional[dict[str, ColumnStats]] = None,
) -> float:
    """Estimate the fraction of instances a step condition retains.

    *column_stats* maps attribute names to :class:`ColumnStats`; literal
    comparisons then use real distinct counts, null fractions and
    equi-depth histograms.  *distinct_counts* (attribute -> NDV) is the
    coarser fallback; without either the System-R defaults apply.  The
    result is clamped to (0, 1].
    """
    if cond is None:
        return 1.0
    sel = _estimate(cond, distinct_counts or {}, column_stats or {})
    return float(min(max(sel, 1e-9), 1.0))


def _estimate(cond: Expr, distincts: dict[str, int], stats: dict[str, ColumnStats]) -> float:
    if isinstance(cond, BinOp):
        if cond.op == "and":
            return _estimate(cond.left, distincts, stats) * _estimate(
                cond.right, distincts, stats
            )
        if cond.op == "or":
            a = _estimate(cond.left, distincts, stats)
            b = _estimate(cond.right, distincts, stats)
            return min(a + b, 1.0)
        if cond.op == "=":
            ref = _literal_comparison_ref(cond)
            if ref is not None and ref[0] in stats:
                return stats[ref[0]].eq_selectivity(ref[2])
            attr = _literal_comparison_attr(cond)
            if attr is not None and distincts.get(attr, 0) > 0:
                return 1.0 / distincts[attr]
            return SEL_EQ_DEFAULT
        if cond.op in ("<>", "!="):
            ref = _literal_comparison_ref(cond)
            if ref is not None and ref[0] in stats:
                cs = stats[ref[0]]
                return max(
                    1.0 - cs.null_frac - cs.eq_selectivity(ref[2]), 0.0
                )
            return SEL_NEQ
        if cond.op in ("<", "<=", ">", ">="):
            ref = _literal_comparison_ref(cond)
            if ref is not None:
                attr, op, value = ref
                if attr in stats:
                    return stats[attr].range_selectivity(op, value)
            return SEL_RANGE
        return SEL_FALLBACK
    if isinstance(cond, Not):
        return 1.0 - _estimate(cond.operand, distincts, stats)
    if isinstance(cond, IsNull):
        attr = cond.operand.name if isinstance(cond.operand, ColRef) else None
        if attr is not None and attr in stats:
            return stats[attr].null_selectivity(cond.negated)
        return 0.1 if not cond.negated else 0.9
    return SEL_FALLBACK


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _literal_comparison_attr(cond: BinOp) -> Optional[str]:
    """The attribute name if *cond* compares a column against a literal."""
    if isinstance(cond.left, ColRef) and isinstance(cond.right, Const):
        return cond.left.name
    if isinstance(cond.right, ColRef) and isinstance(cond.left, Const):
        return cond.right.name
    return None


def _literal_comparison_ref(cond: BinOp) -> Optional[tuple[str, str, Any]]:
    """(attr, normalized op, literal) with the column on the left."""
    if isinstance(cond.left, ColRef) and isinstance(cond.right, Const):
        return cond.left.name, cond.op, cond.right.value
    if isinstance(cond.right, ColRef) and isinstance(cond.left, Const):
        return cond.right.name, _FLIPPED.get(cond.op, cond.op), cond.left.value
    return None


def distinct_count(arr: np.ndarray) -> int:
    """Number of distinct values in a column array (catalog refresh)."""
    if arr.dtype == np.dtype(object):
        return len({v for v in arr})
    return int(len(np.unique(arr)))
