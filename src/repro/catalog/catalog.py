"""The metadata catalog: schemas, sizes, statistics — no row data.

A :class:`Catalog` is a *snapshot* of a :class:`~repro.graph.graphdb.GraphDB`'s
metadata, matching the paper's front-end/backend split: the front-end
server type-checks queries against the catalog alone (Section III-A), while
the data stays on the backend.  ``Catalog.refresh`` recomputes sizes and
statistics after DDL or ingest, mirroring the paper's "updated information
on the sizes of those objects (e.g. how many rows in table? how many
vertex instances of certain type?)".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.catalog.stats import (
    STATS_STALENESS_FRAC,
    ColumnStats,
    DegreeStats,
    build_column_stats,
    distinct_count,
)
from repro.errors import CatalogError
from repro.storage.column import Column
from repro.storage.schema import Schema


class TableMeta:
    """Metadata for one table."""

    def __init__(self, name: str, schema: Schema, num_rows: int, derived: bool) -> None:
        self.name = name
        self.schema = schema
        self.num_rows = num_rows
        self.derived = derived

    def __repr__(self) -> str:
        return f"TableMeta({self.name!r}, rows={self.num_rows})"


class VertexMeta:
    """Metadata for one vertex type (a view per Eq. 1)."""

    def __init__(
        self,
        name: str,
        key_cols: list[str],
        table: str,
        attr_schema: Schema,
        one_to_one: bool,
        num_vertices: int,
        distinct_counts: dict[str, int],
    ) -> None:
        self.name = name
        self.key_cols = key_cols
        self.table = table
        self.attr_schema = attr_schema
        self.one_to_one = one_to_one
        self.num_vertices = num_vertices
        #: per-attribute distinct-value counts for selectivity estimation
        self.distinct_counts = distinct_counts
        #: lazily-built per-attribute :class:`ColumnStats`; populated on
        #: first planner request and carried across refreshes while fresh
        self._stats_cache: dict[str, ColumnStats] = {}
        #: callable ``name -> (vid-aligned array, dtype)`` bound to the
        #: live vertex view at refresh time; None for scratch metas
        self._stats_provider = None

    def column_stats(self, attr: str) -> Optional[ColumnStats]:
        """Histogram statistics for one attribute, built on first use.

        Cached stats are reused until the vertex count has drifted past
        :data:`~repro.catalog.stats.STATS_STALENESS_FRAC` of the rows
        they were built over; then they are recollected from the live
        view.  Returns None when no live view is attached (scratch
        catalogs during static analysis).
        """
        cached = self._stats_cache.get(attr)
        if cached is not None:
            drift = abs(self.num_vertices - cached.built_rows)
            if drift <= STATS_STALENESS_FRAC * max(cached.built_rows, 1):
                return cached
        if self._stats_provider is None:
            return cached
        if not self.attr_schema.has(attr):
            return None
        arr, dtype = self._stats_provider(attr)
        stats = build_column_stats(arr, Column(dtype, arr).null_mask())
        self._stats_cache[attr] = stats
        return stats

    def all_column_stats(self) -> dict[str, ColumnStats]:
        """Stats for every attribute that already has them (no building)."""
        return dict(self._stats_cache)

    def stats_freshness(self) -> Optional[float]:
        """Largest row-count drift fraction across collected stats, or
        None when no stats have been collected yet (0.0 == fully fresh)."""
        if not self._stats_cache:
            return None
        return max(
            abs(self.num_vertices - cs.built_rows) / max(cs.built_rows, 1)
            for cs in self._stats_cache.values()
        )

    def __repr__(self) -> str:
        return f"VertexMeta({self.name!r}, n={self.num_vertices})"


class EdgeMeta:
    """Metadata for one edge type (a view per Eq. 2)."""

    def __init__(
        self,
        name: str,
        source_type: str,
        target_type: str,
        attr_schema: Schema,
        num_edges: int,
        degree_stats: DegreeStats,
    ) -> None:
        self.name = name
        self.source_type = source_type
        self.target_type = target_type
        self.attr_schema = attr_schema
        self.num_edges = num_edges
        self.degree_stats = degree_stats

    def __repr__(self) -> str:
        return f"EdgeMeta({self.name!r}, {self.source_type}->{self.target_type}, m={self.num_edges})"


class IndexMeta:
    """Metadata for one secondary attribute index (``create index``)."""

    def __init__(
        self,
        name: str,
        target: str,
        target_kind: str,
        attrs: tuple[str, ...],
        num_entries: int,
    ) -> None:
        self.name = name
        #: indexed vertex or edge type name
        self.target = target
        #: ``"vertex"`` or ``"edge"``
        self.target_kind = target_kind
        self.attrs = tuple(attrs)
        self.num_entries = num_entries

    def __repr__(self) -> str:
        cols = ", ".join(self.attrs)
        return f"IndexMeta({self.name!r} on {self.target}({cols}))"


class Catalog:
    """Snapshot of all database-object metadata."""

    #: attributes with at most this many rows get exact distinct counts;
    #: larger columns are sampled (keeps refresh cheap on big ingests)
    DISTINCT_SAMPLE = 100_000

    def __init__(self) -> None:
        self.tables: dict[str, TableMeta] = {}
        self.vertices: dict[str, VertexMeta] = {}
        self.edges: dict[str, EdgeMeta] = {}
        self.indexes: dict[str, IndexMeta] = {}
        self.subgraphs: dict[str, dict[str, int]] = {}
        #: monotonically increasing version, bumped on every metadata
        #: change (refresh or targeted registration).  The serving
        #: layer's plan cache keys on it: any entry compiled against an
        #: older epoch is stale and recompiles (docs/API.md).
        self.epoch: int = 0

    # ------------------------------------------------------------------
    # Refresh from a GraphDB
    # ------------------------------------------------------------------
    @classmethod
    def from_db(cls, db) -> "Catalog":
        cat = cls()
        cat.refresh(db)
        return cat

    def refresh(self, db) -> None:
        """Recompute all metadata.

        Builds into fresh dicts and swaps them in with single assignments,
        so concurrent readers (parallel scheduled statements) never observe
        a half-rebuilt catalog.
        """
        tables = {
            name: TableMeta(name, t.schema, t.num_rows, name in db.derived_tables)
            for name, t in db.tables.items()
        }
        vertices: dict[str, VertexMeta] = {}
        for name, vt in db.vertex_types.items():
            schema = vt.attribute_schema()
            distincts: dict[str, int] = {}
            for cdef in schema:
                arr, _ = vt.attribute_array(cdef.name)
                if len(arr) > self.DISTINCT_SAMPLE:
                    sample = arr[
                        np.linspace(0, len(arr) - 1, self.DISTINCT_SAMPLE).astype(np.int64)
                    ]
                    distincts[cdef.name] = max(
                        1, int(distinct_count(sample) * len(arr) / len(sample))
                    )
                else:
                    distincts[cdef.name] = distinct_count(arr)
            vm = VertexMeta(
                name,
                vt.key_cols,
                vt.table.name,
                schema,
                vt.one_to_one,
                vt.num_vertices,
                distincts,
            )
            vm._stats_provider = vt.attribute_array
            prev = self.vertices.get(name)
            if prev is not None:
                # carry collected stats forward; column_stats() drops any
                # entry whose row drift exceeds the staleness threshold
                vm._stats_cache = dict(prev._stats_cache)
            vertices[name] = vm
        edges: dict[str, EdgeMeta] = {}
        for name, et in db.edge_types.items():
            idx = db.indexes[name]
            stats = DegreeStats(idx.forward.degrees(), idx.reverse.degrees())
            edges[name] = EdgeMeta(
                name,
                et.source.name,
                et.target.name,
                et.attribute_schema(),
                et.num_edges,
                stats,
            )
        indexes = {
            name: IndexMeta(name, gi.target_name, gi.kind, tuple(gi.attrs), gi.num_entries)
            for name, gi in getattr(db, "attr_indexes", {}).items()
        }
        subgraphs = {
            name: {k: len(v) for k, v in sg.vertices.items()}
            for name, sg in db.subgraphs.items()
        }
        # atomic swap: each assignment publishes a complete dict
        self.tables = tables
        self.vertices = vertices
        self.edges = edges
        self.indexes = indexes
        self.subgraphs = subgraphs
        self.epoch += 1

    def scratch_copy(self) -> "Catalog":
        """A cheap copy for static analysis of a script.

        Script checking only *inserts* scratch entries for the script's
        own DDL — existing meta objects are never mutated — so fresh
        top-level dicts sharing the meta objects are enough.  This
        avoids deep-copying per-edge degree statistics on every check,
        which dominates type-checking time on catalogs of any size.

        Safe to call while the serving layer executes statements
        concurrently: every catalog mutation swaps in a freshly-built
        dict (never mutates one in place), so each ``dict(...)`` below
        copies a stable snapshot — iteration can never race an insert.
        """
        cat = Catalog()
        cat.tables = dict(self.tables)
        cat.vertices = dict(self.vertices)
        cat.edges = dict(self.edges)
        cat.indexes = dict(self.indexes)
        cat.subgraphs = {name: dict(v) for name, v in self.subgraphs.items()}
        cat.epoch = self.epoch
        return cat

    def register_result_table(self, name: str, table) -> None:
        """Targeted metadata update for an 'into table' result.

        Copy-on-write: builds a new dict and swaps it in, so concurrent
        readers (parallel statements, ``scratch_copy`` under the serving
        layer's read lock) never observe a dict mid-insert."""
        tables = dict(self.tables)
        tables[name] = TableMeta(name, table.schema, table.num_rows, True)
        self.tables = tables
        self.epoch += 1

    def register_subgraph(self, name: str, counts: dict[str, int]) -> None:
        """Targeted metadata update for an 'into subgraph' result
        (copy-on-write, same publication contract as
        :meth:`register_result_table`)."""
        subgraphs = dict(self.subgraphs)
        subgraphs[name] = counts
        self.subgraphs = subgraphs
        self.epoch += 1

    # ------------------------------------------------------------------
    # Lookups (raise CatalogError with III-A-style messages)
    # ------------------------------------------------------------------
    def table(self, name: str) -> TableMeta:
        if name not in self.tables:
            hint = ""
            if name in self.vertices:
                hint = " (it is a vertex type; a table name is required here)"
            elif name in self.edges:
                hint = " (it is an edge type; a table name is required here)"
            raise CatalogError(f"unknown table {name!r}{hint}")
        return self.tables[name]

    def vertex(self, name: str) -> VertexMeta:
        if name not in self.vertices:
            hint = ""
            if name in self.tables:
                hint = " (it is a table; a vertex type is required here)"
            elif name in self.edges:
                hint = " (it is an edge type; a vertex type is required here)"
            raise CatalogError(f"unknown vertex type {name!r}{hint}")
        return self.vertices[name]

    def edge(self, name: str) -> EdgeMeta:
        if name not in self.edges:
            hint = ""
            if name in self.tables:
                hint = " (it is a table; an edge type is required here)"
            elif name in self.vertices:
                hint = " (it is a vertex type; an edge type is required here)"
            raise CatalogError(f"unknown edge type {name!r}{hint}")
        return self.edges[name]

    def index(self, name: str) -> IndexMeta:
        if name not in self.indexes:
            existing = ", ".join(sorted(self.indexes)) or "none"
            raise CatalogError(
                f"unknown index {name!r} (existing indexes: {existing})"
            )
        return self.indexes[name]

    def indexes_on(self, target: str) -> list[IndexMeta]:
        """All secondary indexes over one vertex/edge type."""
        return [im for im in self.indexes.values() if im.target == target]

    def is_index(self, name: str) -> bool:
        return name in self.indexes

    def is_vertex(self, name: str) -> bool:
        return name in self.vertices

    def is_edge(self, name: str) -> bool:
        return name in self.edges

    def is_table(self, name: str) -> bool:
        return name in self.tables

    def edges_between(
        self, source_type: Optional[str], target_type: Optional[str]
    ) -> list[EdgeMeta]:
        """Edge types compatible with the endpoint types (variant steps)."""
        out = []
        for em in self.edges.values():
            if source_type is not None and em.source_type != source_type:
                continue
            if target_type is not None and em.target_type != target_type:
                continue
            out.append(em)
        return out

    def __repr__(self) -> str:
        return (
            f"Catalog(tables={len(self.tables)}, vertices={len(self.vertices)}, "
            f"edges={len(self.edges)})"
        )
