"""Token kinds for the GraQL lexer."""

from __future__ import annotations

from typing import Any

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"  # int or float literal
STRING = "STRING"  # quoted literal
PARAM = "PARAM"  # %Name%
KEYWORD = "KEYWORD"  # reserved word, value is lowercase

# punctuation kinds use their own spelling as the kind
LPAREN = "("
RPAREN = ")"
LBRACKET = "["
RBRACKET = "]"
LBRACE = "{"
RBRACE = "}"
COMMA = ","
DOT = "."
COLON = ":"
SEMI = ";"
STAR = "*"
SLASH = "/"
PLUS = "+"
MINUS = "-"
EQ = "="
LT = "<"
LE = "<="
GT = ">"
GE = ">="
NE = "<>"
BANG_NE = "!="
DASHES = "--"  # run of >= 2 dashes (edge-arrow shaft)
RARROW = "-->"  # dashes followed by '>'
LARROW = "<--"  # '<' followed by dashes
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "create",
        "table",
        "vertex",
        "edge",
        "with",
        "vertices",
        "from",
        "where",
        "and",
        "or",
        "not",
        "is",
        "null",
        "ingest",
        "select",
        "into",
        "subgraph",
        "graph",
        "def",
        "foreach",
        "top",
        "distinct",
        "group",
        "by",
        "order",
        "asc",
        "desc",
        "as",
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "true",
        "false",
    }
)


class Token:
    """A lexical token with source position (1-based line/column)."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: Any, line: int, column: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"
