"""Token kinds for the GraQL lexer."""

from __future__ import annotations

from typing import Any

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"  # int or float literal
STRING = "STRING"  # quoted literal
PARAM = "PARAM"  # %Name%
KEYWORD = "KEYWORD"  # reserved word, value is lowercase

# punctuation kinds use their own spelling as the kind
LPAREN = "("
RPAREN = ")"
LBRACKET = "["
RBRACKET = "]"
LBRACE = "{"
RBRACE = "}"
COMMA = ","
DOT = "."
COLON = ":"
SEMI = ";"
STAR = "*"
SLASH = "/"
PLUS = "+"
MINUS = "-"
EQ = "="
LT = "<"
LE = "<="
GT = ">"
GE = ">="
NE = "<>"
BANG_NE = "!="
DASHES = "--"  # run of >= 2 dashes (edge-arrow shaft)
RARROW = "-->"  # dashes followed by '>'
LARROW = "<--"  # '<' followed by dashes
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "create",
        "table",
        "vertex",
        "edge",
        "with",
        "vertices",
        "from",
        "where",
        "and",
        "or",
        "not",
        "is",
        "null",
        "ingest",
        "index",
        "on",
        "drop",
        "select",
        "into",
        "subgraph",
        "graph",
        "def",
        "foreach",
        "top",
        "distinct",
        "group",
        "by",
        "order",
        "asc",
        "desc",
        "as",
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "true",
        "false",
    }
)


class SourceSpan:
    """A source position (1-based line/column), optionally extended.

    Spans originate from :class:`Token` positions and ride on AST nodes
    (``node.span``) so that static analysis can point every diagnostic at
    ``line:col``.  ``end_line``/``end_column`` are optional — a span with
    only a start is still useful for error reporting.
    """

    __slots__ = ("line", "column", "end_line", "end_column")

    def __init__(
        self,
        line: int,
        column: int,
        end_line: int | None = None,
        end_column: int | None = None,
    ) -> None:
        self.line = line
        self.column = column
        self.end_line = end_line
        self.end_column = end_column

    @classmethod
    def from_token(cls, tok: "Token") -> "SourceSpan":
        return cls(tok.line, tok.column)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceSpan)
            and self.line == other.line
            and self.column == other.column
            and self.end_line == other.end_line
            and self.end_column == other.end_column
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.end_line, self.end_column))

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceSpan({self.line}, {self.column})"


class Token:
    """A lexical token with source position (1-based line/column)."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: Any, line: int, column: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"
