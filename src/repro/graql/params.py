"""Query-parameter substitution (``%Product1%``, ``%Country2%`` ...).

The Berlin queries (Figs. 6-7) are parameterized templates.  Parameters
are substituted into the AST *before* static analysis so type checking
sees concrete literals (a date parameter becomes a string literal that
the date-coercion rules accept).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Mapping

from repro.errors import ExecutionError
from repro.graql.ast import (
    CreateEdge,
    CreateVertex,
    EdgeStep,
    GraphSelect,
    PathAnd,
    PathAtom,
    PathOr,
    RegexGroup,
    Script,
    Statement,
    TableSelect,
    VertexStep,
    copy_span,
)
from repro.storage.expr import Const, Expr, Param, substitute_params


def _normalize(values: Mapping[str, Any]) -> dict[str, Const]:
    out: dict[str, Const] = {}
    for name, v in values.items():
        if isinstance(v, Const):
            out[name] = v
        elif isinstance(v, _dt.date):
            out[name] = Const(v.isoformat())
        elif isinstance(v, (str, int, float, bool)):
            out[name] = Const(v)
        else:
            raise ExecutionError(
                f"unsupported parameter value for %{name}%: {type(v).__name__}"
            )
    return out


def _sub_expr(expr: Expr | None, values: dict[str, Const]) -> Expr | None:
    if expr is None:
        return None
    return substitute_params(expr, values)


def _sub_pattern(node, values):
    if isinstance(node, PathAtom):
        steps = []
        for s in node.steps:
            if isinstance(s, VertexStep):
                new = VertexStep(
                    s.name, s.is_variant, _sub_expr(s.cond, values), s.label, s.seed
                )
            elif isinstance(s, EdgeStep):
                new = EdgeStep(
                    s.name,
                    s.direction,
                    s.is_variant,
                    _sub_expr(s.cond, values),
                    s.label,
                )
            else:
                assert isinstance(s, RegexGroup)
                pairs = [
                    (
                        copy_span(
                            e,
                            EdgeStep(
                                e.name,
                                e.direction,
                                e.is_variant,
                                _sub_expr(e.cond, values),
                                e.label,
                            ),
                        ),
                        copy_span(
                            v,
                            VertexStep(
                                v.name,
                                v.is_variant,
                                _sub_expr(v.cond, values),
                                v.label,
                                v.seed,
                            ),
                        ),
                    )
                    for e, v in s.pairs
                ]
                new = RegexGroup(pairs, s.op, s.count)
            steps.append(copy_span(s, new))
        return PathAtom(steps)
    if isinstance(node, PathAnd):
        return PathAnd(_sub_pattern(node.left, values), _sub_pattern(node.right, values))
    assert isinstance(node, PathOr)
    return PathOr(_sub_pattern(node.left, values), _sub_pattern(node.right, values))


def substitute_statement(stmt: Statement, values: Mapping[str, Any]) -> Statement:
    """Return *stmt* with every ``%Param%`` replaced by a literal."""
    consts = _normalize(values)
    if isinstance(stmt, GraphSelect):
        new: Statement = GraphSelect(
            stmt.items, _sub_pattern(stmt.pattern, consts), stmt.into
        )
    elif isinstance(stmt, TableSelect):
        new = TableSelect(
            stmt.items,
            stmt.source,
            stmt.top,
            stmt.distinct,
            _sub_expr(stmt.where, consts),
            stmt.group_by,
            stmt.order_by,
            stmt.into,
        )
    elif isinstance(stmt, CreateVertex):
        new = CreateVertex(
            stmt.name, stmt.key_cols, stmt.table, _sub_expr(stmt.where, consts)
        )
    elif isinstance(stmt, CreateEdge):
        new = CreateEdge(
            stmt.name,
            stmt.source,
            stmt.target,
            stmt.from_tables,
            _sub_expr(stmt.where, consts),
        )
    else:
        return stmt
    return copy_span(stmt, new)


def substitute_script(script: Script, values: Mapping[str, Any]) -> Script:
    """Parameter-substitute every statement of a script."""
    return Script([substitute_statement(s, values) for s in script.statements])


def unbound_params(stmt: Statement) -> set[str]:
    """Names of parameters still present in *stmt* (for error reporting)."""
    found: set[str] = set()

    def scan_expr(e: Expr | None) -> None:
        if e is None:
            return
        for node in e.walk():
            if isinstance(node, Param):
                found.add(node.name)

    if isinstance(stmt, (CreateVertex,)):
        scan_expr(stmt.where)
    elif isinstance(stmt, CreateEdge):
        scan_expr(stmt.where)
    elif isinstance(stmt, TableSelect):
        scan_expr(stmt.where)
    elif isinstance(stmt, GraphSelect):
        def scan_pattern(node):
            if isinstance(node, PathAtom):
                for s in node.steps:
                    if isinstance(s, (VertexStep, EdgeStep)):
                        scan_expr(s.cond)
                    elif isinstance(s, RegexGroup):
                        for e, v in s.pairs:
                            scan_expr(e.cond)
                            scan_expr(v.cond)
            else:
                scan_pattern(node.left)
                scan_pattern(node.right)

        scan_pattern(stmt.pattern)
    return found
