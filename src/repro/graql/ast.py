"""Abstract syntax tree for GraQL.

Node classes are immutable value objects with structural equality, which
the property-based round-trip tests rely on (pretty-print then re-parse
must reproduce the same tree).

Statement forms (Section II):

* DDL: :class:`CreateTable`, :class:`CreateVertex`, :class:`CreateEdge`
* Ingest: :class:`Ingest`
* Queries: :class:`GraphSelect` (path patterns, Section II-B/II-C) and
  :class:`TableSelect` (the Table I relational subset)

Path patterns are composition trees over :class:`PathAtom` (a linear
path of alternating vertex/edge steps) using :class:`PathAnd` /
:class:`PathOr` (Section II-B3).  Expressions reuse
:mod:`repro.storage.expr` nodes directly — the parser emits them.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.dtypes import DataType
from repro.storage.expr import ColRef, Expr
from repro.storage.schema import Schema

LABEL_SET = "def"
LABEL_FOREACH = "foreach"

DIR_OUT = "out"
DIR_IN = "in"

REGEX_STAR = "star"
REGEX_PLUS = "plus"
REGEX_COUNT = "count"

INTO_TABLE = "table"
INTO_SUBGRAPH = "subgraph"


class Node:
    """Base AST node with structural equality.

    Every node can carry an optional ``span``
    (:class:`~repro.graql.tokens.SourceSpan`) recording where in the
    source it was parsed.  Spans are *metadata*: they do not participate
    in structural equality or hashing (the pretty-print round-trip
    property compares re-parsed trees, whose spans differ), and nodes
    built programmatically simply have none.  Use :func:`span_of` for
    safe access.
    """

    __slots__ = ("span",)

    def _fields(self) -> tuple:
        return tuple(getattr(self, s) for s in self.__slots__)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._fields() == other._fields()

    def __hash__(self) -> int:
        def freeze(v):
            if isinstance(v, list):
                return tuple(freeze(x) for x in v)
            return v

        return hash((type(self).__name__,) + tuple(freeze(f) for f in self._fields()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{s}={getattr(self, s)!r}" for s in self.__slots__)
        return f"{type(self).__name__}({inner})"


class Statement(Node):
    """Base class for top-level statements."""

    __slots__ = ()


class Script(Node):
    """A GraQL script: Omega = q1, q2, ..., qn (Section III)."""

    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Statement]) -> None:
        self.statements = list(statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


# ----------------------------------------------------------------------
# DDL
# ----------------------------------------------------------------------

class CreateTable(Statement):
    """``create table Name ( col type, ... )``"""

    __slots__ = ("name", "schema")

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema


class CreateVertex(Statement):
    """``create vertex Name(keycols) from table T [where cond]`` (Eq. 1)."""

    __slots__ = ("name", "key_cols", "table", "where")

    def __init__(
        self,
        name: str,
        key_cols: Sequence[str],
        table: str,
        where: Optional[Expr] = None,
    ) -> None:
        self.name = name
        self.key_cols = list(key_cols)
        self.table = table
        self.where = where


class VertexEndpoint(Node):
    """One endpoint in ``with vertices (Type [as Alias], ...)``."""

    __slots__ = ("type_name", "alias")

    def __init__(self, type_name: str, alias: Optional[str] = None) -> None:
        self.type_name = type_name
        self.alias = alias

    @property
    def ref_name(self) -> str:
        """The name conditions use to refer to this endpoint."""
        return self.alias or self.type_name


class CreateEdge(Statement):
    """``create edge Name with vertices (S, T) [from table A...] where cond``
    (Eq. 2).  Direction: source -> target follows declaration order."""

    __slots__ = ("name", "source", "target", "from_tables", "where")

    def __init__(
        self,
        name: str,
        source: VertexEndpoint,
        target: VertexEndpoint,
        from_tables: Sequence[str] = (),
        where: Optional[Expr] = None,
    ) -> None:
        self.name = name
        self.source = source
        self.target = target
        self.from_tables = list(from_tables)
        self.where = where


class CreateIndex(Statement):
    """``create index Name on Target(attr, ...)``.

    ``target`` names a vertex or edge type; the attribute list is the
    index key (leading-column order matters for range seeks).
    """

    __slots__ = ("name", "target", "attrs")

    def __init__(self, name: str, target: str, attrs: Sequence[str]) -> None:
        self.name = name
        self.target = target
        self.attrs = list(attrs)


class DropIndex(Statement):
    """``drop index Name``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class Ingest(Statement):
    """``ingest table Name file.csv`` (Section II-A2, atomic)."""

    __slots__ = ("table", "path")

    def __init__(self, table: str, path: str) -> None:
        self.table = table
        self.path = path


# ----------------------------------------------------------------------
# Path patterns
# ----------------------------------------------------------------------

class Label(Node):
    """A step label: ``def X:`` (set) or ``foreach x:`` (element-wise)."""

    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str) -> None:
        assert kind in (LABEL_SET, LABEL_FOREACH)
        self.kind = kind
        self.name = name


class VertexStep(Node):
    """One vertex step in a path.

    ``name`` is the vertex-type name, a previously-defined label name
    (resolved during binding), or None for a variant step ``[ ]``.
    ``seed`` names a result subgraph used to restrict this step
    (``resQ1.Vn(...)``, Fig. 12).
    """

    __slots__ = ("name", "is_variant", "cond", "label", "seed")

    def __init__(
        self,
        name: Optional[str],
        is_variant: bool = False,
        cond: Optional[Expr] = None,
        label: Optional[Label] = None,
        seed: Optional[str] = None,
    ) -> None:
        self.name = name
        self.is_variant = is_variant
        self.cond = cond
        self.label = label
        self.seed = seed


class EdgeStep(Node):
    """One edge step: ``--name(cond)-->`` (out) or ``<--name(cond)--`` (in).

    Variant edges are ``--[]-->`` / ``<--[]--`` with ``name=None``.
    """

    __slots__ = ("name", "is_variant", "cond", "direction", "label")

    def __init__(
        self,
        name: Optional[str],
        direction: str,
        is_variant: bool = False,
        cond: Optional[Expr] = None,
        label: Optional[Label] = None,
    ) -> None:
        assert direction in (DIR_OUT, DIR_IN)
        self.name = name
        self.is_variant = is_variant
        self.cond = cond
        self.direction = direction
        self.label = label


class RegexGroup(Node):
    """A path regular expression over (edge, vertex) pairs (Fig. 10).

    Appears in edge position: ``V1 ( --[]--> [] )+ V2``.  Each unrolling
    appends the group's pairs; the final vertex of the last unrolling is
    unified with the following vertex step.  ``op`` is ``star`` (k >= 0),
    ``plus`` (k >= 1) or ``count`` with exact ``count=k``.
    """

    __slots__ = ("pairs", "op", "count")

    def __init__(
        self,
        pairs: Sequence[tuple[EdgeStep, VertexStep]],
        op: str,
        count: Optional[int] = None,
    ) -> None:
        assert op in (REGEX_STAR, REGEX_PLUS, REGEX_COUNT)
        self.pairs = [tuple(p) for p in pairs]
        self.op = op
        self.count = count


class PathAtom(Node):
    """A linear path: vertex (edge-or-regex vertex)* (Eq. 3)."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[Node]) -> None:
        self.steps = list(steps)

    def vertex_steps(self) -> list[VertexStep]:
        return [s for s in self.steps if isinstance(s, VertexStep)]

    def edge_steps(self) -> list[EdgeStep]:
        return [s for s in self.steps if isinstance(s, EdgeStep)]


class PathAnd(Node):
    """``and`` composition of two patterns (shared labels, Section II-B3)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Node, right: Node) -> None:
        self.left = left
        self.right = right


class PathOr(Node):
    """``or`` composition: union of the matched subgraphs."""

    __slots__ = ("left", "right")

    def __init__(self, left: Node, right: Node) -> None:
        self.left = left
        self.right = right


def span_of(node: object):
    """The node's :class:`~repro.graql.tokens.SourceSpan`, or None.

    Works on AST nodes and on :mod:`repro.storage.expr` expression nodes
    (both store spans in an optional slot that may be unset).
    """
    return getattr(node, "span", None)


def set_span(node, span):
    """Attach *span* to *node* (no-op for ``span=None``); returns node."""
    if span is not None:
        node.span = span
    return node


def copy_span(src, dst):
    """Propagate ``src``'s span to ``dst`` when dst has none; returns dst."""
    span = getattr(src, "span", None)
    if span is not None and getattr(dst, "span", None) is None:
        dst.span = span
    return dst


def atoms(pattern: Node) -> list[PathAtom]:
    """All PathAtoms of a composition tree, left to right."""
    if isinstance(pattern, PathAtom):
        return [pattern]
    assert isinstance(pattern, (PathAnd, PathOr))
    return atoms(pattern.left) + atoms(pattern.right)


# ----------------------------------------------------------------------
# Select statements
# ----------------------------------------------------------------------

class SelectItem(Node):
    """Base for items in a select list."""

    __slots__ = ()


class StarItem(SelectItem):
    """``select *``"""

    __slots__ = ()


class AttrItem(SelectItem):
    """``select TypeVtx.id`` / ``select y.id as pid`` / ``select id``."""

    __slots__ = ("ref", "alias")

    def __init__(self, ref: ColRef, alias: Optional[str] = None) -> None:
        self.ref = ref
        self.alias = alias


class StepItem(SelectItem):
    """``select V0, Vn`` — a whole step by type or label name (Fig. 11)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class AggItem(SelectItem):
    """``count(*) as groupCount`` and friends (Table I)."""

    __slots__ = ("func", "arg", "alias")

    def __init__(self, func: str, arg: Optional[str], alias: Optional[str] = None) -> None:
        self.func = func
        self.arg = arg  # None means '*'
        self.alias = alias


class IntoClause(Node):
    """``into table T`` / ``into subgraph G`` (Section II-C)."""

    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str) -> None:
        assert kind in (INTO_TABLE, INTO_SUBGRAPH)
        self.kind = kind
        self.name = name


class GraphSelect(Statement):
    """``select items from graph <pattern> [into ...]``"""

    __slots__ = ("items", "pattern", "into")

    def __init__(
        self,
        items: Sequence[SelectItem],
        pattern: Node,
        into: Optional[IntoClause] = None,
    ) -> None:
        self.items = list(items)
        self.pattern = pattern
        self.into = into


class OrderKey(Node):
    """One ``order by`` key."""

    __slots__ = ("column", "ascending")

    def __init__(self, column: str, ascending: bool = True) -> None:
        self.column = column
        self.ascending = ascending


class TableSelect(Statement):
    """``select [top n] [distinct] items from table T [where] [group by]
    [order by] [into table X]`` — the Table I relational subset."""

    __slots__ = (
        "items",
        "source",
        "top",
        "distinct",
        "where",
        "group_by",
        "order_by",
        "into",
    )

    def __init__(
        self,
        items: Sequence[SelectItem],
        source: str,
        top: Optional[int] = None,
        distinct: bool = False,
        where: Optional[Expr] = None,
        group_by: Sequence[str] = (),
        order_by: Sequence[OrderKey] = (),
        into: Optional[IntoClause] = None,
    ) -> None:
        self.items = list(items)
        self.source = source
        self.top = top
        self.distinct = distinct
        self.where = where
        self.group_by = list(group_by)
        self.order_by = list(order_by)
        self.into = into
