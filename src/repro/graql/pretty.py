"""AST → GraQL source rendering.

``parse_script(pretty_script(ast)) == ast`` is a tested invariant
(property-based round-trip in ``tests/properties/test_property_parser.py``), which
makes the printer a reliable way to materialize programmatically-built
queries — the workload generators use it to emit their query catalogs.
"""

from __future__ import annotations

from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DIR_OUT,
    DropIndex,
    EdgeStep,
    GraphSelect,
    Ingest,
    IntoClause,
    Label,
    Node,
    OrderKey,
    PathAnd,
    PathAtom,
    PathOr,
    RegexGroup,
    REGEX_COUNT,
    REGEX_PLUS,
    Script,
    SelectItem,
    StarItem,
    Statement,
    StepItem,
    TableSelect,
    VertexStep,
)
from repro.storage.expr import (
    BinOp,
    ColRef,
    Const,
    Expr,
    IsNull,
    Not,
    Param,
)

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4,
    "<>": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
}


def pretty_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Const):
        v = expr.value
        if isinstance(v, str):
            escaped = v.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        if isinstance(v, bool):
            return "true" if v else "false"
        if expr.dtype.kind == "bool":
            return "true" if v else "false"
        return repr(v)
    if isinstance(expr, Param):
        return f"%{expr.name}%"
    if isinstance(expr, ColRef):
        return f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
    if isinstance(expr, Not):
        inner = pretty_expr(expr.operand, 3)
        text = f"not {inner}"
        if parent_prec > 3:  # 'not' cannot appear inside comparisons bare
            return f"({text})"
        return text
    if isinstance(expr, IsNull):
        # 'is null' binds like a comparison (precedence 4); the parser
        # cannot chain it, so wrap whenever a comparison context encloses
        inner = pretty_expr(expr.operand, 5)
        text = f"{inner} is {'not ' if expr.negated else ''}null"
        if parent_prec >= 4:
            return f"({text})"
        return text
    assert isinstance(expr, BinOp)
    prec = _PRECEDENCE[expr.op]
    # comparisons are non-associative: both operands must bind tighter;
    # other operators are left-associative: only the right side does
    left_prec = prec + 1 if prec == 4 else prec
    left = pretty_expr(expr.left, left_prec)
    right = pretty_expr(expr.right, prec + 1)
    text = f"{left} {expr.op} {right}"
    if prec < parent_prec:
        return f"({text})"
    return text


def _pretty_label(label: Label | None) -> str:
    return f"{label.kind} {label.name}: " if label else ""


def _pretty_vstep(step: VertexStep) -> str:
    out = _pretty_label(step.label)
    if step.is_variant:
        return out + "[ ]"
    name = f"{step.seed}.{step.name}" if step.seed else step.name
    out += name
    if step.cond is not None:
        out += f" ({pretty_expr(step.cond)})"
    return out


def _pretty_estep(step: EdgeStep) -> str:
    core = _pretty_label(step.label)
    core += "[ ]" if step.is_variant else step.name
    if step.cond is not None:
        core += f"({pretty_expr(step.cond)})"
    if step.direction == DIR_OUT:
        return f"--{core}-->"
    return f"<--{core}--"


def _pretty_regex(group: RegexGroup) -> str:
    inner = " ".join(
        f"{_pretty_estep(e)} {_pretty_vstep(v)}" for e, v in group.pairs
    )
    if group.op == REGEX_PLUS:
        op = "+"
    elif group.op == REGEX_COUNT:
        op = f"{{{group.count}}}"
    else:
        op = "*"
    return f"( {inner} ){op}"


def pretty_pattern(pattern: Node) -> str:
    """Render a path-pattern composition tree."""
    if isinstance(pattern, PathAtom):
        parts = []
        for step in pattern.steps:
            if isinstance(step, VertexStep):
                parts.append(_pretty_vstep(step))
            elif isinstance(step, EdgeStep):
                parts.append(_pretty_estep(step))
            else:
                assert isinstance(step, RegexGroup)
                parts.append(_pretty_regex(step))
        return " ".join(parts)
    if isinstance(pattern, PathAnd):
        return (
            f"{pretty_pattern(pattern.left)} and ({pretty_pattern(pattern.right)})"
        )
    assert isinstance(pattern, PathOr)
    return f"{pretty_pattern(pattern.left)} or ({pretty_pattern(pattern.right)})"


def _pretty_item(item: SelectItem) -> str:
    if isinstance(item, StarItem):
        return "*"
    if isinstance(item, StepItem):
        return item.name
    if isinstance(item, AggItem):
        arg = item.arg if item.arg is not None else "*"
        out = f"{item.func}({arg})"
        return f"{out} as {item.alias}" if item.alias else out
    assert isinstance(item, AttrItem)
    ref = item.ref
    out = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
    return f"{out} as {item.alias}" if item.alias else out


def _pretty_into(into: IntoClause | None) -> str:
    if into is None:
        return ""
    return f" into {into.kind} {into.name}"


def pretty_statement(stmt: Statement) -> str:
    """Render one statement as GraQL source."""
    if isinstance(stmt, CreateTable):
        return f"create table {stmt.name}{stmt.schema.ddl()}"
    if isinstance(stmt, CreateVertex):
        keys = ", ".join(stmt.key_cols)
        out = f"create vertex {stmt.name}({keys})\nfrom table {stmt.table}"
        if stmt.where is not None:
            out += f"\nwhere {pretty_expr(stmt.where)}"
        return out
    if isinstance(stmt, CreateEdge):
        def ep(e):
            return f"{e.type_name} as {e.alias}" if e.alias else e.type_name

        out = (
            f"create edge {stmt.name} with\n"
            f"vertices ({ep(stmt.source)}, {ep(stmt.target)})"
        )
        if stmt.from_tables:
            out += f"\nfrom table {', '.join(stmt.from_tables)}"
        if stmt.where is not None:
            out += f"\nwhere {pretty_expr(stmt.where)}"
        return out
    if isinstance(stmt, CreateIndex):
        attrs = ", ".join(stmt.attrs)
        return f"create index {stmt.name} on {stmt.target}({attrs})"
    if isinstance(stmt, DropIndex):
        return f"drop index {stmt.name}"
    if isinstance(stmt, Ingest):
        path = stmt.path
        if any(c in path for c in " '\"") or path == "":
            escaped = path.replace("\\", "\\\\").replace("'", "\\'")
            path = f"'{escaped}'"
        return f"ingest table {stmt.table} {path}"
    if isinstance(stmt, GraphSelect):
        items = ", ".join(_pretty_item(i) for i in stmt.items)
        return (
            f"select {items} from graph\n{pretty_pattern(stmt.pattern)}"
            f"{_pretty_into(stmt.into)}"
        )
    assert isinstance(stmt, TableSelect)
    parts = ["select"]
    if stmt.top is not None:
        parts.append(f"top {stmt.top}")
    if stmt.distinct:
        parts.append("distinct")
    parts.append(", ".join(_pretty_item(i) for i in stmt.items))
    parts.append(f"from table {stmt.source}")
    if stmt.where is not None:
        parts.append(f"where {pretty_expr(stmt.where)}")
    if stmt.group_by:
        parts.append("group by " + ", ".join(stmt.group_by))
    if stmt.order_by:
        keys = ", ".join(
            f"{k.column} {'asc' if k.ascending else 'desc'}" for k in stmt.order_by
        )
        parts.append("order by " + keys)
    out = " ".join(parts)
    return out + _pretty_into(stmt.into)


def pretty_script(script: Script) -> str:
    """Render a whole script, statements separated by blank lines."""
    return "\n\n".join(pretty_statement(s) for s in script.statements)
