"""Hand-written lexer for GraQL.

The syntactically interesting part is the edge-arrow notation of
Section II-B: ``--producer-->`` (outedge, left-to-right) and
``<--reviewer--`` (inedge, right-to-left).  The lexer resolves the clash
between arrow shafts and arithmetic minus with maximal munch:

* ``<`` immediately followed by two or more dashes lexes as ``LARROW``;
* a run of two or more dashes followed by ``>`` lexes as ``RARROW``;
* a bare run of two or more dashes lexes as ``DASHES``;
* a single dash is arithmetic ``MINUS``.

Comments are ``//`` to end of line (the Appendix-A style).  Keywords are
case-insensitive; identifiers keep their case (``ProductVtx``).
Parameters are ``%Name%`` (Berlin-query style).
"""

from __future__ import annotations

from repro.errors import LexError
from repro.graql.tokens import (
    BANG_NE,
    COLON,
    COMMA,
    DASHES,
    DOT,
    EOF,
    EQ,
    GE,
    GT,
    IDENT,
    KEYWORD,
    KEYWORDS,
    LARROW,
    LBRACE,
    LBRACKET,
    LE,
    LPAREN,
    LT,
    MINUS,
    NE,
    NUMBER,
    PARAM,
    PLUS,
    RARROW,
    RBRACE,
    RBRACKET,
    RPAREN,
    SEMI,
    SLASH,
    STAR,
    STRING,
    Token,
)

_SIMPLE = {
    "(": LPAREN,
    ")": RPAREN,
    "[": LBRACKET,
    "]": RBRACKET,
    "{": LBRACE,
    "}": RBRACE,
    ",": COMMA,
    ".": DOT,
    ":": COLON,
    ";": SEMI,
    "*": STAR,
    "+": PLUS,
    "=": EQ,
}


def tokenize(text: str) -> list[Token]:
    """Lex *text* into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def pos() -> tuple[int, int]:
        return line, i - line_start + 1

    while i < n:
        ch = text[i]
        # whitespace / newlines
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        # comments: // to end of line
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        ln, col = pos()
        # dash runs: arrows vs minus
        if ch == "-":
            j = i
            while j < n and text[j] == "-":
                j += 1
            run = j - i
            if run >= 2:
                if j < n and text[j] == ">":
                    tokens.append(Token(RARROW, "-->", ln, col))
                    i = j + 1
                else:
                    tokens.append(Token(DASHES, "--", ln, col))
                    i = j
            else:
                tokens.append(Token(MINUS, "-", ln, col))
                i = j
            continue
        if ch == "<":
            # <-- (inedge arrowhead), <=, <>, or <
            j = i + 1
            dash_run = 0
            while j < n and text[j] == "-":
                dash_run += 1
                j += 1
            if dash_run >= 2:
                tokens.append(Token(LARROW, "<--", ln, col))
                i = j
                continue
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(LE, "<=", ln, col))
                i += 2
                continue
            if i + 1 < n and text[i + 1] == ">":
                tokens.append(Token(NE, "<>", ln, col))
                i += 2
                continue
            tokens.append(Token(LT, "<", ln, col))
            i += 1
            continue
        if ch == ">":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(GE, ">=", ln, col))
                i += 2
            else:
                tokens.append(Token(GT, ">", ln, col))
                i += 1
            continue
        if ch == "!":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(BANG_NE, "!=", ln, col))
                i += 2
                continue
            raise LexError("unexpected character '!'", ln, col)
        # strings: single or double quoted, backslash escapes
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                elif text[j] == "\n":
                    raise LexError("unterminated string literal", ln, col)
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", ln, col)
            tokens.append(Token(STRING, "".join(buf), ln, col))
            i = j + 1
            continue
        # parameters: %Name%
        if ch == "%":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j >= n or text[j] != "%" or j == i + 1:
                raise LexError("malformed parameter (expected %Name%)", ln, col)
            tokens.append(Token(PARAM, text[i + 1 : j], ln, col))
            i = j + 1
            continue
        # numbers: integer or float (exponents supported).  ASCII digits
        # only: str.isdigit() accepts unicode digits that int() rejects
        if "0" <= ch <= "9":
            j = i
            while j < n and "0" <= text[j] <= "9":
                j += 1
            is_float = False
            if j < n and text[j] == "." and j + 1 < n and "0" <= text[j + 1] <= "9":
                is_float = True
                j += 1
                while j < n and "0" <= text[j] <= "9":
                    j += 1
            if j < n and text[j] in "eE":
                k = j + 1
                if k < n and text[k] in "+-":
                    k += 1
                if k < n and "0" <= text[k] <= "9":
                    is_float = True
                    j = k
                    while j < n and "0" <= text[j] <= "9":
                        j += 1
            raw = text[i:j]
            tokens.append(
                Token(NUMBER, float(raw) if is_float else int(raw), ln, col)
            )
            i = j
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            low = word.lower()
            if low in KEYWORDS:
                tokens.append(Token(KEYWORD, low, ln, col))
            else:
                tokens.append(Token(IDENT, word, ln, col))
            i = j
            continue
        if ch == "/":
            tokens.append(Token(SLASH, "/", ln, col))
            i += 1
            continue
        if ch in _SIMPLE:
            tokens.append(Token(_SIMPLE[ch], ch, ln, col))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", ln, col)

    tokens.append(Token(EOF, None, line, n - line_start + 1))
    return tokens
