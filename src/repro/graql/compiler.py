"""Front-end compilation: text -> AST -> static checks -> binary IR.

This is the paper's front-end pipeline in one call: a GraQL script is
parsed, parameter-substituted, statically analyzed against the catalog
(Section III-A), and compiled to the binary IR (Section III) that the
front-end server ships to the backend.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.catalog import Catalog
from repro.graql.ast import Script, Statement
from repro.graql.ir import encode_statement
from repro.graql.params import substitute_statement
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_script


class CompiledStatement:
    """One statement ready for backend execution."""

    def __init__(self, statement: Statement, ir: bytes, checked: object) -> None:
        self.statement = statement
        self.ir = ir
        #: the typecheck result (a CheckedGraphSelect for graph queries)
        self.checked = checked

    @property
    def ir_size(self) -> int:
        return len(self.ir)

    def __repr__(self) -> str:
        return f"CompiledStatement({type(self.statement).__name__}, ir={len(self.ir)}B)"


class CompiledProgram:
    """A compiled script: the unit shipped to the backend cluster."""

    def __init__(self, statements: list[CompiledStatement]) -> None:
        self.statements = statements

    @property
    def total_ir_size(self) -> int:
        return sum(s.ir_size for s in self.statements)

    def __iter__(self):
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


def compile_script(
    source: str | Script,
    catalog: Catalog,
    params: Optional[Mapping[str, Any]] = None,
) -> CompiledProgram:
    """Parse, substitute, check and encode a script.

    Raises :class:`~repro.errors.ParseError` /
    :class:`~repro.errors.TypeCheckError` without touching any data —
    everything here is front-end work against catalog metadata only.
    """
    script = parse_script(source) if isinstance(source, str) else source
    if params:
        script = Script(
            [substitute_statement(s, params) for s in script.statements]
        )
    checked = check_script(script, catalog)
    compiled = []
    for stmt, chk in zip(script.statements, checked):
        compiled.append(CompiledStatement(stmt, encode_statement(stmt), chk))
    return CompiledProgram(compiled)
