"""Binary intermediate representation (paper Section III).

    "A GraQL script is parsed and compiled into a high-level binary
    intermediate representation (IR) that is a convenient mechanism for
    moving the query script from the front-end portion of the GEMS system
    to the backend for execution."

The IR is a compact tagged binary encoding of the (parameter-substituted)
AST: a one-byte tag per node, varint-style lengths, UTF-8 strings, and
little-endian scalars.  ``decode(encode(x)) == x`` is a property-tested
invariant, and the front-end server ships exactly these bytes to the
backend cluster (:mod:`repro.dist` measures them as part of the message
accounting).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.dtypes import parse_type_name
from repro.errors import IRError
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DropIndex,
    EdgeStep,
    GraphSelect,
    Ingest,
    IntoClause,
    Label,
    OrderKey,
    PathAnd,
    PathAtom,
    PathOr,
    RegexGroup,
    Script,
    StarItem,
    Statement,
    StepItem,
    TableSelect,
    VertexEndpoint,
    VertexStep,
)
from repro.storage.expr import BinOp, ColRef, Const, Expr, IsNull, Not, Param
from repro.storage.schema import ColumnDef, Schema

MAGIC = b"GQIR"
VERSION = 1

# node tags
_T_NONE = 0x00
_T_CREATE_TABLE = 0x01
_T_CREATE_VERTEX = 0x02
_T_CREATE_EDGE = 0x03
_T_INGEST = 0x04
_T_GRAPH_SELECT = 0x05
_T_TABLE_SELECT = 0x06
_T_CREATE_INDEX = 0x07
_T_DROP_INDEX = 0x08
_T_PATH_ATOM = 0x10
_T_PATH_AND = 0x11
_T_PATH_OR = 0x12
_T_VSTEP = 0x13
_T_ESTEP = 0x14
_T_REGEX = 0x15
_T_STAR_ITEM = 0x20
_T_ATTR_ITEM = 0x21
_T_STEP_ITEM = 0x22
_T_AGG_ITEM = 0x23
_T_CONST_INT = 0x30
_T_CONST_FLOAT = 0x31
_T_CONST_STR = 0x32
_T_CONST_BOOL = 0x33
_T_PARAM = 0x34
_T_COLREF = 0x35
_T_BINOP = 0x36
_T_NOT = 0x37
_T_ISNULL = 0x38


class _Writer:
    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def tag(self, t: int) -> None:
        self.parts.append(bytes([t]))

    def u8(self, v: int) -> None:
        self.parts.append(bytes([v & 0xFF]))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack("<I", v))

    def i64(self, v: int) -> None:
        self.parts.append(struct.pack("<q", v))

    def f64(self, v: float) -> None:
        self.parts.append(struct.pack("<d", v))

    def string(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self.parts.append(raw)

    def opt_string(self, s: str | None) -> None:
        if s is None:
            self.u8(0)
        else:
            self.u8(1)
            self.string(s)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def tag(self) -> int:
        return self.u8()

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise IRError("truncated IR stream")
        v = self.data[self.pos]
        self.pos += 1
        return v

    def u32(self) -> int:
        v = struct.unpack_from("<I", self.data, self.pos)[0]
        self.pos += 4
        return v

    def i64(self) -> int:
        v = struct.unpack_from("<q", self.data, self.pos)[0]
        self.pos += 8
        return v

    def f64(self) -> float:
        v = struct.unpack_from("<d", self.data, self.pos)[0]
        self.pos += 8
        return v

    def string(self) -> str:
        n = self.u32()
        raw = self.data[self.pos : self.pos + n]
        if len(raw) != n:
            raise IRError("truncated IR string")
        self.pos += n
        return raw.decode("utf-8")

    def opt_string(self) -> str | None:
        return self.string() if self.u8() else None


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

def _enc_expr(w: _Writer, e: Expr | None) -> None:
    if e is None:
        w.tag(_T_NONE)
        return
    if isinstance(e, Const):
        if e.dtype.kind == "bool":
            w.tag(_T_CONST_BOOL)
            w.u8(1 if e.value else 0)
        elif isinstance(e.value, int):
            w.tag(_T_CONST_INT)
            w.i64(e.value)
        elif isinstance(e.value, float):
            w.tag(_T_CONST_FLOAT)
            w.f64(e.value)
        elif isinstance(e.value, str):
            w.tag(_T_CONST_STR)
            w.string(e.value)
        else:
            raise IRError(f"cannot encode constant {e.value!r}")
    elif isinstance(e, Param):
        w.tag(_T_PARAM)
        w.string(e.name)
    elif isinstance(e, ColRef):
        w.tag(_T_COLREF)
        w.opt_string(e.qualifier)
        w.string(e.name)
    elif isinstance(e, BinOp):
        w.tag(_T_BINOP)
        w.string(e.op)
        _enc_expr(w, e.left)
        _enc_expr(w, e.right)
    elif isinstance(e, Not):
        w.tag(_T_NOT)
        _enc_expr(w, e.operand)
    elif isinstance(e, IsNull):
        w.tag(_T_ISNULL)
        w.u8(1 if e.negated else 0)
        _enc_expr(w, e.operand)
    else:
        raise IRError(f"cannot encode expression node {type(e).__name__}")


def _dec_expr(r: _Reader) -> Expr | None:
    t = r.tag()
    if t == _T_NONE:
        return None
    if t == _T_CONST_INT:
        return Const(r.i64())
    if t == _T_CONST_FLOAT:
        return Const(r.f64())
    if t == _T_CONST_STR:
        return Const(r.string())
    if t == _T_CONST_BOOL:
        return Const(bool(r.u8()))
    if t == _T_PARAM:
        return Param(r.string())
    if t == _T_COLREF:
        q = r.opt_string()
        return ColRef(q, r.string())
    if t == _T_BINOP:
        op = r.string()
        left = _dec_expr(r)
        right = _dec_expr(r)
        return BinOp(op, left, right)
    if t == _T_NOT:
        return Not(_dec_expr(r))
    if t == _T_ISNULL:
        neg = bool(r.u8())
        return IsNull(_dec_expr(r), neg)
    raise IRError(f"unknown expression tag 0x{t:02x}")


# ----------------------------------------------------------------------
# Steps and patterns
# ----------------------------------------------------------------------

def _enc_label(w: _Writer, label: Label | None) -> None:
    if label is None:
        w.u8(0)
    else:
        w.u8(1)
        w.string(label.kind)
        w.string(label.name)


def _dec_label(r: _Reader) -> Label | None:
    if not r.u8():
        return None
    kind = r.string()
    return Label(kind, r.string())


def _enc_vstep(w: _Writer, s: VertexStep) -> None:
    w.tag(_T_VSTEP)
    w.opt_string(s.name)
    w.u8(1 if s.is_variant else 0)
    _enc_expr(w, s.cond)
    _enc_label(w, s.label)
    w.opt_string(s.seed)


def _dec_vstep(r: _Reader) -> VertexStep:
    t = r.tag()
    if t != _T_VSTEP:
        raise IRError(f"expected vertex step, got tag 0x{t:02x}")
    name = r.opt_string()
    is_variant = bool(r.u8())
    cond = _dec_expr(r)
    label = _dec_label(r)
    seed = r.opt_string()
    return VertexStep(name, is_variant, cond, label, seed)


def _enc_estep(w: _Writer, s: EdgeStep) -> None:
    w.tag(_T_ESTEP)
    w.opt_string(s.name)
    w.string(s.direction)
    w.u8(1 if s.is_variant else 0)
    _enc_expr(w, s.cond)
    _enc_label(w, s.label)


def _dec_estep(r: _Reader) -> EdgeStep:
    t = r.tag()
    if t != _T_ESTEP:
        raise IRError(f"expected edge step, got tag 0x{t:02x}")
    name = r.opt_string()
    direction = r.string()
    is_variant = bool(r.u8())
    cond = _dec_expr(r)
    label = _dec_label(r)
    return EdgeStep(name, direction, is_variant, cond, label)


def _enc_pattern(w: _Writer, node: Any) -> None:
    if isinstance(node, PathAtom):
        w.tag(_T_PATH_ATOM)
        w.u32(len(node.steps))
        for s in node.steps:
            if isinstance(s, VertexStep):
                _enc_vstep(w, s)
            elif isinstance(s, EdgeStep):
                _enc_estep(w, s)
            else:
                assert isinstance(s, RegexGroup)
                w.tag(_T_REGEX)
                w.string(s.op)
                w.i64(s.count if s.count is not None else -1)
                w.u32(len(s.pairs))
                for e, v in s.pairs:
                    _enc_estep(w, e)
                    _enc_vstep(w, v)
    elif isinstance(node, PathAnd):
        w.tag(_T_PATH_AND)
        _enc_pattern(w, node.left)
        _enc_pattern(w, node.right)
    else:
        assert isinstance(node, PathOr)
        w.tag(_T_PATH_OR)
        _enc_pattern(w, node.left)
        _enc_pattern(w, node.right)


def _dec_pattern(r: _Reader) -> Any:
    t = r.tag()
    if t == _T_PATH_ATOM:
        n = r.u32()
        steps: list[Any] = []
        i = 0
        while i < n:
            peek = r.data[r.pos]
            if peek == _T_VSTEP:
                steps.append(_dec_vstep(r))
            elif peek == _T_ESTEP:
                steps.append(_dec_estep(r))
            elif peek == _T_REGEX:
                r.tag()
                op = r.string()
                count = r.i64()
                pairs_n = r.u32()
                pairs = []
                for _ in range(pairs_n):
                    e = _dec_estep(r)
                    v = _dec_vstep(r)
                    pairs.append((e, v))
                steps.append(
                    RegexGroup(pairs, op, count if count >= 0 else None)
                )
            else:
                raise IRError(f"unexpected step tag 0x{peek:02x}")
            i += 1
        return PathAtom(steps)
    if t == _T_PATH_AND:
        left = _dec_pattern(r)
        return PathAnd(left, _dec_pattern(r))
    if t == _T_PATH_OR:
        left = _dec_pattern(r)
        return PathOr(left, _dec_pattern(r))
    raise IRError(f"unknown pattern tag 0x{t:02x}")


# ----------------------------------------------------------------------
# Select items / into
# ----------------------------------------------------------------------

def _enc_items(w: _Writer, items: list) -> None:
    w.u32(len(items))
    for item in items:
        if isinstance(item, StarItem):
            w.tag(_T_STAR_ITEM)
        elif isinstance(item, AttrItem):
            w.tag(_T_ATTR_ITEM)
            w.opt_string(item.ref.qualifier)
            w.string(item.ref.name)
            w.opt_string(item.alias)
        elif isinstance(item, StepItem):
            w.tag(_T_STEP_ITEM)
            w.string(item.name)
        else:
            assert isinstance(item, AggItem)
            w.tag(_T_AGG_ITEM)
            w.string(item.func)
            w.opt_string(item.arg)
            w.opt_string(item.alias)


def _dec_items(r: _Reader) -> list:
    n = r.u32()
    items = []
    for _ in range(n):
        t = r.tag()
        if t == _T_STAR_ITEM:
            items.append(StarItem())
        elif t == _T_ATTR_ITEM:
            q = r.opt_string()
            name = r.string()
            alias = r.opt_string()
            items.append(AttrItem(ColRef(q, name), alias))
        elif t == _T_STEP_ITEM:
            items.append(StepItem(r.string()))
        elif t == _T_AGG_ITEM:
            func = r.string()
            arg = r.opt_string()
            alias = r.opt_string()
            items.append(AggItem(func, arg, alias))
        else:
            raise IRError(f"unknown item tag 0x{t:02x}")
    return items


def _enc_into(w: _Writer, into: IntoClause | None) -> None:
    if into is None:
        w.u8(0)
    else:
        w.u8(1)
        w.string(into.kind)
        w.string(into.name)


def _dec_into(r: _Reader) -> IntoClause | None:
    if not r.u8():
        return None
    kind = r.string()
    return IntoClause(kind, r.string())


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

def encode_statement(stmt: Statement) -> bytes:
    """Encode one statement to IR bytes (with header)."""
    w = _Writer()
    w.parts.append(MAGIC)
    w.u8(VERSION)
    _enc_statement(w, stmt)
    return w.getvalue()


def _enc_statement(w: _Writer, stmt: Statement) -> None:
    if isinstance(stmt, CreateTable):
        w.tag(_T_CREATE_TABLE)
        w.string(stmt.name)
        w.u32(len(stmt.schema))
        for c in stmt.schema:
            w.string(c.name)
            w.string(c.dtype.ddl())
    elif isinstance(stmt, CreateVertex):
        w.tag(_T_CREATE_VERTEX)
        w.string(stmt.name)
        w.u32(len(stmt.key_cols))
        for k in stmt.key_cols:
            w.string(k)
        w.string(stmt.table)
        _enc_expr(w, stmt.where)
    elif isinstance(stmt, CreateEdge):
        w.tag(_T_CREATE_EDGE)
        w.string(stmt.name)
        w.string(stmt.source.type_name)
        w.opt_string(stmt.source.alias)
        w.string(stmt.target.type_name)
        w.opt_string(stmt.target.alias)
        w.u32(len(stmt.from_tables))
        for t in stmt.from_tables:
            w.string(t)
        _enc_expr(w, stmt.where)
    elif isinstance(stmt, CreateIndex):
        w.tag(_T_CREATE_INDEX)
        w.string(stmt.name)
        w.string(stmt.target)
        w.u32(len(stmt.attrs))
        for a in stmt.attrs:
            w.string(a)
    elif isinstance(stmt, DropIndex):
        w.tag(_T_DROP_INDEX)
        w.string(stmt.name)
    elif isinstance(stmt, Ingest):
        w.tag(_T_INGEST)
        w.string(stmt.table)
        w.string(stmt.path)
    elif isinstance(stmt, GraphSelect):
        w.tag(_T_GRAPH_SELECT)
        _enc_items(w, stmt.items)
        _enc_pattern(w, stmt.pattern)
        _enc_into(w, stmt.into)
    else:
        assert isinstance(stmt, TableSelect)
        w.tag(_T_TABLE_SELECT)
        _enc_items(w, stmt.items)
        w.string(stmt.source)
        w.i64(stmt.top if stmt.top is not None else -1)
        w.u8(1 if stmt.distinct else 0)
        _enc_expr(w, stmt.where)
        w.u32(len(stmt.group_by))
        for g in stmt.group_by:
            w.string(g)
        w.u32(len(stmt.order_by))
        for k in stmt.order_by:
            w.string(k.column)
            w.u8(1 if k.ascending else 0)
        _enc_into(w, stmt.into)


def decode_statement(data: bytes) -> Statement:
    """Decode IR bytes back into a statement AST."""
    r = _Reader(data)
    if r.data[:4] != MAGIC:
        raise IRError("bad IR magic")
    r.pos = 4
    version = r.u8()
    if version != VERSION:
        raise IRError(f"unsupported IR version {version}")
    return _dec_statement(r)


def _dec_statement(r: _Reader) -> Statement:
    t = r.tag()
    if t == _T_CREATE_TABLE:
        name = r.string()
        n = r.u32()
        cols = []
        for _ in range(n):
            cname = r.string()
            cols.append(ColumnDef(cname, parse_type_name(r.string())))
        return CreateTable(name, Schema(cols))
    if t == _T_CREATE_VERTEX:
        name = r.string()
        n = r.u32()
        keys = [r.string() for _ in range(n)]
        table = r.string()
        where = _dec_expr(r)
        return CreateVertex(name, keys, table, where)
    if t == _T_CREATE_EDGE:
        name = r.string()
        stype = r.string()
        salias = r.opt_string()
        ttype = r.string()
        talias = r.opt_string()
        n = r.u32()
        tables = [r.string() for _ in range(n)]
        where = _dec_expr(r)
        return CreateEdge(
            name,
            VertexEndpoint(stype, salias),
            VertexEndpoint(ttype, talias),
            tables,
            where,
        )
    if t == _T_CREATE_INDEX:
        name = r.string()
        target = r.string()
        n = r.u32()
        return CreateIndex(name, target, [r.string() for _ in range(n)])
    if t == _T_DROP_INDEX:
        return DropIndex(r.string())
    if t == _T_INGEST:
        table = r.string()
        return Ingest(table, r.string())
    if t == _T_GRAPH_SELECT:
        items = _dec_items(r)
        pattern = _dec_pattern(r)
        into = _dec_into(r)
        return GraphSelect(items, pattern, into)
    if t == _T_TABLE_SELECT:
        items = _dec_items(r)
        source = r.string()
        top = r.i64()
        distinct = bool(r.u8())
        where = _dec_expr(r)
        n = r.u32()
        group_by = [r.string() for _ in range(n)]
        n = r.u32()
        order_by = []
        for _ in range(n):
            col = r.string()
            order_by.append(OrderKey(col, bool(r.u8())))
        into = _dec_into(r)
        return TableSelect(
            items,
            source,
            top if top >= 0 else None,
            distinct,
            where,
            group_by,
            order_by,
            into,
        )
    raise IRError(f"unknown statement tag 0x{t:02x}")


def encode_script(script: Script) -> bytes:
    """Encode a whole script: header + statement count + bodies."""
    w = _Writer()
    w.parts.append(MAGIC)
    w.u8(VERSION)
    w.u32(len(script.statements))
    for stmt in script.statements:
        _enc_statement(w, stmt)
    return w.getvalue()


def decode_script(data: bytes) -> Script:
    r = _Reader(data)
    if r.data[:4] != MAGIC:
        raise IRError("bad IR magic")
    r.pos = 4
    version = r.u8()
    if version != VERSION:
        raise IRError(f"unsupported IR version {version}")
    n = r.u32()
    return Script([_dec_statement(r) for _ in range(n)])
