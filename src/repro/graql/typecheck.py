"""Static query analysis (paper Section III-A).

    "Correctness checks include a number of different type checking
    issues: is the query comparing an attribute with a constant (or other
    attribute) of the wrong type? ... is the query using an entity of
    correct type for certain operations? ... is a path query correctly
    formulated?"

Everything here runs against the :class:`~repro.catalog.Catalog` alone —
no row data — exactly as the paper's front-end server does.  Checking a
``GraphSelect`` also *resolves* it: every step is annotated with the set
of concrete vertex/edge types it can match (singleton for concrete steps,
several for variant ``[ ]`` steps after neighbor narrowing), labels are
bound to their defining steps, and cross-step condition references are
identified.  The resolved pattern is what the planner and executors
consume.

Feasibility: a variant step with *no* compatible edge type, or a concrete
edge whose endpoints cannot line up, is reported statically — the paper's
"will the query result be empty?" check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.catalog import Catalog
from repro.dtypes import DataType
from repro.dtypes.datatypes import KIND_BOOL, KIND_PARAM
from repro.errors import CatalogError, GraQLError, TypeCheckError
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DIR_OUT,
    DropIndex,
    EdgeStep,
    GraphSelect,
    Ingest,
    INTO_SUBGRAPH,
    INTO_TABLE,
    Label,
    LABEL_FOREACH,
    PathAnd,
    PathAtom,
    PathOr,
    RegexGroup,
    Script,
    StarItem,
    Statement,
    StepItem,
    TableSelect,
    VertexStep,
    span_of,
)
from repro.storage.expr import (
    _DEFER_PARAMS,
    ColRef,
    Expr,
    col_refs,
    infer_type,
    params,
)
from repro.storage.relops import AGGREGATE_FUNCS


# ----------------------------------------------------------------------
# Resolved pattern representation (consumed by the planner/executors)
# ----------------------------------------------------------------------

class RVertexStep:
    """A resolved vertex step."""

    __slots__ = (
        "types",
        "cond",
        "label",
        "label_ref",
        "seed",
        "is_variant",
        "cross_refs",
        "names",
    )

    def __init__(
        self,
        types: list[str],
        cond: Optional[Expr],
        label: Optional[Label],
        label_ref: Optional[str],
        seed: Optional[str],
        is_variant: bool,
        cross_refs: list[str],
        names: tuple[str, ...],
    ) -> None:
        self.types = types  # candidate vertex-type names
        self.cond = cond
        self.label = label
        self.label_ref = label_ref  # earlier label this step re-matches
        self.seed = seed
        self.is_variant = is_variant
        #: qualifiers in ``cond`` referring to *other* steps (labels)
        self.cross_refs = cross_refs
        #: names by which conditions/items may refer to this step
        self.names = names

    @property
    def single_type(self) -> str:
        assert len(self.types) == 1
        return self.types[0]

    def __repr__(self) -> str:
        return f"RVertexStep(types={self.types}, label={self.label}, ref={self.label_ref})"


class REdgeStep:
    """A resolved edge step."""

    __slots__ = ("names", "direction", "cond", "label", "is_variant", "label_ref")

    def __init__(
        self,
        names: list[str],
        direction: str,
        cond: Optional[Expr],
        label: Optional[Label],
        is_variant: bool,
        label_ref: Optional[str] = None,
    ) -> None:
        self.names = names  # candidate edge-type names
        self.direction = direction
        self.cond = cond
        self.label = label
        self.is_variant = is_variant
        #: earlier *edge* label this step re-matches (Eq. 6 for edges)
        self.label_ref = label_ref

    def __repr__(self) -> str:
        return f"REdgeStep(names={self.names}, dir={self.direction})"


class RRegex:
    """A resolved path-regex group."""

    __slots__ = ("pairs", "op", "count")

    def __init__(self, pairs: list[tuple[REdgeStep, RVertexStep]], op: str, count: Optional[int]) -> None:
        self.pairs = pairs
        self.op = op
        self.count = count


class RAtom:
    """A resolved linear path."""

    __slots__ = ("steps",)

    def __init__(self, steps: list) -> None:
        self.steps = steps

    def vertex_steps(self) -> list[RVertexStep]:
        return [s for s in self.steps if isinstance(s, RVertexStep)]


class RPattern:
    """A resolved composition tree plus pattern-wide facts."""

    __slots__ = ("root", "labels", "edge_labels", "needs_bindings", "has_regex")

    def __init__(
        self,
        root,
        labels: dict[str, tuple[str, "RVertexStep"]],
        needs_bindings: bool,
        has_regex: bool,
        edge_labels: Optional[dict[str, tuple[str, "REdgeStep"]]] = None,
    ) -> None:
        self.root = root  # RAtom | ('and', l, r) | ('or', l, r)
        self.labels = labels  # name -> (kind, defining RVertexStep)
        self.edge_labels = edge_labels or {}
        self.needs_bindings = needs_bindings
        self.has_regex = has_regex

    @property
    def has_edge_labels(self) -> bool:
        return bool(self.edge_labels)

    def atoms(self) -> list[RAtom]:
        def walk(node):
            if isinstance(node, RAtom):
                return [node]
            return walk(node[1]) + walk(node[2])

        return walk(self.root)


class CheckedGraphSelect:
    """A type-checked graph select with its resolved pattern."""

    def __init__(self, stmt: GraphSelect, pattern: RPattern) -> None:
        self.stmt = stmt
        self.pattern = pattern


# ----------------------------------------------------------------------
# Statement dispatch
# ----------------------------------------------------------------------

def _attach(e: GraQLError, span) -> GraQLError:
    """Attach *span*'s position to an error (no-op when span is None or
    the error already carries a position)."""
    if span is not None:
        e.with_pos(span.line, span.column)
    return e


@contextmanager
def _guard(collector: "Optional[list]", span=None):
    """Run a check; in *collect* mode record failures instead of raising.

    This is the core of collect-all diagnostics: fail-fast callers pass
    ``collector=None`` and see the exact historical behaviour (first
    error raises, now with a source position attached); the analyzer
    passes a list and keeps going, accumulating every error.
    """
    try:
        yield
    except (TypeCheckError, CatalogError) as e:
        _attach(e, span)
        if collector is None:
            raise
        collector.append(e)


def check_statement(stmt: Statement, catalog: Catalog, collector: Optional[list] = None):
    """Type-check one statement; returns the statement (or a
    :class:`CheckedGraphSelect` for graph queries).  Raises
    :class:`TypeCheckError` / :class:`CatalogError` on violation.

    With a *collector* list, errors are appended to it instead of raised
    (collect-all mode); the return value may then be ``None`` when the
    statement is too broken to resolve, or a partially-resolved result.
    """
    if isinstance(stmt, GraphSelect):
        return _check_graph_select(stmt, catalog, collector)
    if isinstance(stmt, TableSelect):
        _check_table_select(stmt, catalog, collector)
        return stmt
    with _guard(collector, span_of(stmt)):
        if isinstance(stmt, CreateTable):
            _check_create_table(stmt, catalog)
        elif isinstance(stmt, CreateVertex):
            _check_create_vertex(stmt, catalog)
        elif isinstance(stmt, CreateEdge):
            _check_create_edge(stmt, catalog)
        elif isinstance(stmt, CreateIndex):
            _check_create_index(stmt, catalog)
        elif isinstance(stmt, DropIndex):
            catalog.index(stmt.name)  # raises with a fix-it listing
        else:
            assert isinstance(stmt, Ingest)
            catalog.table(stmt.table)
        return stmt
    return None


def check_script(script: Script, catalog: Catalog) -> list:
    """Check a whole script statement-by-statement (fail-fast).

    DDL statements update a *scratch copy* of the catalog metadata so later
    statements can reference objects created earlier in the same script
    (the real objects are built at execution time).
    """
    scratch = catalog.scratch_copy()
    out = []
    for stmt in script.statements:
        out.append(check_statement(stmt, scratch))
        _apply_ddl_to_catalog(stmt, scratch)
    return out


def check_script_collect(
    script: Script, catalog: Catalog
) -> tuple[list, list, Catalog]:
    """Check a whole script, accumulating *all* type errors.

    Returns ``(results, errors, scratch)`` where ``results[i]`` is the
    checked statement (possibly partially resolved, ``None`` when
    resolution failed structurally), ``errors`` is every
    :class:`TypeCheckError` / :class:`CatalogError` found, in source
    order with positions attached, and ``scratch`` is the catalog copy
    with the script's own DDL applied (needed to resolve names that
    later statements reference, e.g. during IR verification).  By
    construction this finds a superset of what fail-fast
    :func:`check_script` reports: the same checks run in the same order,
    they just record instead of raising.
    """
    scratch = catalog.scratch_copy()
    results: list = []
    errors: list = []
    for i, stmt in enumerate(script.statements):
        n_before = len(errors)
        results.append(check_statement(stmt, scratch, collector=errors))
        for e in errors[n_before:]:
            e.statement_index = i
            _attach(e, span_of(stmt))  # statement span as position fallback
        try:
            _apply_ddl_to_catalog(stmt, scratch)
        except GraQLError:
            pass  # the failed check above already reported the cause
    return results, errors, scratch


def _apply_ddl_to_catalog(stmt: Statement, catalog: Catalog) -> None:
    """Register metadata for objects a statement will create."""
    from repro.catalog.catalog import EdgeMeta, TableMeta, VertexMeta
    from repro.catalog.stats import DegreeStats
    import numpy as np

    empty_stats = DegreeStats(np.empty(0), np.empty(0))
    if isinstance(stmt, CreateTable):
        catalog.tables[stmt.name] = TableMeta(stmt.name, stmt.schema, 0, False)
    elif isinstance(stmt, CreateVertex):
        table = catalog.table(stmt.table)
        key_schema = table.schema.subset(stmt.key_cols)
        # one-to-one is unknowable statically; assume yes (full attributes)
        catalog.vertices[stmt.name] = VertexMeta(
            stmt.name, stmt.key_cols, stmt.table, table.schema, True, 0, {}
        )
        _ = key_schema
    elif isinstance(stmt, CreateEdge):
        attr_schema = (
            catalog.table(stmt.from_tables[0]).schema
            if len(stmt.from_tables) == 1
            else None
        )
        from repro.storage.schema import Schema

        catalog.edges[stmt.name] = EdgeMeta(
            stmt.name,
            stmt.source.type_name,
            stmt.target.type_name,
            attr_schema if attr_schema is not None else Schema([]),
            0,
            empty_stats,
        )
    elif isinstance(stmt, CreateIndex):
        from repro.catalog.catalog import IndexMeta

        kind = "vertex" if catalog.is_vertex(stmt.target) else "edge"
        catalog.indexes[stmt.name] = IndexMeta(
            stmt.name, stmt.target, kind, tuple(stmt.attrs), 0
        )
    elif isinstance(stmt, DropIndex):
        catalog.indexes.pop(stmt.name, None)
    elif isinstance(stmt, (GraphSelect, TableSelect)) and stmt.into is not None:
        if stmt.into.kind == INTO_TABLE:
            # result schema depends on execution; register a marker so a
            # later 'from table' reference does not fail statically
            from repro.storage.schema import Schema

            catalog.tables[stmt.into.name] = TableMeta(
                stmt.into.name, Schema([]), 0, True
            )
        else:
            catalog.subgraphs[stmt.into.name] = {}


# ----------------------------------------------------------------------
# DDL checks
# ----------------------------------------------------------------------

def _no_params(expr: Optional[Expr], where: str) -> None:
    if expr is not None and params(expr):
        if _DEFER_PARAMS.get():
            return  # prepared-statement typecheck: bound at execution time
        raise TypeCheckError(
            f"{where}: unsubstituted parameters {sorted(set(params(expr)))}"
        )


def _check_bool(t: DataType, where: str) -> None:
    if t.kind not in (KIND_BOOL, KIND_PARAM):
        raise TypeCheckError(f"{where}: condition is not boolean (got {t.ddl()})")


def _check_create_table(stmt: CreateTable, catalog: Catalog) -> None:
    if catalog.is_table(stmt.name) or catalog.is_vertex(stmt.name) or catalog.is_edge(stmt.name):
        raise TypeCheckError(f"name {stmt.name!r} already in use")
    if len(stmt.schema) == 0:
        raise TypeCheckError(f"table {stmt.name!r} has no columns")


def _check_create_vertex(stmt: CreateVertex, catalog: Catalog) -> None:
    if catalog.is_table(stmt.name) or catalog.is_vertex(stmt.name) or catalog.is_edge(stmt.name):
        raise TypeCheckError(f"name {stmt.name!r} already in use")
    table = catalog.table(stmt.table)
    for k in stmt.key_cols:
        if not table.schema.has(k):
            raise TypeCheckError(
                f"vertex {stmt.name!r}: key column {k!r} not in table {stmt.table!r}"
            )
    if len(set(stmt.key_cols)) != len(stmt.key_cols):
        raise TypeCheckError(f"vertex {stmt.name!r}: duplicate key columns")
    if stmt.where is not None:
        _no_params(stmt.where, f"vertex {stmt.name!r} where clause")

        def resolve(qualifier: Optional[str], name: str) -> DataType:
            if qualifier not in (None, stmt.table):
                raise TypeCheckError(
                    f"vertex {stmt.name!r}: unknown qualifier {qualifier!r}"
                )
            if not table.schema.has(name):
                raise TypeCheckError(
                    f"vertex {stmt.name!r}: table {stmt.table!r} has no "
                    f"column {name!r}"
                )
            return table.schema.type_of(name)

        _check_bool(infer_type(stmt.where, resolve), f"vertex {stmt.name!r}")


def _check_create_index(stmt: CreateIndex, catalog: Catalog) -> None:
    if (
        catalog.is_table(stmt.name)
        or catalog.is_vertex(stmt.name)
        or catalog.is_edge(stmt.name)
        or catalog.is_index(stmt.name)
    ):
        raise TypeCheckError(f"name {stmt.name!r} already in use")
    if catalog.is_vertex(stmt.target):
        schema = catalog.vertex(stmt.target).attr_schema
    elif catalog.is_edge(stmt.target):
        schema = catalog.edge(stmt.target).attr_schema
    else:
        raise TypeCheckError(
            f"index {stmt.name!r}: unknown vertex or edge type {stmt.target!r}"
        )
    for a in stmt.attrs:
        if not schema.has(a):
            raise TypeCheckError(
                f"index {stmt.name!r}: {stmt.target!r} has no attribute {a!r}"
            )
    if len(set(stmt.attrs)) != len(stmt.attrs):
        raise TypeCheckError(f"index {stmt.name!r}: duplicate attributes")


def _check_create_edge(stmt: CreateEdge, catalog: Catalog) -> None:
    if catalog.is_table(stmt.name) or catalog.is_vertex(stmt.name) or catalog.is_edge(stmt.name):
        raise TypeCheckError(f"name {stmt.name!r} already in use")
    src_meta = catalog.vertex(stmt.source.type_name)
    tgt_meta = catalog.vertex(stmt.target.type_name)
    src_ref = stmt.source.ref_name
    tgt_ref = stmt.target.ref_name
    if src_ref == tgt_ref:
        raise TypeCheckError(
            f"edge {stmt.name!r}: endpoints must be distinguishable — "
            f"alias one of them"
        )
    qualifiers: dict[str, object] = {}
    qualifiers[src_ref] = catalog.table(src_meta.table).schema
    qualifiers[tgt_ref] = catalog.table(tgt_meta.table).schema
    for t in stmt.from_tables:
        qualifiers[t] = catalog.table(t).schema
    if stmt.where is not None:
        _no_params(stmt.where, f"edge {stmt.name!r} where clause")
        # tables referenced only in the where clause join implicitly
        for ref in col_refs(stmt.where):
            if ref.qualifier is None:
                raise TypeCheckError(
                    f"edge {stmt.name!r}: unqualified attribute {ref.name!r} "
                    f"in where clause"
                )
            if ref.qualifier not in qualifiers:
                if catalog.is_table(ref.qualifier):
                    qualifiers[ref.qualifier] = catalog.table(ref.qualifier).schema
                else:
                    raise TypeCheckError(
                        f"edge {stmt.name!r}: unknown relation "
                        f"{ref.qualifier!r} in where clause"
                    )

        def resolve(qualifier: Optional[str], name: str) -> DataType:
            schema = qualifiers[qualifier]
            if not schema.has(name):
                raise TypeCheckError(
                    f"edge {stmt.name!r}: relation {qualifier!r} has no "
                    f"attribute {name!r}"
                )
            return schema.type_of(name)

        _check_bool(infer_type(stmt.where, resolve), f"edge {stmt.name!r}")


# ----------------------------------------------------------------------
# Relational select checks
# ----------------------------------------------------------------------

def _check_table_select(
    stmt: TableSelect, catalog: Catalog, collector: Optional[list] = None
) -> None:
    stmt_span = span_of(stmt)
    try:
        table = catalog.table(stmt.source)
    except CatalogError as e:
        _attach(e, stmt_span)
        if collector is None:
            raise
        collector.append(e)
        return
    schema = table.schema
    with _guard(collector, stmt_span):
        if stmt.top is not None and stmt.top < 0:
            raise TypeCheckError("top n requires n >= 0")
    if table.derived and len(schema) == 0:
        # a result table declared earlier in the same script: its schema is
        # only known at execution time, so column checks are deferred
        with _guard(collector, stmt_span):
            if stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
                raise TypeCheckError("a table select cannot produce a subgraph")
        return
    if stmt.where is not None:
        with _guard(collector, span_of(stmt.where) or stmt_span):
            _no_params(stmt.where, f"select from {stmt.source!r}")

            def resolve(qualifier: Optional[str], name: str) -> DataType:
                if qualifier not in (None, stmt.source):
                    raise TypeCheckError(
                        f"unknown qualifier {qualifier!r} in select from "
                        f"{stmt.source!r}"
                    )
                if not schema.has(name):
                    raise TypeCheckError(
                        f"table {stmt.source!r} has no column {name!r}"
                    )
                return schema.type_of(name)

            _check_bool(infer_type(stmt.where, resolve), f"select from {stmt.source!r}")
    for g in stmt.group_by:
        with _guard(collector, stmt_span):
            if not schema.has(g):
                raise TypeCheckError(
                    f"group by: table {stmt.source!r} has no column {g!r}"
                )
    has_agg = any(isinstance(i, AggItem) for i in stmt.items)
    output_names: list[str] = []
    for item in stmt.items:
        with _guard(collector, span_of(item) or stmt_span):
            if isinstance(item, StarItem):
                if stmt.group_by:
                    raise TypeCheckError("select * cannot be combined with group by")
                output_names.extend(schema.names())
                continue
            if isinstance(item, AggItem):
                if item.func not in AGGREGATE_FUNCS:
                    raise TypeCheckError(f"unknown aggregate {item.func!r}")
                if item.arg is not None and not schema.has(item.arg):
                    raise TypeCheckError(
                        f"aggregate {item.func}({item.arg}): no such column"
                    )
                if item.func in ("sum", "avg") and item.arg is not None:
                    if schema.type_of(item.arg).kind != "numeric":
                        raise TypeCheckError(
                            f"{item.func}() requires a numeric column, "
                            f"{item.arg!r} is {schema.type_of(item.arg).ddl()}"
                        )
                if item.func != "count" and item.arg is None:
                    raise TypeCheckError(f"{item.func}(*) is not defined")
                output_names.append(item.alias or f"{item.func}")
                continue
            if isinstance(item, StepItem):
                # bare names in table selects parse as AttrItems; StepItems
                # cannot appear here
                raise TypeCheckError(
                    f"step selection {item.name!r} is only valid in graph selects"
                )
            assert isinstance(item, AttrItem)
            ref = item.ref
            if ref.qualifier not in (None, stmt.source):
                raise TypeCheckError(
                    f"unknown qualifier {ref.qualifier!r} in select list"
                )
            if not schema.has(ref.name):
                raise TypeCheckError(
                    f"table {stmt.source!r} has no column {ref.name!r}"
                )
            if (stmt.group_by or has_agg) and ref.name not in stmt.group_by:
                raise TypeCheckError(
                    f"column {ref.name!r} must appear in group by to be selected "
                    f"alongside aggregates"
                )
            output_names.append(item.alias or ref.name)
    for key in stmt.order_by:
        with _guard(collector, stmt_span):
            if key.column not in output_names and not schema.has(key.column):
                raise TypeCheckError(
                    f"order by: unknown column {key.column!r}"
                )
    with _guard(collector, stmt_span):
        if stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH:
            raise TypeCheckError("a table select cannot produce a subgraph")


# ----------------------------------------------------------------------
# Graph select checks + resolution
# ----------------------------------------------------------------------

def _check_graph_select(
    stmt: GraphSelect, catalog: Catalog, collector: Optional[list] = None
) -> Optional[CheckedGraphSelect]:
    labels: dict[str, tuple[str, RVertexStep]] = {}
    edge_labels: dict[str, tuple[str, REdgeStep]] = {}
    needs_bindings = False
    has_regex = False
    # step-name registry for qualifier resolution: name -> RVertexStep list
    step_names: dict[str, list[RVertexStep]] = {}

    def resolve_pattern(node):
        nonlocal needs_bindings, has_regex
        if isinstance(node, PathAtom):
            return resolve_atom(node)
        if isinstance(node, PathAnd):
            labels_before = set(labels)
            left = resolve_pattern(node.left)
            right = resolve_pattern(node.right)
            # "The and composition of two queries is only well defined if
            # the two simple path queries share a label" (Section II-B3)
            if not _shares_label(right, labels_before | set(labels)):
                raise TypeCheckError(
                    "'and' composition requires the right-hand path to "
                    "reference a label shared with the left-hand path"
                )
            return ("and", left, right)
        assert isinstance(node, PathOr)
        left = resolve_pattern(node.left)
        right = resolve_pattern(node.right)
        return ("or", left, right)

    def _shares_label(resolved, known: set) -> bool:
        def walk(node):
            if isinstance(node, RAtom):
                for s in node.steps:
                    if isinstance(s, RVertexStep) and s.label_ref is not None:
                        return True
                    if isinstance(s, RVertexStep) and s.cross_refs:
                        return True
                    if isinstance(s, REdgeStep) and s.label_ref is not None:
                        return True
                return False
            return walk(node[1]) or walk(node[2])

        return walk(resolved)

    def resolve_vertex(step: VertexStep) -> RVertexStep:
        nonlocal needs_bindings
        label_ref = None
        if step.is_variant:
            types = sorted(catalog.vertices.keys())
        elif catalog.is_vertex(step.name):
            types = [step.name]
        elif step.name in labels:
            kind, defstep = labels[step.name]
            label_ref = step.name
            types = list(defstep.types)
            if kind == LABEL_FOREACH:
                needs_bindings = True
        else:
            catalog.vertex(step.name)  # raises with a helpful hint
            raise AssertionError("unreachable")
        if step.seed is not None and step.seed not in catalog.subgraphs:
            raise TypeCheckError(
                f"unknown result subgraph {step.seed!r} used to seed a step"
            )
        if step.is_variant and step.cond is not None:
            raise TypeCheckError(
                "conditional expressions are not allowed on variant steps "
                "(attributes are not common across matching types)"
            )
        names = tuple(
            n for n in ((step.label.name if step.label else None), step.name)
            if n is not None
        )
        rstep = RVertexStep(
            types,
            step.cond,
            step.label,
            label_ref,
            step.seed,
            step.is_variant,
            [],
            names,
        )
        if step.label is not None:
            if step.label.name in labels:
                raise TypeCheckError(
                    f"label {step.label.name!r} defined more than once"
                )
            if (
                catalog.is_vertex(step.label.name)
                or catalog.is_edge(step.label.name)
                or catalog.is_table(step.label.name)
            ):
                raise TypeCheckError(
                    f"label {step.label.name!r} shadows a database object"
                )
            labels[step.label.name] = (step.label.kind, rstep)
            step_names.setdefault(step.label.name, []).append(rstep)
            if step.label.kind == LABEL_FOREACH:
                needs_bindings = True
        if not step.is_variant and label_ref is None:
            # a label-reference step re-matches the defining step; only the
            # defining step registers the name (keeps references unambiguous)
            step_names.setdefault(step.name, []).append(rstep)
        return rstep

    def resolve_edge(step: EdgeStep, prev: RVertexStep, nxt_name_hint: Optional[VertexStep]) -> REdgeStep:
        label_ref = None
        if step.is_variant:
            names = None  # narrowed later
        elif catalog.is_edge(step.name):
            names = [step.name]
        elif step.name in edge_labels:
            # Eq. 6 for edges: re-match the labeled step's edge set
            _kind, defstep = edge_labels[step.name]
            label_ref = step.name
            names = list(defstep.names)
        else:
            catalog.edge(step.name)  # raises with a helpful hint
            raise AssertionError("unreachable")
        rstep = REdgeStep(
            names if names is not None else [],
            step.direction,
            step.cond,
            step.label,
            step.is_variant,
            label_ref,
        )
        if step.label is not None:
            if step.label.name in labels or step.label.name in edge_labels:
                raise TypeCheckError(
                    f"label {step.label.name!r} defined more than once"
                )
            if (
                catalog.is_vertex(step.label.name)
                or catalog.is_edge(step.label.name)
                or catalog.is_table(step.label.name)
            ):
                raise TypeCheckError(
                    f"label {step.label.name!r} shadows a database object"
                )
            if step.label.kind == LABEL_FOREACH:
                raise TypeCheckError(
                    "element-wise (foreach) labels on edge steps are not "
                    "supported; use a set label ('def')"
                )
            edge_labels[step.label.name] = (step.label.kind, rstep)
        return rstep

    def resolve_atom(atom: PathAtom) -> RAtom:
        nonlocal has_regex, needs_bindings
        rsteps: list = []
        steps = atom.steps
        if not steps or not isinstance(steps[0], VertexStep):
            raise TypeCheckError("a path query must start with a vertex step")
        if not isinstance(steps[-1], (VertexStep,)):
            raise TypeCheckError("a path query must end with a vertex step")
        for i, s in enumerate(steps):
            if isinstance(s, VertexStep):
                rsteps.append(resolve_vertex(s))
            elif isinstance(s, EdgeStep):
                rsteps.append(resolve_edge(s, None, None))
            else:
                assert isinstance(s, RegexGroup)
                has_regex = True
                pairs = []
                for e, v in s.pairs:
                    re_ = resolve_edge(e, None, None)
                    rv = resolve_vertex(v)
                    pairs.append((re_, rv))
                rsteps.append(RRegex(pairs, s.op, s.count))
        _narrow_types(rsteps, catalog)
        _check_step_conditions(rsteps, catalog, labels, step_names, collector)
        for s in rsteps:
            if isinstance(s, RVertexStep) and s.cross_refs:
                needs_bindings = True
        return RAtom(rsteps)

    stmt_span = span_of(stmt)
    try:
        root = resolve_pattern(stmt.pattern)
    except (TypeCheckError, CatalogError) as e:
        # structural failure: the pattern cannot be resolved, so the
        # remaining checks have nothing to work with
        _attach(e, stmt_span)
        if collector is None:
            raise
        collector.append(e)
        return None
    pattern = RPattern(root, labels, needs_bindings, has_regex, edge_labels)
    _check_items(stmt, pattern, catalog, step_names, collector)
    with _guard(collector, stmt_span):
        if stmt.into is None or stmt.into.kind == INTO_TABLE:
            # table outputs enumerate paths (Fig. 6: one row per matched path)
            pattern.needs_bindings = True
            if isinstance(root, tuple) and _contains_or(root):
                raise TypeCheckError(
                    "'or' composition unions subgraphs (Section II-B3) — use "
                    "'into subgraph' for the result"
                )
    with _guard(collector, stmt_span):
        if pattern.needs_bindings and _has_unbounded_regex(pattern):
            raise TypeCheckError(
                "unbounded path regular expressions ('*'/'+') are only "
                "supported under set semantics — use 'into subgraph' without "
                "foreach labels or cross-step comparisons, or bound the "
                "repetition with '{n}'"
            )
    return CheckedGraphSelect(stmt, pattern)


def _contains_or(node) -> bool:
    if isinstance(node, RAtom):
        return False
    if node[0] == "or":
        return True
    return _contains_or(node[1]) or _contains_or(node[2])


def _has_unbounded_regex(pattern: RPattern) -> bool:
    from repro.graql.ast import REGEX_COUNT

    for atom in pattern.atoms():
        for s in atom.steps:
            if isinstance(s, RRegex) and s.op != REGEX_COUNT:
                return True
    return False


def _narrow_types(rsteps: list, catalog: Catalog) -> None:
    """Propagate endpoint-type constraints through the atom until fixpoint.

    Concrete edges pin their endpoints; variant edges narrow to the edge
    types compatible with the neighboring vertex-step candidates (Section
    II-B4's union over matching types); variant vertices narrow to the
    endpoint types of their adjacent edges.  An empty candidate set is a
    static infeasibility — the query cannot match anything.
    """
    changed = True
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > 100:  # pragma: no cover - safety net
            break
        for i, s in enumerate(rsteps):
            if not isinstance(s, REdgeStep):
                continue
            prev = rsteps[i - 1]
            nxt = rsteps[i + 1]
            if not isinstance(prev, RVertexStep) or not isinstance(nxt, RVertexStep):
                continue  # regex neighbors handled dynamically
            if s.direction == DIR_OUT:
                src_candidates, tgt_candidates = prev, nxt
            else:
                src_candidates, tgt_candidates = nxt, prev
            if s.is_variant:
                compatible = [
                    em.name
                    for em in catalog.edges.values()
                    if em.source_type in src_candidates.types
                    and em.target_type in tgt_candidates.types
                ]
                compatible.sort()
                if compatible != s.names:
                    s.names = compatible
                    changed = True
            else:
                em = catalog.edge(s.names[0])
                if em.source_type not in src_candidates.types:
                    raise TypeCheckError(
                        f"edge {em.name!r} cannot leave a step of type(s) "
                        f"{src_candidates.types} (its source is "
                        f"{em.source_type!r})"
                    )
                if em.target_type not in tgt_candidates.types:
                    raise TypeCheckError(
                        f"edge {em.name!r} cannot arrive at a step of "
                        f"type(s) {tgt_candidates.types} (its target is "
                        f"{em.target_type!r})"
                    )
            # narrow vertex candidates from the edge side
            if s.names:
                srcs = sorted({catalog.edge(n).source_type for n in s.names})
                tgts = sorted({catalog.edge(n).target_type for n in s.names})
                new_src = [t for t in src_candidates.types if t in srcs]
                new_tgt = [t for t in tgt_candidates.types if t in tgts]
                if new_src != src_candidates.types:
                    src_candidates.types = new_src
                    changed = True
                if new_tgt != tgt_candidates.types:
                    tgt_candidates.types = new_tgt
                    changed = True
            if not s.names:
                raise TypeCheckError(
                    "statically infeasible query step: no edge type connects "
                    f"{src_candidates.types or '(none)'} to "
                    f"{tgt_candidates.types or '(none)'}"
                )
    for s in rsteps:
        if isinstance(s, RVertexStep) and not s.types:
            raise TypeCheckError(
                "statically infeasible query step: no vertex type can match"
            )


def _check_step_conditions(
    rsteps: list,
    catalog: Catalog,
    labels: dict[str, tuple[str, RVertexStep]],
    step_names: dict[str, list[RVertexStep]],
    collector: Optional[list] = None,
) -> None:
    """Type-check every step condition; record cross-step references.

    Each step's condition is guarded independently so collect-all mode
    reports every bad condition in the pattern, not just the first."""

    def cond_span(step):
        return span_of(step.cond) if step.cond is not None else None

    for s in rsteps:
        if isinstance(s, RVertexStep):
            with _guard(collector, cond_span(s)):
                _check_vertex_cond(s, catalog, step_names)
        elif isinstance(s, REdgeStep):
            with _guard(collector, cond_span(s)):
                _check_edge_cond(s, catalog)
        elif isinstance(s, RRegex):
            for e, v in s.pairs:
                with _guard(collector, cond_span(v)):
                    _check_vertex_cond(v, catalog, step_names)
                with _guard(collector, cond_span(e)):
                    _check_edge_cond(e, catalog)


def _attr_type_for_types(types: list[str], name: str, catalog: Catalog, ctx: str) -> DataType:
    """Attribute type across candidate types; must exist on all of them."""
    found: Optional[DataType] = None
    for t in types:
        vm = catalog.vertex(t)
        if not vm.attr_schema.has(name):
            extra = "" if vm.one_to_one else " (many-to-one view exposes only key attributes)"
            raise TypeCheckError(
                f"{ctx}: vertex type {t!r} has no attribute {name!r}{extra}"
            )
        t2 = vm.attr_schema.type_of(name)
        if found is not None and found.kind != t2.kind:
            raise TypeCheckError(
                f"{ctx}: attribute {name!r} has incompatible types across "
                f"candidate vertex types"
            )
        found = t2
    assert found is not None
    return found


def _check_vertex_cond(s: RVertexStep, catalog: Catalog, step_names: dict[str, list[RVertexStep]]) -> None:
    if s.cond is None:
        return
    _no_params(s.cond, "graph step condition")
    own = set(s.names) | set(s.types) | {None}
    cross: list[str] = []

    def resolve(qualifier: Optional[str], name: str) -> DataType:
        if qualifier in own:
            return _attr_type_for_types(s.types, name, catalog, "step condition")
        # cross-step reference: must name exactly one other step
        steps = step_names.get(qualifier, [])
        if not steps:
            raise TypeCheckError(
                f"step condition: unknown qualifier {qualifier!r} (not this "
                f"step, an earlier label, or a step type name)"
            )
        if len(steps) > 1:
            raise TypeCheckError(
                f"step condition: qualifier {qualifier!r} is ambiguous — "
                f"label the intended step"
            )
        cross.append(qualifier)
        return _attr_type_for_types(steps[0].types, name, catalog, "step condition")

    _check_bool(infer_type(s.cond, resolve), "step condition")
    s.cross_refs = sorted(set(cross))


def _check_edge_cond(s: REdgeStep, catalog: Catalog) -> None:
    if s.cond is None:
        return
    if s.is_variant:
        raise TypeCheckError(
            "conditional expressions are not allowed on variant edge steps"
        )
    _no_params(s.cond, "edge step condition")
    em = catalog.edge(s.names[0])

    def resolve(qualifier: Optional[str], name: str) -> DataType:
        if qualifier not in (None, em.name):
            raise TypeCheckError(
                f"edge condition: unknown qualifier {qualifier!r}"
            )
        if not em.attr_schema.has(name):
            raise TypeCheckError(
                f"edge type {em.name!r} has no attribute {name!r} "
                f"(edge attributes come from its 'from table')"
            )
        return em.attr_schema.type_of(name)

    _check_bool(infer_type(s.cond, resolve), "edge condition")


def _check_items(
    stmt: GraphSelect,
    pattern: RPattern,
    catalog: Catalog,
    step_names: dict[str, list[RVertexStep]],
    collector: Optional[list] = None,
) -> None:
    into_subgraph = stmt.into is not None and stmt.into.kind == INTO_SUBGRAPH
    for item in stmt.items:
        with _guard(collector, span_of(item) or span_of(stmt)):
            _check_one_item(item, stmt, pattern, catalog, step_names, into_subgraph)


def _check_one_item(
    item,
    stmt: GraphSelect,
    pattern: RPattern,
    catalog: Catalog,
    step_names: dict[str, list[RVertexStep]],
    into_subgraph: bool,
) -> None:
    if isinstance(item, StarItem):
        return
    if isinstance(item, AggItem):
        raise TypeCheckError(
            "aggregates are not allowed in graph selects — capture into "
            "a table and aggregate there (Fig. 7 pattern)"
        )
    if isinstance(item, StepItem):
        steps = step_names.get(item.name, [])
        if not steps and item.name in pattern.edge_labels:
            if not into_subgraph:
                raise TypeCheckError(
                    f"edge label {item.name!r} can only be selected "
                    f"into a subgraph"
                )
            return  # labeled edge step -> its edge set
        if not steps:
            raise TypeCheckError(
                f"select item {item.name!r}: no step with that type or "
                f"label name"
            )
        if len(steps) > 1:
            raise TypeCheckError(
                f"select item {item.name!r} is ambiguous — label the "
                f"intended step (Section II-C)"
            )
        return
    assert isinstance(item, AttrItem)
    if into_subgraph:
        raise TypeCheckError(
            "attribute selections cannot produce a subgraph — use "
            "'into table' for attribute output"
        )
    q = item.ref.qualifier
    if q is None:
        raise TypeCheckError(
            f"graph select attribute {item.ref.name!r} must be "
            f"qualified with a step type or label"
        )
    steps = step_names.get(q, [])
    if not steps:
        if q in pattern.edge_labels:
            # edge-attribute selection via an edge label
            _kind, estep = pattern.edge_labels[q]
            if len(estep.names) != 1:
                raise TypeCheckError(
                    f"select item: edge label {q!r} matches several "
                    f"edge types with different attributes"
                )
            em = catalog.edge(estep.names[0])
            if not em.attr_schema.has(item.ref.name):
                raise TypeCheckError(
                    f"edge type {estep.names[0]!r} has no attribute "
                    f"{item.ref.name!r} (edge attributes come from its "
                    f"'from table')"
                )
            return
        raise TypeCheckError(f"select item: unknown step {q!r}")
    if len(steps) > 1:
        raise TypeCheckError(
            f"select item: step {q!r} is ambiguous — label the intended "
            f"step"
        )
    _attr_type_for_types(steps[0].types, item.ref.name, catalog, "select item")
