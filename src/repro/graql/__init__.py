"""GraQL language front-end.

The pipeline mirrors the paper's Section III client/front-end split:

``lexer`` → ``parser`` (AST in :mod:`repro.graql.ast`) → ``params``
substitution → ``typecheck`` (static analysis, Section III-A, against the
catalog) → ``compiler`` (logical plans) → ``ir`` (binary intermediate
representation shipped to the backend).

``parse_script`` is the main entry point: a GraQL script is a series of
data-definition, ingest and query statements (Section III).
"""

from repro.graql.ast import Script, Statement
from repro.graql.lexer import tokenize
from repro.graql.parser import parse_script, parse_statement
from repro.graql.pretty import pretty_script, pretty_statement

__all__ = [
    "tokenize",
    "parse_script",
    "parse_statement",
    "pretty_script",
    "pretty_statement",
    "Script",
    "Statement",
]
