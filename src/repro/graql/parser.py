"""Recursive-descent parser for GraQL.

The grammar (Section II of the paper):

.. code-block:: text

   script        := statement*
   statement     := create_table | create_vertex | create_edge
                  | ingest | select_stmt
   create_table  := CREATE TABLE ident '(' coldef (',' coldef)* ')'
   create_vertex := CREATE VERTEX ident '(' ident (',' ident)* ')'
                    FROM TABLE ident [WHERE expr]
   create_edge   := CREATE EDGE ident WITH VERTICES
                    '(' endpoint ',' endpoint ')'
                    [FROM TABLE ident (',' ident)*] [WHERE expr]
   endpoint      := ident [AS ident]
   ingest        := INGEST TABLE ident (string | bare-path)
   select_stmt   := SELECT [TOP number] [DISTINCT] items
                    FROM (GRAPH pattern | TABLE ident)
                    [WHERE expr] [GROUP BY idents] [ORDER BY keys]
                    [INTO (TABLE | SUBGRAPH) ident]
   pattern       := path ((AND | OR) path)*          (left associative)
   path          := ['('] vstep (estep vstep)* [')']
   vstep         := [label] [seed '.'] (ident ['(' [expr] ')'] | '[' ']')
   label         := (DEF | FOREACH) ident ':'
   estep         := DASHES ecore RARROW | LARROW ecore DASHES | regex
   ecore         := ident ['(' expr ')'] | '[' ']'
   regex         := [RARROW] '(' (estep vstep)+ ')' regex_op [RARROW]
   regex_op      := '*' | '+' | '{' number '}'

Expressions use standard precedence (or < and < not < comparison <
additive < multiplicative < unary), with ``is [not] null`` postfix.
Statement boundaries need no separator: every statement begins with
``create``, ``ingest`` or ``select``.
"""

from __future__ import annotations

from typing import Optional

from repro.dtypes import parse_type_name
from repro.errors import ParseError
from repro.graql import tokens as T
from repro.graql.ast import (
    AggItem,
    AttrItem,
    CreateEdge,
    CreateIndex,
    CreateTable,
    CreateVertex,
    DIR_IN,
    DIR_OUT,
    DropIndex,
    EdgeStep,
    GraphSelect,
    Ingest,
    IntoClause,
    INTO_SUBGRAPH,
    INTO_TABLE,
    Label,
    LABEL_FOREACH,
    LABEL_SET,
    OrderKey,
    PathAnd,
    PathAtom,
    PathOr,
    RegexGroup,
    REGEX_COUNT,
    REGEX_PLUS,
    REGEX_STAR,
    Script,
    SelectItem,
    StarItem,
    Statement,
    StepItem,
    TableSelect,
    VertexEndpoint,
    VertexStep,
)
from repro.graql.lexer import tokenize
from repro.graql.tokens import SourceSpan, Token
from repro.storage.expr import (
    BinOp,
    ColRef,
    Const,
    Expr,
    IsNull,
    Not,
    Param,
)
from repro.storage.schema import ColumnDef, Schema

_STATEMENT_STARTERS = ("create", "drop", "ingest", "select")
_AGG_FUNCS = ("count", "sum", "avg", "min", "max")


class Parser:
    """Token-stream parser producing :class:`~repro.graql.ast.Script`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != T.EOF:
            self.pos += 1
        return tok

    def check(self, kind: str) -> bool:
        return self.peek().kind == kind

    def check_kw(self, word: str) -> bool:
        return self.peek().is_keyword(word)

    def match(self, kind: str) -> Optional[Token]:
        if self.check(kind):
            return self.advance()
        return None

    def match_kw(self, word: str) -> bool:
        if self.check_kw(word):
            self.advance()
            return True
        return False

    def expect(self, kind: str, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise ParseError(
                f"expected {what or kind}, got {tok.kind} {tok.value!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def expect_kw(self, word: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(word):
            raise ParseError(
                f"expected keyword '{word}', got {tok.kind} {tok.value!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        tok = self.peek()
        if tok.kind != T.IDENT:
            raise ParseError(
                f"expected {what}, got {tok.kind} {tok.value!r}",
                tok.line,
                tok.column,
            )
        self.advance()
        return tok.value

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(message, tok.line, tok.column)

    def _spanned(self, node, tok: Token):
        """Attach *tok*'s position to an AST/expression node."""
        node.span = SourceSpan(tok.line, tok.column)
        return node

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def parse_script(self) -> Script:
        statements = []
        while not self.check(T.EOF):
            while self.match(T.SEMI):
                pass
            if self.check(T.EOF):
                break
            statements.append(self.parse_statement())
        return Script(statements)

    def parse_statement(self) -> Statement:
        tok = self.peek()
        if tok.is_keyword("create"):
            return self._spanned(self._parse_create(), tok)
        if tok.is_keyword("drop"):
            return self._spanned(self._parse_drop(), tok)
        if tok.is_keyword("ingest"):
            return self._spanned(self._parse_ingest(), tok)
        if tok.is_keyword("select"):
            return self._spanned(self._parse_select(), tok)
        raise self.error(
            f"expected statement (create/drop/ingest/select), got {tok.value!r}"
        )

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _parse_create(self) -> Statement:
        self.expect_kw("create")
        if self.match_kw("table"):
            return self._parse_create_table()
        if self.match_kw("vertex"):
            return self._parse_create_vertex()
        if self.match_kw("edge"):
            return self._parse_create_edge()
        if self.match_kw("index"):
            return self._parse_create_index()
        raise self.error(
            "expected 'table', 'vertex', 'edge' or 'index' after 'create'"
        )

    def _parse_create_index(self) -> CreateIndex:
        name = self.expect_ident("index name")
        self.expect_kw("on")
        target = self.expect_ident("vertex or edge type name")
        self.expect(T.LPAREN)
        attrs = [self.expect_ident("attribute name")]
        while self.match(T.COMMA):
            attrs.append(self.expect_ident("attribute name"))
        self.expect(T.RPAREN)
        return CreateIndex(name, target, attrs)

    def _parse_drop(self) -> Statement:
        self.expect_kw("drop")
        self.expect_kw("index")
        return DropIndex(self.expect_ident("index name"))

    def _parse_create_table(self) -> CreateTable:
        name = self.expect_ident("table name")
        self.expect(T.LPAREN)
        cols: list[ColumnDef] = []
        while True:
            cname = self.expect_ident("column name")
            dtype = self._parse_type()
            cols.append(ColumnDef(cname, dtype))
            if not self.match(T.COMMA):
                break
        self.expect(T.RPAREN)
        return CreateTable(name, Schema(cols))

    def _parse_type(self):
        tok = self.peek()
        if tok.kind == T.IDENT:
            self.advance()
            word = tok.value
        else:
            raise self.error("expected a type name")
        if self.check(T.LPAREN):
            self.advance()
            num = self.expect(T.NUMBER, "varchar length")
            self.expect(T.RPAREN)
            word = f"{word}({int(num.value)})"
        try:
            return parse_type_name(word)
        except ValueError as e:
            raise ParseError(str(e), tok.line, tok.column) from None

    def _parse_create_vertex(self) -> CreateVertex:
        name = self.expect_ident("vertex type name")
        self.expect(T.LPAREN)
        keys = [self.expect_ident("key column")]
        while self.match(T.COMMA):
            keys.append(self.expect_ident("key column"))
        self.expect(T.RPAREN)
        self.expect_kw("from")
        self.expect_kw("table")
        table = self.expect_ident("table name")
        where = self._parse_expr() if self.match_kw("where") else None
        return CreateVertex(name, keys, table, where)

    def _parse_create_edge(self) -> CreateEdge:
        name = self.expect_ident("edge type name")
        self.expect_kw("with")
        self.expect_kw("vertices")
        self.expect(T.LPAREN)
        source = self._parse_endpoint()
        self.expect(T.COMMA)
        target = self._parse_endpoint()
        self.expect(T.RPAREN)
        from_tables: list[str] = []
        if self.check_kw("from"):
            self.advance()
            self.expect_kw("table")
            from_tables.append(self.expect_ident("table name"))
            while self.match(T.COMMA):
                from_tables.append(self.expect_ident("table name"))
        where = self._parse_expr() if self.match_kw("where") else None
        return CreateEdge(name, source, target, from_tables, where)

    def _parse_endpoint(self) -> VertexEndpoint:
        tname = self.expect_ident("vertex type name")
        alias = None
        if self.match_kw("as"):
            alias = self.expect_ident("endpoint alias")
        return VertexEndpoint(tname, alias)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _parse_ingest(self) -> Ingest:
        self.expect_kw("ingest")
        self.expect_kw("table")
        table = self.expect_ident("table name")
        tok = self.peek()
        if tok.kind == T.STRING:
            self.advance()
            return Ingest(table, tok.value)
        # Bare path like products.csv or data/products.csv: glue adjacent
        # tokens back together using source columns.
        path = self._parse_bare_path()
        return Ingest(table, path)

    def _parse_bare_path(self) -> str:
        parts: list[str] = []
        prev_end: Optional[tuple[int, int]] = None
        acceptable = (T.IDENT, T.KEYWORD, T.NUMBER, T.DOT, T.SLASH, T.MINUS)
        while True:
            tok = self.peek()
            if tok.kind not in acceptable:
                break
            spelling = (
                str(tok.value)
                if tok.kind in (T.IDENT, T.KEYWORD, T.NUMBER)
                else tok.kind
            )
            start = (tok.line, tok.column)
            if prev_end is not None and start != prev_end:
                break  # whitespace gap: path ended
            # a statement keyword that is NOT glued to the path starts a new
            # statement, but a glued one (e.g. "table.csv") is path text
            if tok.kind == T.KEYWORD and prev_end is None:
                break
            parts.append(spelling)
            prev_end = (tok.line, tok.column + len(spelling))
            self.advance()
        if not parts:
            raise self.error("expected a file path after ingest table <name>")
        return "".join(parts)

    # ------------------------------------------------------------------
    # Select statements
    # ------------------------------------------------------------------
    def _parse_select(self) -> Statement:
        self.expect_kw("select")
        top = None
        if self.match_kw("top"):
            top = int(self.expect(T.NUMBER, "top count").value)
        distinct = self.match_kw("distinct")
        items = self._parse_select_items()
        self.expect_kw("from")
        if self.match_kw("graph"):
            if top is not None or distinct:
                raise self.error("top/distinct are not supported on graph selects")
            pattern = self._parse_pattern()
            into = self._parse_into(allow_subgraph=True)
            return GraphSelect(self._bind_graph_items(items), pattern, into)
        if self.match_kw("table"):
            source = self.expect_ident("table name")
            where = self._parse_expr() if self.match_kw("where") else None
            group_by: list[str] = []
            if self.check_kw("group"):
                self.advance()
                self.expect_kw("by")
                group_by.append(self.expect_ident("group-by column"))
                while self.match(T.COMMA):
                    group_by.append(self.expect_ident("group-by column"))
            order_by: list[OrderKey] = []
            if self.check_kw("order"):
                self.advance()
                self.expect_kw("by")
                order_by.append(self._parse_order_key())
                while self.match(T.COMMA):
                    order_by.append(self._parse_order_key())
            into = self._parse_into(allow_subgraph=False)
            return TableSelect(
                items, source, top, distinct, where, group_by, order_by, into
            )
        # Seeded first step like "resQ1.Vn" also appears after "from graph";
        # any other continuation is an error.
        raise self.error("expected 'graph' or 'table' after 'from'")

    def _parse_order_key(self) -> OrderKey:
        col = self.expect_ident("order-by column")
        ascending = True
        if self.match_kw("desc"):
            ascending = False
        else:
            self.match_kw("asc")
        return OrderKey(col, ascending)

    def _parse_into(self, allow_subgraph: bool) -> Optional[IntoClause]:
        if not self.check_kw("into"):
            return None
        self.advance()
        if self.match_kw("table"):
            return IntoClause(INTO_TABLE, self.expect_ident("result table name"))
        if self.match_kw("subgraph"):
            if not allow_subgraph:
                raise self.error("'into subgraph' is only valid for graph selects")
            return IntoClause(INTO_SUBGRAPH, self.expect_ident("result subgraph name"))
        raise self.error("expected 'table' or 'subgraph' after 'into'")

    def _parse_select_items(self) -> list[SelectItem]:
        if self.match(T.STAR):
            return [StarItem()]
        items: list[SelectItem] = [self._parse_select_item()]
        while self.match(T.COMMA):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        tok = self.peek()
        if tok.kind == T.KEYWORD and tok.value in _AGG_FUNCS:
            self.advance()
            self.expect(T.LPAREN)
            if self.match(T.STAR):
                arg = None
            else:
                arg = self.expect_ident("aggregate argument")
            self.expect(T.RPAREN)
            alias = self.expect_ident("alias") if self.match_kw("as") else None
            return self._spanned(AggItem(tok.value, arg, alias), tok)
        name = self.expect_ident("select item")
        qualifier = None
        if self.match(T.DOT):
            qualifier = name
            name = self.expect_ident("attribute name")
        alias = self.expect_ident("alias") if self.match_kw("as") else None
        return self._spanned(AttrItem(ColRef(qualifier, name), alias), tok)

    def _bind_graph_items(self, items: list[SelectItem]) -> list[SelectItem]:
        """In graph selects, a bare unqualified name selects a whole step
        (Fig. 11: ``select V0, Vn``), not an attribute."""
        out: list[SelectItem] = []
        for item in items:
            if (
                isinstance(item, AttrItem)
                and item.ref.qualifier is None
                and item.alias is None
            ):
                step = StepItem(item.ref.name)
                if getattr(item, "span", None) is not None:
                    step.span = item.span
                out.append(step)
            else:
                out.append(item)
        return out

    # ------------------------------------------------------------------
    # Path patterns
    # ------------------------------------------------------------------
    def _parse_pattern(self):
        left = self._parse_path_term()
        while True:
            if self.check_kw("and") :
                self.advance()
                right = self._parse_path_term()
                left = PathAnd(left, right)
            elif self.check_kw("or"):
                self.advance()
                right = self._parse_path_term()
                left = PathOr(left, right)
            else:
                return left

    def _parse_path_term(self) -> PathAtom:
        # optional parenthesized path: "(y --type--> TypeVtx)"
        if self.check(T.LPAREN):
            save = self.pos
            self.advance()
            try:
                atom = self._parse_path_atom()
                self.expect(T.RPAREN)
                return atom
            except ParseError:
                self.pos = save  # not a parenthesized path after all
        return self._parse_path_atom()

    def _parse_path_atom(self) -> PathAtom:
        steps: list = [self._parse_vertex_step()]
        while self._at_edge_start():
            edge = self._parse_edge_or_regex()
            steps.append(edge)
            steps.append(self._parse_vertex_step())
        return PathAtom(steps)

    def _at_edge_start(self) -> bool:
        k = self.peek().kind
        if k in (T.DASHES, T.LARROW):
            return True
        if k == T.RARROW:  # connector before a regex group (Fig. 10)
            return self.peek(1).kind == T.LPAREN
        if k == T.LPAREN:
            # possible inline regex group "( --[]--> [] )+"
            return self.peek(1).kind in (T.DASHES, T.LARROW)
        return False

    def _parse_vertex_step(self) -> VertexStep:
        start = self.peek()
        label = self._parse_label()
        # variant step "[ ]"
        if self.match(T.LBRACKET):
            self.expect(T.RBRACKET)
            return self._spanned(
                VertexStep(None, is_variant=True, label=label), start
            )
        name = self.expect_ident("vertex type or label name")
        seed = None
        if self.check(T.DOT) and self.peek(1).kind == T.IDENT:
            # seeded step: resQ1.Vn(cond)
            self.advance()
            seed = name
            name = self.expect_ident("vertex type name")
        cond = self._parse_step_condition()
        return self._spanned(
            VertexStep(name, is_variant=False, cond=cond, label=label, seed=seed),
            start,
        )

    def _parse_label(self) -> Optional[Label]:
        start = self.peek()
        if self.check_kw("def"):
            self.advance()
            name = self.expect_ident("label name")
            self.expect(T.COLON)
            return self._spanned(Label(LABEL_SET, name), start)
        if self.check_kw("foreach"):
            self.advance()
            name = self.expect_ident("label name")
            self.expect(T.COLON)
            return self._spanned(Label(LABEL_FOREACH, name), start)
        return None

    def _parse_step_condition(self) -> Optional[Expr]:
        """Optional '( expr )' or the empty filter '( )'."""
        if not self.check(T.LPAREN):
            return None
        # Do not swallow a following regex group "( --[]--> ...)" — that is
        # an edge-position construct, not a condition.
        if self.peek(1).kind in (T.DASHES, T.LARROW):
            return None
        self.advance()
        if self.match(T.RPAREN):
            return None  # "( )" means no filter (Section II-B)
        expr = self._parse_expr()
        self.expect(T.RPAREN)
        return expr

    def _parse_edge_or_regex(self):
        tok = self.peek()
        if tok.kind == T.RARROW:
            # connector arrow before a regex group
            self.advance()
            group = self._parse_regex_group()
            self.match(T.RARROW)  # optional trailing connector
            return group
        if tok.kind == T.LPAREN:
            group = self._parse_regex_group()
            self.match(T.RARROW)
            return group
        if tok.kind == T.DASHES:
            # --name(cond)--> outgoing
            self.advance()
            name, is_variant, cond, label = self._parse_edge_core()
            self.expect(T.RARROW, "'-->'")
            return self._spanned(EdgeStep(name, DIR_OUT, is_variant, cond, label), tok)
        if tok.kind == T.LARROW:
            # <--name(cond)-- incoming
            self.advance()
            name, is_variant, cond, label = self._parse_edge_core()
            self.expect(T.DASHES, "'--'")
            return self._spanned(EdgeStep(name, DIR_IN, is_variant, cond, label), tok)
        raise self.error("expected an edge step ('--', '<--' or regex group)")

    def _parse_edge_core(self):
        label = self._parse_label()
        if self.match(T.LBRACKET):
            self.expect(T.RBRACKET)
            return None, True, None, label
        name = self.expect_ident("edge type name")
        cond = None
        if self.check(T.LPAREN):
            self.advance()
            if not self.match(T.RPAREN):
                cond = self._parse_expr()
                self.expect(T.RPAREN)
        return name, False, cond, label

    def _parse_regex_group(self) -> RegexGroup:
        start = self.peek()
        self.expect(T.LPAREN)
        pairs: list[tuple[EdgeStep, VertexStep]] = []
        while not self.check(T.RPAREN):
            edge = self._parse_edge_or_regex()
            if isinstance(edge, RegexGroup):
                raise self.error("nested path regular expressions are not supported")
            vertex = self._parse_vertex_step()
            pairs.append((edge, vertex))
        self.expect(T.RPAREN)
        if not pairs:
            raise self.error("empty path regular expression group")
        if self.match(T.STAR):
            return self._spanned(RegexGroup(pairs, REGEX_STAR), start)
        if self.match(T.PLUS):
            return self._spanned(RegexGroup(pairs, REGEX_PLUS), start)
        if self.match(T.LBRACE):
            num = self.expect(T.NUMBER, "repetition count")
            self.expect(T.RBRACE)
            return self._spanned(RegexGroup(pairs, REGEX_COUNT, int(num.value)), start)
        raise self.error("expected '*', '+' or '{n}' after regex group")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.check_kw("or"):
            tok = self.advance()
            left = self._spanned(BinOp("or", left, self._parse_and()), tok)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.check_kw("and"):
            tok = self.advance()
            left = self._spanned(BinOp("and", left, self._parse_not()), tok)
        return left

    def _parse_not(self) -> Expr:
        if self.check_kw("not"):
            tok = self.advance()
            return self._spanned(Not(self._parse_not()), tok)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        tok = self.peek()
        if tok.kind in (T.EQ, T.NE, T.BANG_NE, T.LT, T.LE, T.GT, T.GE):
            self.advance()
            op = "<>" if tok.kind == T.BANG_NE else tok.kind
            return self._spanned(BinOp(op, left, self._parse_additive()), tok)
        if tok.is_keyword("is"):
            self.advance()
            negated = self.match_kw("not")
            self.expect_kw("null")
            return self._spanned(IsNull(left, negated), tok)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self.peek().kind in (T.PLUS, T.MINUS):
            tok = self.advance()
            left = self._spanned(
                BinOp(tok.kind, left, self._parse_multiplicative()), tok
            )
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self.peek().kind in (T.STAR, T.SLASH):
            tok = self.advance()
            left = self._spanned(BinOp(tok.kind, left, self._parse_unary()), tok)
        return left

    def _parse_unary(self) -> Expr:
        if self.check(T.MINUS):
            tok = self.advance()
            operand = self._parse_unary()
            if isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                return self._spanned(Const(-operand.value), tok)
            return self._spanned(BinOp("-", Const(0), operand), tok)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == T.NUMBER:
            self.advance()
            return self._spanned(Const(tok.value), tok)
        if tok.kind == T.STRING:
            self.advance()
            return self._spanned(Const(tok.value), tok)
        if tok.kind == T.PARAM:
            self.advance()
            return self._spanned(Param(tok.value), tok)
        if tok.is_keyword("true"):
            self.advance()
            return self._spanned(Const(True), tok)
        if tok.is_keyword("false"):
            self.advance()
            return self._spanned(Const(False), tok)
        if tok.kind == T.LPAREN:
            self.advance()
            expr = self._parse_expr()
            self.expect(T.RPAREN)
            return expr
        if tok.kind == T.IDENT:
            self.advance()
            if self.check(T.DOT) and self.peek(1).kind == T.IDENT:
                self.advance()
                attr = self.expect_ident("attribute name")
                return self._spanned(ColRef(tok.value, attr), tok)
            return self._spanned(ColRef(None, tok.value), tok)
        raise self.error(f"expected an expression, got {tok.kind} {tok.value!r}")


def parse_script(text: str) -> Script:
    """Parse a complete GraQL script."""
    return Parser(tokenize(text)).parse_script()


def parse_statement(text: str) -> Statement:
    """Parse exactly one GraQL statement."""
    parser = Parser(tokenize(text))
    stmt = parser.parse_statement()
    tok = parser.peek()
    if tok.kind != T.EOF:
        raise ParseError(
            f"trailing input after statement: {tok.value!r}", tok.line, tok.column
        )
    return stmt


def parse_expression(text: str) -> Expr:
    """Parse a standalone GraQL expression (tests / tooling)."""
    parser = Parser(tokenize(text))
    expr = parser._parse_expr()
    tok = parser.peek()
    if tok.kind != T.EOF:
        raise ParseError(
            f"trailing input after expression: {tok.value!r}", tok.line, tok.column
        )
    return expr
