"""Static analysis subsystem: diagnostics, lint passes, IR verification.

See docs/ANALYSIS.md for the code registry and the ``graql check``
usage contract.
"""

from repro.analysis.analyzer import AnalysisResult, Analyzer
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    classify_error,
    diagnostic_from_error,
)
from repro.analysis.verifier import IRVerifier, verify_statement_ir
from repro.graql.tokens import SourceSpan

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "CODES",
    "Diagnostic",
    "IRVerifier",
    "SourceSpan",
    "classify_error",
    "diagnostic_from_error",
    "verify_statement_ir",
]
