"""IR verification: validate compiled statement bytes before shipping.

The front-end compiles each statement to binary IR and ships exactly
those bytes to the backend cluster (paper Section III).  A corrupted or
hand-crafted stream must be rejected *before* submission — the backend
decodes blindly.  :class:`IRVerifier` walks the byte stream with the same
grammar as :func:`repro.graql.ir.decode_statement` but validates every
field as it goes:

* header: magic and version;
* structure: known tags, in-bounds string lengths, no trailing bytes;
* operand arity: binary operators have two non-null operands, ``not`` /
  ``is null`` have one, regex groups have a sane op and count and at
  least one (edge, vertex) pair, path atoms alternate vertex/edge steps
  within their declared step count;
* vocabulary: directions, label kinds, aggregate functions, into kinds
  and column type names come from their closed sets;
* resolution (when a catalog is given): vertex/edge/table names resolve
  against the catalog or a label defined earlier in the same pattern.

Failures raise :class:`~repro.errors.IRError` carrying the byte offset
and the IR construct being verified.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog import Catalog
from repro.dtypes import parse_type_name
from repro.errors import IRError
from repro.graql import ir as _ir
from repro.storage.relops import AGGREGATE_FUNCS

_BOOL_OPS = frozenset({"and", "or"})
_CMP_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_ARITH_OPS = frozenset({"+", "-", "*", "/"})
_BINOPS = _BOOL_OPS | _CMP_OPS | _ARITH_OPS

_DIRECTIONS = frozenset({"out", "in"})
_LABEL_KINDS = frozenset({"def", "foreach"})
_REGEX_OPS = frozenset({"star", "plus", "count"})
_INTO_KINDS = frozenset({"table", "subgraph"})

_STMT_TAGS = {
    _ir._T_CREATE_TABLE: "create table",
    _ir._T_CREATE_VERTEX: "create vertex",
    _ir._T_CREATE_EDGE: "create edge",
    _ir._T_INGEST: "ingest",
    _ir._T_GRAPH_SELECT: "graph select",
    _ir._T_TABLE_SELECT: "table select",
    _ir._T_CREATE_INDEX: "create index",
    _ir._T_DROP_INDEX: "drop index",
}

#: upper bound on any single collection count in a statement's IR; real
#: statements are tiny, so a huge count means a corrupted length field
MAX_COUNT = 1_000_000


class IRVerifier:
    """Validates one statement's IR bytes (see module docstring)."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    # primitives (tracked offsets; every read is bounds-checked)
    # ------------------------------------------------------------------
    def _fail(self, message: str, where: str) -> None:
        raise IRError(message, offset=self.pos, instruction=where)

    def _take(self, n: int, where: str) -> bytes:
        if self.pos + n > len(self.data):
            self._fail(f"truncated stream (need {n} bytes)", where)
        raw = self.data[self.pos : self.pos + n]
        self.pos += n
        return raw

    def _u8(self, where: str) -> int:
        return self._take(1, where)[0]

    def _u32(self, where: str) -> int:
        raw = self._take(4, where)
        return int.from_bytes(raw, "little")

    def _i64(self, where: str) -> int:
        raw = self._take(8, where)
        return int.from_bytes(raw, "little", signed=True)

    def _f64(self, where: str) -> None:
        self._take(8, where)

    def _count(self, where: str) -> int:
        start = self.pos
        n = self._u32(where)
        if n > MAX_COUNT:
            self.pos = start
            self._fail(f"implausible element count {n}", where)
        return n

    def _string(self, where: str) -> str:
        start = self.pos
        n = self._u32(where)
        if self.pos + n > len(self.data):
            self.pos = start
            self._fail(f"string length {n} exceeds stream", where)
        raw = self._take(n, where)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            self.pos = start
            self._fail("string is not valid UTF-8", where)
            raise AssertionError("unreachable")

    def _opt_string(self, where: str) -> Optional[str]:
        flag = self._u8(where)
        if flag not in (0, 1):
            self.pos -= 1
            self._fail(f"optional-flag byte must be 0/1, got {flag}", where)
        return self._string(where) if flag else None

    def _flag(self, where: str) -> bool:
        v = self._u8(where)
        if v not in (0, 1):
            self.pos -= 1
            self._fail(f"flag byte must be 0/1, got {v}", where)
        return bool(v)

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def verify(self, data: bytes) -> None:
        """Verify one encoded statement; raises :class:`IRError`."""
        self.data = data
        self.pos = 0
        #: labels defined so far in the current pattern (vertex + edge)
        self._labels: set[str] = set()
        if self._take(4, "header") != _ir.MAGIC:
            self.pos = 0
            self._fail("bad IR magic", "header")
        version = self._u8("header")
        if version != _ir.VERSION:
            self.pos -= 1
            self._fail(f"unsupported IR version {version}", "header")
        self._statement()
        if self.pos != len(self.data):
            self._fail(
                f"{len(self.data) - self.pos} trailing bytes after statement",
                "statement",
            )

    def _statement(self) -> None:
        tag = self._u8("statement")
        where = _STMT_TAGS.get(tag)
        if where is None:
            self.pos -= 1
            self._fail(f"unknown statement tag 0x{tag:02x}", "statement")
        if tag == _ir._T_CREATE_TABLE:
            self._string(where)
            ncols = self._count(where)
            if ncols == 0:
                self._fail("table has no columns", where)
            for _ in range(ncols):
                self._string(where)
                tname = self._string(where)
                try:
                    parse_type_name(tname)
                except ValueError:
                    self._fail(f"unknown column type {tname!r}", where)
        elif tag == _ir._T_CREATE_VERTEX:
            self._string(where)
            nkeys = self._count(where)
            if nkeys == 0:
                self._fail("vertex has no key columns", where)
            for _ in range(nkeys):
                self._string(where)
            table = self._string(where)
            self._resolve("table", table, where)
            self._expr(where, allow_none=True)
        elif tag == _ir._T_CREATE_EDGE:
            self._string(where)
            src = self._string(where)
            self._opt_string(where)
            tgt = self._string(where)
            self._opt_string(where)
            self._resolve("vertex", src, where)
            self._resolve("vertex", tgt, where)
            for _ in range(self._count(where)):
                self._resolve("table", self._string(where), where)
            self._expr(where, allow_none=True)
        elif tag == _ir._T_INGEST:
            self._resolve("table", self._string(where), where)
            self._string(where)
        elif tag == _ir._T_CREATE_INDEX:
            self._string(where)  # index name
            target = self._string(where)
            if self.catalog is not None and not (
                self.catalog.is_vertex(target) or self.catalog.is_edge(target)
            ):
                self._fail(f"unknown vertex or edge type {target!r}", where)
            nattrs = self._count(where)
            if nattrs == 0:
                self._fail("index has no attributes", where)
            for _ in range(nattrs):
                self._string(where)
        elif tag == _ir._T_DROP_INDEX:
            name = self._string(where)
            if self.catalog is not None and not self.catalog.is_index(name):
                self._fail(f"unknown index {name!r}", where)
        elif tag == _ir._T_GRAPH_SELECT:
            self._items(where)
            self._pattern(where)
            self._into(where)
        else:  # table select
            self._items(where)
            self._string(where)  # source may be a derived result table
            self._i64(where)  # top (-1 = none)
            self._flag(where)  # distinct
            self._expr(where, allow_none=True)
            for _ in range(self._count(where)):
                self._string(where)  # group by
            for _ in range(self._count(where)):
                self._string(where)  # order-by column
                self._flag(where)  # ascending
            self._into(where)

    def _resolve(self, kind: str, name: str, where: str) -> None:
        """Check a name against the catalog (no-op without one)."""
        if self.catalog is None:
            return
        if kind == "table" and not self.catalog.is_table(name):
            self._fail(f"unknown table {name!r}", where)
        if kind == "vertex" and not self.catalog.is_vertex(name):
            if name not in self._labels:
                self._fail(f"unknown vertex type {name!r}", where)
        if kind == "edge" and not self.catalog.is_edge(name):
            if name not in self._labels:
                self._fail(f"unknown edge type {name!r}", where)

    # -- expressions ---------------------------------------------------
    def _expr(self, where: str, allow_none: bool = False) -> None:
        tag = self._u8(where)
        if tag == _ir._T_NONE:
            if not allow_none:
                self.pos -= 1
                self._fail("missing operand (null expression)", where)
            return
        if tag == _ir._T_CONST_INT:
            self._i64(where)
        elif tag == _ir._T_CONST_FLOAT:
            self._f64(where)
        elif tag == _ir._T_CONST_STR:
            self._string(where)
        elif tag == _ir._T_CONST_BOOL:
            self._flag(where)
        elif tag == _ir._T_PARAM:
            self._string(where)
        elif tag == _ir._T_COLREF:
            self._opt_string(where)
            self._string(where)
        elif tag == _ir._T_BINOP:
            op = self._string(where)
            if op not in _BINOPS:
                self._fail(f"unknown binary operator {op!r}", "binop")
            # both operands are mandatory: arity check
            self._expr("binop operand", allow_none=False)
            self._expr("binop operand", allow_none=False)
        elif tag == _ir._T_NOT:
            self._expr("not operand", allow_none=False)
        elif tag == _ir._T_ISNULL:
            self._flag(where)
            self._expr("is-null operand", allow_none=False)
        else:
            self.pos -= 1
            self._fail(f"unknown expression tag 0x{tag:02x}", where)

    # -- patterns ------------------------------------------------------
    def _label(self, where: str) -> None:
        if not self._flag(where):
            return
        kind = self._string(where)
        if kind not in _LABEL_KINDS:
            self._fail(f"unknown label kind {kind!r}", where)
        self._labels.add(self._string(where))

    def _vstep(self) -> None:
        tag = self._u8("vertex step")
        if tag != _ir._T_VSTEP:
            self.pos -= 1
            self._fail(f"expected vertex step, got tag 0x{tag:02x}", "vertex step")
        name = self._opt_string("vertex step")
        is_variant = self._flag("vertex step")
        if name is None and not is_variant:
            self._fail("non-variant vertex step without a name", "vertex step")
        if name is not None and not is_variant:
            self._resolve("vertex", name, "vertex step")
        self._expr("vertex step condition", allow_none=True)
        self._label("vertex step")
        seed = self._opt_string("vertex step")
        if seed is not None and self.catalog is not None:
            if seed not in self.catalog.subgraphs:
                self._fail(f"unknown seed subgraph {seed!r}", "vertex step")

    def _estep(self) -> None:
        tag = self._u8("edge step")
        if tag != _ir._T_ESTEP:
            self.pos -= 1
            self._fail(f"expected edge step, got tag 0x{tag:02x}", "edge step")
        name = self._opt_string("edge step")
        direction = self._string("edge step")
        if direction not in _DIRECTIONS:
            self._fail(f"invalid edge direction {direction!r}", "edge step")
        is_variant = self._flag("edge step")
        if name is None and not is_variant:
            self._fail("non-variant edge step without a name", "edge step")
        if name is not None and not is_variant:
            self._resolve("edge", name, "edge step")
        self._expr("edge step condition", allow_none=True)
        self._label("edge step")

    def _pattern(self, where: str) -> None:
        tag = self._u8(where)
        if tag == _ir._T_PATH_ATOM:
            nsteps = self._count("path atom")
            if nsteps == 0:
                self._fail("empty path atom", "path atom")
            expect_vertex = True
            for i in range(nsteps):
                if self.pos >= len(self.data):
                    self._fail(
                        f"path atom declares {nsteps} steps but stream "
                        f"ends after {i}",
                        "path atom",
                    )
                peek = self.data[self.pos]
                if peek == _ir._T_VSTEP:
                    if not expect_vertex:
                        self._fail(
                            "two consecutive vertex steps", "path atom"
                        )
                    self._vstep()
                    expect_vertex = False
                elif peek == _ir._T_ESTEP:
                    if expect_vertex:
                        self._fail(
                            "edge step where a vertex step is required",
                            "path atom",
                        )
                    self._estep()
                    expect_vertex = True
                elif peek == _ir._T_REGEX:
                    if expect_vertex:
                        self._fail(
                            "regex group where a vertex step is required",
                            "path atom",
                        )
                    self._regex()
                    expect_vertex = True
                else:
                    self._fail(
                        f"unexpected step tag 0x{peek:02x}", "path atom"
                    )
            if expect_vertex:
                self._fail("path atom must end with a vertex step", "path atom")
        elif tag == _ir._T_PATH_AND or tag == _ir._T_PATH_OR:
            self._pattern(where)
            self._pattern(where)
        else:
            self.pos -= 1
            self._fail(f"unknown pattern tag 0x{tag:02x}", where)

    def _regex(self) -> None:
        self._u8("regex group")  # the _T_REGEX tag itself
        op = self._string("regex group")
        if op not in _REGEX_OPS:
            self._fail(f"unknown regex op {op!r}", "regex group")
        count = self._i64("regex group")
        if op == "count" and count < 0:
            self._fail(f"regex '{{n}}' with negative count {count}", "regex group")
        if op != "count" and count != -1:
            self._fail(
                f"regex {op!r} must not carry a count (got {count})",
                "regex group",
            )
        npairs = self._count("regex group")
        if npairs == 0:
            self._fail("regex group has no (edge, vertex) pairs", "regex group")
        for _ in range(npairs):
            self._estep()
            self._vstep()

    # -- items / into --------------------------------------------------
    def _items(self, where: str) -> None:
        n = self._count("select items")
        if n == 0:
            self._fail("empty select list", "select items")
        for _ in range(n):
            tag = self._u8("select items")
            if tag == _ir._T_STAR_ITEM:
                continue
            if tag == _ir._T_ATTR_ITEM:
                self._opt_string("select items")
                self._string("select items")
                self._opt_string("select items")
            elif tag == _ir._T_STEP_ITEM:
                self._string("select items")
            elif tag == _ir._T_AGG_ITEM:
                func = self._string("select items")
                if func not in AGGREGATE_FUNCS:
                    self._fail(f"unknown aggregate {func!r}", "select items")
                self._opt_string("select items")
                self._opt_string("select items")
            else:
                self.pos -= 1
                self._fail(f"unknown item tag 0x{tag:02x}", "select items")

    def _into(self, where: str) -> None:
        if not self._flag("into clause"):
            return
        kind = self._string("into clause")
        if kind not in _INTO_KINDS:
            self._fail(f"unknown into kind {kind!r}", "into clause")
        self._string("into clause")


def verify_statement_ir(data: bytes, catalog: Optional[Catalog] = None) -> None:
    """Convenience wrapper: verify one statement's IR bytes."""
    IRVerifier(catalog).verify(data)
