"""The multi-pass GraQL semantic analyzer (``graql check``).

Runs the full front-end pipeline in *collect-all* mode: lex + parse,
parameter substitution, catalog typechecking (accumulating every error
instead of failing on the first), the lint passes of
:mod:`repro.analysis.passes`, and finally IR verification of every
statement that checked clean.  The result is a flat, source-ordered list
of :class:`~repro.analysis.diagnostics.Diagnostic` with stable codes and
``line:col`` positions.

Entry points: :class:`Analyzer` here, ``Database.analyze`` for sessions,
``graql check`` / ``\\check`` for the CLI and REPL.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.analysis.diagnostics import Diagnostic, diagnostic_from_error
from repro.analysis.passes import ALL_PASSES, deprecated_kwargs_pass
from repro.analysis.verifier import IRVerifier
from repro.catalog import Catalog
from repro.errors import GraQLError, IRError
from repro.graql.ast import Script, span_of
from repro.graql.ir import encode_statement
from repro.graql.params import substitute_script
from repro.graql.parser import parse_script
from repro.graql.typecheck import check_script_collect


class AnalysisResult:
    """Everything one analyzer run found, plus rendering helpers."""

    __slots__ = ("diagnostics", "script", "checked")

    def __init__(
        self,
        diagnostics: list[Diagnostic],
        script: Optional[Script] = None,
        checked: Optional[list] = None,
    ) -> None:
        self.diagnostics = diagnostics
        self.script = script
        self.checked = checked

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        """True when the script has no errors (warnings allowed)."""
        return not self.errors

    def exit_code(self, strict: bool = False) -> int:
        """The ``graql check`` exit-code contract: 0 clean, 1 warnings
        under ``--strict``, 2 errors."""
        if self.errors:
            return 2
        if strict and self.warnings:
            return 1
        return 0

    def render_text(self, source_name: str = "<script>") -> str:
        lines = [f"{source_name}: {d.render()}" for d in self.diagnostics]
        ne, nw = len(self.errors), len(self.warnings)
        lines.append(
            f"{source_name}: {ne} error(s), {nw} warning(s)"
            if self.diagnostics
            else f"{source_name}: clean"
        )
        return "\n".join(lines)

    def to_json(self, source_name: str = "<script>") -> str:
        return json.dumps(
            {
                "source": source_name,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )

    def __repr__(self) -> str:
        return (
            f"AnalysisResult(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)})"
        )


def _sort_key(d: Diagnostic):
    stmt = d.statement_index if d.statement_index is not None else 1 << 30
    line = d.span.line if d.span is not None else 1 << 30
    col = d.span.column if d.span is not None else 0
    return (stmt, line, col, d.severity != "error", d.code)


class Analyzer:
    """Multi-pass static analyzer over a catalog snapshot.

    ``verify_ir=False`` skips the IR round-trip (the benchmark harness
    uses it to isolate pass overhead)."""

    def __init__(self, catalog: Catalog, verify_ir: bool = True) -> None:
        self.catalog = catalog
        self.verify_ir = verify_ir

    # ------------------------------------------------------------------
    def analyze(
        self,
        source: str,
        params: Optional[Mapping[str, Any]] = None,
        deprecated_kwargs: Optional[dict] = None,
    ) -> AnalysisResult:
        """Analyze a GraQL script; never raises for script defects."""
        diags: list[Diagnostic] = list(
            deprecated_kwargs_pass(deprecated_kwargs or {})
        )
        try:
            script = parse_script(source)
        except GraQLError as e:
            diags.append(diagnostic_from_error(e))
            return AnalysisResult(diags)
        if params:
            try:
                script = substitute_script(script, params)
            except GraQLError as e:
                diags.append(diagnostic_from_error(e))
                return AnalysisResult(diags, script)
        return self.analyze_script(script, extra=diags)

    def analyze_script(
        self, script: Script, extra: Optional[list[Diagnostic]] = None
    ) -> AnalysisResult:
        """Analyze an already-parsed script."""
        diags: list[Diagnostic] = list(extra or [])

        # collect-all typechecking: every error, not just the first;
        # the scratch catalog carries the script's own DDL so later
        # statements' names resolve during IR verification
        checked, errors, scratch = check_script_collect(script, self.catalog)
        for err in errors:
            diags.append(
                diagnostic_from_error(
                    err, statement_index=getattr(err, "statement_index", None)
                )
            )

        # lint passes (warnings only; skip nothing — passes are
        # defensive about partially-resolved statements)
        for pass_fn in ALL_PASSES:
            diags.extend(
                pass_fn(script, catalog=self.catalog, checked=checked)
            )

        # IR verification for statements that checked clean
        if self.verify_ir:
            clean = {
                i
                for i, r in enumerate(checked)
                if r is not None
            }
            erroring = {
                d.statement_index for d in diags if d.is_error
            }
            for i in sorted(clean - erroring):
                stmt = script.statements[i]
                try:
                    IRVerifier(scratch).verify(encode_statement(stmt))
                except IRError as e:
                    d = diagnostic_from_error(e, statement_index=i)
                    d.span = d.span or span_of(stmt)
                    diags.append(d)
        diags.sort(key=_sort_key)
        return AnalysisResult(diags, script, checked)
