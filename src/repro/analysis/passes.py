"""Lint passes of the GraQL semantic analyzer.

Each pass takes the parsed script (plus, where useful, the collect-mode
typecheck results and the catalog) and returns warnings — ``GQW1xx``
diagnostics for statements that will *execute* but are probably wrong:
predicates that can never hold, labels nothing reads, results that get
overwritten unread, and traversals the catalog statistics say will blow
up.  Passes never raise; a statement too broken to lint is skipped (its
errors were already collected by the typechecker).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import Diagnostic
from repro.catalog import Catalog
from repro.errors import GraQLError
from repro.graql.ast import (
    AttrItem,
    CreateEdge,
    CreateVertex,
    EdgeStep,
    GraphSelect,
    Ingest,
    PathAtom,
    RegexGroup,
    Script,
    StepItem,
    TableSelect,
    VertexStep,
    span_of,
)
from repro.graql.typecheck import CheckedGraphSelect, RRegex, RVertexStep
from repro.storage.expr import (
    COMPARISON_OPS,
    BinOp,
    ColRef,
    Const,
    col_refs,
    const_fold,
    predicate_feasibility,
)

#: a variant ``[ ]`` step still matching more than this many vertex types
#: after narrowing gets a GQW131
VARIANT_FANOUT_THRESHOLD = 3

#: unbounded regex whose per-unrolling frontier growth exceeds this gets
#: a GQW130 (>1 means each unrolling visits more vertices than the last)
EXPANSION_THRESHOLD = 1.5


def _statement_conditions(stmt) -> list:
    """All condition expressions of a statement, with a best-effort span."""
    conds = []
    if isinstance(stmt, (CreateVertex, CreateEdge, TableSelect)):
        if stmt.where is not None:
            conds.append(stmt.where)
    elif isinstance(stmt, GraphSelect):
        def walk(node):
            if isinstance(node, PathAtom):
                for s in node.steps:
                    if isinstance(s, (VertexStep, EdgeStep)):
                        if s.cond is not None:
                            conds.append(s.cond)
                    elif isinstance(s, RegexGroup):
                        for e, v in s.pairs:
                            if e.cond is not None:
                                conds.append(e.cond)
                            if v.cond is not None:
                                conds.append(v.cond)
            else:
                walk(node.left)
                walk(node.right)

        walk(stmt.pattern)
    return conds


def _trivially_satisfiable(cond) -> bool:
    """A single column-vs-constant (or column-vs-column) comparison can
    never fold to a constant nor have an empty interval, so the fold and
    interval machinery would find nothing — skip it.  This is the shape
    of almost every real-world step condition."""
    if not (isinstance(cond, BinOp) and cond.op in COMPARISON_OPS):
        return False
    if isinstance(cond.left, Const) and isinstance(cond.right, Const):
        return False
    return isinstance(cond.left, (ColRef, Const)) and isinstance(
        cond.right, (ColRef, Const)
    )


def predicate_pass(script: Script, **_kw) -> list[Diagnostic]:
    """GQW101/GQW102: constant-folding + interval analysis on conditions.

    A condition that folds to false or whose per-column intervals are
    empty can never hold (the step matches nothing); one that folds to
    true filters nothing.  Both are almost certainly author mistakes.
    """
    out: list[Diagnostic] = []
    for i, stmt in enumerate(script.statements):
        for cond in _statement_conditions(stmt):
            if _trivially_satisfiable(cond):
                continue
            span = span_of(cond) or span_of(stmt)
            feasible = predicate_feasibility(cond)
            if feasible is False:
                out.append(
                    Diagnostic(
                        "GQW101",
                        "condition is unsatisfiable — it can never hold",
                        span,
                        statement_index=i,
                    )
                )
                continue
            folded = const_fold(cond)
            # comparisons fold to numpy-ish truthy scalars, not bool True
            if isinstance(folded, Const) and bool(folded.value):
                out.append(
                    Diagnostic(
                        "GQW102",
                        "condition is always true — it filters nothing",
                        span,
                        statement_index=i,
                    )
                )
    return out


def _label_defs_and_uses(stmt: GraphSelect):
    """(defined labels with span, names used anywhere in the statement)."""
    defs: list[tuple[str, object]] = []
    uses: set[str] = set()
    conds: list = []  # qualifier extraction deferred until a def is seen

    def walk(node):
        if isinstance(node, PathAtom):
            for s in node.steps:
                if isinstance(s, RegexGroup):
                    pairs = s.pairs
                    steps = [x for pair in pairs for x in pair]
                else:
                    steps = [s]
                for step in steps:
                    if step.label is not None:
                        defs.append((step.label.name, span_of(step) or span_of(stmt)))
                    if isinstance(step, VertexStep) and step.name is not None:
                        uses.add(step.name)  # may re-match an earlier label
                    if isinstance(step, EdgeStep) and step.name is not None:
                        uses.add(step.name)
                    if step.cond is not None:
                        conds.append(step.cond)
        else:
            walk(node.left)
            walk(node.right)

    walk(stmt.pattern)
    if not defs:
        return defs, uses  # no labels: the condition walks would be wasted
    for cond in conds:
        for ref in col_refs(cond):
            if ref.qualifier is not None:
                uses.add(ref.qualifier)
    for item in stmt.items:
        if isinstance(item, StepItem):
            uses.add(item.name)
        elif isinstance(item, AttrItem) and item.ref.qualifier is not None:
            uses.add(item.ref.qualifier)
    return defs, uses


def label_pass(script: Script, **_kw) -> list[Diagnostic]:
    """GQW110 unused labels / GQW111 labels shadowing earlier statements.

    A ``def``/``foreach`` label exists to be referenced — by a later step
    re-matching it, a cross-step condition, or the select list.  A label
    nothing references is noise (or a typo'd reference elsewhere).  Labels
    are scoped per statement, so reusing a name across statements is
    legal but shadows the earlier meaning for human readers.
    """
    out: list[Diagnostic] = []
    seen_script_labels: dict[str, int] = {}
    for i, stmt in enumerate(script.statements):
        if not isinstance(stmt, GraphSelect):
            continue
        defs, uses = _label_defs_and_uses(stmt)
        for name, span in defs:
            if name not in uses:
                out.append(
                    Diagnostic(
                        "GQW110",
                        f"label {name!r} is defined but never used",
                        span,
                        statement_index=i,
                    )
                )
            if name in seen_script_labels:
                out.append(
                    Diagnostic(
                        "GQW111",
                        f"label {name!r} shadows a label of statement "
                        f"{seen_script_labels[name] + 1}",
                        span,
                        statement_index=i,
                    )
                )
        for name, _span in defs:
            seen_script_labels.setdefault(name, i)
    return out


def dead_statement_pass(
    script: Script, catalog: Optional[Catalog] = None, **_kw
) -> list[Diagnostic]:
    """GQW120: a statement whose every written object is overwritten by a
    later statement before anything reads it.

    Uses the scheduler's dependence analysis (Section III-B1 reads/writes
    sets), so the notion of "reads" matches exactly what execution
    ordering uses — including transitive view/table dependencies.
    """
    # cheap syntactic pre-filter: a result can only be dead if some
    # object is written twice, so skip the scheduler's dependence
    # analysis (the expensive part) for the common all-distinct case
    targets = []
    for s in script.statements:
        if isinstance(s, (GraphSelect, TableSelect)) and s.into is not None:
            targets.append((s.into.kind, s.into.name))
        elif isinstance(s, Ingest):
            targets.append(("table", s.table))
    if len(targets) == len(set(targets)):
        return []

    from repro.engine.scheduler import statement_effects

    try:
        effects = statement_effects(script, catalog)
    except GraQLError:
        return []  # a broken statement already produced errors
    out: list[Diagnostic] = []
    n = len(effects)
    for i, (_reads, writes) in enumerate(effects):
        stmt = script.statements[i]
        # only results (into table/subgraph) can be dead; DDL and ingest
        # build durable objects, selects without 'into' print to the user
        if not isinstance(stmt, (GraphSelect, TableSelect)) or stmt.into is None:
            continue
        if not writes:
            continue
        all_clobbered = True
        for obj in writes:
            clobbered = False
            for j in range(i + 1, n):
                if obj in effects[j][0]:  # read first: live
                    break
                if obj in effects[j][1]:  # overwritten unread: dead
                    clobbered = True
                    break
            if not clobbered:
                all_clobbered = False
                break
        if all_clobbered:
            names = ", ".join(sorted(f"{k} {v!r}" for k, v in writes))
            out.append(
                Diagnostic(
                    "GQW120",
                    f"statement {i + 1} is dead: {names} "
                    f"overwritten before any statement reads it",
                    span_of(stmt),
                    statement_index=i,
                )
            )
    return out


def blowup_pass(
    script: Script,
    catalog: Optional[Catalog] = None,
    checked: Optional[list] = None,
    **_kw,
) -> list[Diagnostic]:
    """GQW130/GQW131: catalog-stats-driven traversal blowup warnings.

    Works on the *resolved* pattern (typed candidate sets after neighbor
    narrowing) so the fanout estimates use the same statistics the
    planner does: ``DegreeStats.expansion_factor`` per edge type and
    per-type instance counts for variant steps.
    """
    if catalog is None or checked is None:
        return []
    out: list[Diagnostic] = []
    for i, result in enumerate(checked):
        if not isinstance(result, CheckedGraphSelect):
            continue
        stmt = script.statements[i]
        span = span_of(stmt)
        for atom in result.pattern.atoms():
            for s in atom.steps:
                if isinstance(s, RRegex) and s.op in ("star", "plus"):
                    # per-unrolling growth = product over the group's edge
                    # steps; variant edges take the worst candidate
                    growth = 1.0
                    known = False
                    for e, _v in s.pairs:
                        factors = [
                            catalog.edges[name].degree_stats.expansion_factor(
                                e.direction == "out"
                            )
                            for name in e.names
                            if name in catalog.edges
                            and catalog.edges[name].num_edges > 0
                        ]
                        if factors:
                            known = True
                            growth *= max(factors)
                    if known and growth > EXPANSION_THRESHOLD:
                        out.append(
                            Diagnostic(
                                "GQW130",
                                f"unbounded '{'*' if s.op == 'star' else '+'}' "
                                f"repetition expands the frontier ~{growth:.1f}x "
                                f"per unrolling",
                                span,
                                statement_index=i,
                            )
                        )
                elif isinstance(s, RVertexStep) and s.is_variant:
                    if len(s.types) > VARIANT_FANOUT_THRESHOLD:
                        out.append(
                            Diagnostic(
                                "GQW131",
                                f"variant step '[ ]' still matches "
                                f"{len(s.types)} vertex types after narrowing",
                                span,
                                statement_index=i,
                            )
                        )
    return out


def deprecated_kwargs_pass(deprecated_kwargs: dict, **_kw) -> list[Diagnostic]:
    """GQW140: removed ``force_direction``/``force_strategy`` usage.

    These kwargs were deprecated in the PR 2 options migration and are
    now removed from every execution entry point (passing them raises
    ``TypeError``); the analyzer still reports each one handed to
    :meth:`~repro.engine.session.Database.analyze` so call sites can be
    linted before they break at runtime."""
    out = []
    for name, value in sorted((deprecated_kwargs or {}).items()):
        if value is None:
            continue
        out.append(
            Diagnostic(
                "GQW140",
                f"keyword argument {name!r} is deprecated",
            )
        )
    return out


#: the pass pipeline, in report order
ALL_PASSES = (predicate_pass, label_pass, dead_statement_pass, blowup_pass)
