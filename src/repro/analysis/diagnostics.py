"""Diagnostic model for the GraQL semantic analyzer.

Every problem the analyzer can report carries a *stable* code: ``GQL0xx``
for errors (the statement cannot execute) and ``GQW1xx`` for warnings
(the statement executes but is probably not what the author meant).
Codes are part of the tool contract — scripts and CI pipelines match on
them — so codes are never renumbered, only retired (docs/ANALYSIS.md).

Exceptions raised by the existing pipeline (lexer, parser, typechecker,
catalog, IR codec) are mapped onto codes by :func:`classify_error`, which
keys on stable message fragments; the raise sites themselves stay
untouched so fail-fast callers see identical behaviour.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import (
    CatalogError,
    GraQLError,
    IRError,
    LexError,
    ParseError,
    TypeCheckError,
)
from repro.graql.tokens import SourceSpan

ERROR = "error"
WARNING = "warning"

# ----------------------------------------------------------------------
# Code registry: code -> (severity, title, default fix-it hint or None)
# ----------------------------------------------------------------------

CODES: dict[str, tuple[str, str, Optional[str]]] = {
    # errors (GQL0xx)
    "GQL001": (ERROR, "syntax error", None),
    "GQL002": (ERROR, "invalid character", None),
    "GQL010": (ERROR, "unknown database object",
               "check the name against \\stats or Database.catalog"),
    "GQL011": (ERROR, "name already in use",
               "pick a fresh name; objects cannot be redefined"),
    "GQL012": (ERROR, "type mismatch", None),
    "GQL013": (ERROR, "unknown attribute or column",
               "check the declared schema of the table or view"),
    "GQL014": (ERROR, "unknown qualifier or step",
               "qualify with a step type name or a 'def'/'foreach' label"),
    "GQL015": (ERROR, "ambiguous reference",
               "label the intended step with 'def Name:'"),
    "GQL016": (ERROR, "invalid label definition",
               "labels must be unique and must not shadow database objects"),
    "GQL017": (ERROR, "ill-formed path pattern", None),
    "GQL018": (ERROR, "statically infeasible step",
               "no data can ever match; check edge endpoint types"),
    "GQL019": (ERROR, "invalid select item", None),
    "GQL020": (ERROR, "unsubstituted parameter",
               "bind it with --param Name=value or query(..., params={...})"),
    "GQL021": (ERROR, "aggregate misuse",
               "aggregate in a table select over a captured result table"),
    "GQL030": (ERROR, "invalid IR",
               "the compiled statement failed verification; recompile"),
    # warnings (GQW1xx)
    "GQW101": (WARNING, "unsatisfiable predicate",
               "the condition can never hold, so the step matches nothing"),
    "GQW102": (WARNING, "tautological predicate",
               "the condition always holds; drop it"),
    "GQW110": (WARNING, "unused label",
               "remove the label or reference it in a condition or select"),
    "GQW111": (WARNING, "label shadows earlier statement's label",
               "rename one of the labels to keep the script readable"),
    "GQW120": (WARNING, "dead statement",
               "its result is overwritten before anything reads it"),
    "GQW130": (WARNING, "unbounded traversal may blow up",
               "bound the repetition with {n} or add selective conditions"),
    "GQW131": (WARNING, "high-fanout variant step",
               "name the vertex type instead of using '[ ]'"),
    "GQW140": (WARNING, "deprecated keyword argument",
               "pass options=QueryOptions(...) instead of force_* kwargs"),
}


def severity_of(code: str) -> str:
    return CODES[code][0]


def title_of(code: str) -> str:
    return CODES[code][1]


def default_hint(code: str) -> Optional[str]:
    return CODES[code][2]


class Diagnostic:
    """One analyzer finding: code, severity, message, position, hint.

    The class is registry-parameterized so other analyzers can reuse the
    rendering/serialization machinery with their own code space: the
    engine self-analyzer (:mod:`repro.devlint`) subclasses this with its
    ``GDL0xx`` registry while keeping the exact render and JSON shape.
    """

    __slots__ = ("code", "severity", "message", "span", "hint", "statement_index")

    #: code -> (severity, title, default hint); subclasses override
    REGISTRY: dict[str, tuple[str, str, Optional[str]]] = CODES

    def __init__(
        self,
        code: str,
        message: str,
        span: Optional[SourceSpan] = None,
        hint: Optional[str] = None,
        statement_index: Optional[int] = None,
    ) -> None:
        registry = type(self).REGISTRY
        if code not in registry:
            raise ValueError(f"unregistered diagnostic code {code!r}")
        self.code = code
        self.severity = registry[code][0]
        self.message = message
        self.span = span
        self.hint = hint if hint is not None else registry[code][2]
        self.statement_index = statement_index

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    @property
    def location(self) -> str:
        return str(self.span) if self.span is not None else "-"

    def render(self) -> str:
        out = f"{self.location}: {self.severity}[{self.code}]: {self.message}"
        if self.hint:
            out += f"\n    help: {self.hint}"
        return out

    def to_dict(self) -> dict[str, Any]:
        # the key set is pinned (tests/analysis/test_json_schema.py):
        # "hint" is always present — null when the code carries none —
        # so JSON consumers can rely on a stable schema
        d: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "hint": self.hint,
        }
        if self.statement_index is not None:
            d["statement"] = self.statement_index
        return d

    def __repr__(self) -> str:
        return f"Diagnostic({self.code}, {self.location}, {self.message!r})"


# ----------------------------------------------------------------------
# Exception -> code classification
# ----------------------------------------------------------------------

#: ordered (message fragment, code) rules for TypeCheckError; first match
#: wins, so more specific fragments come first.  Fragments are stable
#: pieces of the raise-site messages in repro/graql/typecheck.py.
_TYPECHECK_RULES: list[tuple[str, str]] = [
    ("already in use", "GQL011"),
    ("unsubstituted parameters", "GQL020"),
    ("defined more than once", "GQL016"),
    ("shadows a database object", "GQL016"),
    ("foreach) labels on edge steps", "GQL016"),
    ("aggregates are not allowed in graph selects", "GQL021"),
    ("unknown aggregate", "GQL021"),
    ("(*) is not defined", "GQL021"),
    ("requires a numeric column", "GQL021"),
    ("must appear in group by", "GQL021"),
    ("combined with group by", "GQL021"),
    ("only valid in graph selects", "GQL019"),
    ("can only be selected", "GQL019"),
    ("cannot produce a subgraph", "GQL019"),
    ("must be qualified with a step", "GQL019"),
    ("ambiguous", "GQL015"),
    ("matches several", "GQL015"),
    ("unknown qualifier", "GQL014"),
    ("unknown step", "GQL014"),
    ("unknown relation", "GQL014"),
    ("no step with that type or label name", "GQL014"),
    ("unknown result subgraph", "GQL010"),
    ("unknown column", "GQL013"),
    ("no such column", "GQL013"),
    ("has no attribute", "GQL013"),
    ("has no column", "GQL013"),
    ("key column", "GQL013"),
    ("statically infeasible", "GQL018"),
    ("cannot leave a step", "GQL018"),
    ("cannot arrive at a step", "GQL018"),
    ("path query must", "GQL017"),
    ("'and' composition requires", "GQL017"),
    ("'or' composition unions", "GQL017"),
    ("unbounded path regular expressions", "GQL017"),
    ("not allowed on variant", "GQL017"),
    ("endpoints must be distinguishable", "GQL017"),
    ("condition is not boolean", "GQL012"),
    ("incompatible types", "GQL012"),
]


def classify_error(exc: GraQLError) -> str:
    """Map a pipeline exception onto its stable diagnostic code."""
    if exc.code is not None:
        return exc.code
    if isinstance(exc, LexError):
        return "GQL002"
    if isinstance(exc, ParseError):
        return "GQL001"
    if isinstance(exc, IRError):
        return "GQL030"
    if isinstance(exc, CatalogError):
        return "GQL010"
    if isinstance(exc, TypeCheckError):
        msg = str(exc)
        for fragment, code in _TYPECHECK_RULES:
            if fragment in msg:
                return code
        return "GQL012"
    return "GQL012"


def diagnostic_from_error(
    exc: GraQLError, statement_index: Optional[int] = None
) -> Diagnostic:
    """Wrap a pipeline exception as a :class:`Diagnostic`.

    Uses the position the typechecker attached via ``with_pos`` (or that
    lex/parse errors carry natively); messages keep their appended
    ``(line L, column C)`` suffix stripped since the span renders it.
    """
    code = classify_error(exc)
    line = getattr(exc, "line", 0) or 0
    column = getattr(exc, "column", 0) or 0
    span = SourceSpan(line, column) if line else None
    msg = str(exc)
    if line:
        suffix = f" (line {line}, column {column})"
        if msg.endswith(suffix):
            msg = msg[: -len(suffix)]
    return Diagnostic(code, msg, span, statement_index=statement_index)
