"""GraQL/GEMS reproduction — an attributed graph database with a
SQL-extension query language.

Reproduces *"GraQL: A Query Language for High-Performance Attributed
Graph Databases"* (Chavarría-Miranda et al., PNNL, IPPS 2016): the
table-backed attributed-graph data model, the full GraQL language (DDL,
path queries with labels / multi-path composition / type matching / path
regular expressions, the relational subset), the GEMS front-end
(catalog, static analysis, binary IR) and a simulated distributed
backend.

Quickstart::

    from repro import Database

    db = Database()
    db.execute('''
        create table People(id varchar(10), country varchar(10))
        create table Follows(src varchar(10), dst varchar(10))
        create vertex Person(id) from table People
        create edge follows with vertices (Person as A, Person as B)
        from table Follows
        where Follows.src = A.id and Follows.dst = B.id
    ''')
    db.ingest_rows("People", [("p1", "US"), ("p2", "DE")])
    db.ingest_rows("Follows", [("p1", "p2")])
    t = db.query(
        "select B.id from graph "
        "Person (country = 'US') --follows--> def B: Person ( ) "
        "into table T1"
    )

Observability (docs/OBSERVABILITY.md)::

    from repro import Database, QueryOptions

    db = Database()                       # ... schema + data as above ...
    # execution tuned through the typed options API
    results = db.execute(q, options=QueryOptions(direction="backward",
                                                 trace=True))
    prof = results[0].profile             # QueryProfile: stage timings,
    print(prof.render())                  # est-vs-actual cardinalities, ...
    print(db.explain(q, mode="analyze"))  # EXPLAIN ANALYZE text
    print(db.render_metrics())            # Prometheus exposition of
                                          # db.metrics (MetricsRegistry)

Return shapes: ``Database.execute`` returns ``list[StatementResult]``
(one per statement, every kind); ``Database.query`` unwraps to the last
``Table`` result and raises if there is none.

Client/server usage (docs/API.md) — connections, streaming cursors,
prepared statements, all safe to share a server across threads::

    from repro import Server, connect

    server = Server()
    conn = connect(server, user="admin")
    with conn.cursor() as cur:
        cur.execute("select name from People where age > %A%",
                    params={"A": 30})
        rows = cur.fetchmany(100)       # batched row production
    ps = conn.prepare("select name from People where age > %A%")
    ps.execute({"A": 30})               # parse/typecheck/IR paid once

Durability (docs/DURABILITY.md) — write-ahead logging, checkpoints and
crash recovery::

    from repro import Database

    with Database.open("./shop.db") as db:   # opening IS recovery
        db.execute("create table People(id varchar(10))")
        db.ingest_rows("People", [("p1",), ("p2",)])
    # every mutation above is in ./shop.db's WAL; a crash at any point
    # recovers to an exact prefix of the committed statements:
    with Database.open("./shop.db") as db:
        assert db.recovery.clean

Network serving (docs/NETWORK.md) — the same connection API over TCP;
``connect`` is transport-agnostic and dispatches on its target::

    from repro import Database, GraqlServer, connect

    server = GraqlServer(Database(), port=7687)
    server.start()                            # or: graql serve :7687 --db x.db
    conn = connect("graql://127.0.0.1:7687")  # TCP, binary wire protocol
    conn = connect("./shop.db")               # durable store, in-process
    conn = connect(Database())                # in-process engine
    # identical Connection/Cursor/PreparedStatement surface on all three
"""

from repro.analysis import AnalysisResult, Analyzer, Diagnostic, IRVerifier
from repro.durability import (
    DurableStore,
    RecoveryReport,
    StorageFaultInjector,
    VerifyReport,
    verify_store,
)
from repro.engine.introspect import (
    EdgeTypeInfo,
    IndexInfo,
    SchemaReport,
    TableInfo,
    VertexTypeInfo,
)
from repro.engine.session import Database
from repro.engine.server import Server, User
from repro.obs import MetricsRegistry, QueryOptions, QueryProfile, Tracer
from repro.query.executor import StatementKind, StatementResult
from repro.serve import (
    Connection,
    Cursor,
    DEFAULT_BATCH_ROWS,
    LocalConnection,
    PreparedStatement,
    connect,
)
from repro.storage.table import Row, Table
from repro.errors import (
    AccessError,
    CatalogError,
    ClosedError,
    ExecutionError,
    GraQLError,
    IngestError,
    IRError,
    LexError,
    ParseError,
    PlanError,
    ProtocolError,
    QueryTimeout,
    ServerBusy,
    TypeCheckError,
    WalError,
)
from repro.net import GraqlServer, RemoteConnection

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Server",
    "User",
    "connect",
    "Connection",
    "LocalConnection",
    "RemoteConnection",
    "GraqlServer",
    "Cursor",
    "PreparedStatement",
    "DEFAULT_BATCH_ROWS",
    "StatementKind",
    "StatementResult",
    "SchemaReport",
    "TableInfo",
    "VertexTypeInfo",
    "EdgeTypeInfo",
    "IndexInfo",
    "Row",
    "Table",
    "ServerBusy",
    "Analyzer",
    "AnalysisResult",
    "Diagnostic",
    "IRVerifier",
    "QueryOptions",
    "QueryProfile",
    "MetricsRegistry",
    "Tracer",
    "GraQLError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "CatalogError",
    "IngestError",
    "ExecutionError",
    "PlanError",
    "IRError",
    "AccessError",
    "WalError",
    "ClosedError",
    "ProtocolError",
    "QueryTimeout",
    "DurableStore",
    "RecoveryReport",
    "StorageFaultInjector",
    "VerifyReport",
    "verify_store",
    "__version__",
]
