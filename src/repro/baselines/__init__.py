"""Comparison baselines.

* :mod:`repro.baselines.triplestore` — an in-memory RDF-style triple
  store with SPARQL-like basic-graph-pattern evaluation.  This stands in
  for the *first-generation GEMS* system the paper's introduction
  motivates against: "our system only supported graph representations.
  We found that we lacked efficient ways to store fixed sets of
  attributes" — every fixed attribute becomes a triple and every query
  a chain of triple-pattern joins.
* :mod:`repro.baselines.nx_backend` — a brute-force subgraph matcher
  over a networkx multigraph.  Used as the correctness oracle for the
  property-based tests and as a naive baseline series in the benchmarks.
"""

from repro.baselines.nx_backend import NxOracle
from repro.baselines.triplestore import TriplePattern, TripleStore, Var

__all__ = ["TripleStore", "TriplePattern", "Var", "NxOracle"]
