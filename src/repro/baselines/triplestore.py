"""An RDF-style triple store with SPARQL-like BGP evaluation.

Models the paper's *previous* system ("RDF/SPARQL databases ... our
system only supported graph representations", Section I): all data —
structure *and* fixed attributes — lives in (subject, predicate, object)
triples, and queries are conjunctions of triple patterns joined on shared
variables.

The store keeps the three classic permutation indexes (SPO, POS, OSP) as
nested dicts, evaluates basic graph patterns by binding propagation with
a greedy smallest-first pattern order, and counts intermediate bindings.
The motivation benchmark compares it against the attributed-table engine
on the same Berlin queries: the triple store pays one join per attribute
access, which is precisely the overhead GraQL's design removes.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.graph.graphdb import GraphDB


class Var:
    """A query variable (?x in SPARQL syntax)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


class TriplePattern:
    """One (s, p, o) pattern; any position may be a Var or a constant."""

    __slots__ = ("s", "p", "o")

    def __init__(self, s: Any, p: Any, o: Any) -> None:
        self.s = s
        self.p = p
        self.o = o

    def variables(self) -> list[Var]:
        return [x for x in (self.s, self.p, self.o) if isinstance(x, Var)]

    def __repr__(self) -> str:
        return f"({self.s} {self.p} {self.o})"


class TripleStore:
    """In-memory triple store with SPO / POS / OSP indexes."""

    def __init__(self) -> None:
        self.spo: dict[Any, dict[Any, set]] = {}
        self.pos: dict[Any, dict[Any, set]] = {}
        self.osp: dict[Any, dict[Any, set]] = {}
        self.num_triples = 0
        #: joins statistics from the last query
        self.last_intermediate_bindings = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add(self, s: Any, p: Any, o: Any) -> None:
        self.spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self.pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self.osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self.num_triples += 1

    @classmethod
    def from_graphdb(cls, db: GraphDB) -> "TripleStore":
        """Triple-ize an attributed graph the way an RDF mapping would.

        Every vertex becomes an entity URI ``Type/vid``; every visible
        attribute becomes one triple per vertex; every edge becomes a
        ``Type --edgeName--> Type`` triple (edge attributes are reified
        as ``edge/eid`` entities when an associated table exists).
        """
        ts = cls()
        for tname, vt in db.vertex_types.items():
            schema = vt.attribute_schema()
            arrs = {c.name: vt.attribute_array(c.name)[0] for c in schema}
            for vid in range(vt.num_vertices):
                ent = f"{tname}/{vid}"
                ts.add(ent, "rdf:type", tname)
                for aname, arr in arrs.items():
                    v = arr[vid]
                    if v is not None:
                        ts.add(ent, f"{tname}.{aname}", v)
        for ename, et in db.edge_types.items():
            sname = et.source.name
            tname = et.target.name
            if et.assoc_table is None:
                for eid in range(et.num_edges):
                    ts.add(
                        f"{sname}/{et.src_vids[eid]}",
                        ename,
                        f"{tname}/{et.tgt_vids[eid]}",
                    )
            else:
                attrs = {
                    c.name: et.attribute_array(c.name)[0]
                    for c in et.attribute_schema()
                }
                for eid in range(et.num_edges):
                    node = f"{ename}/{eid}"
                    ts.add(f"{sname}/{et.src_vids[eid]}", ename, node)
                    ts.add(node, f"{ename}.target", f"{tname}/{et.tgt_vids[eid]}")
                    for aname, arr in attrs.items():
                        v = arr[eid]
                        if v is not None:
                            ts.add(node, f"{ename}.{aname}", v)
        return ts

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _match_one(self, pattern: TriplePattern, binding: dict[str, Any]) -> Iterable[dict[str, Any]]:
        def resolve(x):
            if isinstance(x, Var):
                return binding.get(x.name, x)
            return x

        s, p, o = resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)
        s_var = isinstance(s, Var)
        p_var = isinstance(p, Var)
        o_var = isinstance(o, Var)
        if not s_var and not p_var and not o_var:
            if o in self.spo.get(s, {}).get(p, ()):  # fully ground
                yield binding
            return
        if not s_var and not p_var:
            for obj in self.spo.get(s, {}).get(p, ()):
                yield {**binding, o.name: obj}
            return
        if not p_var and not o_var:
            for subj in self.pos.get(p, {}).get(o, ()):
                yield {**binding, s.name: subj}
            return
        if not s_var and not o_var:
            for pred in self.osp.get(o, {}).get(s, ()):
                yield {**binding, p.name: pred}
            return
        if not s_var:
            for pred, objs in self.spo.get(s, {}).items():
                if not p_var and pred != p:
                    continue
                for obj in objs:
                    nb = dict(binding)
                    if p_var:
                        nb[p.name] = pred
                    nb[o.name] = obj
                    yield nb
            return
        if not p_var:
            for obj, subjs in self.pos.get(p, {}).items():
                if not o_var and obj != o:
                    continue
                for subj in subjs:
                    nb = dict(binding)
                    nb[s.name] = subj
                    if o_var:
                        nb[o.name] = obj
                    yield nb
            return
        # fully unbound scan (rare)
        for subj, preds in self.spo.items():
            for pred, objs in preds.items():
                for obj in objs:
                    nb = dict(binding)
                    nb[s.name] = subj
                    if p_var:
                        nb[p.name] = pred
                    nb[o.name] = obj
                    yield nb

    def _pattern_cardinality(self, pattern: TriplePattern) -> int:
        """Rough result size used for greedy ordering."""
        s, p, o = pattern.s, pattern.p, pattern.o
        if not isinstance(p, Var):
            index = self.pos.get(p, {})
            if not isinstance(o, Var):
                return len(index.get(o, ()))
            return sum(len(v) for v in index.values())
        if not isinstance(s, Var):
            return sum(len(v) for v in self.spo.get(s, {}).values())
        return self.num_triples

    def query(
        self,
        patterns: list[TriplePattern],
        select: Optional[list[str]] = None,
        filters: Optional[list] = None,
    ) -> list[tuple]:
        """Evaluate a basic graph pattern; returns projected binding rows.

        *filters* are callables ``binding -> bool`` applied as soon as
        their variables are bound (checked lazily each round).
        """
        remaining = sorted(patterns, key=self._pattern_cardinality)
        bindings: list[dict[str, Any]] = [{}]
        self.last_intermediate_bindings = 0
        filters = list(filters or [])
        while remaining:
            # prefer a pattern sharing a bound variable (index-driven join)
            bound_vars = set(bindings[0].keys()) if bindings else set()
            pick = None
            for i, pat in enumerate(remaining):
                if any(v.name in bound_vars for v in pat.variables()):
                    pick = i
                    break
            if pick is None:
                pick = 0
            pattern = remaining.pop(pick)
            new_bindings: list[dict[str, Any]] = []
            for b in bindings:
                for nb in self._match_one(pattern, b):
                    new_bindings.append(nb)
            bindings = new_bindings
            self.last_intermediate_bindings += len(bindings)
            if not bindings:
                break
            # apply ready filters
            still = []
            for f in filters:
                try:
                    bindings = [b for b in bindings if f(b)]
                except KeyError:
                    still.append(f)  # variables not bound yet
            filters = still
        for f in filters:
            bindings = [b for b in bindings if _safe_filter(f, b)]
        if select is None:
            select = sorted({k for b in bindings for k in b})
        return [tuple(b.get(name) for name in select) for b in bindings]


def _safe_filter(f, binding) -> bool:
    try:
        return f(binding)
    except KeyError:
        return False
