"""Brute-force subgraph matching over networkx — the correctness oracle.

Builds a ``networkx.MultiDiGraph`` mirror of a
:class:`~repro.graph.graphdb.GraphDB` (nodes keyed ``(type, vid)``, edges
attributed with ``(etype, eid)``) and enumerates path matches by plain
DFS, evaluating step conditions per element.  Deliberately slow and
obviously correct: the property-based tests assert that the set-frontier
executor's per-step sets equal the union of these enumerated paths, and
the benchmark suite uses it as the naive baseline series.
"""

from __future__ import annotations

from typing import Iterator, Optional

import networkx as nx
import numpy as np

from repro.graph.graphdb import GraphDB
from repro.graql.ast import DIR_OUT, LABEL_FOREACH
from repro.graql.typecheck import RAtom, REdgeStep, RVertexStep
from repro.errors import ExecutionError


class NxOracle:
    """A networkx mirror of the database plus a brute-force matcher."""

    def __init__(self, db: GraphDB) -> None:
        self.db = db
        self.graph = nx.MultiDiGraph()
        for tname, vt in db.vertex_types.items():
            for vid in range(vt.num_vertices):
                self.graph.add_node((tname, vid))
        for ename, et in db.edge_types.items():
            for eid in range(et.num_edges):
                self.graph.add_edge(
                    (et.source.name, int(et.src_vids[eid])),
                    (et.target.name, int(et.tgt_vids[eid])),
                    key=(ename, eid),
                )

    # ------------------------------------------------------------------
    # Element-level condition evaluation (slow path, per vertex)
    # ------------------------------------------------------------------
    def _vertex_ok(self, step: RVertexStep, tname: str, vid: int) -> bool:
        if tname not in step.types:
            return False
        vt = self.db.vertex_type(tname)
        if step.seed is not None:
            seeds = self.db.subgraph(step.seed).vertex_ids(tname)
            if vid not in seeds:
                return False
        if step.cond is None:
            return True
        sel = vt.select(step.cond, np.asarray([vid], dtype=np.int64))
        return len(sel) == 1

    def _edge_ok(self, step: REdgeStep, ename: str, eid: int) -> bool:
        if ename not in step.names:
            return False
        if step.cond is None:
            return True
        et = self.db.edge_type(ename)
        sel = et.select(step.cond, np.asarray([eid], dtype=np.int64))
        return len(sel) == 1

    # ------------------------------------------------------------------
    # Path enumeration
    # ------------------------------------------------------------------
    def enumerate_paths(self, atom: RAtom) -> list[tuple]:
        """All matching paths of a (regex-free) atom.

        A path is a tuple alternating ``(type, vid)`` and ``(etype, eid)``
        entries, one per step.  ``foreach`` labels enforce same-instance
        equality.  ``def`` labels follow the paper's Eq. 6/7 prefix
        semantics: the label aliases V(q(i)), the set of instances with a
        matching path *prefix* up to the defining step — so downstream
        references test membership in that prefix-matched set (which the
        whole-query Eq. 5 cull then shrinks further).
        """
        steps = atom.steps
        for s in steps:
            if not isinstance(s, (RVertexStep, REdgeStep)):
                raise ExecutionError("oracle does not support path regexes")
        # compute each def label's prefix set in definition order
        label_sets: dict[str, set] = {}
        for i, s in enumerate(steps):
            if isinstance(s, RVertexStep) and s.label is not None:
                prefix = steps[: i + 1]
                prefix_paths = self._enumerate(prefix, dict(label_sets))
                label_sets[s.label.name] = {p[i] for p in prefix_paths}
        return list(self._enumerate(steps, label_sets))

    def _enumerate(self, steps, label_sets) -> Iterator[tuple]:
        first = steps[0]
        assert isinstance(first, RVertexStep)
        for tname in first.types:
            vt = self.db.vertex_type(tname)
            for vid in range(vt.num_vertices):
                if not self._vertex_ok(first, tname, vid):
                    continue
                node = (tname, vid)
                if not self._label_ok(first, node, label_sets, ()):
                    continue
                yield from self._extend(steps, 1, (node,), label_sets)

    def _extend(self, steps, i, path, label_sets) -> Iterator[tuple]:
        if i >= len(steps):
            yield path
            return
        estep = steps[i]
        vstep = steps[i + 1]
        cur = path[-1]
        if estep.direction == DIR_OUT:
            candidates = [
                (v, k) for _, v, k in self.graph.out_edges(cur, keys=True)
            ]
        else:
            candidates = [
                (u, k) for u, _, k in self.graph.in_edges(cur, keys=True)
            ]
        for node, (ename, eid) in candidates:
            if not self._edge_ok(estep, ename, eid):
                continue
            tname, vid = node
            if not self._vertex_ok(vstep, tname, vid):
                continue
            if not self._label_ok(vstep, node, label_sets, path):
                continue
            yield from self._extend(
                steps, i + 2, path + ((ename, eid), node), label_sets
            )

    def _label_ok(self, step: RVertexStep, node, label_sets, path) -> bool:
        if step.label_ref is None:
            return True
        kind, def_index = self._label_info(step.label_ref)
        if kind == LABEL_FOREACH:
            # same instance as the defining step *in this path*
            if def_index is not None and def_index < len(path):
                return path[def_index] == node
            return True
        sets = label_sets.get(step.label_ref)
        if sets is None:
            return True  # first fixpoint round: unconstrained
        return node in sets

    def _label_info(self, label: str):
        self._label_cache = getattr(self, "_label_cache", {})
        return self._label_cache.get(label, ("def", None))

    def prepare_labels(self, atom: RAtom) -> None:
        """Record label kinds/positions before enumeration."""
        self._label_cache = {}
        for i, s in enumerate(atom.steps):
            if isinstance(s, RVertexStep) and s.label is not None:
                self._label_cache[s.label.name] = (s.label.kind, i)

    # ------------------------------------------------------------------
    # Set-semantics view of the enumeration (for comparing with the
    # set-frontier executor)
    # ------------------------------------------------------------------
    def step_sets(self, atom: RAtom) -> tuple[dict[int, dict[str, set]], dict[int, dict[str, set]]]:
        """Per-step vertex/edge element sets across all full paths."""
        self.prepare_labels(atom)
        paths = self.enumerate_paths(atom)
        vsets: dict[int, dict[str, set]] = {}
        esets: dict[int, dict[str, set]] = {}
        for p in paths:
            for i, element in enumerate(p):
                name, ident = element
                if i % 2 == 0:  # vertex position
                    vsets.setdefault(i, {}).setdefault(name, set()).add(ident)
                else:
                    esets.setdefault(i, {}).setdefault(name, set()).add(ident)
        return vsets, esets

    def count_paths(self, atom: RAtom) -> int:
        self.prepare_labels(atom)
        return len(self.enumerate_paths(atom))
