"""The network serving layer: binary wire protocol, TCP server, client.

- :mod:`repro.net.frame` — length-prefixed, CRC-checksummed framing
  (the WAL's discipline, applied to a socket).
- :mod:`repro.net.protocol` — message codecs: results, options, and the
  stable wire-error taxonomy.
- :mod:`repro.net.server` — :class:`GraqlServer`, a thread-per-connection
  TCP server over the serving engine (admission control, idle reaping,
  graceful drain).
- :mod:`repro.net.client` — :class:`RemoteConnection`, the same
  ``Connection`` surface as the in-process transports, over TCP.

See docs/NETWORK.md for the protocol specification.
"""

from repro.net.frame import (
    FrameSocket,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
)
from repro.net.protocol import ERROR_CLASSES, decode_error, encode_error, error_code
from repro.net.client import (
    RemoteConnection,
    RemotePreparedStatement,
    parse_endpoints,
    parse_url,
    ping,
)
from repro.net.server import GraqlServer

__all__ = [
    "ERROR_CLASSES",
    "FrameSocket",
    "GraqlServer",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RemoteConnection",
    "RemotePreparedStatement",
    "decode_error",
    "decode_frame",
    "encode_error",
    "encode_frame",
    "error_code",
    "parse_endpoints",
    "parse_url",
    "ping",
]
