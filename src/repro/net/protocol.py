"""Message-level codecs: results, subgraphs, options, and errors.

The wire carries three shapes (framed by :mod:`repro.net.frame`):

* **Results** — a :class:`~repro.query.executor.StatementResult` list.
  Non-streamed tables travel inline (schema + stored-form rows); the
  *last* table result of a script is streamed instead: the RESULT
  header carries only its schema and row count, then BATCH frames carry
  the rows, then DONE closes the stream.  Stored values (ints, floats,
  strings, booleans, date ordinals) are JSON-native, so a row
  round-trips exactly and the client rebuilds the identical
  :class:`~repro.storage.table.Table`.
* **Options** — the non-default fields of a
  :class:`~repro.obs.QueryOptions`, reconstructed server-side.
* **Errors** — every server-side exception crosses as a *stable* error
  code + message + attribute dict + request span, and
  :func:`decode_error` re-raises it client-side as the originating
  :mod:`repro.errors` class — ``ServerBusy`` keeps its ``reason``,
  ``ParseError`` its ``line``/``column``, ``IRError`` its byte offset —
  never a bare ``RuntimeError`` (docs/NETWORK.md).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Mapping, Optional

from repro.dtypes import parse_type_name
from repro.errors import (
    AccessError,
    BackendError,
    CatalogError,
    ClosedError,
    CommFailure,
    DegradedMode,
    ExecutionError,
    GraQLError,
    IngestError,
    IRError,
    LexError,
    NotPrimary,
    ParseError,
    PlanError,
    PromotionError,
    ProtocolError,
    QueryTimeout,
    ReplicaStale,
    ServerBusy,
    TypeCheckError,
    WalError,
    WorkerFailed,
)
from repro.graph.subgraph import Subgraph
from repro.obs.options import QueryOptions
from repro.query.executor import StatementKind, StatementResult
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Error taxonomy (stable wire codes)
# ----------------------------------------------------------------------

#: wire code -> exception class.  Codes are part of the protocol:
#: renaming one is a breaking change (docs/NETWORK.md lists them).
ERROR_CLASSES: dict[str, type] = {
    "graql": GraQLError,
    "lex": LexError,
    "parse": ParseError,
    "typecheck": TypeCheckError,
    "catalog": CatalogError,
    "ingest": IngestError,
    "execution": ExecutionError,
    "closed": ClosedError,
    "plan": PlanError,
    "ir": IRError,
    "access": AccessError,
    "wal": WalError,
    "busy": ServerBusy,
    "backend": BackendError,
    "worker_failed": WorkerFailed,
    "comm": CommFailure,
    "timeout": QueryTimeout,
    "degraded": DegradedMode,
    "protocol": ProtocolError,
    "not_primary": NotPrimary,
    "replica_stale": ReplicaStale,
    "promotion": PromotionError,
}

_CODE_OF = {cls: code for code, cls in ERROR_CLASSES.items()}

#: exception attributes preserved across the wire, when present
_ERROR_ATTRS = (
    "line", "column", "reason", "retryable", "worker", "partition",
    "offset", "instruction", "code", "primary", "seq", "repl_epoch",
)


def error_code(exc: BaseException) -> str:
    """The most specific stable wire code for *exc*."""
    for cls in type(exc).__mro__:
        code = _CODE_OF.get(cls)
        if code is not None:
            return code
    return "graql"


def encode_error(
    exc: BaseException, span: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """Render *exc* as a wire payload.

    Anything outside the :class:`~repro.errors.GraQLError` hierarchy
    (a server bug) is reported as code ``"execution"`` so clients still
    get a typed exception, never the server's internal traceback class.
    """
    if isinstance(exc, GraQLError):
        code = error_code(exc)
        message = str(exc)
    else:
        code = "execution"
        message = f"internal server error: {type(exc).__name__}: {exc}"
    attrs: dict[str, Any] = {}
    for name in _ERROR_ATTRS:
        value = getattr(exc, name, None)
        if value is not None and isinstance(value, (str, int, float, bool)):
            attrs[name] = value
    payload: dict[str, Any] = {"code": code, "message": message, "attrs": attrs}
    if span is not None:
        payload["span"] = span
    return payload


def decode_error(payload: Mapping[str, Any]) -> GraQLError:
    """Rebuild the originating exception from a wire payload.

    The instance is constructed without re-running the class's
    ``__init__`` (which would re-append position suffixes already baked
    into the message); the preserved attributes are restored verbatim
    and the server-side request span is attached as ``remote_span``.
    """
    cls = ERROR_CLASSES.get(str(payload.get("code", "")), GraQLError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, str(payload.get("message", "")))
    attrs = payload.get("attrs") or {}
    for name in _ERROR_ATTRS:
        if name in attrs:
            setattr(exc, name, attrs[name])
    #: the server-side span context ({"conn": ..., "req": ...}) of the
    #: request that failed; None when the error predates a request
    exc.remote_span = payload.get("span")
    return exc


# ----------------------------------------------------------------------
# QueryOptions
# ----------------------------------------------------------------------

def encode_options(options: Optional[QueryOptions]) -> Optional[dict[str, Any]]:
    """The non-default fields of *options* (None when all defaults)."""
    if options is None:
        return None
    out = {
        f.name: getattr(options, f.name)
        for f in dataclass_fields(options)
        if getattr(options, f.name) != f.default
    }
    if "hints" in out:
        out["hints"] = out["hints"].to_payload()
    return out or None


def decode_options(payload: Optional[Mapping[str, Any]]) -> Optional[QueryOptions]:
    if not payload:
        return None
    allowed = {f.name for f in dataclass_fields(QueryOptions)}
    unknown = set(payload) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown query option(s) on the wire: {', '.join(sorted(unknown))}"
        )
    try:
        fields = dict(payload)
        if fields.get("hints") is not None:
            from repro.obs.options import Hints

            fields["hints"] = Hints(**dict(fields["hints"]))
        return QueryOptions(**fields)
    except (TypeError, ValueError) as e:
        raise ProtocolError(f"invalid query options on the wire: {e}") from None


# ----------------------------------------------------------------------
# Tables / subgraphs / results
# ----------------------------------------------------------------------

def table_meta(table: Table) -> dict[str, Any]:
    """Schema-level description of *table* (no rows)."""
    return {
        "name": table.name,
        "columns": [[c.name, c.dtype.ddl()] for c in table.schema],
        "num_rows": table.num_rows,
    }


def schema_from_meta(meta: Mapping[str, Any]) -> Schema:
    return Schema(
        ColumnDef(str(name), parse_type_name(str(ddl)))
        for name, ddl in meta["columns"]
    )


def table_from_meta(meta: Mapping[str, Any], rows: list) -> Table:
    """Rebuild a :class:`Table` from its meta + stored-form rows."""
    return Table.from_rows(str(meta["name"]), schema_from_meta(meta), rows)


def encode_table(table: Table) -> dict[str, Any]:
    """Meta + all rows inline (used for non-streamed table results)."""
    out = table_meta(table)
    out["rows"] = [list(r) for r in table.iter_rows()]
    return out


def decode_table(payload: Mapping[str, Any]) -> Table:
    return table_from_meta(payload, [tuple(r) for r in payload["rows"]])


def encode_subgraph(sg: Subgraph) -> dict[str, Any]:
    return {
        "name": sg.name,
        "vertices": {t: ids.tolist() for t, ids in sg.vertices.items()},
        "edges": {t: ids.tolist() for t, ids in sg.edges.items()},
    }


def decode_subgraph(payload: Mapping[str, Any]) -> Subgraph:
    import numpy as np

    return Subgraph(
        str(payload["name"]),
        {t: np.asarray(ids, dtype=np.int64)
         for t, ids in (payload.get("vertices") or {}).items()},
        {t: np.asarray(ids, dtype=np.int64)
         for t, ids in (payload.get("edges") or {}).items()},
    )


def encode_result(r: StatementResult, *, stream_table: bool = False) -> dict[str, Any]:
    """One statement result as a wire dict.

    With ``stream_table`` the table travels as meta only — the caller
    streams its rows in BATCH frames.  Profiles and plans are
    server-side observability and do not cross the wire (the server's
    metrics registry and spans hold them; docs/NETWORK.md).
    """
    out: dict[str, Any] = {
        "kind": r.kind.value,
        "message": r.message,
        "count": r.count,
    }
    if r.degraded:
        out["degraded"] = True
        out["degraded_reason"] = r.degraded_reason
    if r.recovery is not None:
        out["recovery"] = r.recovery
    if r.table is not None:
        out["table"] = table_meta(r.table) if stream_table else encode_table(r.table)
        out["table"]["streamed"] = stream_table
    if r.subgraph is not None:
        out["subgraph"] = encode_subgraph(r.subgraph)
    return out


def decode_result(payload: Mapping[str, Any]) -> StatementResult:
    """Rebuild a result; a streamed table decodes as ``table=None``
    until the owning stream patches the materialized table in."""
    table = None
    t = payload.get("table")
    if t is not None and not t.get("streamed"):
        table = decode_table(t)
    sg = payload.get("subgraph")
    return StatementResult(
        StatementKind(payload["kind"]),
        table=table,
        subgraph=decode_subgraph(sg) if sg is not None else None,
        message=str(payload.get("message", "")),
        count=int(payload.get("count", 0)),
        degraded=bool(payload.get("degraded", False)),
        degraded_reason=str(payload.get("degraded_reason", "")),
        recovery=payload.get("recovery"),
    )


def encode_results(results: list[StatementResult]) -> dict[str, Any]:
    """The RESULT header for a list of statement results.

    The last table result is marked for streaming; ``stream`` names its
    index and row count (null when the script produced no table).
    """
    stream_idx = None
    for i in range(len(results) - 1, -1, -1):
        r = results[i]
        if r.kind == StatementKind.TABLE and r.table is not None:
            stream_idx = i
            break
    encoded = [
        encode_result(r, stream_table=(i == stream_idx))
        for i, r in enumerate(results)
    ]
    header: dict[str, Any] = {"results": encoded, "stream": None}
    if stream_idx is not None:
        header["stream"] = {
            "index": stream_idx,
            "num_rows": results[stream_idx].table.num_rows,
        }
    return header
